//! Offline stand-in for the subset of the `criterion` 0.5 API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a small wall-clock benchmark harness with the same surface:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: a short warm-up sizes the per-sample iteration count,
//! then `sample_size` timed samples are collected and the minimum / median /
//! maximum per-iteration times are reported. No plots, no saved baselines —
//! numbers go to stdout.
//!
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), every benchmark body runs exactly once
//! so the run stays fast while still exercising the code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into().render(None), self.test_mode, self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            id.into().render(Some(&self.name)),
            self.criterion.test_mode,
            self.sample_size,
            f,
        );
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            id.into().render(Some(&self.name)),
            self.criterion.test_mode,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (reports nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifies a benchmark: a function name, an optional parameter, or both.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id that is just a parameter value (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if let Some(g) = group {
            parts.push(g);
        }
        if let Some(f) = &self.function {
            parts.push(f);
        }
        if let Some(p) = &self.parameter {
            parts.push(p);
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Passed to each benchmark body; call [`iter`](Bencher::iter) with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            // The return value is dropped inside the timed region, matching
            // criterion; it also keeps the call from being optimized out.
            let _keep = routine();
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: String, test_mode: bool, sample_size: usize, mut f: F) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{label}: ok (test mode)");
        return;
    }

    // Warm-up: one iteration, then size samples to ~25ms each (capped so a
    // full group stays interactive).
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(25);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let min = samples[0];
    let med = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<48} time:   [{} {} {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(med),
        fmt_time(max),
        samples.len(),
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Declares a function that runs the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_with_group_and_parameter() {
        assert_eq!(BenchmarkId::from_parameter(12).render(Some("g")), "g/12");
        assert_eq!(BenchmarkId::new("f", 3).render(Some("g")), "g/f/3");
        assert_eq!(BenchmarkId::from("plain").render(None), "plain");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }
}
