//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a small, self-contained implementation of the traits it relies on:
//! [`RngCore`], [`Rng`], [`SeedableRng`], the [`Standard`](distributions::Standard)
//! distribution, uniform ranges for `gen_range`, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ (Blackman & Vigna) seeded through splitmix64.
//! It is a high-quality non-cryptographic generator; the workspace only uses
//! seeded, reproducible streams for experiments and tests, never security-
//! sensitive randomness. Stream values differ from upstream `rand`'s ChaCha12
//! `StdRng`, which is fine: nothing in the workspace depends on the exact
//! stream, only on statistical quality and determinism per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`](distributions::Standard)
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value from `[0, bound)` without modulo bias
/// (Lemire's multiply-shift rejection method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // threshold = 2^64 mod bound; rejecting products whose low half falls
    // below it leaves every residue equally likely.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($ty:ty => $uty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $uty).wrapping_sub(self.start as $uty) as u64;
                let off = uniform_below(rng, span);
                self.start.wrapping_add(off as $uty as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $uty).wrapping_sub(lo as $uty) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $uty as $ty;
                }
                let off = uniform_below(rng, span + 1);
                lo.wrapping_add(off as $uty as $ty)
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = unit_f64(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        // 53-bit grid over [0, 1]; the endpoint is reachable, matching the
        // inclusive contract closely enough for bounded-noise sampling.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + (self.end - self.start) * u
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Distributions over typed values.
pub mod distributions {
    use super::{unit_f64, Rng};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a primitive type: uniform over the
    /// whole domain for integers and `bool`, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            // Use the high bit: xoshiro's upper bits are its strongest.
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($ty:ty),* $(,)?) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Distribution<i128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
            let wide: u128 = Standard.sample(rng);
            wide as i128
        }
    }
}

/// Seeding support for reproducible generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with splitmix64 so
    /// nearby seeds give uncorrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = Splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// splitmix64 stepper used for seed expansion.
struct Splitmix64(u64);

impl Splitmix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Splitmix64};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// 256 bits of state, period 2^256 − 1, passes BigCrush. Not
    /// cryptographically secure — the workspace never needs that.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // The all-zero state is a fixed point of xoshiro; remap it.
            if s == [0; 4] {
                let mut sm = Splitmix64(0x9E37_79B9_7F4A_7C15);
                for word in &mut s {
                    *word = sm.next();
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
        // Degenerate inclusive range is fine.
        assert_eq!(rng.gen_range(5u8..=5), 5);
        let x = rng.gen_range(-0.0f64..=0.0);
        assert_eq!(x, 0.0);
    }

    #[test]
    fn bools_are_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4700..5300).contains(&trues), "trues {trues}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_dyn_and_unsized() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = takes_unsized(&mut rng);
        assert!((0.0..1.0).contains(&x));
        let direct: f64 = Standard.sample(&mut rng);
        assert!((0.0..1.0).contains(&direct));
    }
}
