//! Offline stand-in for the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a small property-testing engine with the same surface syntax:
//! the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and [`prop_oneof!`]
//! macros, the [`Strategy`](strategy::Strategy) combinators (`prop_map`,
//! `prop_flat_map`, `boxed`), `any::<T>()`, `Just`, ranges, tuples,
//! `collection::vec`, a `[a-b]{lo,hi}` string pattern subset, and
//! `num::f64::NORMAL`.
//!
//! Differences from upstream proptest, deliberate for an offline test rig:
//! cases are generated from a per-test deterministic seed (fully reproducible
//! runs), and failing cases are reported but not shrunk.

#![forbid(unsafe_code)]

/// Test-case driving: configuration, RNG, and the case loop.
pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed test case (produced by `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test generator (xoshiro256++ seeded from the test
    /// name and case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG for one (test, case) pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name gives each test its own stream family.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h ^ (u64::from(case) << 32) ^ u64::from(case);
            let mut s = [0u64; 4];
            for word in &mut s {
                // splitmix64 expansion; never yields the all-zero state.
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)` without modulo bias.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let m = u128::from(self.next_u64()) * u128::from(bound);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives `config.cases` generated cases through `body`, panicking with
    /// the case number on the first failure. No shrinking: the failing input
    /// is reported by the assertion message, and the run is reproducible.
    pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(test_name, case);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest `{test_name}` failed at case {case} of {}: {e}",
                    config.cases
                );
            }
        }
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of same-valued strategies (backs `prop_oneof!`).
    pub struct OneOf<T> {
        choices: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        /// Builds from `(weight, strategy)` pairs.
        ///
        /// # Panics
        /// Panics if `choices` is empty or all weights are zero.
        pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            OneOf { choices, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.choices {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights changed mid-generate")
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty => $uty:ty),* $(,)?) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $uty).wrapping_sub(self.start as $uty) as u64;
                    self.start.wrapping_add(rng.below(span) as $uty as $ty)
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as $uty).wrapping_sub(lo as $uty) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $uty as $ty;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $uty as $ty)
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    );

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            // 53-bit grid over [0, 1]; both endpoints reachable.
            let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + (hi - lo) * u
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// String pattern strategy. Supports the `[a-b]{lo,hi}` subset of regex
    /// syntax: one character class given as an inclusive range, repeated a
    /// uniform number of times.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo_ch, hi_ch, lo_n, hi_n) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
            let n = lo_n + rng.below((hi_n - lo_n + 1) as u64) as usize;
            (0..n)
                .map(|_| {
                    let span = hi_ch as u32 - lo_ch as u32 + 1;
                    char::from_u32(lo_ch as u32 + rng.below(u64::from(span)) as u32)
                        .expect("class range stays in valid chars")
                })
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(char, char, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let mut chars = rest.chars();
        let lo_ch = chars.next()?;
        if chars.next()? != '-' {
            return None;
        }
        let hi_ch = chars.next()?;
        let rest = chars.as_str().strip_prefix(']')?;
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo_n, hi_n) = counts.split_once(',')?;
        let (lo_n, hi_n) = (lo_n.parse().ok()?, hi_n.parse().ok()?);
        (lo_ch <= hi_ch && lo_n <= hi_n).then_some((lo_ch, hi_ch, lo_n, hi_n))
    }

    /// `any::<T>()`: the canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// See [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a canonical whole-domain generator.
    pub trait Arbitrary: Sized {
        /// Generates one value covering the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),* $(,)?) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` strategy: length uniform in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Numeric strategies.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Generates normal (finite, non-zero-exponent) `f64` values of
        /// either sign across the full magnitude range.
        pub const NORMAL: Normal = Normal;

        /// See [`NORMAL`].
        #[derive(Debug, Clone, Copy)]
        pub struct Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                let sign = rng.next_u64() & (1 << 63);
                // Biased exponent in [1, 2046]: excludes zero/subnormal
                // (0) and infinity/NaN (2047).
                let exp = 1 + rng.below(2046);
                let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
                f64::from_bits(sign | (exp << 52) | mantissa)
            }
        }
    }
}

/// Everything a test file needs, re-exported.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                __outcome
            });
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Picks among strategies, optionally weighted: `prop_oneof![a, b]` or
/// `prop_oneof![9 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A(i64),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds; tuples and vec compose.
        #[test]
        fn ranges_and_collections(
            x in -50i64..50,
            (a, b) in (0u8..10, 0usize..=3),
            v in crate::collection::vec(any::<bool>(), 0..8),
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(a < 10);
            prop_assert!(b <= 3);
            prop_assert!(v.len() < 8);
        }

        /// Weighted oneof mixes boxed heterogeneous strategies.
        #[test]
        fn oneof_and_maps(t in prop_oneof![3 => (0i64..5).prop_map(Tag::A).boxed(), 1 => Just(Tag::B)]) {
            match t {
                Tag::A(x) => prop_assert!((0..5).contains(&x)),
                Tag::B => {}
            }
        }

        /// Pattern strings honor the class and length bounds.
        #[test]
        fn string_pattern(s in "[a-f]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='f').contains(&c)));
        }

        /// NORMAL yields finite, classifiable-normal floats.
        #[test]
        fn normal_floats(x in crate::num::f64::NORMAL) {
            prop_assert!(x.is_finite());
            prop_assert!(x.is_normal());
        }

        /// flat_map threads the outer value into the inner strategy.
        #[test]
        fn flat_map_consistent((n, v) in (1usize..6).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(any::<u64>(), n))
        })) {
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_number() {
        crate::test_runner::run_cases(
            ProptestConfig::with_cases(10),
            "always_fails",
            |_rng| Err(TestCaseError::fail("boom")),
        );
    }
}
