//! Executable fidelity check of the paper's own toy example (§1.1 / §2.3.4).
//!
//! The paper shows a 4-record dataset x and a 2-anonymized x′:
//!
//! ```text
//! ZIP   Age Sex Disease          ZIP   Age   Sex Disease
//! 23456 55  F   COVID            23456 *     F   COVID
//! 23456 42  F   COVID      →     23456 *     F   COVID
//! 12345 30  M   CF               1234* 30-39 *   PULM
//! 12346 33  F   Asthma           1234* 30-39 *   PULM
//! ```
//!
//! and then (§2.3.4) builds the attack predicate for the bottom class:
//! `p(x) = x[ZIP] ∈ {12340..12349} ∧ x[Age] ∈ {30..39} ∧ x[Disease] ∈ PULM`,
//! observing that `Σ p(x_i) = Σ p(x'_i) = k' = 2`, and that a weight-1/k'
//! refinement p′ then isolates within the class. This test reproduces every
//! step with the library's own types.

use singling_out::data::{
    AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value,
};
use singling_out::kanon::generalized::EquivalenceClass;
use singling_out::kanon::hierarchy::paper_disease_taxonomy;
use singling_out::kanon::{is_k_anonymous, AnonymizedDataset, GenValue};

fn paper_dataset() -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("sex", DataType::Str, AttributeRole::QuasiIdentifier),
        AttributeDef::new("disease", DataType::Str, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    let f = b.intern("F");
    let m = b.intern("M");
    let covid = b.intern("COVID");
    let cf = b.intern("CF");
    let asthma = b.intern("Asthma");
    for (zip, age, sex, disease) in [
        (23456, 55, f, covid),
        (23456, 42, f, covid),
        (12345, 30, m, cf),
        (12346, 33, f, asthma),
    ] {
        b.push_row(vec![
            Value::Int(zip),
            Value::Int(age),
            Value::Str(sex),
            Value::Str(disease),
        ]);
    }
    b.finish()
}

/// Builds the paper's x′ verbatim as equivalence classes.
fn paper_release(ds: &Dataset) -> AnonymizedDataset {
    let mut tax = paper_disease_taxonomy();
    tax.bind_symbols(ds.interner());
    let pulm = tax
        .leaf_of_label("COVID")
        .map(|c| tax.parent(c).unwrap())
        .unwrap();
    let f = ds.interner().get("F").unwrap();
    let covid = ds.interner().get("COVID").unwrap();
    let top = EquivalenceClass {
        rows: vec![0, 1],
        qi_box: vec![
            GenValue::Exact(Value::Int(23456)),
            GenValue::Suppressed, // Age *
            GenValue::Exact(Value::Str(f)),
            GenValue::Exact(Value::Str(covid)),
        ],
    };
    let bottom = EquivalenceClass {
        rows: vec![2, 3],
        qi_box: vec![
            GenValue::IntRange {
                lo: 12340,
                hi: 12349,
            }, // 1234*
            GenValue::IntRange { lo: 30, hi: 39 }, // 30-39
            GenValue::Suppressed,                  // Sex *
            GenValue::CategoryNode(pulm),          // PULM
        ],
    };
    AnonymizedDataset::new(
        ds,
        vec![0, 1, 2, 3],
        vec![top, bottom],
        vec![],
        vec![None, None, None, Some(tax)],
    )
}

#[test]
fn paper_release_is_2_anonymous_and_sound() {
    let ds = paper_dataset();
    let anon = paper_release(&ds);
    assert!(anon.is_sound(&ds), "x' must cover x cell-for-cell");
    assert!(anon.is_partition());
    assert!(is_k_anonymous(&anon, 2));
    assert!(!is_k_anonymous(&anon, 3));
}

#[test]
fn section_2_3_4_class_predicate_counts_k_prime() {
    let ds = paper_dataset();
    let anon = paper_release(&ds);
    let bottom = &anon.classes()[1];
    // The paper's predicate p: evaluate the bottom box on the ORIGINAL rows.
    let matches: Vec<bool> = (0..ds.n_rows())
        .map(|r| {
            bottom
                .qi_box
                .iter()
                .enumerate()
                .all(|(qi, g)| g.covers(&ds.get(r, qi), anon.taxonomy(qi)))
        })
        .collect();
    // Σ p(x_i) = k' = 2, and exactly the class members match.
    assert_eq!(matches, vec![false, false, true, true]);
}

#[test]
fn refinement_isolates_within_the_class() {
    // §2.3.4: "It remains to choose a predicate p' of weight 1/k' over the
    // equivalence class" — here k' = 2; refine on sex (M vs F splits the
    // bottom class 1/1).
    let ds = paper_dataset();
    let anon = paper_release(&ds);
    let bottom = &anon.classes()[1];
    let m = ds.interner().get("M").unwrap();
    let p_and_p_prime = |r: usize| -> bool {
        let in_box = bottom
            .qi_box
            .iter()
            .enumerate()
            .all(|(qi, g)| g.covers(&ds.get(r, qi), anon.taxonomy(qi)));
        in_box && ds.get(r, 2) == Value::Str(m)
    };
    let count = (0..ds.n_rows()).filter(|&r| p_and_p_prime(r)).count();
    assert_eq!(count, 1, "p ∧ p' isolates record 2 (the CF patient)");
}
