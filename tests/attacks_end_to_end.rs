//! Cross-crate integration: the motivating attacks of §1 at reduced scale —
//! reconstruction against query mechanisms (so-recon × so-query × so-dp),
//! the census pipeline (so-census), and record linkage (so-linkage).

use singling_out::census::reconstruct::records_matched_within;
use singling_out::census::{
    commercial_database, reconstruct_block, reidentify, tabulate_block, CensusConfig, CensusData,
    CommercialConfig, Person, SolverBudget,
};
use singling_out::data::dist::RecordDistribution;
use singling_out::data::population::{Population, PopulationConfig};
use singling_out::data::rng::seeded_rng;
use singling_out::data::UniformBits;
use singling_out::dp::LaplaceSum;
use singling_out::linkage::sweeney::link_releases;
use singling_out::query::BoundedNoiseSum;
use singling_out::recon::{lp_reconstruct, reconstruction_accuracy};

#[test]
fn lp_decoding_beats_bounded_noise_but_not_dp() {
    let n = 40usize;
    let mut rng = seeded_rng(10);
    let x = UniformBits::new(n).sample(&mut rng);
    // Bounded √n noise: reconstruction succeeds.
    let alpha = 0.5 * (n as f64).sqrt();
    let mut mech = BoundedNoiseSum::new(x.clone(), alpha, seeded_rng(11));
    let res = lp_reconstruct(&mut mech, 6 * n, &mut seeded_rng(12)).unwrap();
    let acc_bounded = reconstruction_accuracy(&x, &res.reconstruction);
    assert!(acc_bounded > 0.85, "bounded-noise accuracy {acc_bounded}");
    // A DP interface with a small total budget: reconstruction fails.
    let mut dp = LaplaceSum::new(x.clone(), 0.002, seeded_rng(13));
    let res = lp_reconstruct(&mut dp, 6 * n, &mut seeded_rng(14)).unwrap();
    let acc_dp = reconstruction_accuracy(&x, &res.reconstruction);
    assert!(
        dp.total_epsilon_spent() < 0.5,
        "spent {}",
        dp.total_epsilon_spent()
    );
    assert!(
        acc_dp < acc_bounded - 0.15,
        "dp accuracy {acc_dp} vs bounded {acc_bounded}"
    );
}

#[test]
fn census_pipeline_reconstructs_and_reidentifies() {
    let census = CensusData::generate(
        &CensusConfig {
            n_blocks: 25,
            block_size_lo: 2,
            block_size_hi: 8,
            ..CensusConfig::default()
        },
        &mut seeded_rng(20),
    );
    let budget = SolverBudget::default();
    let guesses: Vec<Vec<Person>> = (0..census.n_blocks())
        .map(|b| {
            reconstruct_block(&tabulate_block(census.block(b)), &budget)
                .guess()
                .expect("solvable")
                .to_vec()
        })
        .collect();
    let within1: usize = (0..census.n_blocks())
        .map(|b| records_matched_within(census.block(b), &guesses[b], 1))
        .sum();
    assert!(
        within1 as f64 / census.population() as f64 > 0.6,
        "reconstruction too weak"
    );
    let commercial =
        commercial_database(&census, &CommercialConfig::default(), &mut seeded_rng(21));
    let reid = reidentify(&census, &guesses, &commercial, 1);
    assert!(reid.reidentification_rate() > 0.1);
    assert!(reid.precision() > 0.7);
}

#[test]
fn sweeney_linkage_works_at_small_scale() {
    let pop = Population::generate(
        &PopulationConfig {
            n: 2_000,
            ..PopulationConfig::default()
        },
        &mut seeded_rng(30),
    );
    let med = pop.medical_release();
    let voters = pop.voter_registry();
    let qi = ["zip", "birth_date", "sex"];
    let mq: Vec<usize> = qi.iter().map(|c| med.column_index(c).unwrap()).collect();
    let vq: Vec<usize> = qi.iter().map(|c| voters.column_index(c).unwrap()).collect();
    let out = link_releases(
        &med,
        &mq,
        &voters,
        &vq,
        voters.column_index("person_id").unwrap(),
    );
    let in_voters: std::collections::HashSet<usize> = pop.voter_rows().iter().copied().collect();
    let truth: Vec<Option<i64>> = (0..med.n_rows())
        .map(|i| in_voters.contains(&i).then_some(i as i64))
        .collect();
    assert!(out.link_rate(med.n_rows()) > 0.5);
    assert!(out.precision(&truth) > 0.95);
}
