//! Cross-crate integration: the full PSO pipeline at reduced scale —
//! data generation (so-data) → anonymization (so-kanon) / DP (so-dp) →
//! mechanism wrappers and games (singling-out-core) → legal verdicts.

use singling_out::core::attackers::{
    intersection_exposure, KAnonClassAttacker, PrefixDescentAttacker,
};
use singling_out::core::game::{run_pso_game, BitModel, DataModel, GameConfig, TabularModel};
use singling_out::core::legal::{dp_singling_out_assessment, kanon_singling_out_theorem, Verdict};
use singling_out::core::mechanisms::{AdaptiveCountOracle, Anonymizer, KAnonMechanism};
use singling_out::core::negligible::NegligibilityPolicy;
use singling_out::core::stats::Z999;
use singling_out::data::dist::{AttributeDistribution, Categorical, RowDistribution};
use singling_out::data::rng::seeded_rng;
use singling_out::data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema};
use singling_out::kanon::{
    datafly_anonymize, is_k_anonymous, mondrian_anonymize, AttributeHierarchy, DataflyConfig,
    MondrianConfig,
};

fn model() -> TabularModel {
    let diseases: Vec<String> = (0..100).map(|i| format!("d{i}")).collect();
    let jobs: Vec<String> = (0..100).map(|i| format!("j{i}")).collect();
    let schema = Schema::new(vec![
        AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("age_days", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        AttributeDef::new("job", DataType::Str, AttributeRole::Insensitive),
    ]);
    let dist = RowDistribution::new(
        schema,
        vec![
            AttributeDistribution::IntUniform { lo: 0, hi: 99_999 },
            AttributeDistribution::IntUniform { lo: 0, hi: 36_499 },
            AttributeDistribution::StrChoice {
                values: diseases,
                dist: Categorical::uniform(100),
            },
            AttributeDistribution::StrChoice {
                values: jobs,
                dist: Categorical::uniform(100),
            },
        ],
    );
    TabularModel::new(dist.sampler())
}

#[test]
fn legal_theorem_pipeline_reaches_paper_verdicts() {
    let m = model();
    let k = 5usize;
    let mech = KAnonMechanism::new(&m, vec![0, 1], Anonymizer::Mondrian(MondrianConfig { k }));
    let attacker = KAnonClassAttacker {
        dist: m.sampler().distribution().clone(),
        qi_cols: vec![0, 1],
        interner: m.sampler().interner().clone(),
    };
    let game = run_pso_game(
        &m,
        &mech,
        &attacker,
        &GameConfig::new(150, 150),
        &mut seeded_rng(1),
    );
    let claim = kanon_singling_out_theorem(k, &[game]);
    assert_eq!(claim.verdict, Verdict::FailsRequirement);

    let bit_model = BitModel::uniform(64);
    let policy = NegligibilityPolicy::default();
    let levels = policy.required_prefix_bits(150) + 4;
    let dp_game = run_pso_game(
        &bit_model,
        &AdaptiveCountOracle::noisy(levels, 0.02),
        &PrefixDescentAttacker,
        &GameConfig {
            policy,
            ..GameConfig::new(150, 150)
        },
        &mut seeded_rng(2),
    );
    let dp_claim = dp_singling_out_assessment(0.02 * levels as f64, &[dp_game]);
    assert_eq!(dp_claim.verdict, Verdict::SatisfiesNecessaryCondition);
}

#[test]
fn exact_composition_breaks_and_dp_composition_holds() {
    let bit_model = BitModel::uniform(64);
    let n = 120usize;
    let policy = NegligibilityPolicy::default();
    let levels = policy.required_prefix_bits(n) + 4;
    let cfg = GameConfig {
        policy,
        ..GameConfig::new(n, 100)
    };
    let exact = run_pso_game(
        &bit_model,
        &AdaptiveCountOracle::exact(levels),
        &PrefixDescentAttacker,
        &cfg,
        &mut seeded_rng(3),
    );
    assert!(exact.breaks_pso_security(Z999, 0.1), "Theorem 2.8");
    let noisy = run_pso_game(
        &bit_model,
        &AdaptiveCountOracle::noisy(levels, 0.05),
        &PrefixDescentAttacker,
        &cfg,
        &mut seeded_rng(4),
    );
    assert!(!noisy.breaks_pso_security(Z999, 0.0), "Theorem 2.9");
    assert!(noisy.success_rate() < 0.1);
}

#[test]
fn two_kanon_releases_compose_badly() {
    let m = model();
    let rows = m.sample_dataset(400, &mut seeded_rng(5));
    let mut b = DatasetBuilder::from_parts(
        m.sampler().distribution().schema().clone(),
        (**m.sampler().interner()).clone(),
    );
    for r in &rows {
        b.push_row(r.clone());
    }
    let ds = b.finish();
    let anon1 = mondrian_anonymize(&ds, &[0, 1], &MondrianConfig { k: 4 });
    let hier = vec![
        AttributeHierarchy::ZipPrefix { digits: 5 },
        AttributeHierarchy::Numeric {
            anchor: 0,
            widths: vec![365, 1_825, 3_650, 18_250],
        },
    ];
    let anon2 = datafly_anonymize(
        &ds,
        &[0, 1],
        &hier,
        &DataflyConfig {
            k: 4,
            max_suppression_fraction: 0.05,
        },
    );
    assert!(is_k_anonymous(&anon1, 4));
    assert!(is_k_anonymous(&anon2, 4));
    let exposure = intersection_exposure(&anon1, &anon2);
    assert!(exposure.min_joint_class < 4, "joint classes shrink below k");
}
