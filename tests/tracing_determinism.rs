//! Enabling tracing must not perturb any transcript-feeding value.
//!
//! The determinism gate diffs traced vs untraced experiment stdout in CI;
//! this test pins the same invariant in-process: run a workload (and a DP
//! release sequence) untraced, install a recording subscriber — tracing is
//! process-global, so this file holds only this one test — rerun, and
//! require bit-identical answers and stats while the subscriber did observe
//! spans.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use singling_out::data::rng::seeded_rng;
use singling_out::data::{
    AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value,
};
use singling_out::dp::LaplaceCount;
use singling_out::obs::{Field, TraceSubscriber};
use singling_out::plan::{Noise, WorkloadSpec};
use singling_out::query::predicate::{IntRangePredicate, ValueEqualsPredicate};
use singling_out::query::{CountingEngine, WorkloadAnswers};

/// Counts spans/events without touching their payloads.
#[derive(Debug, Default)]
struct CountingSubscriber {
    spans: Arc<AtomicUsize>,
}

impl TraceSubscriber for CountingSubscriber {
    fn on_span(&self, _name: &str, _micros: u64, _fields: &[Field]) {
        self.spans.fetch_add(1, Ordering::Relaxed);
    }
    fn on_event(&self, _name: &str, _fields: &[Field]) {
        self.spans.fetch_add(1, Ordering::Relaxed);
    }
    fn flush(&self) {}
}

fn dataset(n: usize) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..n {
        b.push_row(vec![
            Value::Int((i * 37 % 90) as i64),
            Value::Int((i % 5) as i64),
        ]);
    }
    b.finish()
}

fn workload(n_rows: usize) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n_rows);
    for d in 0..5i64 {
        w.push_predicate(
            &ValueEqualsPredicate {
                col: 1,
                value: Value::Int(d),
            },
            Noise::Exact,
        );
        w.push_predicate(
            &IntRangePredicate {
                col: 0,
                lo: d * 10,
                hi: d * 10 + 20,
            },
            Noise::Exact,
        );
    }
    w
}

fn run_once(ds: &Dataset, spec: &WorkloadSpec) -> (WorkloadAnswers, Vec<f64>) {
    let mut engine = CountingEngine::new(ds, None);
    let answers = engine.execute_workload(spec);
    let mech = LaplaceCount::new(0.5);
    let mut rng = seeded_rng(0xDE7E);
    let releases: Vec<f64> = (0..16).map(|i| mech.release(100 + i, &mut rng)).collect();
    (answers, releases)
}

#[test]
fn tracing_does_not_perturb_transcript_values() {
    let ds = dataset(1_037); // off the 64-row word boundary on purpose
    let spec = workload(ds.n_rows());

    assert!(!singling_out::obs::enabled(), "must start untraced");
    let (untraced, untraced_noise) = run_once(&ds, &spec);

    let spans = Arc::new(AtomicUsize::new(0));
    let installed = singling_out::obs::set_subscriber(Box::new(CountingSubscriber {
        spans: Arc::clone(&spans),
    }));
    assert!(installed, "no other subscriber may exist in this process");
    assert!(singling_out::obs::enabled());

    let (traced, traced_noise) = run_once(&ds, &spec);
    assert_eq!(traced.answers, untraced.answers, "answers perturbed");
    assert_eq!(traced.stats, untraced.stats, "plan stats perturbed");
    assert_eq!(traced_noise, untraced_noise, "noise stream perturbed");
    assert!(
        spans.load(Ordering::Relaxed) > 0,
        "subscriber saw no spans — tracing was not actually exercised"
    );
}
