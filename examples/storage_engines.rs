//! Storage engines: the packed layout against the uncompressed oracle.
//!
//! ```text
//! cargo run --release --example storage_engines
//! ```
//!
//! Builds one dataset twice — once per [`StorageEngine`] — and shows that
//! the packed dictionary / frame-of-reference layout (the default) shrinks
//! the bytes every scan touches while answering counting queries
//! bit-identically to the uncompressed oracle, serial or sharded.

use singling_out::data::{
    AttributeDef, AttributeRole, ColumnSegment, DataType, Dataset, DatasetBuilder, Schema,
    StorageEngine, Value,
};
use singling_out::query::{count_dataset, CountingEngine, IntRangePredicate, ValueEqualsPredicate};

const N_ROWS: usize = 200_000;

fn build(engine: StorageEngine) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("zip", DataType::Str, AttributeRole::QuasiIdentifier),
        AttributeDef::new("smoker", DataType::Bool, AttributeRole::Sensitive),
    ]);
    let mut b = DatasetBuilder::new(schema);
    let zips: Vec<_> = (0..30).map(|z| b.intern(&format!("zip{z:02}"))).collect();
    for i in 0..N_ROWS {
        let age = (i * 37 % 90) as i64 + 10;
        let zip = zips[i % zips.len()];
        b.push_row(vec![
            Value::Int(age),
            Value::Str(zip),
            if i % 97 == 0 {
                Value::Missing
            } else {
                Value::Bool(i % 5 == 0)
            },
        ]);
    }
    b.finish_with_engine(engine)
}

fn main() {
    println!("== storage engines: packed vs the uncompressed oracle ==\n");

    let oracle = build(StorageEngine::Uncompressed);
    let packed = build(StorageEngine::Packed);

    // 1. The physical layouts differ; the logical rows do not.
    println!(
        "1. {} rows, 3 columns, built under both engines (SO_STORAGE selects\n   \
         the process-wide default; this example pins each explicitly).",
        N_ROWS
    );
    for c in 0..oracle.n_cols() {
        let name = oracle.schema().attr(c).name.as_str();
        let oracle_bytes = oracle.column(c).scan_bytes();
        match packed.packed_column(c) {
            Some(seg) => println!(
                "   column {name:<7} oracle {:>9} B  -> packed {:>8} B  ({:>4.1}x smaller)",
                oracle_bytes,
                seg.packed_bytes(),
                oracle_bytes as f64 / seg.packed_bytes() as f64,
            ),
            None => println!("   column {name:<7} oracle {oracle_bytes:>9} B  -> not packable"),
        }
    }

    // 2. Scans answer identically on both layouts.
    let range = IntRangePredicate {
        col: 0,
        lo: 30,
        hi: 49,
    };
    let zip07 = ValueEqualsPredicate {
        col: 1,
        value: Value::Str(packed.interner().get("zip07").expect("interned")),
    };
    let missing = ValueEqualsPredicate {
        col: 2,
        value: Value::Missing,
    };
    println!("\n2. Scan equivalence (packed fast path vs oracle slice scan):");
    for (label, a, b) in [
        (
            "age in [30, 49]",
            count_dataset(&oracle, &range),
            count_dataset(&packed, &range),
        ),
        (
            "zip == zip07   ",
            count_dataset(&oracle, &zip07),
            count_dataset(&packed, &zip07),
        ),
        (
            "smoker missing ",
            count_dataset(&oracle, &missing),
            count_dataset(&packed, &missing),
        ),
    ] {
        assert_eq!(a, b, "{label} diverged between engines");
        println!("   {label}  ->  {a:>6} rows under both engines");
    }

    // 3. The whole counting engine agrees too, at any thread count.
    let mut oracle_engine = CountingEngine::new(&oracle, None);
    oracle_engine.set_threads(1);
    let mut packed_engine = CountingEngine::new(&packed, None);
    packed_engine.set_threads(4);
    let a = oracle_engine.count(&range).expect("uncapped");
    let b = packed_engine.count(&range).expect("uncapped");
    assert_eq!(a, b);
    println!(
        "\n3. CountingEngine (serial oracle vs packed at 4 threads): {a} == {b}.\n   \
         The packed engine changes the cost of a scan, never its answer —\n   \
         set SO_STORAGE=unpacked to fall back to the oracle layout, and see\n   \
         the so_storage_* metrics in an SO_METRICS=stderr dump."
    );
}
