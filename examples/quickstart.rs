//! Quickstart: the predicate-singling-out framework in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's §2 story end to end: the trivial 37% attacker, the
//! weight gate of Definition 2.4, a secure count mechanism, and an insecure
//! composition of count mechanisms.

use singling_out::core::attackers::{CountPostprocessAttacker, PrefixDescentAttacker};
use singling_out::core::baseline::baseline_isolation_probability;
use singling_out::core::game::{run_pso_game, BitModel, GameConfig};
use singling_out::core::isolation::FnPsoPredicate;
use singling_out::core::mechanisms::{AdaptiveCountOracle, CountMechanism};
use singling_out::core::negligible::NegligibilityPolicy;
use singling_out::data::rng::seeded_rng;
use singling_out::data::BitVec;
use std::sync::Arc;

fn main() {
    let n = 100usize;
    let mut rng = seeded_rng(42);
    println!("== singling-out quickstart (n = {n} records) ==\n");

    // 1. The 37% baseline (§2.2): a weight-1/n predicate chosen blindly.
    let p_baseline = baseline_isolation_probability(n, 1.0 / n as f64);
    println!(
        "1. A data-independent predicate of weight 1/n isolates with probability \
         n·w·(1−w)^(n−1) = {p_baseline:.4} ≈ 1/e.\n   This is why Definition 2.4 \
         only scores isolation by NEGLIGIBLE-weight predicates."
    );

    // 2. Theorem 2.5: a single exact count is PSO-secure.
    let model = BitModel::uniform(64);
    let count_pred: Arc<dyn singling_out::core::isolation::PsoPredicate<BitVec>> =
        Arc::new(FnPsoPredicate::new("bit0", Some(0.5), |r: &BitVec| {
            r.get(0)
        }));
    let res = run_pso_game(
        &model,
        &CountMechanism::<BitModel>::new(count_pred),
        &CountPostprocessAttacker {
            modulus: (n * n * 100) as u64,
        },
        &GameConfig::new(n, 500),
        &mut rng,
    );
    println!(
        "\n2. Theorem 2.5 — PSO game vs an exact count mechanism:\n   \
         attacker success = {:.4} (baseline at threshold = {:.2e}) → secure.",
        res.success_rate(),
        res.baseline_at_threshold
    );

    // 3. Theorem 2.8: ω(log n) counts compose into a singling-out machine.
    let policy = NegligibilityPolicy::default();
    let levels = policy.required_prefix_bits(n) + 4;
    let res = run_pso_game(
        &model,
        &AdaptiveCountOracle::exact(levels),
        &PrefixDescentAttacker,
        &GameConfig::new(n, 200),
        &mut rng,
    );
    println!(
        "\n3. Theorem 2.8 — the same count queries, {levels} of them, composed:\n   \
         attacker success = {:.4} → blatant singling out. Security does not compose.",
        res.success_rate()
    );

    // 4. Theorem 2.9: differential privacy restores security.
    let res = run_pso_game(
        &model,
        &AdaptiveCountOracle::noisy(levels, 0.05),
        &PrefixDescentAttacker,
        &GameConfig::new(n, 200),
        &mut rng,
    );
    println!(
        "\n4. Theorem 2.9 — the same {levels} counts under ε-DP noise (ε/query = 0.05):\n   \
         attacker success = {:.4} → differential privacy prevents predicate singling out.",
        res.success_rate()
    );
}
