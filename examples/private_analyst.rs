//! A privacy-conscious analyst session: budgets, counts, SVT, and auditing.
//!
//! ```text
//! cargo run --release --example private_analyst
//! ```
//!
//! The flip side of the attack experiments: how an analyst actually works
//! with the DP substrate — opening a privacy budget, releasing noisy
//! counts, screening many hypotheses with the sparse vector technique, and
//! empirically auditing a mechanism's ε claim.

use rand::Rng;
use singling_out::data::rng::seeded_rng;
use singling_out::dp::{
    audit_dp_pair, DpAuditConfig, LaplaceCount, PrivacyAccountant, SparseVector, SvtAnswer,
};

fn main() {
    let mut rng = seeded_rng(314);
    println!("== private analyst session ==\n");

    // A synthetic cohort: 1 000 patients, ~12% with the condition of
    // interest, plus 200 candidate risk factors of varying prevalence.
    let n = 1_000usize;
    let condition: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < 0.12).collect();
    // Five genuinely common factors hidden among 200 candidates.
    let risk_factor_prevalence: Vec<f64> = (0..200)
        .map(|j| if j % 40 == 7 { 0.4 } else { 0.02 })
        .collect();

    // 1. Open a privacy budget and release the headline count.
    let mut accountant = PrivacyAccountant::new(1.0);
    let count_mech = LaplaceCount::new(0.25);
    assert!(accountant.try_spend("condition prevalence", 0.25));
    let true_count = condition.iter().filter(|&&b| b).count();
    let noisy = count_mech.release(true_count, &mut rng);
    println!(
        "1. prevalence count: true {true_count}, released {noisy:.1} \
         (ε = 0.25, remaining budget {:.2})",
        accountant.remaining()
    );

    // 2. Screen 200 risk factors for "affects ≥ 200 patients" with ONE
    //    sparse-vector session: total cost ε = 0.5 regardless of how many
    //    factors are screened.
    assert!(accountant.try_spend("SVT risk-factor screen", 0.5));
    let mut svt = SparseVector::new(200.0, 0.5, 5, seeded_rng(315));
    let mut flagged = Vec::new();
    for (j, &p) in risk_factor_prevalence.iter().enumerate() {
        let affected = (p * n as f64).round();
        match svt.query(affected) {
            SvtAnswer::Above => flagged.push(j),
            SvtAnswer::Below => {}
            SvtAnswer::Halted => break,
        }
    }
    println!(
        "2. SVT screened {} factors for ε = 0.5 total, flagged {:?} \
         (truth: the common factors are 7, 47, 87, 127, 167)",
        svt.queries_answered(),
        flagged
    );

    // 3. Audit the counting mechanism's ε claim empirically before trusting
    //    it with the rest of the budget.
    let audit = audit_dp_pair(
        |&c: &usize, r: &mut rand::rngs::StdRng| count_mech.release(c, r),
        &50,
        &51,
        0.25,
        &DpAuditConfig::default(),
        &mut seeded_rng(316),
    );
    println!(
        "3. DP audit of the count mechanism: max observed log-ratio {:.3} vs \
         claimed ε = 0.25 over {} buckets → {}",
        audit.max_log_ratio,
        audit.buckets_checked,
        if audit.passed { "PASSED" } else { "FAILED" }
    );

    println!(
        "\nledger: {:?}\ntotal ε spent: {:.2}",
        accountant
            .ledger()
            .iter()
            .map(|(l, e)| format!("{l} ({e})"))
            .collect::<Vec<_>>(),
        accountant.spent()
    );
}
