//! The Dinur–Nissim reconstruction playground.
//!
//! ```text
//! cargo run --release --example reconstruction_playground
//! ```
//!
//! Demonstrates the "fundamental law of information recovery" on a single
//! secret dataset: exhaustive reconstruction, LP decoding, the differencing
//! tracker, and the collapse of all three against a differentially private
//! interface.

use singling_out::data::dist::RecordDistribution;
use singling_out::data::rng::seeded_rng;
use singling_out::data::UniformBits;
use singling_out::dp::LaplaceSum;
use singling_out::query::BoundedNoiseSum;
use singling_out::recon::{
    averaging_differencing_attack, exhaustive_reconstruct, lp_reconstruct, reconstruction_accuracy,
};

fn main() {
    println!("== reconstruction playground ==\n");

    // A 12-bit secret for the exhaustive attack.
    let mut rng = seeded_rng(2003);
    let small_secret = UniformBits::new(12).sample(&mut rng);
    let alpha = 1.5; // c·n with c = 0.125
    let mut mech = BoundedNoiseSum::new(small_secret.clone(), alpha, seeded_rng(1));
    let res = exhaustive_reconstruct(&mut mech, alpha).expect("consistent");
    println!(
        "exhaustive attack (n = 12, α = {alpha}, all {} queries): accuracy {:.3} \
         (theorem bound: error ≤ 4α = {} entries)",
        res.queries_issued,
        reconstruction_accuracy(&small_secret, &res.reconstruction),
        (4.0 * alpha) as usize
    );

    // A 64-bit secret for LP decoding at √n noise.
    let n = 64usize;
    let secret = UniformBits::new(n).sample(&mut rng);
    let alpha = 0.5 * (n as f64).sqrt();
    let mut mech = BoundedNoiseSum::new(secret.clone(), alpha, seeded_rng(2));
    let res = lp_reconstruct(&mut mech, 6 * n, &mut seeded_rng(3)).expect("lp");
    println!(
        "LP decoding (n = {n}, α = c√n = {alpha:.1}, m = {} queries): accuracy {:.3}",
        res.queries_issued,
        reconstruction_accuracy(&secret, &res.reconstruction)
    );

    // Differencing with averaging against fresh bounded noise.
    let mut mech = BoundedNoiseSum::new(secret.clone(), 2.0, seeded_rng(4));
    let rec = averaging_differencing_attack(&mut mech, 400);
    println!(
        "differencing tracker (α = 2, 400 repeats/query): accuracy {:.3}",
        reconstruction_accuracy(&secret, &rec)
    );

    // The same tracker against a DP interface with a real privacy budget:
    // per-query ε so small that even thousands of averaged queries stay
    // under a total ε of a few units.
    let mut dp_mech = LaplaceSum::new(secret.clone(), 0.00005, seeded_rng(5));
    let rec = averaging_differencing_attack(&mut dp_mech, 400);
    println!(
        "same tracker vs ε-DP interface (ε/query = 5e-5, total ε spent = {:.2}): \
         accuracy {:.3} — coin flipping",
        dp_mech.total_epsilon_spent(),
        reconstruction_accuracy(&secret, &rec)
    );
}
