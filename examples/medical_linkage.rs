//! The GIC story: redaction fails, k-anonymity stops the unique join but
//! still permits predicate singling out.
//!
//! ```text
//! cargo run --release --example medical_linkage
//! ```
//!
//! 1. Publish medical records with direct identifiers redacted (what GIC
//!    did) → Sweeney's voter-registry join re-identifies most of them.
//! 2. Publish the same data 5-anonymized → the unique join collapses...
//! 3. ...and yet the PSO game still breaks the release (Theorem 2.10):
//!    stopping one named attack is not a privacy guarantee.

use singling_out::data::population::{Population, PopulationConfig};
use singling_out::data::rng::seeded_rng;
use singling_out::kanon::{mondrian_anonymize, GenValue, MondrianConfig};
use singling_out::linkage::quasi::uniqueness_fraction;
use singling_out::linkage::sweeney::link_releases;

fn main() {
    let n = 10_000usize;
    let pop = Population::generate(
        &PopulationConfig {
            n,
            ..PopulationConfig::default()
        },
        &mut seeded_rng(1997),
    );
    println!("== medical release linkage demo (n = {n}) ==\n");

    // 1. Redaction-only release.
    let med = pop.medical_release();
    let voters = pop.voter_registry();
    let qi = ["zip", "birth_date", "sex"];
    let mq: Vec<usize> = qi.iter().map(|c| med.column_index(c).unwrap()).collect();
    let vq: Vec<usize> = qi.iter().map(|c| voters.column_index(c).unwrap()).collect();
    let vid = voters.column_index("person_id").unwrap();
    let unique = uniqueness_fraction(&med, &mq);
    let out = link_releases(&med, &mq, &voters, &vq, vid);
    let in_voters: std::collections::HashSet<usize> = pop.voter_rows().iter().copied().collect();
    let truth: Vec<Option<i64>> = (0..med.n_rows())
        .map(|i| in_voters.contains(&i).then_some(i as i64))
        .collect();
    println!(
        "redacted release: {:.1}% of records unique under (zip, birth date, sex);\n\
         voter-registry join links {:.1}% with precision {:.2} — Sweeney's attack.",
        100.0 * unique,
        100.0 * out.link_rate(med.n_rows()),
        out.precision(&truth)
    );

    // 2. 5-anonymize the quasi-identifiers and retry the join.
    let k = 5usize;
    let anon = mondrian_anonymize(&med, &mq, &MondrianConfig { k });
    // The join now has to match a voter's exact QI tuple against generalized
    // boxes: a voter "matches" a class if the box covers them; a class of
    // k' >= 5 records never pins a single voter, so the unique-match attack
    // yields nothing.
    let mut joinable = 0usize;
    for class in anon.classes() {
        // A class could only be linked uniquely if it covered exactly one
        // voter AND had a single member — impossible at k = 5.
        let covered = (0..voters.n_rows())
            .filter(|&v| {
                class.qi_box.iter().zip(&vq).all(|(g, &col)| {
                    let val = voters.get(v, col);
                    g.covers(&val, None)
                })
            })
            .count();
        if covered == 1 && class.rows.len() == 1 {
            joinable += 1;
        }
    }
    println!(
        "\n5-anonymized release: {} of {} classes uniquely joinable → the \
         Sweeney join is dead.",
        joinable,
        anon.classes().len()
    );

    // 3. But the release still fails predicate singling out: every class box
    //    conjoined with the verbatim sensitive column gives a low-weight
    //    predicate matching k' records; a 1/k' refinement isolates with
    //    probability ≈ 1/e (Theorem 2.10) — demonstrated at scale in
    //    experiment E8 (`cargo run -p so-bench --bin exp_e08_kanon_pso`).
    let narrowest = anon
        .classes()
        .iter()
        .map(|c| {
            c.qi_box
                .iter()
                .map(|g| match g {
                    GenValue::IntRange { lo, hi } => (hi - lo + 1) as f64,
                    GenValue::Exact(_) => 1.0,
                    _ => f64::INFINITY,
                })
                .product::<f64>()
        })
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nnarrowest class box covers ~{narrowest:.0} QI combinations out of \
         ~1.3e9 possible — its predicate weight is negligible, so Theorem 2.10's \
         37% attack applies. Stopping the join ≠ preventing singling out."
    );
}
