//! GDPR anonymization audit: from PSO games to legal theorems.
//!
//! ```text
//! cargo run --release --example gdpr_anonymization_audit
//! ```
//!
//! Audits two candidate anonymization pipelines for a medical-style dataset
//! against the GDPR's singling-out criterion (§2.4 of the paper):
//! 5-anonymity via Mondrian, and an ε-DP count interface. Prints the
//! resulting legal theorems with their full derivation chains.

use singling_out::core::attackers::{KAnonClassAttacker, PrefixDescentAttacker};
use singling_out::core::game::{run_pso_game, BitModel, GameConfig, TabularModel};
use singling_out::core::legal::{dp_singling_out_assessment, kanon_singling_out_theorem};
use singling_out::core::mechanisms::{AdaptiveCountOracle, Anonymizer, KAnonMechanism};
use singling_out::core::negligible::NegligibilityPolicy;
use singling_out::core::report::AuditReport;
use singling_out::data::dist::{AttributeDistribution, Categorical, RowDistribution};
use singling_out::data::rng::seeded_rng;
use singling_out::data::{AttributeDef, AttributeRole, DataType, Schema};
use singling_out::kanon::MondrianConfig;

/// A medical-records data model: ZIP and birth day as quasi-identifiers,
/// diagnosis / occupation / income released verbatim.
fn medical_model() -> TabularModel {
    let diagnoses: Vec<String> = (0..120).map(|i| format!("icd_{i}")).collect();
    let occupations: Vec<String> = (0..150).map(|i| format!("occ_{i}")).collect();
    let schema = Schema::new(vec![
        AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("birth_day", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("diagnosis", DataType::Str, AttributeRole::Sensitive),
        AttributeDef::new("occupation", DataType::Str, AttributeRole::Insensitive),
        AttributeDef::new("income_band", DataType::Int, AttributeRole::Insensitive),
    ]);
    let dist = RowDistribution::new(
        schema,
        vec![
            AttributeDistribution::IntUniform { lo: 0, hi: 99_999 },
            AttributeDistribution::IntUniform { lo: 0, hi: 36_499 },
            AttributeDistribution::StrChoice {
                values: diagnoses,
                dist: Categorical::uniform(120),
            },
            AttributeDistribution::StrChoice {
                values: occupations,
                dist: Categorical::uniform(150),
            },
            AttributeDistribution::IntChoice {
                values: (0..80).collect(),
                dist: Categorical::uniform(80),
            },
        ],
    );
    TabularModel::new(dist.sampler())
}

fn main() {
    let n = 200usize;
    let trials = 300usize;
    println!("== GDPR anonymization audit (n = {n}, {trials} game trials) ==\n");

    // --- Candidate 1: 5-anonymity (Mondrian) -----------------------------
    let model = medical_model();
    let k = 5usize;
    let mech = KAnonMechanism::new(
        &model,
        vec![0, 1],
        Anonymizer::Mondrian(MondrianConfig { k }),
    );
    let attacker = KAnonClassAttacker {
        dist: model.sampler().distribution().clone(),
        qi_cols: vec![0, 1],
        interner: model.sampler().interner().clone(),
    };
    let game = run_pso_game(
        &model,
        &mech,
        &attacker,
        &GameConfig::new(n, trials),
        &mut seeded_rng(11),
    );
    println!(
        "k-anonymity game: PSO success {:.3} vs baseline {:.2e}\n",
        game.success_rate(),
        game.baseline_at_threshold
    );
    let kanon_claim = kanon_singling_out_theorem(k, &[game]);

    // --- Candidate 2: ε-DP count interface -------------------------------
    let bit_model = BitModel::uniform(64);
    let policy = NegligibilityPolicy::default();
    let levels = policy.required_prefix_bits(n) + 4;
    let eps_per_query = 0.02;
    let game = run_pso_game(
        &bit_model,
        &AdaptiveCountOracle::noisy(levels, eps_per_query),
        &PrefixDescentAttacker,
        &GameConfig {
            policy,
            ..GameConfig::new(n, trials)
        },
        &mut seeded_rng(12),
    );
    println!(
        "DP game: PSO success {:.3} vs baseline {:.2e}\n",
        game.success_rate(),
        game.baseline_at_threshold
    );
    let dp_claim = dp_singling_out_assessment(eps_per_query * levels as f64, &[game]);

    // Assemble the full audit report (§2.4.3: privacy claims should be
    // published with their falsifiable supporting analysis).
    let report = AuditReport::new("GDPR anonymization audit — synthetic medical data")
        .context(&format!(
            "n = {n} records, {trials} game trials per claim, seeded"
        ))
        .context("negligibility policy: weight <= n^-2")
        .claim(kanon_claim)
        .claim(dp_claim);
    println!("{}", report.render_text());
}
