//! Census reconstruction, end to end.
//!
//! ```text
//! cargo run --release --example census_reconstruction
//! ```
//!
//! Reproduces the shape of the paper's headline example (§1): block-level
//! tables published exactly allow near-total reconstruction and substantial
//! re-identification; the same tables under ε-DP do not.

use singling_out::census::reconstruct::{
    reconstruct_counts_only, records_matched, records_matched_within,
};
use singling_out::census::{
    commercial_database, dp_tabulate_block, reconstruct_block, reidentify, tabulate_block,
    CensusConfig, CensusData, CommercialConfig, DpTablesConfig, Person, SolverBudget,
};
use singling_out::data::rng::seeded_rng;

fn main() {
    let census = CensusData::generate(
        &CensusConfig {
            n_blocks: 80,
            block_size_lo: 2,
            block_size_hi: 9,
            ..CensusConfig::default()
        },
        &mut seeded_rng(2010),
    );
    let pop = census.population();
    println!(
        "== census reconstruction demo: {} blocks, {pop} people ==\n",
        census.n_blocks()
    );

    let budget = SolverBudget::default();
    let mut rng = seeded_rng(2020);

    // Stage 1: reconstruct every block from the exact tables.
    let mut guesses: Vec<Vec<Person>> = Vec::new();
    let (mut unique, mut exact, mut within1) = (0usize, 0usize, 0usize);
    for b in 0..census.n_blocks() {
        let truth = census.block(b);
        let out = reconstruct_block(&tabulate_block(truth), &budget);
        if out.is_unique() {
            unique += 1;
        }
        let g = out.guess().map(<[Person]>::to_vec).unwrap_or_default();
        exact += records_matched(truth, &g);
        within1 += records_matched_within(truth, &g, 1);
        guesses.push(g);
    }
    println!(
        "exact tables:  {unique}/{} blocks uniquely determined; {:.1}% of people \
         reconstructed exactly, {:.1}% within ±1 year (paper: 71%)",
        census.n_blocks(),
        100.0 * exact as f64 / pop as f64,
        100.0 * within1 as f64 / pop as f64
    );

    // Stage 2: link with a commercial database to attach identities.
    let commercial = commercial_database(&census, &CommercialConfig::default(), &mut rng);
    let reid = reidentify(&census, &guesses, &commercial, 1);
    println!(
        "re-identification: {} claims, {} correct → {:.1}% of the population \
         (paper: 17%); precision {:.2}",
        reid.claimed,
        reid.correct,
        100.0 * reid.reidentification_rate(),
        reid.precision()
    );

    // Stage 3: the DP remedy.
    for eps in [1.0f64, 0.25] {
        let mut guesses: Vec<Vec<Person>> = Vec::new();
        let mut within1 = 0usize;
        for b in 0..census.n_blocks() {
            let truth = census.block(b);
            let dp = dp_tabulate_block(truth, &DpTablesConfig { epsilon: eps }, &mut rng);
            let out = reconstruct_counts_only(&dp.race_sex_band, &budget);
            let g = out.guess().map(<[Person]>::to_vec).unwrap_or_default();
            within1 += records_matched_within(truth, &g, 1);
            guesses.push(g);
        }
        let reid = reidentify(&census, &guesses, &commercial, 1);
        println!(
            "dp tables (ε = {eps}): {:.1}% within ±1 year, re-identification {:.1}%",
            100.0 * within1 as f64 / pop as f64,
            100.0 * reid.reidentification_rate()
        );
    }
}
