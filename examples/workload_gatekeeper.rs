//! Workload gatekeeper: refuse attack-shaped workloads before execution.
//!
//! ```text
//! cargo run --release --example workload_gatekeeper
//! ```
//!
//! The `analyze` subsystem treats singling-out risk as a property of the
//! *query workload*: the differencing tracker of Theorem 1.1, the
//! Dinur–Nissim reconstruction regimes, and the prefix-descent composition
//! attack of Theorem 2.8 are all recognizable statically, before a single
//! count is released. This example lints three declared workloads and then
//! puts a `CountingEngine` behind the verdict.

use singling_out::analyze::{lint_workload_default, GatedEngine, LintConfig, Noise, WorkloadSpec};
use singling_out::data::{
    AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value,
};
use singling_out::query::predicate::{
    AllRowPredicate, IntRangePredicate, KeyedHashPredicate, NotRowPredicate, RowHashPredicate,
    RowPredicate, ValueEqualsPredicate,
};
use singling_out::query::CountingEngine;

fn hospital(n: usize) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("ward", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..n {
        b.push_row(vec![
            Value::Int(20 + (i * 7 % 60) as i64),
            Value::Int((i % 4) as i64),
        ]);
    }
    b.finish()
}

fn main() {
    let data = hospital(500);
    println!(
        "== static workload analysis ({} records) ==\n",
        data.n_rows()
    );

    // 1. An honest cross-tab: ward counts. Passes every lint.
    let mut honest = WorkloadSpec::new(data.n_rows());
    let wards: Vec<ValueEqualsPredicate> = (0..4)
        .map(|w| ValueEqualsPredicate {
            col: 1,
            value: Value::Int(w),
        })
        .collect();
    for p in &wards {
        honest.push_predicate(p, Noise::Exact);
    }
    let report = lint_workload_default(&mut honest);
    println!("1. ward cross-tab          -> {}", report.verdict());

    // 2. The differencing tracker: `A` and `A ∧ ¬H` for a keyed-hash residue
    //    H of design weight 1/256 — the pair of exact answers isolates the
    //    expected ≤ 2 matching rows (Theorem 1.1's premise with m = 2).
    let all = AllRowPredicate {
        parts: vec![Box::new(IntRangePredicate {
            col: 0,
            lo: 0,
            hi: 200,
        })],
    };
    let tracked = AllRowPredicate {
        parts: vec![
            Box::new(IntRangePredicate {
                col: 0,
                lo: 0,
                hi: 200,
            }),
            Box::new(NotRowPredicate {
                inner: Box::new(RowHashPredicate {
                    hash: KeyedHashPredicate::new(0xDEED, 1024, 0),
                    cols: vec![0, 1],
                }),
            }),
        ],
    };
    let mut attack = WorkloadSpec::new(data.n_rows());
    attack.push_predicate(&all, Noise::Exact);
    attack.push_predicate(&tracked, Noise::Exact);
    let report = lint_workload_default(&mut attack);
    println!("2. differencing tracker    -> {}", report.verdict());
    for f in &report.findings {
        println!("   {f}");
    }

    // 3. Gatekeeper mode: the gate owns the declared workload, lints it at
    //    construction, and `execute()` either refuses every query (one
    //    citable refusal per offending index in the audit trail) or runs the
    //    identical plan through the whole-workload planner.
    let mut attack = WorkloadSpec::new(data.n_rows());
    attack.push_predicate(&all, Noise::Exact);
    attack.push_predicate(&tracked, Noise::Exact);
    let mut gated = GatedEngine::new(
        CountingEngine::new(&data, None),
        attack,
        &LintConfig::default(),
    );
    println!(
        "\n3. gatekeeper: gate is {}",
        if gated.is_open() { "open" } else { "closed" }
    );
    let outcome = gated.execute();
    for (p, answer) in [&all as &dyn RowPredicate, &tracked]
        .into_iter()
        .zip(&outcome.answers)
    {
        println!("   {answer:<18?} {}", p.describe());
    }
    let auditor = gated.engine().auditor();
    println!(
        "   auditor: {} answered, {} refused",
        auditor.queries_answered(),
        auditor.queries_refused()
    );
    for rec in auditor.trail() {
        println!("   trail #{}: {}", rec.seq, rec.description);
    }
}
