#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # xtask — zero-dependency repository checks
//!
//! The flagship check is the **determinism lint** (`cargo run -p xtask --bin
//! lint_determinism`): a token-level scan of every workspace crate's `src/`
//! tree for constructs that can leak nondeterminism into transcript-feeding
//! code paths. The CI determinism job diffs experiment transcripts across
//! thread counts, storage engines, and schedules — this lint catches the
//! *sources* of divergence before they reach a transcript:
//!
//! * **wall-clock** — `Instant::now`, `SystemTime::now`, `UNIX_EPOCH`:
//!   timing is fine for export-only metrics (`*_micros` histograms) but must
//!   never feed a finding, table, or transcript;
//! * **ambient-rng** — `thread_rng`, `from_entropy`, `OsRng`,
//!   `rand::random`: all randomness must flow from seeded generators;
//! * **hash-iter** — iteration over a `HashMap`/`HashSet` local
//!   (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for x in map`):
//!   iteration order is randomized per process, so anything it feeds must
//!   either be re-sorted or the site audited.
//!
//! Sites that are audited and deliberate live in `lint_determinism.allow` at
//! the repository root, one `rule path justification…` line each. A hit
//! without an entry fails the check; an entry without a hit is *stale* and
//! fails too, so the allowlist can only shrink to match reality.
//!
//! The scan is purely textual (per line, comments stripped, `#[cfg(test)]`
//! blocks skipped) — no syn, no regex crate, no dependencies. The scanner's
//! own crate is excluded: its rule tables necessarily spell the tokens it
//! hunts.

pub mod verify;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A determinism-hazard category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`, `UNIX_EPOCH`).
    WallClock,
    /// Ambient (unseeded) randomness (`thread_rng`, `OsRng`, …).
    AmbientRng,
    /// Iteration over a randomized-order `HashMap`/`HashSet` local.
    HashIter,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 3] = [Rule::WallClock, Rule::AmbientRng, Rule::HashIter];

    /// The rule's name as used in `lint_determinism.allow`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::HashIter => "hash-iter",
        }
    }

    /// Inverse of [`Rule::name`].
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One hazardous token occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Which rule matched.
    pub rule: Rule,
    /// Repo-relative path of the file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Hit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.snippet
        )
    }
}

/// Tokens whose bare occurrence (outside comments and test blocks) is a
/// wall-clock hit.
const WALL_CLOCK_TOKENS: [&str; 3] = ["Instant::now", "SystemTime::now", "UNIX_EPOCH"];

/// Tokens whose bare occurrence is an ambient-randomness hit.
const AMBIENT_RNG_TOKENS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "rand::random"];

/// True iff `hay[idx..]` starts a word-boundary occurrence of `needle`
/// (identifier characters on neither side).
fn bounded_at(hay: &str, idx: usize, needle: &str) -> bool {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    if !hay[idx..].starts_with(needle) {
        return false;
    }
    if hay[..idx].chars().next_back().is_some_and(ident) {
        return false;
    }
    !hay[idx + needle.len()..].chars().next().is_some_and(ident)
}

/// Word-boundary occurrences of `needle` in `hay`, as byte offsets.
fn bounded_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let idx = from + rel;
        if bounded_at(hay, idx, needle) {
            out.push(idx);
        }
        from = idx + needle.len().max(1);
    }
    out
}

/// The line with any `//` comment tail removed (naive: a `//` inside a
/// string literal also truncates, which only ever *hides* tokens that are
/// data rather than code).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// Extracts the bound identifier of a `let [mut] NAME …` line, if any.
fn let_binding(code: &str) -> Option<&str> {
    let rest = code.trim_start();
    let rest = rest.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

/// Scans one file's source text. `path` is only used to label hits.
///
/// Lines inside `#[cfg(test)]`-attributed brace blocks are skipped: test
/// code may time itself and iterate maps freely — it feeds assertions, not
/// transcripts.
pub fn scan_source(path: &str, source: &str) -> Vec<Hit> {
    let mut hits = Vec::new();
    // Pass 1: locals initialized to a randomized-order collection.
    let mut hash_locals: Vec<String> = Vec::new();
    for line in source.lines() {
        let code = strip_line_comment(line);
        let is_hash_init = ["HashMap::", "HashSet::"].iter().any(|t| {
            ["new()", "with_capacity", "default()", "from("]
                .iter()
                .any(|ctor| code.contains(&format!("{t}{ctor}")))
        });
        if is_hash_init {
            if let Some(name) = let_binding(code) {
                if !hash_locals.iter().any(|n| n == name) {
                    hash_locals.push(name.to_owned());
                }
            }
        }
    }

    // Pass 2: token scan with #[cfg(test)] block skipping.
    let mut pending_test_attr = false; // saw the attribute, waiting for `{`
    let mut test_depth = 0usize; // brace depth inside a skipped block
    for (lineno, line) in source.lines().enumerate() {
        let code = strip_line_comment(line);
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        if test_depth > 0 {
            test_depth = (test_depth + opens).saturating_sub(closes);
            continue;
        }
        if pending_test_attr {
            if opens > 0 {
                pending_test_attr = false;
                test_depth = opens.saturating_sub(closes);
            }
            continue;
        }
        if code.trim_start().starts_with("#[cfg(test)]") {
            pending_test_attr = true;
            if opens > 0 {
                pending_test_attr = false;
                test_depth = opens.saturating_sub(closes);
            }
            continue;
        }

        let mut push = |rule: Rule| {
            hits.push(Hit {
                rule,
                path: path.to_owned(),
                line: lineno + 1,
                snippet: line.trim().to_owned(),
            })
        };
        if WALL_CLOCK_TOKENS.iter().any(|t| code.contains(t)) {
            push(Rule::WallClock);
        }
        if AMBIENT_RNG_TOKENS
            .iter()
            .any(|t| !bounded_occurrences(code, t).is_empty())
        {
            push(Rule::AmbientRng);
        }
        'locals: for name in &hash_locals {
            for idx in bounded_occurrences(code, name) {
                let after = &code[idx + name.len()..];
                let iterating = [
                    ".iter()",
                    ".into_iter()",
                    ".keys()",
                    ".values()",
                    ".into_keys()",
                    ".into_values()",
                    ".drain(",
                ]
                .iter()
                .any(|m| after.starts_with(m));
                let before = code[..idx].trim_end();
                let for_loop = before.ends_with(" in")
                    || before.ends_with(" in &")
                    || before.ends_with(" in &mut");
                if iterating || for_loop {
                    push(Rule::HashIter);
                    break 'locals; // one hash-iter hit per line is enough
                }
            }
        }
    }
    hits
}

/// One audited site: a (rule, file) pair with its justification.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The rule this entry silences in that file.
    pub rule: Rule,
    /// Repo-relative file path.
    pub path: String,
    /// Why the site is deliberate (required).
    pub justification: String,
}

/// The parsed `lint_determinism.allow` file.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format: one `rule path justification…` line per
    /// audited file, `#` comments and blank lines ignored. Errors on an
    /// unknown rule name or a missing justification — an unexplained
    /// exemption is worse than a failing check.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule_name = parts.next().unwrap_or_default();
            let rule = Rule::from_name(rule_name).ok_or_else(|| {
                format!("allowlist line {}: unknown rule {rule_name:?}", lineno + 1)
            })?;
            let path = parts
                .next()
                .ok_or_else(|| format!("allowlist line {}: missing path", lineno + 1))?
                .to_owned();
            let justification = parts.next().unwrap_or("").trim().to_owned();
            if justification.is_empty() {
                return Err(format!(
                    "allowlist line {}: entry for {path} has no justification",
                    lineno + 1
                ));
            }
            entries.push(AllowEntry {
                rule,
                path,
                justification,
            });
        }
        Ok(Allowlist { entries })
    }
}

/// The outcome of checking a scan against the allowlist.
#[derive(Debug, Default)]
pub struct CheckResult {
    /// Hits with no covering allowlist entry — these fail the build.
    pub violations: Vec<Hit>,
    /// Hits silenced by an entry.
    pub allowed: Vec<Hit>,
    /// Allowlist entries that matched nothing — stale, and also fatal.
    pub stale: Vec<AllowEntry>,
}

/// Splits `hits` into violations and allowed sites, and finds stale
/// allowlist entries.
pub fn check(hits: Vec<Hit>, allow: &Allowlist) -> CheckResult {
    let mut used: BTreeMap<usize, usize> = BTreeMap::new();
    let mut out = CheckResult::default();
    for hit in hits {
        let entry = allow
            .entries
            .iter()
            .position(|e| e.rule == hit.rule && e.path == hit.path);
        match entry {
            Some(i) => {
                *used.entry(i).or_insert(0) += 1;
                out.allowed.push(hit);
            }
            None => out.violations.push(hit),
        }
    }
    for (i, e) in allow.entries.iter().enumerate() {
        if !used.contains_key(&i) {
            out.stale.push(e.clone());
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// report order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut names: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    names.sort();
    for path in names {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every workspace crate's `src/` tree under `root/crates`, skipping
/// the scanner's own crate (its rule tables spell the hunted tokens).
/// Returned hit paths are `root`-relative with `/` separators.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Hit>> {
    let mut crates: Vec<PathBuf> = fs::read_dir(root.join("crates"))?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    crates.sort();
    let mut hits = Vec::new();
    for krate in crates {
        if krate.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        let src = krate.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text = fs::read_to_string(&file)?;
            hits.extend(scan_source(&rel, &text));
        }
    }
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The planted tokens are spliced at runtime so this file never
    // contains them verbatim (the scanner skips its own crate anyway).
    fn tok(parts: &[&str]) -> String {
        parts.concat()
    }

    #[test]
    fn planted_wall_clock_is_caught() {
        let src = format!(
            "fn f() {{\n    let t = std::time::{}();\n}}\n",
            tok(&["Instant", "::now"])
        );
        let hits = scan_source("crates/demo/src/lib.rs", &src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, Rule::WallClock);
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[0].path, "crates/demo/src/lib.rs");
    }

    #[test]
    fn test_blocks_and_comments_are_skipped() {
        let now = tok(&["Instant", "::now"]);
        let src = format!(
            "fn f() {{}}\n\
             // a comment naming {now} is fine\n\
             #[cfg(test)]\n\
             mod tests {{\n    fn t() {{ let _ = std::time::{now}(); }}\n}}\n\
             fn g() {{}}\n"
        );
        assert!(scan_source("x.rs", &src).is_empty());
        // …but code after the test block is still scanned.
        let src = format!("#[cfg(test)]\nmod tests {{\n}}\nfn g() {{ let _ = {now}(); }}\n");
        let hits = scan_source("x.rs", &src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn ambient_rng_needs_word_boundaries() {
        let t = tok(&["thread", "_rng"]);
        let hits = scan_source("x.rs", &format!("let r = {t}();\n"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::AmbientRng);
        // A longer identifier containing the token is not a hit.
        assert!(scan_source("x.rs", &format!("let my_{t} = seeded();\n")).is_empty());
    }

    #[test]
    fn hash_iteration_over_locals_is_caught() {
        let src = "\
            use std::collections::HashMap;\n\
            fn f() {\n\
                let mut m: HashMap<u32, u32> = HashMap::new();\n\
                m.insert(1, 2);\n\
                for (k, v) in &m {\n\
                    println!(\"{k} {v}\");\n\
                }\n\
                let total: u32 = m.values().sum();\n\
                let _ = total;\n\
            }\n";
        let hits = scan_source("x.rs", src);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|h| h.rule == Rule::HashIter));
        assert_eq!(hits[0].line, 5);
        assert_eq!(hits[1].line, 8);
        // Probing is fine; BTreeMap iteration is fine.
        let clean = "\
            use std::collections::{BTreeMap, HashMap};\n\
            fn f() {\n\
                let mut m: HashMap<u32, u32> = HashMap::new();\n\
                let _ = m.get(&1);\n\
                m.remove(&1);\n\
                let mut b: BTreeMap<u32, u32> = BTreeMap::new();\n\
                b.insert(1, 2);\n\
                for (k, v) in &b {\n\
                    println!(\"{k} {v}\");\n\
                }\n\
            }\n";
        assert!(scan_source("x.rs", clean).is_empty());
    }

    #[test]
    fn allowlist_parses_requires_justification_and_flags_stale() {
        let allow = Allowlist::parse(
            "# audited sites\n\
             wall-clock crates/demo/src/lib.rs export-only timing histogram\n",
        )
        .expect("parses");
        assert_eq!(allow.entries.len(), 1);
        assert!(Allowlist::parse("wall-clock crates/demo/src/lib.rs").is_err());
        assert!(Allowlist::parse("sundial crates/demo/src/lib.rs because\n").is_err());

        let hit = Hit {
            rule: Rule::WallClock,
            path: "crates/demo/src/lib.rs".to_owned(),
            line: 2,
            snippet: String::new(),
        };
        let res = check(vec![hit.clone()], &allow);
        assert!(res.violations.is_empty());
        assert_eq!(res.allowed.len(), 1);
        assert!(res.stale.is_empty());
        // Same allowlist with no hits: the entry is stale.
        let res = check(Vec::new(), &allow);
        assert_eq!(res.stale.len(), 1);
        // A hit in another file is a violation even with entries present.
        let other = Hit {
            path: "crates/demo/src/other.rs".to_owned(),
            ..hit
        };
        let res = check(vec![other], &allow);
        assert_eq!(res.violations.len(), 1);
    }

    /// The real workspace must scan clean under the checked-in allowlist —
    /// `cargo test` itself enforces the determinism lint.
    #[test]
    fn workspace_is_clean_under_the_checked_in_allowlist() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let hits = scan_workspace(root).expect("scan");
        let allow_text =
            std::fs::read_to_string(root.join("lint_determinism.allow")).expect("allowlist");
        let allow = Allowlist::parse(&allow_text).expect("parses");
        let res = check(hits, &allow);
        assert!(
            res.violations.is_empty(),
            "unallowlisted determinism hazards:\n{}",
            res.violations
                .iter()
                .map(|h| h.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            res.stale.is_empty(),
            "stale allowlist entries: {:?}",
            res.stale
        );
        assert!(!res.allowed.is_empty(), "the audited sites should match");
    }
}
