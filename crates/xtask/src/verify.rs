//! The declarative determinism-verification matrix behind `cargo run -p
//! xtask --bin verify_matrix`.
//!
//! CI's determinism job used to be a ~90-line shell pyramid: run each
//! experiment under every configuration axis, `diff` the transcripts, `diff`
//! the `_micros`-filtered metric dumps, `diff` the checked-in artifacts.
//! Every new experiment meant hand-expanding the pyramid. This module
//! replaces it with one table — [`cases`] says *what* is verified per
//! experiment, [`variants`] says *which* configuration axes exist — and the
//! `verify_matrix` binary executes the cross product. Adding an experiment
//! to the sweep is one [`CaseSpec`] line.
//!
//! Everything here is pure data and string transforms so it can be unit
//! tested without running a single experiment; process execution lives in
//! the binary.

/// What the matrix verifies for one experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseSpec {
    /// Short label used in output and scratch-file names (`e01`).
    pub name: &'static str,
    /// The `so-bench` binary to run with `--quick`.
    pub bin: &'static str,
    /// Checked-in transcript the baseline run must match byte-for-byte.
    pub artifact: Option<&'static str>,
    /// The experiment exercises instrumented code: require nonempty trace
    /// and metrics files from the traced variants and compare the
    /// `_micros`-filtered metric dumps across thread counts. (E1 drives the
    /// raw mechanisms, not the instrumented engine, and emits neither.)
    pub expect_obs: bool,
    /// Also run under `SO_COMPACT_THRESHOLD=1` and require that lines
    /// containing this needle survive unchanged (compaction may relayout
    /// segments — and the log narrates them — but must never change a
    /// workload answer).
    pub compaction_grep: Option<&'static str>,
    /// Only verify that the experiment produces a nonempty `SO_METRICS`
    /// dump (the E17 smoke); skip the transcript sweep.
    pub metrics_smoke_only: bool,
}

/// The matrix: every experiment CI verifies, and how.
pub const fn cases() -> &'static [CaseSpec] {
    const NONE: CaseSpec = CaseSpec {
        name: "",
        bin: "",
        artifact: None,
        expect_obs: false,
        compaction_grep: None,
        metrics_smoke_only: false,
    };
    &[
        CaseSpec {
            name: "e01",
            bin: "exp_e01_exhaustive_reconstruction",
            ..NONE
        },
        CaseSpec {
            name: "e16",
            bin: "exp_e16_workload_lint",
            expect_obs: true,
            ..NONE
        },
        CaseSpec {
            name: "e18",
            bin: "exp_e18_query_matrix",
            artifact: Some("experiments/e18_transcript.txt"),
            expect_obs: true,
            ..NONE
        },
        CaseSpec {
            name: "e19",
            bin: "exp_e19_incremental",
            artifact: Some("experiments/e19_transcript.txt"),
            expect_obs: true,
            compaction_grep: Some("workload"),
            ..NONE
        },
        CaseSpec {
            name: "e20",
            bin: "exp_e20_service_attack",
            artifact: Some("experiments/e20_transcript.txt"),
            expect_obs: true,
            ..NONE
        },
        CaseSpec {
            name: "e21",
            bin: "exp_e21_flight_recorder",
            artifact: Some("experiments/e21_transcript.txt"),
            expect_obs: true,
            ..NONE
        },
        CaseSpec {
            name: "e17",
            bin: "exp_e17_observability",
            metrics_smoke_only: true,
            ..NONE
        },
    ]
}

/// One configuration-axis variant of a case run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Scratch-file label (`unpacked_t8`).
    pub label: &'static str,
    /// Environment to set on top of a scrubbed `SO_*` environment.
    pub env: &'static [(&'static str, &'static str)],
    /// Attach `SO_TRACE` / `SO_METRICS` files to the run.
    pub traced: bool,
}

/// The first variant is the baseline every other transcript is diffed
/// against. `t8_again` repeats an identical configuration so flaky
/// nondeterminism (map iteration, racy accumulation) can't hide behind
/// "different config, different output".
pub const fn variants() -> &'static [Variant] {
    &[
        Variant {
            label: "t1",
            env: &[("SO_THREADS", "1")],
            traced: false,
        },
        Variant {
            label: "t8",
            env: &[("SO_THREADS", "8")],
            traced: false,
        },
        Variant {
            label: "t8_again",
            env: &[("SO_THREADS", "8")],
            traced: false,
        },
        Variant {
            label: "unpacked_t1",
            env: &[("SO_THREADS", "1"), ("SO_STORAGE", "unpacked")],
            traced: false,
        },
        Variant {
            label: "unpacked_t8",
            env: &[("SO_THREADS", "8"), ("SO_STORAGE", "unpacked")],
            traced: false,
        },
        Variant {
            label: "morsel_t8",
            env: &[("SO_THREADS", "8"), ("SO_SCHEDULE", "morsel")],
            traced: false,
        },
        Variant {
            label: "flight4_t8",
            env: &[("SO_THREADS", "8"), ("SO_FLIGHT_CAP", "4")],
            traced: false,
        },
        Variant {
            label: "traced_t1",
            env: &[("SO_THREADS", "1")],
            traced: true,
        },
        Variant {
            label: "traced_t8",
            env: &[("SO_THREADS", "8")],
            traced: true,
        },
    ]
}

/// The extra variant for cases with a [`CaseSpec::compaction_grep`].
pub const COMPACTION_VARIANT: Variant = Variant {
    label: "compact1_t8",
    env: &[("SO_THREADS", "8"), ("SO_COMPACT_THRESHOLD", "1")],
    traced: false,
};

/// Drops every line containing `_micros` — the wall-clock histograms are
/// export-only and exempt from cross-configuration equality.
pub fn filter_micros(text: &str) -> String {
    filter_lines(text, |line| !line.contains("_micros"))
}

/// Keeps only lines containing `needle` (the compaction-variant compare).
pub fn filter_containing(text: &str, needle: &str) -> String {
    filter_lines(text, |line| line.contains(needle))
}

fn filter_lines(text: &str, keep: impl Fn(&str) -> bool) -> String {
    let mut out = String::new();
    for line in text.lines().filter(|l| keep(l)) {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Where two texts first disagree, for a useful failure message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Difference {
    /// 1-based line number of the first disagreement.
    pub line: usize,
    /// That line in the left text (empty when the left ran out).
    pub left: String,
    /// That line in the right text (empty when the right ran out).
    pub right: String,
}

impl std::fmt::Display for Difference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}:\n  - {}\n  + {}",
            self.line, self.left, self.right
        )
    }
}

/// `None` when the texts are byte-identical, else the first differing line.
pub fn first_difference(left: &str, right: &str) -> Option<Difference> {
    if left == right {
        return None;
    }
    let mut l = left.lines();
    let mut r = right.lines();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        match (l.next(), r.next()) {
            (Some(a), Some(b)) if a == b => continue,
            (a, b) => {
                return Some(Difference {
                    line: lineno,
                    left: a.unwrap_or("").to_owned(),
                    right: b.unwrap_or("").to_owned(),
                });
            }
        }
    }
}

/// Environment variables that steer the engines; every run starts from a
/// scrubbed slate so the invoking shell can't leak configuration into a
/// variant.
pub const SO_ENV_VARS: [&str; 8] = [
    "SO_THREADS",
    "SO_STORAGE",
    "SO_SCHEDULE",
    "SO_COMPACT_THRESHOLD",
    "SO_TRACE",
    "SO_METRICS",
    "SO_FLIGHT_CAP",
    "SO_SLOWLOG_MICROS",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_case_table_is_well_formed() {
        let cases = cases();
        assert!(cases.len() >= 6);
        let mut names: Vec<&str> = cases.iter().map(|c| c.name).collect();
        names.sort_unstable();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup, "case names must be unique");
        for c in cases {
            assert!(c.bin.starts_with("exp_"), "{}: odd binary name", c.name);
            if let Some(a) = c.artifact {
                assert!(
                    a.starts_with("experiments/") && a.ends_with(".txt"),
                    "{}: artifact path {a} out of convention",
                    c.name
                );
            }
            if c.metrics_smoke_only {
                assert!(c.artifact.is_none() && c.compaction_grep.is_none());
            }
        }
        // Every experiment with a checked-in transcript must be swept.
        for name in ["e18", "e19", "e20", "e21"] {
            let c = cases.iter().find(|c| c.name == name).expect(name);
            assert!(c.artifact.is_some(), "{name} lost its artifact check");
        }
    }

    #[test]
    fn the_variant_axes_cover_ci() {
        let vs = variants();
        assert_eq!(vs[0].label, "t1", "first variant is the baseline");
        // A repeated identical config guards against run-to-run flakiness.
        let t8: Vec<&Variant> = vs
            .iter()
            .filter(|v| v.env == [("SO_THREADS", "8")] && !v.traced)
            .collect();
        assert_eq!(t8.len(), 2, "need t8 and t8_again");
        assert!(vs
            .iter()
            .any(|v| v.env.contains(&("SO_STORAGE", "unpacked"))));
        assert!(vs
            .iter()
            .any(|v| v.env.contains(&("SO_SCHEDULE", "morsel"))));
        // The flight-recorder cap must be swept: transcripts may print the
        // cumulative total and newest few records, never anything
        // cap-shaped.
        assert!(vs.iter().any(|v| v.env.contains(&("SO_FLIGHT_CAP", "4"))));
        assert_eq!(vs.iter().filter(|v| v.traced).count(), 2);
        for v in vs {
            for (k, _) in v.env {
                assert!(SO_ENV_VARS.contains(k), "{k} missing from the scrub list");
            }
        }
        assert!(SO_ENV_VARS.contains(&COMPACTION_VARIANT.env[1].0));
    }

    #[test]
    fn micros_filter_drops_only_timing_lines() {
        let dump = "so_queries_total 5\nso_scan_micros_bucket{le=\"10\"} 3\nso_rows 9\n";
        assert_eq!(filter_micros(dump), "so_queries_total 5\nso_rows 9\n");
        assert_eq!(filter_containing(dump, "rows"), "so_rows 9\n");
    }

    #[test]
    fn first_difference_reports_the_right_line() {
        assert_eq!(first_difference("a\nb\n", "a\nb\n"), None);
        let d = first_difference("a\nb\nc\n", "a\nX\nc\n").expect("differs");
        assert_eq!((d.line, d.left.as_str(), d.right.as_str()), (2, "b", "X"));
        // Length mismatch: the missing side reads as empty.
        let d = first_difference("a\n", "a\nb\n").expect("differs");
        assert_eq!((d.line, d.left.as_str(), d.right.as_str()), (2, "", "b"));
        // Same lines, different trailing whitespace is still a difference.
        assert!(first_difference("a", "a\n").is_some() || "a" == "a\n");
    }
}
