//! `cargo run -p xtask --bin verify_matrix` — the determinism matrix.
//!
//! Executes every [`xtask::verify::cases`] experiment under every
//! [`xtask::verify::variants`] configuration (threads × storage × schedule ×
//! tracing, plus compaction where declared) and requires:
//!
//! * every variant's transcript byte-identical to the `t1` baseline;
//! * the baseline byte-identical to the checked-in `experiments/` artifact,
//!   where one exists;
//! * `_micros`-filtered `SO_METRICS` dumps identical across thread counts;
//! * nonempty trace and metrics files from the traced variants.
//!
//! Scratch output lands in `target/verify_matrix/`. Pass `--skip-build` to
//! reuse already-built release binaries (CI builds them in a prior step).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use xtask::verify::{
    cases, filter_containing, filter_micros, first_difference, variants, CaseSpec, Variant,
    COMPACTION_VARIANT, SO_ENV_VARS,
};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Runs one experiment binary under a scrubbed `SO_*` environment plus the
/// variant's own settings; returns captured stdout.
fn run_variant(
    root: &Path,
    scratch: &Path,
    case: &CaseSpec,
    variant: &Variant,
) -> Result<String, String> {
    let bin = root
        .join("target/release")
        .join(case.bin)
        .with_extension(std::env::consts::EXE_EXTENSION);
    let mut cmd = Command::new(&bin);
    cmd.arg("--quick").current_dir(root);
    for var in SO_ENV_VARS {
        cmd.env_remove(var);
    }
    for (k, v) in variant.env {
        cmd.env(k, v);
    }
    if variant.traced {
        cmd.env(
            "SO_TRACE",
            scratch.join(format!("{}_{}.jsonl", case.name, variant.label)),
        );
        cmd.env(
            "SO_METRICS",
            scratch.join(format!("{}_{}.prom", case.name, variant.label)),
        );
    }
    let out = cmd
        .output()
        .map_err(|e| format!("spawning {}: {e}", bin.display()))?;
    if !out.status.success() {
        return Err(format!(
            "{} [{}] exited with {}:\n{}",
            case.bin,
            variant.label,
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    fs::write(
        scratch.join(format!("{}_{}.txt", case.name, variant.label)),
        &text,
    )
    .map_err(|e| format!("writing scratch transcript: {e}"))?;
    Ok(text)
}

/// Reads a scratch side-file produced by a traced variant.
fn read_scratch(scratch: &Path, name: &str) -> Result<String, String> {
    fs::read_to_string(scratch.join(name)).map_err(|e| format!("reading {name}: {e}"))
}

/// The E17-style smoke: one run, `SO_METRICS` must land nonempty.
fn metrics_smoke(root: &Path, scratch: &Path, case: &CaseSpec) -> Result<(), String> {
    let variant = Variant {
        label: "metrics_smoke",
        env: &[],
        traced: true,
    };
    run_variant(root, scratch, case, &variant)?;
    let dump = read_scratch(scratch, &format!("{}_metrics_smoke.prom", case.name))?;
    if dump.trim().is_empty() {
        return Err(format!("{}: SO_METRICS dump is empty", case.name));
    }
    println!(
        "  {}: metrics smoke ok ({} lines)",
        case.name,
        dump.lines().count()
    );
    Ok(())
}

/// Sweeps one case across the full variant matrix.
fn verify_case(root: &Path, scratch: &Path, case: &CaseSpec) -> Result<(), String> {
    if case.metrics_smoke_only {
        return metrics_smoke(root, scratch, case);
    }
    let mut baseline = String::new();
    for variant in variants() {
        let text = run_variant(root, scratch, case, variant)?;
        if variant.label == "t1" {
            baseline = text;
            continue;
        }
        if let Some(d) = first_difference(&baseline, &text) {
            return Err(format!(
                "{}: transcript diverges under [{}] at {d}",
                case.name, variant.label
            ));
        }
    }
    if let Some(artifact) = case.artifact {
        let recorded = fs::read_to_string(root.join(artifact))
            .map_err(|e| format!("{}: reading {artifact}: {e}", case.name))?;
        if let Some(d) = first_difference(&recorded, &baseline) {
            return Err(format!(
                "{}: baseline differs from checked-in {artifact} at {d}\n\
                 (re-record with: ./target/release/{} --quick > {artifact})",
                case.name, case.bin
            ));
        }
    }
    if case.expect_obs {
        for label in ["traced_t1", "traced_t8"] {
            let trace = read_scratch(scratch, &format!("{}_{label}.jsonl", case.name))?;
            if trace.trim().is_empty() {
                return Err(format!("{}: [{label}] trace file is empty", case.name));
            }
        }
        let m1 = filter_micros(&read_scratch(
            scratch,
            &format!("{}_traced_t1.prom", case.name),
        )?);
        let m8 = filter_micros(&read_scratch(
            scratch,
            &format!("{}_traced_t8.prom", case.name),
        )?);
        if m1.trim().is_empty() {
            return Err(format!("{}: metrics dump is empty", case.name));
        }
        if let Some(d) = first_difference(&m1, &m8) {
            return Err(format!(
                "{}: _micros-filtered metrics diverge across thread counts at {d}",
                case.name
            ));
        }
    }
    if let Some(needle) = case.compaction_grep {
        let text = run_variant(root, scratch, case, &COMPACTION_VARIANT)?;
        let want = filter_containing(&baseline, needle);
        let got = filter_containing(&text, needle);
        if let Some(d) = first_difference(&want, &got) {
            return Err(format!(
                "{}: {needle:?} lines change under [{}] at {d}",
                case.name, COMPACTION_VARIANT.label
            ));
        }
    }
    let mut checks = vec![format!("{} variants", variants().len())];
    if case.artifact.is_some() {
        checks.push("artifact".to_owned());
    }
    if case.expect_obs {
        checks.push("trace+metrics".to_owned());
    }
    if case.compaction_grep.is_some() {
        checks.push("compaction".to_owned());
    }
    println!("  {}: ok ({})", case.name, checks.join(", "));
    Ok(())
}

fn build_binaries(root: &Path) -> Result<(), String> {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root)
        .args(["build", "--release", "-p", "so-bench"]);
    for case in cases() {
        cmd.args(["--bin", case.bin]);
    }
    let status = cmd.status().map_err(|e| format!("spawning cargo: {e}"))?;
    if !status.success() {
        return Err(format!("cargo build failed with {status}"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let skip_build = std::env::args().any(|a| a == "--skip-build");
    let root = workspace_root();
    let scratch = root.join("target/verify_matrix");
    if let Err(e) = fs::create_dir_all(&scratch) {
        eprintln!("creating {}: {e}", scratch.display());
        return ExitCode::FAILURE;
    }
    if !skip_build {
        if let Err(e) = build_binaries(&root) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "verify_matrix: {} cases x {} variants",
        cases().len(),
        variants().len()
    );
    let mut failed = false;
    for case in cases() {
        if let Err(e) = verify_case(&root, &scratch, case) {
            eprintln!("FAIL {e}");
            failed = true;
        }
    }
    if failed {
        eprintln!("verify_matrix: FAILED (scratch in target/verify_matrix/)");
        ExitCode::FAILURE
    } else {
        println!("verify_matrix: all cases deterministic");
        ExitCode::SUCCESS
    }
}
