//! The determinism lint: scans every workspace crate for wall-clock reads,
//! ambient randomness, and hash-order iteration that could leak
//! nondeterminism into transcript-feeding paths (see the `xtask` crate docs
//! for the rules). Audited sites live in `lint_determinism.allow` at the
//! repository root; unallowlisted hits and stale entries both exit nonzero.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Under `cargo run` the manifest dir is crates/xtask; the workspace
    // root is two levels up. Fall back to the current directory.
    let root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|m| {
            let mut p = PathBuf::from(m);
            p.pop();
            p.pop();
            p
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let hits = match xtask::scan_workspace(&root) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("lint_determinism: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let allow_path = root.join("lint_determinism.allow");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allow = match xtask::Allowlist::parse(&allow_text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lint_determinism: {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };

    let res = xtask::check(hits, &allow);
    for v in &res.violations {
        println!("VIOLATION {v}");
    }
    for s in &res.stale {
        println!(
            "STALE allowlist entry matches nothing: {} {} ({})",
            s.rule, s.path, s.justification
        );
    }
    println!(
        "lint_determinism: {} violation(s), {} allowlisted site(s), {} stale entr(ies)",
        res.violations.len(),
        res.allowed.len(),
        res.stale.len()
    );
    if res.violations.is_empty() && res.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
