//! Criterion benches for sharded multi-threaded plan execution.
//!
//! The `shard_scaling` group records the thread-scaling curve of
//! [`so_plan::ParallelExecutor`]: the E1-shaped batch of 1 000 overlapping
//! conjunction queries executed at 1, 2, 4, and 8 worker threads over
//! 100 000 and 1 000 000 rows. Before timing anything, every configuration
//! is asserted **bit-identical** to the serial [`so_plan::QueryPlan`] path —
//! the curve measures throughput of a computation whose output cannot vary
//! with the thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use so_data::{AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value};
use so_plan::workload::{Noise, WorkloadSpec};
use so_plan::{NodeCache, ParallelExecutor, QueryPlan};
use so_query::predicate::{AllRowPredicate, IntRangePredicate, ValueEqualsPredicate};

const N_QUERIES: usize = 1_000;

fn dataset(n: usize) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..n {
        b.push_row(vec![
            Value::Int((i * 37 % 90) as i64),
            Value::Int((i % 25) as i64),
        ]);
    }
    b.finish()
}

/// The E1-shaped workload of `bench_workload`: every query is
/// `age ∈ [lo, lo+9] ∧ dept = d` over 40 decades × 25 departments, so the
/// batch shares 65 atoms and repeats conjunctions.
fn overlapping_spec(n_rows: usize) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new(n_rows);
    for q in 0..N_QUERIES {
        let lo = ((q % 40) * 2) as i64;
        let p = AllRowPredicate {
            parts: vec![
                Box::new(IntRangePredicate {
                    col: 0,
                    lo,
                    hi: lo + 9,
                }),
                Box::new(ValueEqualsPredicate {
                    col: 1,
                    value: Value::Int((q % 25) as i64),
                }),
            ],
        };
        spec.push_predicate(&p, Noise::Exact);
    }
    spec
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);

    for &n_rows in &[100_000usize, 1_000_000] {
        let ds = dataset(n_rows);
        let spec = overlapping_spec(n_rows);
        let plan = QueryPlan::from_spec(&spec);

        // Serial reference answers for the determinism pre-check.
        let mut serial_cache = NodeCache::new();
        let (serial, _) = plan.execute(spec.pool(), &ds, spec.evaluators(), &mut serial_cache);

        for &threads in &[1usize, 2, 4, 8] {
            let exec = ParallelExecutor::with_threads(threads);
            // Answers must be bit-identical to serial at every thread count
            // before we bother timing anything.
            let mut check = NodeCache::new();
            let (out, _) = exec.execute(&plan, spec.pool(), &ds, spec.evaluators(), &mut check);
            assert_eq!(
                out, serial,
                "parallel answers diverged at {n_rows} rows, {threads} threads"
            );

            let label = format!("{}k_rows_1k_queries", n_rows / 1_000);
            group.bench_function(BenchmarkId::new(label, format!("{threads}_threads")), |b| {
                b.iter(|| {
                    let mut cache = NodeCache::new();
                    let (outcomes, _) =
                        exec.execute(&plan, spec.pool(), &ds, spec.evaluators(), &mut cache);
                    outcomes.len()
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
