//! Criterion benches for the statistical-query engine.

use criterion::{criterion_group, criterion_main, Criterion};
use singling_out_core::game::DataModel;
use so_bench::models::wide_tabular_model;
use so_data::dist::RecordDistribution;
use so_data::rng::seeded_rng;
use so_data::{Dataset, DatasetBuilder, UniformBits};
use so_query::{
    count_dataset, count_dataset_scalar, select_dataset, select_dataset_scalar, BoundedNoiseSum,
    CountingEngine, IntRangePredicate, KeyedHashPredicate, Predicate, QueryAuditor, SubsetQuery,
    SubsetSumMechanism,
};

fn bench_subset_queries(c: &mut Criterion) {
    let n = 10_000usize;
    let mut rng = seeded_rng(1);
    let x = UniformBits::new(n).sample(&mut rng);
    let q = SubsetQuery::from_indices(n, &(0..n).step_by(2).collect::<Vec<_>>());
    c.bench_function("subset_sum_true_answer_10k", |b| {
        b.iter(|| q.true_answer(&x));
    });
    let mut mech = BoundedNoiseSum::new(x, 5.0, seeded_rng(2));
    c.bench_function("bounded_noise_answer_10k", |b| {
        b.iter(|| mech.answer(&q));
    });
}

fn bench_predicates(c: &mut Criterion) {
    let d = UniformBits::new(64);
    let mut rng = seeded_rng(3);
    let records = d.sample_n(10_000, &mut rng);
    let p = KeyedHashPredicate::new(7, 100, 0);
    c.bench_function("keyed_hash_predicate_10k_records", |b| {
        b.iter(|| records.iter().filter(|r| p.eval(*r)).count());
    });
}

fn sampled_dataset(n: usize, seed: u64) -> Dataset {
    let model = wide_tabular_model();
    let rows = model.sample_dataset(n, &mut seeded_rng(seed));
    let mut b = DatasetBuilder::from_parts(
        model.sampler().distribution().schema().clone(),
        (**model.sampler().interner()).clone(),
    );
    for r in &rows {
        b.push_row(r.clone());
    }
    b.finish()
}

fn bench_dataset_scan(c: &mut Criterion) {
    let ds = sampled_dataset(50_000, 4);
    let pred = IntRangePredicate {
        col: 1,
        lo: 1_000,
        hi: 20_000,
    };
    c.bench_function("count_dataset_range_50k_rows", |bch| {
        bch.iter(|| count_dataset(&ds, &pred));
    });
}

/// Bitmap column-scan kernels vs the row-at-a-time oracle at n = 100k.
fn bench_bitmap_vs_scalar(c: &mut Criterion) {
    let ds = sampled_dataset(100_000, 5);
    let pred = IntRangePredicate {
        col: 1,
        lo: 1_000,
        hi: 20_000,
    };
    let mut g = c.benchmark_group("count_range_100k");
    g.bench_function("bitmap", |b| b.iter(|| count_dataset(&ds, &pred)));
    g.bench_function("scalar", |b| b.iter(|| count_dataset_scalar(&ds, &pred)));
    g.finish();

    let mut g = c.benchmark_group("select_range_100k");
    g.bench_function("bitmap", |b| b.iter(|| select_dataset(&ds, &pred)));
    g.bench_function("scalar", |b| b.iter(|| select_dataset_scalar(&ds, &pred)));
    g.finish();
}

/// Repeated queries against the engine answer from the cached bitmap — a
/// popcount, no rescan.
fn bench_engine_cached(c: &mut Criterion) {
    let ds = sampled_dataset(100_000, 6);
    let pred = IntRangePredicate {
        col: 1,
        lo: 1_000,
        hi: 20_000,
    };
    // Disable trail retention: the bench loop issues millions of queries.
    let mut engine = CountingEngine::with_auditor(&ds, QueryAuditor::without_trail(None));
    engine.count(&pred); // warm the cache
    c.bench_function("counting_engine_cached_100k", |b| {
        b.iter(|| engine.count(&pred));
    });
}

criterion_group!(
    benches,
    bench_subset_queries,
    bench_predicates,
    bench_dataset_scan,
    bench_bitmap_vs_scalar,
    bench_engine_cached
);
criterion_main!(benches);
