//! Criterion benches for the statistical-query engine.

use criterion::{criterion_group, criterion_main, Criterion};
use singling_out_core::game::DataModel;
use so_bench::models::wide_tabular_model;
use so_data::dist::RecordDistribution;
use so_data::rng::seeded_rng;
use so_data::{DatasetBuilder, UniformBits};
use so_query::{
    count_dataset, BoundedNoiseSum, IntRangePredicate, KeyedHashPredicate, Predicate,
    SubsetQuery, SubsetSumMechanism,
};

fn bench_subset_queries(c: &mut Criterion) {
    let n = 10_000usize;
    let mut rng = seeded_rng(1);
    let x = UniformBits::new(n).sample(&mut rng);
    let q = SubsetQuery::from_indices(n, &(0..n).step_by(2).collect::<Vec<_>>());
    c.bench_function("subset_sum_true_answer_10k", |b| {
        b.iter(|| q.true_answer(&x));
    });
    let mut mech = BoundedNoiseSum::new(x, 5.0, seeded_rng(2));
    c.bench_function("bounded_noise_answer_10k", |b| {
        b.iter(|| mech.answer(&q));
    });
}

fn bench_predicates(c: &mut Criterion) {
    let d = UniformBits::new(64);
    let mut rng = seeded_rng(3);
    let records = d.sample_n(10_000, &mut rng);
    let p = KeyedHashPredicate::new(7, 100, 0);
    c.bench_function("keyed_hash_predicate_10k_records", |b| {
        b.iter(|| records.iter().filter(|r| p.eval(*r)).count());
    });
}

fn bench_dataset_scan(c: &mut Criterion) {
    let model = wide_tabular_model();
    let rows = model.sample_dataset(50_000, &mut seeded_rng(4));
    let mut b = DatasetBuilder::from_parts(
        model.sampler().distribution().schema().clone(),
        (**model.sampler().interner()).clone(),
    );
    for r in &rows {
        b.push_row(r.clone());
    }
    let ds = b.finish();
    let pred = IntRangePredicate {
        col: 1,
        lo: 1_000,
        hi: 20_000,
    };
    c.bench_function("count_dataset_range_50k_rows", |bch| {
        bch.iter(|| count_dataset(&ds, &pred));
    });
}

criterion_group!(benches, bench_subset_queries, bench_predicates, bench_dataset_scan);
criterion_main!(benches);
