//! Criterion benches for the DP mechanisms (Laplace vs geometric ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use so_data::rng::seeded_rng;
use so_dp::{
    noisy_histogram, sample_laplace, sample_two_sided_geometric, GeometricCount, LaplaceCount,
};

fn bench_samplers(c: &mut Criterion) {
    c.bench_function("sample_laplace", |b| {
        let mut rng = seeded_rng(1);
        b.iter(|| sample_laplace(1.0, &mut rng));
    });
    c.bench_function("sample_two_sided_geometric", |b| {
        let mut rng = seeded_rng(2);
        b.iter(|| sample_two_sided_geometric(0.5, &mut rng));
    });
}

fn bench_count_mechanisms(c: &mut Criterion) {
    c.bench_function("laplace_count_release", |b| {
        let mut rng = seeded_rng(3);
        let m = LaplaceCount::new(1.0);
        b.iter(|| m.release(100, &mut rng));
    });
    c.bench_function("geometric_count_release", |b| {
        let mut rng = seeded_rng(4);
        let m = GeometricCount::new(1.0);
        b.iter(|| m.release(100, &mut rng));
    });
    c.bench_function("noisy_histogram_200_buckets", |b| {
        let mut rng = seeded_rng(5);
        let counts: Vec<usize> = (0..200).collect();
        b.iter(|| noisy_histogram(&counts, 1.0, &mut rng));
    });
}

criterion_group!(benches, bench_samplers, bench_count_mechanisms);
criterion_main!(benches);
