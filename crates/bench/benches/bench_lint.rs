//! Criterion benches for the static workload linter: what `lint_workload`
//! costs on an honest cross-tab batch (the pass-everything common case) and
//! on the E18 attack batteries that exercise the matrix passes end to end
//! (cell partition, GF(2)/rational rank, tracker lattice search, covers).
//! No dataset is ever touched — the linter is purely structural, so these
//! numbers are the full admission-control overhead a gated engine adds per
//! workload.

use criterion::{criterion_group, criterion_main, Criterion};
use so_analyze::{lint_workload, LintConfig, Noise};
use so_bench::experiments::e18_query_matrix::{
    complement_tracker_spec, cycle_release_spec, honest_crosstab_spec, pred_tracker_trio,
};

fn bench_lint_cost(c: &mut Criterion) {
    let cfg = LintConfig::default();
    let mut group = c.benchmark_group("lint_cost");
    group.sample_size(10);

    // The honest path: a department × sex cross-tab over 10 000 rows under
    // pure DP. Every pass runs to completion and finds nothing.
    group.bench_function("honest_crosstab_dp_10k_rows", |b| {
        b.iter(|| {
            let mut w = honest_crosstab_spec(10_000, Noise::PureDp { epsilon: 0.5 });
            lint_workload(&mut w, &cfg).findings.len()
        });
    });

    // The rank fallback at its worst: 101 adjacent-pair queries with no
    // popcount gaps and no containments, so only the f64 elimination over
    // the 101-cell partition certifies full rational rank.
    group.bench_function("cycle_release_rank_101_queries", |b| {
        b.iter(|| {
            let mut w = cycle_release_spec(101, Noise::Exact);
            lint_workload(&mut w, &cfg).findings.len()
        });
    });

    // The tracker lattice under fire: the total plus 64 complements-of-one
    // derives every singleton, driving the BFS chain search and covers.
    group.bench_function("complement_tracker_64_queries", |b| {
        b.iter(|| {
            let mut w = complement_tracker_spec(64, Noise::Exact);
            lint_workload(&mut w, &cfg).findings.len()
        });
    });

    // Predicate lowering: the hash/bit-extract trio goes through NNF,
    // sign-cell refinement, and design-weight intervals before the chain.
    group.bench_function("pred_tracker_trio_lowering", |b| {
        b.iter(|| {
            let mut w = pred_tracker_trio(100, Noise::Exact);
            lint_workload(&mut w, &cfg).findings.len()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_lint_cost);
criterion_main!(benches);
