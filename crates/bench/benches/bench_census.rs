//! Criterion benches for the census pipeline (E12).

use criterion::{criterion_group, criterion_main, Criterion};
use so_census::{
    dp_tabulate_block, reconstruct_block, tabulate_block, CensusConfig, CensusData, DpTablesConfig,
    SolverBudget,
};
use so_data::rng::seeded_rng;

fn bench_census(c: &mut Criterion) {
    let census = CensusData::generate(
        &CensusConfig {
            n_blocks: 50,
            block_size_lo: 2,
            block_size_hi: 9,
            ..CensusConfig::default()
        },
        &mut seeded_rng(1),
    );
    c.bench_function("tabulate_50_blocks", |b| {
        b.iter(|| {
            (0..census.n_blocks())
                .map(|i| tabulate_block(census.block(i)).total)
                .sum::<usize>()
        });
    });
    let mut group = c.benchmark_group("reconstruct");
    group.sample_size(10);
    group.bench_function("solver_50_blocks", |b| {
        let tables: Vec<_> = (0..census.n_blocks())
            .map(|i| tabulate_block(census.block(i)))
            .collect();
        b.iter(|| {
            tables
                .iter()
                .filter(|t| reconstruct_block(t, &SolverBudget::default()).is_unique())
                .count()
        });
    });
    group.finish();
    c.bench_function("dp_tabulate_50_blocks", |b| {
        let mut rng = seeded_rng(2);
        b.iter(|| {
            (0..census.n_blocks())
                .map(|i| {
                    dp_tabulate_block(census.block(i), &DpTablesConfig { epsilon: 1.0 }, &mut rng)
                        .total
                })
                .sum::<usize>()
        });
    });
}

criterion_group!(benches, bench_census);
criterion_main!(benches);
