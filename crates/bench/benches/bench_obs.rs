//! Criterion bench for the observability layer itself: what the tentpole
//! instrumentation costs on the serving hot path. Four cases, all with
//! tracing *disabled* (the production default — no subscriber installed, so
//! spans reduce to one relaxed atomic load):
//!
//! * `disabled_span` — open + finish a span with no subscriber;
//! * `request_id_guard` — install/restore the thread-local correlation id;
//! * `flight_push` — one ring push of a fully-populated [`RequestRecord`];
//! * `labeled_counter` — resolve + increment a `{op, tenant}` counter
//!   (registry lookup under the global mutex: the most expensive per-request
//!   metric the server touches).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use so_serve::{FlightRecorder, RequestRecord};

fn record(i: u64) -> RequestRecord {
    RequestRecord {
        tenant: "bench".to_owned(),
        op: "workload".to_owned(),
        request_id: format!("bench-{i}"),
        outcome: "answered".to_owned(),
        codes: Vec::new(),
        evidence: String::new(),
        epsilon_spent: 0.1,
        rows_scanned: 256,
        cache_hits: 1,
        latency_micros: 120,
    }
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    group.bench_function("disabled_span", |b| {
        b.iter(|| {
            let span = so_obs::span(black_box("bench.span"));
            span.finish_with(&[]);
        });
    });

    group.bench_function("request_id_guard", |b| {
        b.iter(|| {
            let _g = so_obs::with_request_id(black_box("bench-1"));
            black_box(so_obs::current_request_id())
        });
    });

    group.bench_function("flight_push", |b| {
        let mut recorder = FlightRecorder::new(256);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            recorder.push(black_box(record(i)));
            recorder.total()
        });
    });

    group.bench_function("labeled_counter", |b| {
        b.iter(|| {
            so_serve::obs::serve_requests_by_op(black_box("workload"), black_box("bench")).inc();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
