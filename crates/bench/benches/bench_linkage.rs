//! Criterion benches for the re-identification attacks (E10, E11, E13).

use criterion::{criterion_group, criterion_main, Criterion};
use so_data::population::{Population, PopulationConfig};
use so_data::ratings::{RatingsConfig, RatingsData};
use so_data::rng::seeded_rng;
use so_linkage::membership::{membership_advantage, MembershipExperiment};
use so_linkage::narayanan::{deanonymize, NarayananConfig};
use so_linkage::quasi::uniqueness_fraction;
use so_linkage::sweeney::link_releases;

fn bench_sweeney(c: &mut Criterion) {
    let pop = Population::generate(
        &PopulationConfig {
            n: 20_000,
            ..PopulationConfig::default()
        },
        &mut seeded_rng(1),
    );
    let med = pop.medical_release();
    let voters = pop.voter_registry();
    let mq: Vec<usize> = [0usize, 1, 2].to_vec();
    let vq: Vec<usize> = [1usize, 2, 3].to_vec();
    c.bench_function("sweeney_linkage_20k", |b| {
        b.iter(|| link_releases(&med, &mq, &voters, &vq, 0));
    });
    c.bench_function("uniqueness_analysis_20k", |b| {
        b.iter(|| uniqueness_fraction(pop.master(), &[1, 2, 3]));
    });
}

fn bench_narayanan(c: &mut Criterion) {
    let release = RatingsData::generate(
        &RatingsConfig {
            n_users: 2_000,
            n_titles: 3_000,
            ..RatingsConfig::default()
        },
        &mut seeded_rng(2),
    );
    let mut rng = seeded_rng(3);
    let aux = release.auxiliary_sample(17, 8, 3, &mut rng);
    c.bench_function("narayanan_scoreboard_2k_users", |b| {
        b.iter(|| deanonymize(&release, &aux, &NarayananConfig::default()));
    });
}

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    group.sample_size(10);
    group.bench_function("homer_advantage_d1000_t20", |b| {
        b.iter(|| {
            membership_advantage(
                &MembershipExperiment {
                    d_attributes: 1_000,
                    trials: 20,
                    ..MembershipExperiment::default()
                },
                &mut seeded_rng(4),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sweeney, bench_narayanan, bench_membership);
criterion_main!(benches);
