//! Criterion benches for the reconstruction attacks (E1–E3), including the
//! LP-vs-least-squares decoder ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use so_data::dist::RecordDistribution;
use so_data::rng::seeded_rng;
use so_data::UniformBits;
use so_query::BoundedNoiseSum;
use so_recon::least_squares::{least_squares_reconstruct, LsqConfig};
use so_recon::{differencing_attack, exhaustive_reconstruct, lp_reconstruct};

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_reconstruction");
    group.sample_size(10);
    for &n in &[10usize, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = seeded_rng(1);
                let x = UniformBits::new(n).sample(&mut rng);
                let mut mech = BoundedNoiseSum::new(x, 1.0, seeded_rng(2));
                exhaustive_reconstruct(&mut mech, 1.0).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_decoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("decoder_ablation");
    group.sample_size(10);
    let n = 48usize;
    let alpha = 0.5 * (n as f64).sqrt();
    group.bench_function("lp_decode_n48", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(3);
            let x = UniformBits::new(n).sample(&mut rng);
            let mut mech = BoundedNoiseSum::new(x, alpha, seeded_rng(4));
            lp_reconstruct(&mut mech, 6 * n, &mut seeded_rng(5)).unwrap()
        });
    });
    group.bench_function("least_squares_n48", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(3);
            let x = UniformBits::new(n).sample(&mut rng);
            let mut mech = BoundedNoiseSum::new(x, alpha, seeded_rng(4));
            least_squares_reconstruct(&mut mech, 6 * n, &LsqConfig::default(), &mut seeded_rng(5))
        });
    });
    group.bench_function("least_squares_n512", |b| {
        let n = 512usize;
        let alpha = 0.5 * (n as f64).sqrt();
        b.iter(|| {
            let mut rng = seeded_rng(6);
            let x = UniformBits::new(n).sample(&mut rng);
            let mut mech = BoundedNoiseSum::new(x, alpha, seeded_rng(7));
            least_squares_reconstruct(&mut mech, 4 * n, &LsqConfig::default(), &mut seeded_rng(8))
        });
    });
    group.finish();
}

fn bench_differencing(c: &mut Criterion) {
    c.bench_function("differencing_attack_n500", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(9);
            let x = UniformBits::new(500).sample(&mut rng);
            let mut mech = so_query::ExactSum::new(x);
            differencing_attack(&mut mech)
        });
    });
}

criterion_group!(
    benches,
    bench_exhaustive,
    bench_decoders,
    bench_differencing
);
criterion_main!(benches);
