//! Criterion benches for the anonymizers (Mondrian vs Datafly ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use singling_out_core::game::DataModel;
use so_bench::models::{wide_model_hierarchies, wide_tabular_model, WIDE_QI_COLS};
use so_data::rng::seeded_rng;
use so_data::{Dataset, DatasetBuilder};
use so_kanon::{datafly_anonymize, mondrian_anonymize, DataflyConfig, MondrianConfig};

fn dataset(n: usize) -> Dataset {
    let model = wide_tabular_model();
    let rows = model.sample_dataset(n, &mut seeded_rng(1));
    let mut b = DatasetBuilder::from_parts(
        model.sampler().distribution().schema().clone(),
        (**model.sampler().interner()).clone(),
    );
    for r in &rows {
        b.push_row(r.clone());
    }
    b.finish()
}

fn bench_anonymizers(c: &mut Criterion) {
    let hier = wide_model_hierarchies();
    let mut group = c.benchmark_group("anonymizers");
    for &n in &[1_000usize, 5_000] {
        let ds = dataset(n);
        group.bench_with_input(BenchmarkId::new("mondrian_k5", n), &ds, |b, ds| {
            b.iter(|| mondrian_anonymize(ds, &WIDE_QI_COLS, &MondrianConfig { k: 5 }));
        });
        group.bench_with_input(BenchmarkId::new("datafly_k5", n), &ds, |b, ds| {
            b.iter(|| {
                datafly_anonymize(
                    ds,
                    &WIDE_QI_COLS,
                    &hier,
                    &DataflyConfig {
                        k: 5,
                        max_suppression_fraction: 0.05,
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_anonymizers);
criterion_main!(benches);
