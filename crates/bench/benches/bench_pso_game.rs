//! Criterion benches for the PSO security game (E5–E9 hot paths).

use criterion::{criterion_group, criterion_main, Criterion};
use singling_out_core::attackers::{KAnonClassAttacker, PrefixDescentAttacker};
use singling_out_core::game::{run_pso_game, BitModel, GameConfig};
use singling_out_core::mechanisms::{AdaptiveCountOracle, Anonymizer, KAnonMechanism};
use so_bench::models::{wide_tabular_model, WIDE_QI_COLS};
use so_data::rng::seeded_rng;
use so_kanon::MondrianConfig;

fn bench_composition_game(c: &mut Criterion) {
    let model = BitModel::uniform(64);
    c.bench_function("pso_game_composition_20_trials", |b| {
        b.iter(|| {
            run_pso_game(
                &model,
                &AdaptiveCountOracle::exact(18),
                &PrefixDescentAttacker,
                &GameConfig::new(100, 20),
                &mut seeded_rng(1),
            )
        });
    });
}

fn bench_kanon_game(c: &mut Criterion) {
    let model = wide_tabular_model();
    let mech = KAnonMechanism::new(
        &model,
        WIDE_QI_COLS.to_vec(),
        Anonymizer::Mondrian(MondrianConfig { k: 5 }),
    );
    let attacker = KAnonClassAttacker {
        dist: model.sampler().distribution().clone(),
        qi_cols: WIDE_QI_COLS.to_vec(),
        interner: model.sampler().interner().clone(),
    };
    let mut group = c.benchmark_group("pso_game_kanon");
    group.sample_size(10);
    group.bench_function("10_trials_n200", |b| {
        b.iter(|| {
            run_pso_game(
                &model,
                &mech,
                &attacker,
                &GameConfig::new(200, 10),
                &mut seeded_rng(2),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_composition_game, bench_kanon_game);
criterion_main!(benches);
