//! Criterion benches for the incremental engine's delta-repair path.
//!
//! The `incremental_scan` group records the cost of answering a counting
//! workload over a 1 000 000-row relation with ≤ 1 % of its rows mutated
//! (6 000 inserted through delta segments, 2 000 tombstoned), two ways:
//!
//! * `delta_repair` — steady state of [`so_query::IncrementalEngine`]: each
//!   iteration inserts one row and re-runs the workload, so only the open
//!   tail delta (≤ 1 024 rows) is rescanned; every frozen segment is a
//!   cache hit masked against its tombstones.
//! * `full_rescan` — the from-scratch baseline: the same workload executed
//!   over an immutable rebuild of the identical logical relation with a
//!   fresh node cache per iteration.
//!
//! Before timing, the incremental answers are asserted bit-identical to a
//! [`so_query::CountingEngine`] run over the rebuilt relation — repair
//! changes the cost of a scan, never its answer. Compaction is pushed out
//! of reach (threshold 1 000) so the timing isolates repair, not one-time
//! re-packing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use so_data::{
    AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, StorageEngine, Value,
    VersionedDataset,
};
use so_plan::shape::PredShape;
use so_plan::workload::{Noise, WorkloadSpec};
use so_plan::{NodeCache, ParallelExecutor, QueryPlan, SchedulePolicy};
use so_query::{CountingEngine, IncrementalEngine, QueryAuditor};

const N_ROWS: usize = 1_000_000;
const N_INSERTS: usize = 6_000;
const N_DELETES: usize = 2_000;
const N_QUERIES: usize = 50;

fn row(i: usize) -> Vec<Value> {
    vec![
        Value::Int((i * 37 % 90) as i64),
        Value::Int((i % 25) as i64),
    ]
}

fn base_dataset(engine: StorageEngine) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..N_ROWS {
        b.push_row(row(i));
    }
    b.finish_with_engine(engine)
}

/// The E1-shaped batch: every query is `age ∈ [lo, lo+9] ∧ dept = d`, so
/// the workload shares its atoms and timing is dominated by atom scans.
fn overlapping_spec(n_rows: usize) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new(n_rows);
    for q in 0..N_QUERIES {
        let lo = ((q % 40) * 2) as i64;
        let shape = PredShape::And(vec![
            PredShape::IntRange {
                col: 0,
                lo,
                hi: lo + 9,
            },
            PredShape::ValueEquals {
                col: 1,
                value: Value::Int((q % 25) as i64),
            },
        ]);
        spec.push_shape(&shape, Noise::Exact);
    }
    spec
}

/// Live indices tombstoned from the base region (all < `N_ROWS`).
fn deleted_live() -> Vec<usize> {
    (0..N_DELETES).map(|i| i * 400).collect()
}

/// Rebuilds the mutated logical relation as an immutable dataset: base
/// rows minus the tombstoned live indices, then the delta rows appended —
/// the exact live ordering `VersionedDataset` serves.
fn rebuilt_dataset(engine: StorageEngine) -> Dataset {
    let mut live: Vec<usize> = (0..N_ROWS).collect();
    for idx in deleted_live().into_iter().rev() {
        live.remove(idx);
    }
    let schema = Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in live {
        b.push_row(row(i));
    }
    for i in 0..N_INSERTS {
        b.push_row(row(N_ROWS + i));
    }
    b.finish_with_engine(engine)
}

fn bench_incremental_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_scan");
    group.sample_size(10);

    let engine = StorageEngine::Packed;
    let rebuilt = rebuilt_dataset(engine);
    for col in 0..rebuilt.n_cols() {
        let _ = rebuilt.packed_column(col);
    }
    let n_live = rebuilt.n_rows();
    let spec = overlapping_spec(n_live);
    let plan = QueryPlan::from_spec(&spec);

    // The from-scratch oracle every configuration must reproduce.
    let mut oracle_eng = CountingEngine::new(&rebuilt, None);
    let oracle = oracle_eng.execute_workload(&spec).answers;

    for &threads in &[1usize, 8] {
        // Incremental: 1M-row base + ≤1% mutations through the versioned
        // path, caches warmed by one pre-timing execution.
        let data = VersionedDataset::with_compact_threshold(base_dataset(engine), 1_000);
        let mut eng = IncrementalEngine::with_auditor(data, QueryAuditor::with_trail_cap(None, 64));
        eng.set_executor(ParallelExecutor::with_threads_and_policy(
            threads,
            SchedulePolicy::Auto,
        ));
        let inserts: Vec<Vec<Value>> = (0..N_INSERTS).map(|i| row(N_ROWS + i)).collect();
        eng.insert_rows(&inserts);
        eng.delete_live(&deleted_live());
        let answers = eng.execute_workload(&spec).answers;
        assert_eq!(
            answers, oracle,
            "incremental answers diverged from the rebuilt oracle at {threads} threads"
        );

        let mut next = 0usize;
        group.bench_function(
            BenchmarkId::new("delta_repair", format!("{threads}_threads")),
            |b| {
                b.iter(|| {
                    eng.insert_rows(std::slice::from_ref(&row(N_ROWS + N_INSERTS + next)));
                    next += 1;
                    eng.execute_workload(&spec).answers.len()
                });
            },
        );

        // Full rescan of the rebuilt relation, fresh cache per iteration.
        let exec = ParallelExecutor::with_threads_and_policy(threads, SchedulePolicy::Auto);
        group.bench_function(
            BenchmarkId::new("full_rescan", format!("{threads}_threads")),
            |b| {
                b.iter(|| {
                    let mut cache = NodeCache::new();
                    let (outcomes, _) =
                        exec.execute(&plan, spec.pool(), &rebuilt, spec.evaluators(), &mut cache);
                    outcomes.len()
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_incremental_scan);
criterion_main!(benches);
