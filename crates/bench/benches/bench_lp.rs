//! Criterion benches for the simplex solver (substrate of E2/E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use so_data::rng::seeded_rng;
use so_lp::{solve, Bound, Constraint, Objective, Problem, Relation, SolverConfig};

/// Builds an LP-decoding-shaped instance: n box variables, m residual
/// variables, 2m constraints.
fn decode_instance(n: usize, m: usize, seed: u64) -> Problem {
    let mut rng = seeded_rng(seed);
    let x: Vec<f64> = (0..n)
        .map(|_| f64::from(u8::from(rng.gen::<bool>())))
        .collect();
    let mut p = Problem::new(n + m, Objective::Minimize);
    for i in 0..n {
        p.set_bound(i, Bound::between(0.0, 1.0));
    }
    for j in 0..m {
        let e = n + j;
        p.set_objective_coeff(e, 1.0);
        let members: Vec<usize> = (0..n).filter(|_| rng.gen::<bool>()).collect();
        let a: f64 = members.iter().map(|&i| x[i]).sum::<f64>() + rng.gen_range(-2.0..2.0);
        let mut le: Vec<(usize, f64)> = members.iter().map(|&i| (i, 1.0)).collect();
        le.push((e, -1.0));
        p.add_constraint(Constraint::new(le, Relation::Le, a));
        let mut ge: Vec<(usize, f64)> = members.iter().map(|&i| (i, 1.0)).collect();
        ge.push((e, 1.0));
        p.add_constraint(Constraint::new(ge, Relation::Ge, a));
    }
    p
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_lp_decode_shape");
    group.sample_size(10);
    for &(n, m) in &[(16usize, 64usize), (32, 128)] {
        let p = decode_instance(n, m, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &p,
            |b, p| {
                b.iter(|| solve(p, &SolverConfig::default()).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);
