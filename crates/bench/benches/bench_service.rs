//! Criterion bench for the serving layer: end-to-end request throughput of
//! the framed wire protocol over real loopback sockets. Each iteration
//! boots nothing — a multi-tenant [`so_serve`] instance is spawned once per
//! case — and times N concurrent tenant sessions each submitting a fixed
//! batch of subset-count workloads through its own TCP connection. Divide
//! requests-per-iteration (stated in the transcript commentary) by the
//! reported time for requests/sec; the 1→4→8 curve shows how the bounded
//! worker pool multiplexes tenants.

use criterion::{criterion_group, criterion_main, Criterion};
use so_plan::workload::Noise;
use so_serve::{spawn, Response, ServerConfig, ServiceClient, TenantConfig, WireQuery};

/// Rows per tenant dataset (kept small: this bench times the wire, the
/// worker pool, and the engine dispatch — not a large scan).
const N_ROWS: usize = 256;

/// Workload requests each session submits per iteration.
const REQUESTS_PER_SESSION: usize = 50;

fn tenant_name(i: usize) -> String {
    format!("tenant{i}")
}

/// One tenant session: connect, `hello`, then the full request batch.
/// Returns a checksum so the transfers cannot be optimized away.
fn run_session(addr: std::net::SocketAddr, tenant: usize) -> f64 {
    let mut client = ServiceClient::connect(addr).expect("connect");
    client.hello(&tenant_name(tenant)).expect("hello");
    let mut acc = 0.0;
    for r in 0..REQUESTS_PER_SESSION {
        let members: Vec<usize> = (0..N_ROWS).filter(|x| (x + r) % 2 == 0).collect();
        let queries = vec![WireQuery::Subset(members)];
        match client.workload(queries, Noise::Exact).expect("workload") {
            Response::Answers { answers } => acc += answers[0],
            other => panic!("expected answers, got {other:?}"),
        }
    }
    acc
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    for tenants in [1usize, 4, 8] {
        let configs: Vec<TenantConfig> = (0..tenants)
            .map(|i| TenantConfig::ungated(&tenant_name(i), N_ROWS, 0xBE_7C + i as u64))
            .collect();
        let server = spawn(
            configs,
            ServerConfig {
                workers: tenants,
                ..ServerConfig::default()
            },
            None,
        )
        .expect("server boots");
        let addr = server.local_addr();
        group.bench_function(format!("{tenants}_tenants"), |b| {
            b.iter(|| {
                let sessions: Vec<std::thread::JoinHandle<f64>> = (0..tenants)
                    .map(|i| std::thread::spawn(move || run_session(addr, i)))
                    .collect();
                sessions
                    .into_iter()
                    .map(|h| h.join().expect("session thread"))
                    .sum::<f64>()
            });
        });
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
