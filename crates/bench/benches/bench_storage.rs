//! Criterion benches for the packed storage engine's scan path.
//!
//! The `storage_scan` group records the packed-vs-uncompressed scan curve:
//! an E1-shaped batch of overlapping conjunction queries executed over
//! 1 000 000 and 10 000 000 rows at 1, 2, 4, and 8 worker threads, once per
//! [`so_data::StorageEngine`]. Before timing anything, every configuration
//! is asserted **bit-identical** to the uncompressed single-thread oracle —
//! the packed engine's admission ticket is that it changes the cost of a
//! scan, never its answer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use so_data::{
    AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, StorageEngine, Value,
};
use so_plan::workload::{Noise, WorkloadSpec};
use so_plan::{NodeCache, ParallelExecutor, QueryPlan, SchedulePolicy};
use so_query::predicate::{AllRowPredicate, IntRangePredicate, ValueEqualsPredicate};

const N_QUERIES: usize = 200;

fn dataset(n: usize, engine: StorageEngine) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..n {
        b.push_row(vec![
            Value::Int((i * 37 % 90) as i64),
            Value::Int((i % 25) as i64),
        ]);
    }
    b.finish_with_engine(engine)
}

/// The E1-shaped workload of `bench_shard`, scaled down: every query is
/// `age ∈ [lo, lo+9] ∧ dept = d`, so the batch shares its 65 atoms and the
/// timing is dominated by the atom scans the storage engine serves.
fn overlapping_spec(n_rows: usize) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new(n_rows);
    for q in 0..N_QUERIES {
        let lo = ((q % 40) * 2) as i64;
        let p = AllRowPredicate {
            parts: vec![
                Box::new(IntRangePredicate {
                    col: 0,
                    lo,
                    hi: lo + 9,
                }),
                Box::new(ValueEqualsPredicate {
                    col: 1,
                    value: Value::Int((q % 25) as i64),
                }),
            ],
        };
        spec.push_predicate(&p, Noise::Exact);
    }
    spec
}

fn bench_storage_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_scan");
    group.sample_size(10);

    for &n_rows in &[1_000_000usize, 10_000_000] {
        let spec = overlapping_spec(n_rows);
        let plan = QueryPlan::from_spec(&spec);

        // Uncompressed serial answers are the oracle every engine × thread
        // configuration must reproduce bit-for-bit.
        let oracle_ds = dataset(n_rows, StorageEngine::Uncompressed);
        let mut oracle_cache = NodeCache::new();
        let (oracle, _) = plan.execute(
            spec.pool(),
            &oracle_ds,
            spec.evaluators(),
            &mut oracle_cache,
        );
        drop(oracle_cache);

        for engine in [StorageEngine::Uncompressed, StorageEngine::Packed] {
            let ds = dataset(n_rows, engine);
            // Warm the lazy packed segments so the timing loop measures
            // scans, not one-time packing.
            for col in 0..ds.n_cols() {
                let _ = ds.packed_column(col);
            }
            let label = format!("{}_{}m_rows", engine.name(), n_rows / 1_000_000);

            for &threads in &[1usize, 2, 4, 8] {
                let exec = ParallelExecutor::with_threads_and_policy(threads, SchedulePolicy::Auto);
                let mut check = NodeCache::new();
                let (out, _) = exec.execute(&plan, spec.pool(), &ds, spec.evaluators(), &mut check);
                assert_eq!(
                    out, oracle,
                    "{engine:?} diverged from the oracle at {n_rows} rows, {threads} threads"
                );
                drop(check);

                group.bench_function(
                    BenchmarkId::new(&label, format!("{threads}_threads")),
                    |b| {
                        b.iter(|| {
                            let mut cache = NodeCache::new();
                            let (outcomes, _) = exec.execute(
                                &plan,
                                spec.pool(),
                                &ds,
                                spec.evaluators(),
                                &mut cache,
                            );
                            outcomes.len()
                        });
                    },
                );
            }
        }
    }

    group.finish();
}

criterion_group!(benches, bench_storage_scan);
criterion_main!(benches);
