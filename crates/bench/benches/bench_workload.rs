//! Criterion benches for whole-workload planning.
//!
//! The headline comparison: an E1-shaped batch of 1 000 overlapping
//! conjunction queries over 100 000 rows, answered query-at-a-time with a
//! fresh scan per query (the pre-planner baseline) versus compiled into one
//! `QueryPlan` whose hash-consed shared subexpressions are scanned once and
//! combined with word-level bitmap operations.

use criterion::{criterion_group, criterion_main, Criterion};
use so_data::{AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value};
use so_plan::workload::{Noise, WorkloadSpec};
use so_query::predicate::{AllRowPredicate, IntRangePredicate, RowPredicate, ValueEqualsPredicate};
use so_query::CountingEngine;

const N_ROWS: usize = 100_000;
const N_QUERIES: usize = 1_000;

fn dataset(n: usize) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..n {
        b.push_row(vec![
            Value::Int((i * 37 % 90) as i64),
            Value::Int((i % 25) as i64),
        ]);
    }
    b.finish()
}

/// The E1-shaped workload: every query is `age ∈ [lo, lo+9] ∧ dept = d`,
/// cycling through 40 distinct age decades and 25 departments, so the 1 000
/// queries share 65 atoms between them and repeat each conjunction.
fn overlapping_queries(n_queries: usize) -> Vec<AllRowPredicate> {
    (0..n_queries)
        .map(|q| {
            let lo = ((q % 40) * 2) as i64;
            AllRowPredicate {
                parts: vec![
                    Box::new(IntRangePredicate {
                        col: 0,
                        lo,
                        hi: lo + 9,
                    }),
                    Box::new(ValueEqualsPredicate {
                        col: 1,
                        value: Value::Int((q % 25) as i64),
                    }),
                ],
            }
        })
        .collect()
}

fn bench_workload_planning(c: &mut Criterion) {
    let ds = dataset(N_ROWS);
    let queries = overlapping_queries(N_QUERIES);

    let mut group = c.benchmark_group("workload_planning");
    group.sample_size(10);

    // Baseline: one fresh scan per query, no sharing — what a query-at-a-time
    // loop over `p.scan(ds)` costs.
    group.bench_function("query_at_a_time_100k_rows_1k_queries", |b| {
        b.iter(|| queries.iter().map(|p| p.scan(&ds).count()).sum::<usize>());
    });

    // Planned: the whole batch through `execute_workload` — hash-consing
    // dedups repeated conjunctions, shared atoms are scanned once, and every
    // conjunction is a word-level AND over cached bitmaps.
    group.bench_function("execute_workload_100k_rows_1k_queries", |b| {
        b.iter(|| {
            let mut spec = WorkloadSpec::new(ds.n_rows());
            for p in &queries {
                spec.push_predicate(p, Noise::Exact);
            }
            let mut engine = CountingEngine::new(&ds, None);
            engine.execute_workload(&spec).answers.len()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_workload_planning);
criterion_main!(benches);
