//! Process-isolated check of E17's registry cross-check: with no concurrent
//! registry publishers (this file holds exactly one test), every cost-profile
//! row's `local` cell must equal its `registry delta` cell — the acceptance
//! bar that the metrics the table reports match `PlanStats` exactly.

use so_bench::experiments::e17_observability;
use so_bench::Scale;

#[test]
fn e17_local_and_registry_columns_match_exactly() {
    let tables = e17_observability::run(Scale::Quick);
    let csv = tables[0].to_csv();
    let mut rows = 0;
    for line in csv.lines().skip(2) {
        let cells: Vec<&str> = line.split(',').collect();
        assert_eq!(cells.len(), 5, "bad row {line:?}");
        let (metric, local, delta, matched) = (cells[1], cells[2], cells[3], cells[4]);
        assert_eq!(local, delta, "{metric}: local != registry delta");
        assert_eq!(matched, "yes", "{metric}: match column disagrees");
        rows += 1;
    }
    assert_eq!(rows, 10, "expected the full cost profile:\n{csv}");

    let cell = |metric: &str| -> f64 {
        csv.lines()
            .find(|l| l.contains(metric))
            .unwrap_or_else(|| panic!("missing row {metric}"))
            .split(',')
            .nth(2)
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(cell("atom scans") > 0.0, "scan metric must be nonzero");
    assert!(cell("cache hits") > 0.0, "cache-hit metric must be nonzero");
    assert!(
        cell("epsilon spent") > 0.0,
        "epsilon metric must be nonzero"
    );
}
