//! Structural checks for the recorded `bench_output.txt` artifact.
//!
//! The file is a hand-recorded bench transcript; nothing regenerates it
//! automatically, so it drifts. This module parses the artifact's structure
//! — `id  time: [lo mid hi]` estimate lines and `#` comment blocks — and the
//! `check_bench_output` binary fails CI's bench-smoke job when the recorded
//! file stops matching what the benches actually emit (missing groups,
//! malformed timings, or a stale hardware caveat).

/// One parsed `time: [lo mid hi]` estimate line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTiming {
    /// The benchmark id (first whitespace-delimited token of the line).
    pub id: String,
    /// Midpoint estimate in nanoseconds.
    pub mid_ns: f64,
}

/// Parsed view of a recorded bench transcript.
#[derive(Debug, Default)]
pub struct BenchReport {
    /// Every parsed timing, in file order.
    pub timings: Vec<BenchTiming>,
    /// Problems that make the artifact internally inconsistent.
    pub errors: Vec<String>,
}

/// Converts a magnitude suffix to nanoseconds.
fn to_ns(value: f64, unit: &str) -> Option<f64> {
    match unit {
        "ps" => Some(value * 1e-3),
        "ns" => Some(value),
        "µs" | "us" => Some(value * 1e3),
        "ms" => Some(value * 1e6),
        "s" => Some(value * 1e9),
        _ => None,
    }
}

/// Parses one `<id>  time: [lo u mid u hi u]  (...)` line; `None` when the
/// line has no `time:` marker (comments, blanks).
fn parse_time_line(line: &str) -> Option<Result<BenchTiming, String>> {
    let marker = line.find("time:")?;
    let id = line[..marker].trim();
    if id.is_empty() {
        return Some(Err(format!("timing with no benchmark id: {line:?}")));
    }
    let rest = line[marker + "time:".len()..].trim();
    let open = match rest.strip_prefix('[') {
        Some(open) => open,
        None => return Some(Err(format!("unbracketed time line: {line:?}"))),
    };
    let inner = match open.split(']').next() {
        Some(inner) => inner,
        None => return Some(Err(format!("unterminated time bracket: {line:?}"))),
    };
    let parts: Vec<&str> = inner.split_whitespace().collect();
    if parts.len() != 6 {
        return Some(Err(format!("expected 3 value/unit pairs: {line:?}")));
    }
    let mid: f64 = match parts[2].parse() {
        Ok(v) => v,
        Err(_) => return Some(Err(format!("bad midpoint {:?} in {line:?}", parts[2]))),
    };
    match to_ns(mid, parts[3]) {
        Some(mid_ns) => Some(Ok(BenchTiming {
            id: id.to_owned(),
            mid_ns,
        })),
        None => Some(Err(format!("unknown unit {:?} in {line:?}", parts[3]))),
    }
}

/// Parses a recorded bench transcript. Parse failures land in
/// [`BenchReport::errors`] rather than panicking, so the checker reports
/// every problem at once.
pub fn parse_bench_output(text: &str) -> BenchReport {
    let mut report = BenchReport::default();
    for line in text.lines() {
        if line.trim_start().starts_with('#') {
            continue;
        }
        if let Some(parsed) = parse_time_line(line) {
            match parsed {
                Ok(t) => report.timings.push(t),
                Err(e) => report.errors.push(e),
            }
        }
    }
    report
}

/// Bench groups the recorded artifact must cover.
pub const REQUIRED_GROUPS: [&str; 11] = [
    "subset_sum_true_answer",
    "count_range_100k",
    "select_range_100k",
    "counting_engine_cached",
    "workload_planning",
    "shard_scaling",
    "storage_scan",
    "incremental_scan",
    "lint_cost",
    "service_throughput",
    "obs_overhead",
];

/// Validates a recorded transcript: all `time:` lines parse, every required
/// group appears, timings are positive, and no stale single-core caveat
/// survives (the recording host's parallelism must be stated inline
/// instead). Returns the list of failures, empty on success.
pub fn check_bench_output(text: &str) -> Vec<String> {
    let report = parse_bench_output(text);
    let mut failures = report.errors;
    if report.timings.is_empty() {
        failures.push("no `time:` lines parsed".to_owned());
    }
    for t in &report.timings {
        if !(t.mid_ns > 0.0) {
            failures.push(format!("non-positive timing for {}", t.id));
        }
    }
    for group in REQUIRED_GROUPS {
        if !report.timings.iter().any(|t| t.id.starts_with(group)) {
            failures.push(format!("missing bench group {group}"));
        }
    }
    if text.contains("pinned to a SINGLE CPU core") {
        failures.push(
            "stale caveat: the artifact claims the host was pinned to one core; \
             state the recording host's parallelism and point at the CI bench \
             artifact for the multi-core curve instead"
                .to_owned(),
        );
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inline_time_lines() {
        let text = "\
# comment with time: [not parsed]
subset_sum_true_answer_10k   time:   [120.62 ns 122.37 ns 198.69 ns]  (20 samples x 44091 iters)
shard_scaling/100k/2_threads time:   [1.1545 ms 1.1959 ms 1.4618 ms]  (10 samples x 1 iters)
";
        let r = parse_bench_output(text);
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert_eq!(r.timings.len(), 2);
        assert_eq!(r.timings[0].id, "subset_sum_true_answer_10k");
        assert!((r.timings[0].mid_ns - 122.37).abs() < 1e-9);
        assert_eq!(r.timings[1].id, "shard_scaling/100k/2_threads");
        assert!((r.timings[1].mid_ns - 1.1959e6).abs() < 1e-3);
    }

    #[test]
    fn malformed_lines_are_reported_not_skipped() {
        let r = parse_bench_output("bench_x time: [garbage]\n");
        assert_eq!(r.timings.len(), 0);
        assert_eq!(r.errors.len(), 1, "{:?}", r.errors);
    }

    fn minimal_valid() -> String {
        REQUIRED_GROUPS
            .iter()
            .map(|g| format!("{g}/case  time: [1.0 ns 1.0 ns 1.0 ns]\n"))
            .collect()
    }

    #[test]
    fn stale_single_core_caveat_fails_the_check() {
        let mut text = minimal_valid();
        assert!(check_bench_output(&text).is_empty());
        text.push_str("# NOTE: host pinned to a SINGLE CPU core\n");
        let failures = check_bench_output(&text);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("stale caveat"));
    }

    #[test]
    fn missing_group_is_reported() {
        let failures = check_bench_output("only/one time: [1.0 ns 1.0 ns 1.0 ns]\n");
        assert!(failures.iter().any(|f| f.contains("missing bench group")));
    }

    #[test]
    fn recorded_artifact_passes() {
        let text = include_str!("../../../bench_output.txt");
        let failures = check_bench_output(text);
        assert!(
            failures.is_empty(),
            "bench_output.txt invalid:\n{failures:#?}"
        );
    }
}
