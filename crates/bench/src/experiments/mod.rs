//! One module per experiment of DESIGN.md §3.

pub mod e01_exhaustive_reconstruction;
pub mod e02_lp_reconstruction;
pub mod e03_fundamental_law;
pub mod e04_baseline_isolation;
pub mod e05_count_pso;
pub mod e06_composition_attack;
pub mod e07_dp_pso;
pub mod e08_kanon_pso;
pub mod e09_downcoding;
pub mod e10_sweeney_linkage;
pub mod e11_netflix;
pub mod e12_census;
pub mod e13_membership;
pub mod e14_utility;
pub mod e15_kanon_composition;
pub mod e16_workload_lint;
pub mod e17_observability;
pub mod e18_query_matrix;
pub mod e19_incremental;
pub mod e20_service_attack;
pub mod e21_flight_recorder;
pub mod lt_legal_verdicts;
