//! E4 — §2.2's trivial attacker and the 37% baseline.
//!
//! Two tables: (a) the isolation probability of a weight-`w` predicate as a
//! function of `n·w` — closed form vs Monte Carlo — peaking at `1/e` when
//! `w = 1/n`; (b) the paper's birthday example (`n = 365`, uniform dates,
//! one fixed date ⇒ ≈ 37%).

use singling_out_core::baseline::{baseline_isolation_probability, BaselineAttacker};
use singling_out_core::isolation::isolates;
use so_data::dist::{Categorical, RecordDistribution};
use so_data::rng::seeded_rng;
use so_data::UniformBits;

use crate::table::{prob, Table};
use crate::Scale;

/// Runs E4.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(4_000usize, 40_000);
    let n = 100usize;
    let d = UniformBits::new(64);
    let mut rng = seeded_rng(0xE404);

    let mut t1 = Table::new(
        "E4a: trivial-attacker isolation probability vs n*w (n = 100)",
        &[
            "n*w",
            "closed form n*w*(1-w)^(n-1)",
            "monte carlo",
            "|diff|",
        ],
    );
    for nw in [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let w = nw / n as f64;
        let closed = baseline_isolation_probability(n, w);
        let modulus = (1.0 / w).round() as u64;
        let attacker = BaselineAttacker { modulus };
        let mut hits = 0usize;
        for _ in 0..trials {
            let records = d.sample_n(n, &mut rng);
            let p = attacker.predicate(&mut rng);
            if isolates(&records, p.as_ref()) {
                hits += 1;
            }
        }
        let emp = hits as f64 / trials as f64;
        // The integer modulus shifts the effective weight slightly; compare
        // against the closed form at the *effective* weight.
        let eff = baseline_isolation_probability(n, 1.0 / modulus as f64);
        t1.row(vec![
            format!("{nw:.2}"),
            prob(closed),
            prob(emp),
            prob((emp - eff).abs()),
        ]);
    }

    // Birthday example: 365 people, uniform birthdays, predicate "born on
    // Apr-30".
    let mut t2 = Table::new(
        "E4b: the birthday example (n = 365, uniform dates, fixed-date predicate)",
        &["quantity", "value"],
    );
    let birthday_trials = scale.pick(10_000usize, 100_000);
    let dates = Categorical::uniform(365);
    let mut hits = 0usize;
    for _ in 0..birthday_trials {
        let sample = dates.sample_n(365, &mut rng);
        // The fixed date: index 119 (Apr-30 in a non-leap year).
        let count = sample.iter().filter(|&&d| d == 119).count();
        if count == 1 {
            hits += 1;
        }
    }
    let emp = hits as f64 / birthday_trials as f64;
    t2.row(vec![
        "closed form (paper: ≈ 37%)".into(),
        prob(baseline_isolation_probability(365, 1.0 / 365.0)),
    ]);
    t2.row(vec!["monte carlo".into(), prob(emp)]);
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_near_one_over_e_and_mc_matches() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        // Row with n*w = 1.00 is the peak.
        let peak: f64 = rows[2][1].parse().unwrap();
        assert!((peak - 0.3697).abs() < 0.01, "peak {peak}");
        for r in &rows {
            let diff: f64 = r[3].parse().unwrap();
            assert!(diff < 0.03, "MC deviates: {r:?}");
        }
        // Birthday table ≈ 0.37.
        let b = tables[1].to_csv();
        let mc: f64 = b
            .lines()
            .nth(3)
            .unwrap()
            .split(',')
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!((mc - 0.368).abs() < 0.03, "birthday {mc}");
    }
}
