//! E17 — observability: the `so-obs` cost profile of an attack/defence run.
//!
//! The Cohen–Nissim LP attack in the paper ran against an *instrumented*
//! production system; this experiment demonstrates the workspace's own
//! runtime ledger. Three phases replay representative workloads — the E2 LP
//! reconstruction, a tabular cross-tab served twice by the
//! [`CountingEngine`] (the replay makes the node cache visible), and a
//! Laplace release loop metered by a [`PrivacyAccountant`] — while the cost
//! profile table cross-checks each engine's locally tallied statistics
//! against the deltas the run produced in the [`so_obs::global`] metrics
//! registry. In a single-process run every row matches exactly; under
//! `cargo test` the registry is shared with concurrently running tests, so
//! only the `local` column is asserted there.
//!
//! Wall-clock per-phase timings are reported in a separate table printed to
//! *stderr* (the timing channel, like `run_all`'s phase timings) so that
//! stdout stays byte-identical across runs; every cost-profile cell on
//! stdout is a deterministic count.

use std::time::Instant;

use so_data::rng::seeded_rng;
use so_data::{AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value};
use so_dp::{LaplaceCount, PrivacyAccountant};
use so_query::{BoundedNoiseSum, CountingEngine};
use so_recon::{lp_reconstruct, reconstruction_accuracy};

use crate::experiments::e16_workload_lint::honest_crosstab;
use crate::table::Table;
use crate::Scale;

/// A deterministic dept × sex dataset (same shape as the E16 gatekeeper
/// demo) for the replay phase.
fn crosstab_dataset(n: usize) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("sex", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..n {
        b.push_row(vec![Value::Int((i % 5) as i64), Value::Int((i % 2) as i64)]);
    }
    b.finish()
}

/// Snapshot of the registry counters/gauges E17 cross-checks.
struct RegistrySnapshot {
    plan_queries: u64,
    plan_atom_scans: u64,
    plan_cache_hits: u64,
    plan_nodes: u64,
    lp_attacks: u64,
    lp_queries: u64,
    lp_iterations: u64,
    laplace_draws: u64,
    budget_refusals: u64,
    epsilon_spent: f64,
}

impl RegistrySnapshot {
    fn take() -> Self {
        let r = so_obs::global();
        let c = |name: &str| r.counter_value(name).unwrap_or(0);
        RegistrySnapshot {
            plan_queries: c("so_plan_queries_total"),
            plan_atom_scans: c("so_plan_atom_scans_total"),
            plan_cache_hits: c("so_plan_cache_hits_total"),
            plan_nodes: c("so_plan_nodes_evaluated_total"),
            lp_attacks: c("so_recon_lp_attacks_total"),
            lp_queries: c("so_recon_lp_queries_total"),
            lp_iterations: c("so_recon_lp_iterations_total"),
            laplace_draws: r
                .counter_value_with("so_dp_noise_draws_total", &[("dist", "laplace")])
                .unwrap_or(0),
            budget_refusals: c("so_dp_budget_refusals_total"),
            epsilon_spent: r.gauge_value("so_dp_epsilon_spent").unwrap_or(0.0),
        }
    }
}

fn profile_row(t: &mut Table, phase: &str, metric: &str, local: String, delta: String) {
    let matched = if local == delta { "yes" } else { "no" };
    t.row(vec![
        phase.to_owned(),
        metric.to_owned(),
        local,
        delta,
        matched.to_owned(),
    ]);
}

/// Runs E17.
pub fn run(scale: Scale) -> Vec<Table> {
    // Touch the metric handles up front so every delta below starts from a
    // registered metric (a cold registry would read as `None` → 0 anyway;
    // this just keeps the first snapshot honest about pre-run totals).
    so_plan::obs::plan_metrics();
    so_recon::recon_metrics();
    so_dp::dp_metrics();

    let mut profile = Table::new(
        "E17: observability cost profile — locally tallied stats vs so-obs registry deltas",
        &["phase", "metric", "local", "registry delta", "match"],
    );
    let mut timings = Table::new(
        "E17: per-phase wall-clock (stderr only — nondeterministic)",
        &["phase", "wall-clock ms"],
    );

    // ---- Phase 1: the E2 LP reconstruction, instrumented. -------------
    let n = scale.pick(32usize, 64);
    let m = 6 * n;
    let alpha = 0.5 * (n as f64).sqrt();
    let before = RegistrySnapshot::take();
    let t0 = Instant::now();
    let x = {
        use so_data::dist::RecordDistribution;
        so_data::UniformBits::new(n).sample(&mut seeded_rng(0xE17_01))
    };
    let mut mech = BoundedNoiseSum::new(x.clone(), alpha, seeded_rng(0xE17_02));
    let lp = lp_reconstruct(&mut mech, m, &mut seeded_rng(0xE17_03)).expect("LP decode");
    let lp_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = RegistrySnapshot::take();
    let accuracy = reconstruction_accuracy(&x, &lp.reconstruction);
    profile_row(
        &mut profile,
        "recon",
        "lp attacks",
        "1".to_owned(),
        (after.lp_attacks - before.lp_attacks).to_string(),
    );
    profile_row(
        &mut profile,
        "recon",
        "lp queries",
        lp.queries_issued.to_string(),
        (after.lp_queries - before.lp_queries).to_string(),
    );
    profile_row(
        &mut profile,
        "recon",
        "lp simplex iterations",
        lp.lp_iterations.to_string(),
        (after.lp_iterations - before.lp_iterations).to_string(),
    );
    timings.row(vec![
        format!("recon (n={n}, m={m}, accuracy={accuracy:.2})"),
        format!("{lp_ms:.1}"),
    ]);

    // ---- Phase 2: tabular cross-tab replayed through the engine. -------
    // The workload runs twice against one engine: the first pass scans and
    // populates the node cache, the replay is answered from it, so the
    // cache-hit row is structurally nonzero.
    let rows = scale.pick(2_000usize, 20_000);
    let ds = crosstab_dataset(rows);
    let (_preds, spec) = honest_crosstab(rows);
    let before = RegistrySnapshot::take();
    let t0 = Instant::now();
    let mut engine = CountingEngine::new(&ds, None);
    let first = engine.execute_workload(&spec);
    let replay = engine.execute_workload(&spec);
    let plan_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = RegistrySnapshot::take();
    assert_eq!(
        first.answers, replay.answers,
        "replay must be bit-identical"
    );
    // Local tally: the two per-workload `PlanStats` summed (the engine's own
    // cumulative `stats()` covers scans/nodes/hits but not `queries`, which
    // is a per-workload figure).
    let queries = first.stats.queries + replay.stats.queries;
    let atom_scans = first.stats.atom_scans + replay.stats.atom_scans;
    let cache_hits = first.stats.cache_hits + replay.stats.cache_hits;
    let nodes = first.stats.nodes_evaluated + replay.stats.nodes_evaluated;
    debug_assert_eq!(engine.stats().atom_scans, atom_scans);
    profile_row(
        &mut profile,
        "plan",
        "queries planned",
        queries.to_string(),
        (after.plan_queries - before.plan_queries).to_string(),
    );
    profile_row(
        &mut profile,
        "plan",
        "atom scans",
        atom_scans.to_string(),
        (after.plan_atom_scans - before.plan_atom_scans).to_string(),
    );
    profile_row(
        &mut profile,
        "plan",
        "cache hits",
        cache_hits.to_string(),
        (after.plan_cache_hits - before.plan_cache_hits).to_string(),
    );
    profile_row(
        &mut profile,
        "plan",
        "nodes evaluated",
        nodes.to_string(),
        (after.plan_nodes - before.plan_nodes).to_string(),
    );
    timings.row(vec![
        format!("plan (rows={rows}, workload x2 of {} queries)", spec.len()),
        format!("{plan_ms:.1}"),
    ]);

    // ---- Phase 3: Laplace releases metered by the accountant. ----------
    let releases = scale.pick(8usize, 16);
    let eps_each = 0.1;
    let budget = eps_each * releases as f64 / 2.0; // half get refused
    let mech = LaplaceCount::new(eps_each);
    let mut accountant = PrivacyAccountant::new(budget);
    let mut rng = seeded_rng(0xE17_04);
    let before = RegistrySnapshot::take();
    let t0 = Instant::now();
    let mut released = 0usize;
    for i in 0..releases {
        if accountant.try_spend(&format!("release_{i}"), eps_each) {
            let _ = mech.release(100 + i, &mut rng);
            released += 1;
        }
    }
    let dp_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = RegistrySnapshot::take();
    profile_row(
        &mut profile,
        "dp",
        "laplace draws",
        released.to_string(),
        (after.laplace_draws - before.laplace_draws).to_string(),
    );
    profile_row(
        &mut profile,
        "dp",
        "budget refusals",
        (releases - released).to_string(),
        (after.budget_refusals - before.budget_refusals).to_string(),
    );
    profile_row(
        &mut profile,
        "dp",
        "epsilon spent",
        format!("{:.3}", accountant.spent()),
        format!("{:.3}", after.epsilon_spent - before.epsilon_spent),
    );
    timings.row(vec![
        format!("dp ({released}/{releases} releases, eps={eps_each} each)"),
        format!("{dp_ms:.1}"),
    ]);

    // Timings are wall-clock and vary run to run; they go to stderr so the
    // stdout transcript stays byte-identical across invocations.
    eprintln!("{}", timings.render());

    vec![profile]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Only the `local` column is asserted here: the global registry is
    // shared with every other test in this binary, so the delta column is
    // checked in the process-isolated `tests/e17_parity.rs` instead.
    #[test]
    fn quick_run_profiles_nonzero_costs() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        let local = |metric: &str| -> f64 {
            csv.lines()
                .find(|l| l.contains(metric))
                .unwrap_or_else(|| panic!("missing row {metric}"))
                .split(',')
                .nth(2)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(local("lp simplex iterations") > 0.0);
        assert!(local("atom scans") > 0.0);
        assert!(local("cache hits") > 0.0);
        assert!(local("epsilon spent") > 0.0);
        assert!(local("budget refusals") > 0.0);
        assert_eq!(tables.len(), 1, "timing table goes to stderr, not stdout");
    }
}
