//! E5 — Theorem 2.5: the count mechanism prevents predicate singling out.
//!
//! PSO games against `M_#q` for several attacker weight targets. The table
//! shows the count-postprocessing attacker's PSO success staying inside the
//! (negligible) baseline envelope at negligible weights, while the raw
//! isolation column shows the trivial 37% when the weight gate is ignored —
//! the calibration act of Definition 2.4 in one table.

use std::sync::Arc;

use singling_out_core::attackers::CountPostprocessAttacker;
use singling_out_core::game::{run_pso_game, BitModel, GameConfig};
use singling_out_core::isolation::FnPsoPredicate;
use singling_out_core::mechanisms::CountMechanism;
use singling_out_core::stats::Z95;
use so_data::rng::seeded_rng;
use so_data::BitVec;

use crate::table::{interval, prob, sci, Table};
use crate::Scale;

/// Runs E5.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(400usize, 3_000);
    let n = 100usize;
    let model = BitModel::uniform(64);
    let count_pred: Arc<dyn singling_out_core::isolation::PsoPredicate<BitVec>> =
        Arc::new(FnPsoPredicate::new("bit0 == 1", Some(0.5), |r: &BitVec| {
            r.get(0)
        }));
    let mech = CountMechanism::<BitModel>::new(count_pred);
    let mut t = Table::new(
        &format!("E5: PSO game vs exact count mechanism (Thm 2.5), n = {n}, trials = {trials}"),
        &[
            "attacker weight",
            "negligible?",
            "isolation rate",
            "PSO success",
            "99.9% CI",
            "baseline@threshold",
            "breaks PSO security",
        ],
    );
    // Attackers at decreasing weights: 1/n (trivial sweet spot), 1/n^2
    // (the threshold), far below.
    let moduli = [n as u64, (n * n) as u64, (n * n * 100) as u64, 1u64 << 40];
    for &m in &moduli {
        let cfg = GameConfig::new(n, trials);
        let res = run_pso_game(
            &model,
            &mech,
            &CountPostprocessAttacker { modulus: m },
            &cfg,
            &mut seeded_rng(0xE505 ^ m),
        );
        let iv = res.success_interval(singling_out_core::stats::Z999);
        let w = 1.0 / m as f64;
        t.row(vec![
            sci(w),
            cfg.policy.is_negligible(w, n).to_string(),
            prob(res.isolation_rate()),
            prob(res.success_rate()),
            interval(iv.lo, iv.hi),
            sci(res.baseline_at_threshold),
            res.breaks_pso_security(Z95, 0.02).to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_mechanism_never_broken() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        for line in csv.lines().skip(2) {
            assert!(line.ends_with("false"), "PSO security broken: {line}");
        }
        // The 1/n attacker isolates at ≈37% but its weight is not negligible.
        let first: Vec<&str> = csv.lines().nth(2).unwrap().split(',').collect();
        let isolation: f64 = first[2].parse().unwrap();
        assert!((isolation - 0.37).abs() < 0.08, "isolation {isolation}");
        let success: f64 = first[3].parse().unwrap();
        assert_eq!(success, 0.0, "non-negligible weight must score zero");
    }
}
