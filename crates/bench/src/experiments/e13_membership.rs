//! E13 — Homer-style membership inference on aggregate statistics.
//!
//! The paper's \[26\]/\[40\]: publishing exact marginals of a study group lets
//! an adversary holding a target's attribute vector test membership. The
//! table shows the advantage (TPR − FPR) growing with the number of
//! released attributes and collapsing under properly-calibrated DP.

use so_data::rng::{derive_seed, seeded_rng};
use so_linkage::membership::{
    auc, membership_advantage, membership_score_samples, MembershipExperiment,
};

use crate::table::{prob, Table};
use crate::Scale;

/// Runs E13.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(80usize, 300);
    let mut t = Table::new(
        &format!(
            "E13: membership inference from aggregate marginals (100 members, {trials} trials)"
        ),
        &[
            "released attributes d",
            "publication",
            "TPR",
            "FPR",
            "advantage",
            "AUC",
        ],
    );
    for &d in &[20usize, 200, 1_000, 4_000] {
        // Independent stream per row so rows don't perturb one another.
        let mut rng = seeded_rng(derive_seed(0xE1313, d as u64));
        let exp = MembershipExperiment {
            d_attributes: d,
            trials,
            ..MembershipExperiment::default()
        };
        let exact = membership_advantage(&exp, &mut rng);
        let (m, o) = membership_score_samples(&exp, &mut rng);
        t.row(vec![
            d.to_string(),
            "exact".into(),
            prob(exact.true_positive_rate),
            prob(exact.false_positive_rate),
            prob(exact.advantage()),
            prob(auc(&m, &o)),
        ]);
    }
    // DP release at the largest d.
    for eps in [10.0f64, 1.0] {
        let mut rng = seeded_rng(derive_seed(0xE1314, (eps * 10.0) as u64));
        let exp = MembershipExperiment {
            d_attributes: 1_000,
            trials,
            dp_epsilon: Some(eps),
            ..MembershipExperiment::default()
        };
        let dp = membership_advantage(&exp, &mut rng);
        let (m, o) = membership_score_samples(&exp, &mut rng);
        t.row(vec![
            "1000".into(),
            format!("dp (eps = {eps})"),
            prob(dp.true_positive_rate),
            prob(dp.false_positive_rate),
            prob(dp.advantage()),
            prob(auc(&m, &o)),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantage_grows_with_d_and_dies_under_dp() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let small_d: f64 = rows[0][4].parse().unwrap();
        let large_d: f64 = rows[3][4].parse().unwrap();
        assert!(
            large_d > small_d + 0.1,
            "advantage must grow: {small_d} → {large_d}"
        );
        assert!(large_d > 0.5, "large-d advantage {large_d}");
        let dp: f64 = rows[rows.len() - 1][4].parse().unwrap();
        assert!(dp < 0.2, "DP advantage {dp}");
        // Threshold-free view: exact AUC ≈ 1 at large d, DP AUC ≈ 0.5.
        let exact_auc: f64 = rows[3][5].parse().unwrap();
        let dp_auc: f64 = rows[rows.len() - 1][5].parse().unwrap();
        assert!(exact_auc > 0.9, "exact AUC {exact_auc}");
        assert!((dp_auc - 0.5).abs() < 0.2, "DP AUC {dp_auc}");
    }
}
