//! E19 — incremental engine: a checked-in mutation transcript replayed
//! through [`so_query::IncrementalEngine`], the repair economics of
//! delta-segment caches versus from-scratch rebuilds, and the
//! [`so_analyze::IncrementalGate`]'s continual-release ε accounting and
//! lint memo across dataset versions.
//!
//! Everything here is deterministic arithmetic — no RNG, no clock — so the
//! rendered tables are byte-identical across `SO_THREADS`, `SO_STORAGE`,
//! and `SO_SCHEDULE`. CI replays this experiment under every configuration
//! axis and diffs the output against the checked-in
//! `experiments/e19_transcript.txt` artifact.

use std::sync::Arc;

use so_analyze::{IncrementalGate, LintConfig};
use so_data::{
    AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, StorageEngine, Value,
    VersionedDataset,
};
use so_dp::ContinualAccountant;
use so_plan::parallel::ParallelExecutor;
use so_plan::shape::PredShape;
use so_plan::workload::{Noise, WorkloadSpec};
use so_query::{IncrementalEngine, MutationOp, MutationTranscript, ReplayConfig, WorkloadAnswer};

use crate::{Scale, Table};

/// Two-column Int schema shared by every E19 relation.
fn schema() -> Arc<Schema> {
    Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("score", DataType::Int, AttributeRole::Sensitive),
    ])
}

/// Deterministic row `i` of the synthetic relation.
fn row(i: usize) -> Vec<Value> {
    Vec::from([Value::Int((i % 90) as i64), Value::Int((i % 25) as i64)])
}

/// A late-arriving row: the sensitive column is missing, so delta segments
/// built from these rows leave column 1 untouched and the engine can
/// synthesize column-1 atom bitmaps without scanning (shortcut atoms).
fn delta_row(i: usize) -> Vec<Value> {
    Vec::from([Value::Int((i % 90) as i64), Value::Missing])
}

/// The recurring counting workload: a range scan, a point lookup, and a
/// small range on the sensitive column.
fn probe_shapes() -> Vec<PredShape> {
    Vec::from([
        PredShape::IntRange {
            col: 0,
            lo: 10,
            hi: 40,
        },
        PredShape::ValueEquals {
            col: 1,
            value: Value::Int(7),
        },
        PredShape::IntRange {
            col: 1,
            lo: 0,
            hi: 4,
        },
    ])
}

/// The E19 mutation transcript: workloads interleaved with inserts and
/// deletes, ending in a pure-DP release. Pure data; see
/// [`MutationTranscript`].
fn e19_transcript(n_initial: usize, batch: usize) -> MutationTranscript {
    let initial: Vec<Vec<Value>> = (0..n_initial).map(row).collect();
    let batch1: Vec<Vec<Value>> = (0..batch).map(|i| delta_row(n_initial + i)).collect();
    let batch2: Vec<Vec<Value>> = (0..batch)
        .map(|i| delta_row(n_initial + batch + i))
        .collect();
    let ops = Vec::from([
        MutationOp::Workload {
            shapes: probe_shapes(),
            noise: Noise::Exact,
        },
        MutationOp::Insert { rows: batch1 },
        MutationOp::Workload {
            shapes: probe_shapes(),
            noise: Noise::Exact,
        },
        MutationOp::DeleteLive {
            indices: Vec::from([0, 1, n_initial / 2, n_initial - 1]),
        },
        MutationOp::Workload {
            shapes: probe_shapes(),
            noise: Noise::Exact,
        },
        MutationOp::Insert { rows: batch2 },
        MutationOp::Workload {
            shapes: Vec::from([
                PredShape::IntRange {
                    col: 0,
                    lo: 0,
                    hi: 89,
                },
                PredShape::ValueEquals {
                    col: 1,
                    value: Value::Int(7),
                },
                PredShape::IntRange {
                    col: 1,
                    lo: 0,
                    hi: 4,
                },
            ]),
            noise: Noise::PureDp { epsilon: 0.1 },
        },
    ]);
    MutationTranscript {
        schema: schema(),
        initial,
        ops,
    }
}

/// Live row count immediately before each workload op, in op order.
fn live_at_workloads(t: &MutationTranscript) -> Vec<usize> {
    let mut live = t.initial.len();
    let mut at = Vec::new();
    for op in &t.ops {
        match op {
            MutationOp::Insert { rows } => live += rows.len(),
            MutationOp::DeleteLive { indices } => {
                let dedup: std::collections::BTreeSet<usize> = indices.iter().copied().collect();
                live -= dedup.len();
            }
            MutationOp::Workload { .. } => at.push(live),
        }
    }
    at
}

/// Renders one workload verdict for a table cell.
fn verdict(answers: &[WorkloadAnswer]) -> &'static str {
    if answers.iter().any(|a| matches!(a, WorkloadAnswer::Refused)) {
        "refused"
    } else if answers
        .iter()
        .any(|a| matches!(a, WorkloadAnswer::Unanswerable))
    {
        "unanswerable"
    } else {
        "answered"
    }
}

/// A benign two-query pure-DP workload over `n_rows` live rows.
fn dp_workload(n_rows: usize, epsilon: f64) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new(n_rows);
    let noise = Noise::PureDp { epsilon };
    spec.push_shape(
        &PredShape::IntRange {
            col: 0,
            lo: 10,
            hi: 40,
        },
        noise,
    );
    spec.push_shape(
        &PredShape::ValueEquals {
            col: 1,
            value: Value::Int(3),
        },
        noise,
    );
    spec
}

/// A differencing-tracker workload (wide range plus a hash-residue
/// refinement of it) that the lint layer denies: the residue's design
/// weight `1/65536` provably isolates ≤ 1 row at either scale.
fn tracker_workload(n_rows: usize) -> WorkloadSpec {
    let wide = PredShape::IntRange {
        col: 0,
        lo: 0,
        hi: 1000,
    };
    let tracker = PredShape::And(Vec::from([
        wide.clone(),
        PredShape::Not(Box::new(PredShape::RowHash {
            key: 0xBEEF,
            modulus: 65_536,
            target: 0,
            cols: Vec::from([0]),
        })),
    ]));
    let mut spec = WorkloadSpec::new(n_rows);
    spec.push_shape(&wide, Noise::Exact);
    spec.push_shape(&tracker, Noise::Exact);
    spec
}

/// Builds the gated relation for the accountant / memo tables.
fn gate_engine(n_rows: usize) -> IncrementalEngine {
    let mut b = DatasetBuilder::new(schema());
    for i in 0..n_rows {
        b.push_row(row(i));
    }
    let ds = b.finish_with_engine(StorageEngine::from_env());
    IncrementalEngine::new(VersionedDataset::new(ds), None)
}

/// Table E19.1+2: replay the transcript under the env-selected
/// configuration and compare the repair economics against the
/// from-scratch oracle.
fn replay_tables(scale: Scale) -> (Table, Table) {
    let n_initial = scale.pick(600, 12_000);
    let batch = scale.pick(40, 400);
    let t = e19_transcript(n_initial, batch);
    let exec = ParallelExecutor::from_env();
    let cfg = ReplayConfig {
        threads: exec.threads(),
        policy: exec.policy(),
        engine: StorageEngine::from_env(),
        compact_threshold: so_data::compact_threshold_from_env(),
    };
    let outcome = t.replay(&cfg);

    let mut log_table = Table::new(
        "E19.1 mutation transcript replay (env-selected config)",
        &["step", "event"],
    );
    for (i, line) in outcome.log.lines().enumerate() {
        log_table.row(Vec::from([i.to_string(), line.to_owned()]));
    }

    // From-scratch oracle: rebuild the live relation for every workload and
    // confirm the incremental answers bit-for-bit.
    let oracle = t.oracle_answers(cfg.engine);
    let identical = oracle == outcome.answers;
    let rescanned: usize = live_at_workloads(&t).iter().sum();
    let s = outcome.stats;
    let mut econ = Table::new(
        "E19.2 cache repair economics (incremental vs from-scratch rebuild)",
        &[
            "mode",
            "workloads",
            "rows rescanned",
            "segment repairs",
            "segment cache hits",
            "shortcut atoms",
            "answers",
        ],
    );
    econ.row(Vec::from([
        "incremental".to_owned(),
        s.workloads.to_string(),
        s.repaired_rows.to_string(),
        s.segment_repairs.to_string(),
        s.segment_hits.to_string(),
        s.shortcut_atoms.to_string(),
        "baseline".to_owned(),
    ]));
    econ.row(Vec::from([
        "full rescan oracle".to_owned(),
        oracle.len().to_string(),
        rescanned.to_string(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        if identical { "identical" } else { "MISMATCH" }.to_owned(),
    ]));
    (log_table, econ)
}

/// Table E19.3: continual-release ε accounting across dataset versions,
/// lifetime and windowed.
fn accountant_table(scale: Scale) -> Table {
    let n_rows = scale.pick(400, 4_000);
    let mut table = Table::new(
        "E19.3 continual-release budget across versions",
        &[
            "accountant",
            "step",
            "version",
            "live rows",
            "workload ε",
            "spent",
            "remaining",
            "verdict",
        ],
    );

    // Lifetime accountant: ε composes forever; budget 1.0 admits three
    // 0.3-ε workloads and refuses the rest.
    let mut gate = IncrementalGate::with_accountant(
        gate_engine(n_rows),
        LintConfig::default(),
        ContinualAccountant::new(1.0),
    );
    for step in 0..5usize {
        if step > 0 {
            gate.insert_rows(&[row(n_rows + 2 * step), row(n_rows + 2 * step + 1)]);
        }
        let live = gate.engine().dataset().n_live();
        let w = gate.execute(dp_workload(live, 0.15));
        let acct = gate.accountant().expect("accountant attached");
        table.row(Vec::from([
            "lifetime(1.0)".to_owned(),
            step.to_string(),
            format!("v{}", acct.version()),
            live.to_string(),
            "0.30".to_owned(),
            format!("{:.2}", acct.spent()),
            format!("{:.2}", acct.remaining()),
            verdict(&w.answers).to_owned(),
        ]));
    }

    // Windowed accountant: only the last two versions count, so refused
    // expenditure ages out and later versions are re-admitted.
    let mut gate = IncrementalGate::with_accountant(
        gate_engine(n_rows),
        LintConfig::default(),
        ContinualAccountant::with_window(0.5, 2),
    );
    for step in 0..4usize {
        if step > 0 {
            gate.insert_rows(&[row(n_rows + 100 + step)]);
        }
        let live = gate.engine().dataset().n_live();
        let w = gate.execute(dp_workload(live, 0.15));
        let acct = gate.accountant().expect("accountant attached");
        table.row(Vec::from([
            "window=2(0.5)".to_owned(),
            step.to_string(),
            format!("v{}", acct.version()),
            live.to_string(),
            "0.30".to_owned(),
            format!("{:.2}", acct.spent()),
            format!("{:.2}", acct.remaining()),
            verdict(&w.answers).to_owned(),
        ]));
    }
    table
}

/// Table E19.4: the lint memo — verdicts are recomputed only when the
/// lint-relevant signature (structural hashes, noise, live row count)
/// changes, and memoized refusals still refuse.
fn memo_table(scale: Scale) -> Table {
    let n_rows = scale.pick(400, 4_000);
    let mut gate = IncrementalGate::new(gate_engine(n_rows), LintConfig::default());
    let mut table = Table::new(
        "E19.4 lint memo across versions",
        &[
            "step",
            "action",
            "lint",
            "verdict",
            "fresh lints",
            "memo hits",
        ],
    );
    let mut step = 0usize;
    let mut run =
        |gate: &mut IncrementalGate, table: &mut Table, action: &str, spec: WorkloadSpec| {
            let before = (gate.relints(), gate.relints_skipped());
            let w = gate.execute(spec);
            let lint = if gate.relints() > before.0 {
                "fresh"
            } else {
                "memo"
            };
            table.row(Vec::from([
                step.to_string(),
                action.to_owned(),
                lint.to_owned(),
                verdict(&w.answers).to_owned(),
                gate.relints().to_string(),
                gate.relints_skipped().to_string(),
            ]));
            step += 1;
        };
    let live = gate.engine().dataset().n_live();
    run(
        &mut gate,
        &mut table,
        "benign workload",
        dp_workload(live, 0.05),
    );
    run(
        &mut gate,
        &mut table,
        "same workload again",
        dp_workload(live, 0.05),
    );
    run(
        &mut gate,
        &mut table,
        "tracker workload",
        tracker_workload(live),
    );
    run(
        &mut gate,
        &mut table,
        "tracker workload again",
        tracker_workload(live),
    );
    gate.insert_rows(&[row(n_rows), row(n_rows + 1)]);
    let live = gate.engine().dataset().n_live();
    run(
        &mut gate,
        &mut table,
        "benign after insert (new n)",
        dp_workload(live, 0.05),
    );
    run(
        &mut gate,
        &mut table,
        "same workload again",
        dp_workload(live, 0.05),
    );
    table
}

/// Runs E19 and returns its tables.
pub fn run(scale: Scale) -> Vec<Table> {
    let (log_table, econ) = replay_tables(scale);
    Vec::from([log_table, econ, accountant_table(scale), memo_table(scale)])
}
