//! E10 — Sweeney: quasi-identifier uniqueness and the GIC linkage attack.
//!
//! (a) Uniqueness of ZIP × birth date × sex as the population grows — the
//! "unique for a vast majority of the US population" observation (Sweeney
//! measured ≈ 87% at US scale; uniqueness falls as density rises);
//! (b) the medical-release ↔ voter-registry linkage with link rate,
//! precision, and recall.

use so_data::population::{columns, Population, PopulationConfig};
use so_data::rng::{derive_seed, seeded_rng};
use so_linkage::quasi::{fraction_in_small_classes, uniqueness_fraction};
use so_linkage::sweeney::link_releases;

use crate::table::{prob, Table};
use crate::Scale;

/// Runs E10.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t1 = Table::new(
        "E10a: uniqueness of (zip, birth_date, sex) vs population size (50 ZIPs, 71 birth years)",
        &[
            "n",
            "unique fraction",
            "in crowds <= 2",
            "unique under (zip, sex) only",
        ],
    );
    let ns = scale.pick(
        vec![2_000usize, 10_000],
        vec![2_000usize, 10_000, 50_000, 200_000],
    );
    for &n in &ns {
        let cfg = PopulationConfig {
            n,
            ..PopulationConfig::default()
        };
        let pop = Population::generate(&cfg, &mut seeded_rng(derive_seed(0xE1010, n as u64)));
        let ds = pop.master();
        let qi = [columns::ZIP, columns::BIRTH_DATE, columns::SEX];
        t1.row(vec![
            n.to_string(),
            prob(uniqueness_fraction(ds, &qi)),
            prob(fraction_in_small_classes(ds, &qi, 2)),
            prob(uniqueness_fraction(ds, &[columns::ZIP, columns::SEX])),
        ]);
    }

    let mut t2 = Table::new(
        "E10b: GIC-style linkage (medical release x voter registry on zip, birth_date, sex)",
        &["n", "link rate", "precision", "recall"],
    );
    for &n in &ns {
        let cfg = PopulationConfig {
            n,
            ..PopulationConfig::default()
        };
        let pop = Population::generate(&cfg, &mut seeded_rng(derive_seed(0xE1011, n as u64)));
        let med = pop.medical_release();
        let voters = pop.voter_registry();
        let mq: Vec<usize> = ["zip", "birth_date", "sex"]
            .iter()
            .map(|c| med.column_index(c).unwrap())
            .collect();
        let vq: Vec<usize> = ["zip", "birth_date", "sex"]
            .iter()
            .map(|c| voters.column_index(c).unwrap())
            .collect();
        let vid = voters.column_index("person_id").unwrap();
        let out = link_releases(&med, &mq, &voters, &vq, vid);
        let in_voters: std::collections::HashSet<usize> =
            pop.voter_rows().iter().copied().collect();
        let truth: Vec<Option<i64>> = (0..med.n_rows())
            .map(|i| in_voters.contains(&i).then_some(i as i64))
            .collect();
        t2.row(vec![
            n.to_string(),
            prob(out.link_rate(med.n_rows())),
            prob(out.precision(&truth)),
            prob(out.recall(&truth)),
        ]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniqueness_high_at_low_density_and_linkage_precise() {
        let tables = run(Scale::Quick);
        let u = tables[0].to_csv();
        let first: Vec<&str> = u.lines().nth(2).unwrap().split(',').collect();
        let unique: f64 = first[1].parse().unwrap();
        assert!(unique > 0.85, "uniqueness {unique} at n = 2000");
        // Uniqueness falls with density.
        let second: Vec<&str> = u.lines().nth(3).unwrap().split(',').collect();
        let unique2: f64 = second[1].parse().unwrap();
        assert!(unique2 < unique, "should fall with n");
        // ZIP+sex alone is almost never unique.
        let coarse: f64 = first[3].parse().unwrap();
        assert!(coarse < 0.05, "coarse QI uniqueness {coarse}");

        let l = tables[1].to_csv();
        let row: Vec<&str> = l.lines().nth(2).unwrap().split(',').collect();
        let precision: f64 = row[2].parse().unwrap();
        assert!(precision > 0.95, "precision {precision}");
    }
}
