//! E18 — query-matrix structural passes: linear releases and trackers the
//! pairwise lints cannot see.
//!
//! E16 showed the *pairwise* shapes (differencing, density). This
//! experiment exercises the query-matrix abstraction of `so_analyze`: each
//! workload is lowered to an abstract 0/1 matrix over atom-partition cells
//! (no data access) and three structural passes run over it — `SO-LINREC`
//! (full structural rank over a partition with a narrow cell, the KRS
//! linear-reconstruction feasibility criterion), `SO-TRACKER` (a chain of
//! admitted differences reaching a narrow region), and `SO-COVER` (a narrow
//! cell in the rational row span of the exact releases). The first table
//! lints four attack batteries that are pairwise-blind to varying degrees
//! alongside honest exact and DP cross-tabs; the second table runs the
//! batteries through a gatekeeper-mode engine and shows the refusal code,
//! the offending indices, and the structured evidence that lands in the
//! audit trail.
//!
//! The cycle release is the star: adjacent-pair masks `{i, i+1 mod n}` for
//! odd `n` have no nested pair (popcount bucketing examines zero pairs), no
//! cell-level containment (no tracker chain), and GF(2) rank only `n − 1` —
//! yet their rational rank is `n`, so the released answers determine every
//! singleton cell count. Only the rational-rank fallback of `SO-LINREC`
//! (and the row-span witness of `SO-COVER`) can refuse it.

use so_analyze::ir::Atom;
use so_analyze::{lint_workload, GatedEngine, LintConfig, LintId, LintReport, Noise, WorkloadSpec};
use so_data::{AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value};
use so_query::predicate::{AllRowPredicate, RowPredicate, ValueEqualsPredicate};
use so_query::query::SubsetQuery;
use so_query::CountingEngine;

use crate::table::Table;
use crate::Scale;

/// The cycle release: every adjacent-pair subset `{i, (i+1) mod n}` for odd
/// `n`. Full rational rank over the `n` singleton cells, but GF(2) rank
/// `n − 1` and no containment anywhere — invisible to every pairwise pass.
pub fn cycle_release_spec(n: usize, noise: Noise) -> WorkloadSpec {
    assert!(n % 2 == 1, "the cycle is full-rank only for odd n");
    let mut w = WorkloadSpec::new(n);
    for i in 0..n {
        w.push_subset(&SubsetQuery::from_indices(n, &[i, (i + 1) % n]), noise);
    }
    w
}

/// The classic complement tracker: the population total plus every
/// complement-of-one (fires `SO-DIFF` too — kept as the baseline battery).
pub fn complement_tracker_spec(n: usize, noise: Noise) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n);
    w.push_subset(
        &SubsetQuery::from_indices(n, &(0..n).collect::<Vec<_>>()),
        noise,
    );
    for i in 0..n {
        let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        w.push_subset(&SubsetQuery::from_indices(n, &others), noise);
    }
    w
}

/// The predicate tracker trio: `Q0` = a 2-bit prefix (design weight ¼),
/// `Q1` = a keyed-hash residue (weight 1/32), `Q2 = Q0 ∨ Q1`. No conjunct
/// refinement exists, so `SO-DIFF` is blind; the chain
/// `Q1 − (Q2 − Q0) = count(prefix ∧ hash)` pins ≤ `n/128` expected rows.
pub fn pred_tracker_trio(n: usize, noise: Noise) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n);
    let prefix = {
        let pool = w.pool_mut();
        let b0 = pool.atom(Atom::BitExtract {
            bit: 0,
            value: true,
        });
        let b1 = pool.atom(Atom::BitExtract {
            bit: 1,
            value: false,
        });
        pool.and([b0, b1])
    };
    let hash = w.pool_mut().atom(Atom::KeyedHash {
        key: 0xFEED,
        modulus: 32,
        target: 7,
    });
    let union = w.pool_mut().or([prefix, hash]);
    w.push_expr(prefix, noise);
    w.push_expr(hash, noise);
    w.push_expr(union, noise);
    w
}

/// The overlap cover: subsets `{0,1}`, `{1,2}`, `{0,2}`. No containment, no
/// chain — but `e₀ = ½(Q0 − Q1 + Q2)`, a rational combination only
/// `SO-COVER` reports.
pub fn overlap_cover_spec(n: usize, noise: Noise) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n);
    for idx in [[0usize, 1], [1, 2], [0, 2]] {
        w.push_subset(&SubsetQuery::from_indices(n, &idx), noise);
    }
    w
}

/// An honest statistical workload: department counts plus department × sex
/// drill-downs (a textbook cross-tab) at the given release noise.
pub fn honest_crosstab_spec(n_rows: usize, noise: Noise) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n_rows);
    for p in honest_crosstab_preds() {
        w.push_predicate(p.as_ref(), noise);
    }
    w
}

fn honest_crosstab_preds() -> Vec<Box<dyn RowPredicate>> {
    let mut preds: Vec<Box<dyn RowPredicate>> = Vec::new();
    for dept in 0..5i64 {
        preds.push(Box::new(ValueEqualsPredicate {
            col: 0,
            value: Value::Int(dept),
        }));
        for sex in 0..2i64 {
            preds.push(Box::new(AllRowPredicate {
                parts: vec![
                    Box::new(ValueEqualsPredicate {
                        col: 0,
                        value: Value::Int(dept),
                    }),
                    Box::new(ValueEqualsPredicate {
                        col: 1,
                        value: Value::Int(sex),
                    }),
                ],
            }));
        }
    }
    preds
}

/// A small dept × sex dataset for the gatekeeper table.
fn crosstab_dataset(n: usize) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("sex", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..n {
        b.push_row(vec![Value::Int((i % 5) as i64), Value::Int((i % 2) as i64)]);
    }
    b.finish()
}

fn lint_row(t: &mut Table, label: &str, w: &mut WorkloadSpec, cfg: &LintConfig) -> LintReport {
    let r = lint_workload(w, cfg);
    let (rank, cells) = r
        .findings_for(LintId::LinearReconstruction)
        .first()
        .and_then(|f| f.evidence.as_ref())
        .map_or(("-".to_owned(), "-".to_owned()), |ev| {
            (
                ev.rank.map_or("-".to_owned(), |r| r.to_string()),
                ev.cells.map_or("-".to_owned(), |c| c.to_string()),
            )
        });
    t.row(vec![
        label.to_owned(),
        w.n_rows().to_string(),
        w.len().to_string(),
        r.count(LintId::Differencing).to_string(),
        r.count(LintId::LinearReconstruction).to_string(),
        r.count(LintId::TrackerChain).to_string(),
        r.count(LintId::CellCover).to_string(),
        rank,
        cells,
        r.verdict().to_owned(),
    ]);
    r
}

/// Compact, comma-free rendering of a finding's evidence for the gate
/// table (the full payload is in the audit trail).
fn evidence_summary(r: &LintReport) -> String {
    let Some(f) = r.findings.iter().find(|f| f.evidence.is_some()) else {
        return "-".to_owned();
    };
    let ev = f.evidence.as_ref().expect("checked");
    let mut parts: Vec<String> = Vec::new();
    if let (Some(rank), Some(cells)) = (ev.rank, ev.cells) {
        parts.push(format!("rank={rank}/{cells}"));
    }
    if !ev.chain.is_empty() {
        let idx: Vec<String> = ev.chain.iter().map(usize::to_string).collect();
        parts.push(format!("chain={}", idx.join("+")));
    }
    if let Some(w) = ev.width_hi {
        parts.push(format!("width≤{w:.2}"));
    }
    parts.join(" ")
}

/// Runs E18.
pub fn run(scale: Scale) -> Vec<Table> {
    let cfg = LintConfig::default();
    let n_cyc = scale.pick(7usize, 11);
    let n_cmp = scale.pick(6usize, 10);

    let mut t = Table::new(
        "E18: query-matrix passes — structural rank, tracker chains, cell covers (t = 1)",
        &[
            "workload",
            "n",
            "queries",
            LintId::Differencing.code(),
            LintId::LinearReconstruction.code(),
            LintId::TrackerChain.code(),
            LintId::CellCover.code(),
            "rank",
            "cells",
            "verdict",
        ],
    );
    lint_row(
        &mut t,
        "cycle release / exact",
        &mut cycle_release_spec(n_cyc, Noise::Exact),
        &cfg,
    );
    lint_row(
        &mut t,
        "cycle release / DP eps=0.5",
        &mut cycle_release_spec(n_cyc, Noise::PureDp { epsilon: 0.5 }),
        &cfg,
    );
    lint_row(
        &mut t,
        "complement tracker / exact",
        &mut complement_tracker_spec(n_cmp, Noise::Exact),
        &cfg,
    );
    lint_row(
        &mut t,
        "complement tracker / alpha=1",
        &mut complement_tracker_spec(n_cmp, Noise::Bounded { alpha: 1.0 }),
        &cfg,
    );
    lint_row(
        &mut t,
        "pred tracker trio / exact",
        &mut pred_tracker_trio(100, Noise::Exact),
        &cfg,
    );
    lint_row(
        &mut t,
        "overlap cover / exact",
        &mut overlap_cover_spec(10, Noise::Exact),
        &cfg,
    );
    lint_row(
        &mut t,
        "honest cross-tab / exact",
        &mut honest_crosstab_spec(500, Noise::Exact),
        &cfg,
    );
    lint_row(
        &mut t,
        "honest cross-tab / DP eps=0.1",
        &mut honest_crosstab_spec(500, Noise::PureDp { epsilon: 0.1 }),
        &cfg,
    );

    // Gatekeeper mode: the batteries behind a gated engine. The refusal
    // trail gets one entry per offending index, prefixed with the vetoing
    // code and carrying the finding's evidence payload.
    let data = crosstab_dataset(scale.pick(200, 1000));
    let mut t2 = Table::new(
        "E18b: gatekeeper refusals carry the evidence — code, indices, rank/chain/width",
        &[
            "workload",
            "gate",
            "code",
            "offending",
            "answered",
            "refused",
            "evidence",
        ],
    );
    let runs: Vec<(&str, WorkloadSpec)> = vec![
        (
            "cycle release / exact",
            cycle_release_spec(n_cyc, Noise::Exact),
        ),
        // n = 100 keeps the trio's derived region under t = 1 expected rows.
        (
            "pred tracker trio / exact",
            pred_tracker_trio(100, Noise::Exact),
        ),
        (
            "overlap cover / exact",
            overlap_cover_spec(data.n_rows(), Noise::Exact),
        ),
        (
            "honest cross-tab / exact",
            honest_crosstab_spec(data.n_rows(), Noise::Exact),
        ),
    ];
    for (label, w) in runs {
        // Subset workloads carry their own n; the engine only executes
        // admitted (predicate) workloads, so the dataset arity is safe.
        let mut gated = GatedEngine::new(CountingEngine::new(&data, None), w, &cfg);
        let _ = gated.execute();
        let report = gated.report();
        let code = report
            .findings
            .iter()
            .find(|f| f.severity == so_analyze::Severity::Deny)
            .map_or("-".to_owned(), |f| f.lint.code().to_owned());
        let offending: std::collections::BTreeSet<usize> = report
            .findings
            .iter()
            .filter(|f| f.severity == so_analyze::Severity::Deny)
            .flat_map(|f| f.queries.iter().copied())
            .collect();
        let idx: Vec<String> = offending.iter().map(usize::to_string).collect();
        t2.row(vec![
            label.to_owned(),
            if gated.is_open() { "open" } else { "closed" }.to_owned(),
            code,
            if idx.is_empty() {
                "-".to_owned()
            } else {
                idx.join("+")
            },
            gated.engine().auditor().queries_answered().to_string(),
            gated.engine().auditor().queries_refused().to_string(),
            evidence_summary(report),
        ]);
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batteries_and_honest_workloads_get_the_expected_codes() {
        let cfg = LintConfig::default();
        // Cycle release: pairwise-blind, caught by the rational-rank
        // fallback and the span witness.
        let r = lint_workload(&mut cycle_release_spec(7, Noise::Exact), &cfg);
        assert_eq!(r.pairs_examined, 0, "no popcount gap anywhere");
        assert_eq!(r.count(LintId::Differencing), 0);
        assert_eq!(r.count(LintId::TrackerChain), 0, "{:?}", r.findings);
        assert_eq!(r.count(LintId::LinearReconstruction), 1);
        assert!(r.count(LintId::CellCover) >= 1);
        let ev = r.findings_for(LintId::LinearReconstruction)[0]
            .evidence
            .as_ref()
            .expect("evidence");
        assert_eq!(ev.rank, Some(7), "rational rank is full");
        assert_eq!(ev.cells, Some(7));
        // Tracker trio: only the chain passes see it.
        let r = lint_workload(&mut pred_tracker_trio(100, Noise::Exact), &cfg);
        assert_eq!(r.count(LintId::Differencing), 0);
        assert!(r.count(LintId::TrackerChain) >= 1, "{:?}", r.findings);
        // Honest cross-tabs pass at any noise level.
        for noise in [Noise::Exact, Noise::PureDp { epsilon: 0.1 }] {
            let r = lint_workload(&mut honest_crosstab_spec(500, noise), &cfg);
            assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
        }
        // DP silences the batteries.
        let r = lint_workload(
            &mut cycle_release_spec(7, Noise::PureDp { epsilon: 0.5 }),
            &cfg,
        );
        assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    }

    #[test]
    fn quick_run_verdicts_and_gate_codes() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        let rows: Vec<Vec<String>> = tables[0]
            .to_csv()
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let verdict = |label: &str| -> String {
            let row = rows
                .iter()
                .find(|r| r[0].starts_with(label))
                .unwrap_or_else(|| panic!("row {label}"));
            row[row.len() - 1].clone()
        };
        assert_eq!(verdict("cycle release / exact"), "REFUSE");
        assert_eq!(verdict("cycle release / DP"), "PASS");
        assert_eq!(verdict("complement tracker / exact"), "REFUSE");
        assert_eq!(verdict("complement tracker / alpha"), "REFUSE");
        assert_eq!(verdict("pred tracker trio"), "REFUSE");
        assert_eq!(verdict("overlap cover"), "REFUSE");
        assert_eq!(verdict("honest cross-tab / exact"), "PASS");
        assert_eq!(verdict("honest cross-tab / DP"), "PASS");

        // Gate table: each new code is the primary refusal code somewhere,
        // honest workloads flow through, refused batteries answer nothing.
        let g: Vec<Vec<String>> = tables[1]
            .to_csv()
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        assert_eq!(g[0][1], "closed");
        assert_eq!(g[0][2], LintId::LinearReconstruction.code());
        assert_eq!(g[0][4], "0", "refused battery answers nothing");
        assert_eq!(g[1][2], LintId::TrackerChain.code());
        assert_eq!(g[2][2], LintId::CellCover.code());
        assert_eq!(g[2][3], "0+1+2", "exact offending indices");
        assert_eq!(g[3][1], "open");
        assert_eq!(g[3][4], "15", "honest cross-tab fully answered");
        assert!(g[0][6].contains("rank=7/7"), "evidence: {}", g[0][6]);
    }
}
