//! E7 — Theorem 2.9: differential privacy prevents predicate singling out.
//!
//! The *same* composition attack that demolishes exact counts (E6) is aimed
//! at the ε-DP count oracle, sweeping the per-query privacy loss. The table
//! shows PSO success collapsing toward the baseline as ε shrinks, with the
//! total (basic-composition) budget reported per row.

use singling_out_core::attackers::PrefixDescentAttacker;
use singling_out_core::game::{run_pso_game, BitModel, GameConfig};
use singling_out_core::mechanisms::AdaptiveCountOracle;
use singling_out_core::negligible::NegligibilityPolicy;
use singling_out_core::stats::Z999;
use so_data::rng::seeded_rng;

use crate::table::{interval, prob, Table};
use crate::Scale;

/// Runs E7.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(80usize, 400);
    let n = 100usize;
    let model = BitModel::uniform(64);
    let policy = NegligibilityPolicy::default();
    let levels = policy.required_prefix_bits(n) + 4;
    let mut t = Table::new(
        &format!("E7: the E6 attack vs DP count oracle (Thm 2.9), n = {n}, levels = {levels}"),
        &[
            "eps/query",
            "total eps",
            "isolation rate",
            "PSO success",
            "99.9% CI",
            "breaks PSO security",
        ],
    );
    // Exact (ε = ∞) first, then decreasing ε.
    let mut rows: Vec<(String, Option<f64>)> = vec![("exact".into(), None)];
    for eps in [2.0f64, 0.5, 0.1, 0.02] {
        rows.push((format!("{eps}"), Some(eps)));
    }
    for (label, eps) in rows {
        let oracle = match eps {
            None => AdaptiveCountOracle::exact(levels),
            Some(e) => AdaptiveCountOracle::noisy(levels, e),
        };
        let total = oracle.total_epsilon();
        let cfg = GameConfig {
            policy,
            ..GameConfig::new(n, trials)
        };
        let res = run_pso_game(
            &model,
            &oracle,
            &PrefixDescentAttacker,
            &cfg,
            &mut seeded_rng(0xE707 ^ (total.to_bits())),
        );
        let iv = res.success_interval(Z999);
        t.row(vec![
            label,
            if total.is_finite() {
                format!("{total:.1}")
            } else {
                "inf".into()
            },
            prob(res.isolation_rate()),
            prob(res.success_rate()),
            interval(iv.lo, iv.hi),
            res.breaks_pso_security(Z999, 0.05).to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_collapses_the_attack() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        // Exact: success ≈ 1, broken.
        let exact: f64 = rows[0][3].parse().unwrap();
        assert!(exact > 0.9, "exact {exact}");
        assert_eq!(rows[0][5], "true");
        // Small ε: success near zero, not broken.
        let tight: f64 = rows[rows.len() - 1][3].parse().unwrap();
        assert!(tight < 0.1, "tight-ε success {tight}");
        assert_eq!(rows[rows.len() - 1][5], "false");
        // Monotone-ish decrease with ε.
        let mid: f64 = rows[2][3].parse().unwrap();
        assert!(mid <= exact + 1e-9);
    }
}
