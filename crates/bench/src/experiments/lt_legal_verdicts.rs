//! LT1/LT2 — the legal theorems of §2.4.
//!
//! Runs the PSO games for k-anonymity (Theorem 2.10 evidence) and the DP
//! count oracle (Theorem 2.9 evidence), feeds the results to the
//! legal-theorem engine, and prints the full claims with derivation chains:
//!
//! * Legal Theorem 2.1 + Corollary: k-anonymity fails GDPR singling out and
//!   hence the anonymization standard;
//! * §2.4.1: differential privacy passes the necessary condition;
//!   sufficiency requires further analysis.

use singling_out_core::attackers::{KAnonClassAttacker, PrefixDescentAttacker};
use singling_out_core::game::{run_pso_game, BitModel, GameConfig};
use singling_out_core::legal::{dp_singling_out_assessment, kanon_singling_out_theorem, Verdict};
use singling_out_core::mechanisms::{AdaptiveCountOracle, Anonymizer, KAnonMechanism};
use singling_out_core::negligible::NegligibilityPolicy;
use so_data::rng::seeded_rng;
use so_kanon::MondrianConfig;

use crate::models::{wide_tabular_model, WIDE_QI_COLS};
use crate::table::Table;
use crate::Scale;

/// Runs LT1/LT2; returns the rendered claims embedded in tables plus the
/// raw claim objects' verdicts.
pub fn run(scale: Scale) -> Vec<Table> {
    let (claims, _) = run_claims(scale);
    let mut t = Table::new("LT: legal theorems derived from game evidence", &["claim"]);
    for c in &claims {
        for line in c.render().lines() {
            t.row(vec![line.to_owned()]);
        }
        t.row(vec![String::new()]);
    }
    vec![t]
}

/// Produces the claims and their verdicts (library entry for tests and the
/// facade examples).
pub fn run_claims(scale: Scale) -> (Vec<singling_out_core::legal::Claim>, Vec<Verdict>) {
    let trials = scale.pick(150usize, 500);
    let n = 200usize;

    // Evidence for Legal Theorem 2.1: the k-anonymity games.
    let model = wide_tabular_model();
    let attacker = KAnonClassAttacker {
        dist: model.sampler().distribution().clone(),
        qi_cols: WIDE_QI_COLS.to_vec(),
        interner: model.sampler().interner().clone(),
    };
    let k = 5usize;
    let mech = KAnonMechanism::new(
        &model,
        WIDE_QI_COLS.to_vec(),
        Anonymizer::Mondrian(MondrianConfig { k }),
    );
    let kanon_game = run_pso_game(
        &model,
        &mech,
        &attacker,
        &GameConfig::new(n, trials),
        &mut seeded_rng(0x171),
    );
    let kanon_claim = kanon_singling_out_theorem(k, &[kanon_game]);

    // Evidence for the DP assessment: the composition attack vs a tightly
    // budgeted DP oracle.
    let bit_model = BitModel::uniform(64);
    let policy = NegligibilityPolicy::default();
    let levels = policy.required_prefix_bits(n) + 4;
    let eps_per_query = 0.02;
    let dp_game = run_pso_game(
        &bit_model,
        &AdaptiveCountOracle::noisy(levels, eps_per_query),
        &PrefixDescentAttacker,
        &GameConfig {
            policy,
            ..GameConfig::new(n, trials)
        },
        &mut seeded_rng(0x172),
    );
    let total_eps = eps_per_query * levels as f64;
    let dp_claim = dp_singling_out_assessment(total_eps, &[dp_game]);

    let verdicts = vec![kanon_claim.verdict, dp_claim.verdict];
    (vec![kanon_claim, dp_claim], verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_match_the_paper() {
        let (claims, verdicts) = run_claims(Scale::Quick);
        assert_eq!(verdicts[0], Verdict::FailsRequirement, "Legal Theorem 2.1");
        assert_eq!(
            verdicts[1],
            Verdict::SatisfiesNecessaryCondition,
            "§2.4.1 DP assessment"
        );
        let rendered = claims[0].render();
        assert!(rendered.contains("fails to prevent"));
        assert!(rendered.contains("Recital 26"));
        let rendered_dp = claims[1].render();
        assert!(rendered_dp.contains("further analysis"));
    }
}
