//! E11 — Narayanan–Shmatikov: sparse-data de-anonymization.
//!
//! "Little partial knowledge about a subscriber's viewings and ratings ...
//! can lead to the exact re-identification of the subscriber." The table
//! sweeps the amount of auxiliary knowledge (number of known ratings) and
//! the date fuzz, reporting correct-identification rate, false-match rate,
//! and abstention rate.

use so_data::ratings::{RatingsConfig, RatingsData};
use so_data::rng::seeded_rng;
use so_linkage::narayanan::{deanonymize, NarayananConfig, ScoreboardOutcome};

use crate::table::{prob, Table};
use crate::Scale;

/// Runs E11.
pub fn run(scale: Scale) -> Vec<Table> {
    let n_users = scale.pick(300usize, 2_000);
    let targets = scale.pick(40usize, 150);
    let release = RatingsData::generate(
        &RatingsConfig {
            n_users,
            n_titles: scale.pick(800, 3_000),
            mean_ratings_per_user: 25,
            ..RatingsConfig::default()
        },
        &mut seeded_rng(0xE1111),
    );
    let mut t = Table::new(
        &format!("E11: Netflix-style de-anonymization, {n_users} users, {targets} targets"),
        &[
            "aux ratings k",
            "date fuzz (days)",
            "correct id rate",
            "false match rate",
            "abstain rate",
        ],
    );
    let mut rng = seeded_rng(0xE1112);
    for &(k, fuzz) in &[
        (2usize, 0u32),
        (4, 0),
        (6, 0),
        (8, 0),
        (8, 3),
        (8, 14),
        (8, 60),
    ] {
        let mut correct = 0usize;
        let mut wrong = 0usize;
        let mut abstain = 0usize;
        for target in 0..targets {
            let aux = release.auxiliary_sample(target, k, fuzz, &mut rng);
            match deanonymize(&release, &aux, &NarayananConfig::default()) {
                ScoreboardOutcome::Match { user, .. } if user == target => correct += 1,
                ScoreboardOutcome::Match { .. } => wrong += 1,
                ScoreboardOutcome::NoMatch => abstain += 1,
            }
        }
        t.row(vec![
            k.to_string(),
            fuzz.to_string(),
            prob(correct as f64 / targets as f64),
            prob(wrong as f64 / targets as f64),
            prob(abstain as f64 / targets as f64),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_aux_means_more_reidentification() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let k2: f64 = rows[0][2].parse().unwrap();
        let k8: f64 = rows[3][2].parse().unwrap();
        assert!(k8 >= k2, "k=8 rate {k8} must not trail k=2 rate {k2}");
        assert!(k8 > 0.8, "k=8 exact-date rate {k8}");
        // Heavy date fuzz (far beyond the 14-day tolerance) degrades the
        // attack relative to exact dates.
        let fuzzed: f64 = rows[6][2].parse().unwrap();
        assert!(fuzzed < k8, "fuzz-60 rate {fuzzed} vs exact {k8}");
        // False matches stay rare in every configuration.
        for r in &rows {
            let wrong: f64 = r[3].parse().unwrap();
            assert!(wrong < 0.15, "false match rate {wrong}: {r:?}");
        }
    }
}
