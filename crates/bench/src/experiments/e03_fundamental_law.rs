//! E3 — the Fundamental Law of Information Recovery.
//!
//! "Overly accurate answers to too many questions will destroy privacy in a
//! spectacular way." The matrix sweeps noise magnitude × number of queries
//! and reports reconstruction accuracy (least-squares decoder, which scales
//! to the larger grid). The frontier is visible in the table: accuracy ≈ 1
//! in the low-noise/many-queries corner, ≈ 0.5 (coin flipping) in the
//! high-noise/few-queries corner.

use so_data::dist::RecordDistribution;
use so_data::rng::{derive_seed, seeded_rng};
use so_data::UniformBits;
use so_query::BoundedNoiseSum;
use so_recon::least_squares::{least_squares_reconstruct, LsqConfig};
use so_recon::reconstruction_accuracy;

use crate::table::{prob, Table};
use crate::Scale;

/// Runs E3.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(64usize, 128);
    let trials = scale.pick(2, 4);
    let query_factors = [1usize, 2, 4, 8];
    let noise_levels: Vec<(String, f64)> = vec![
        ("0".into(), 0.0),
        ("sqrt(n)/2".into(), 0.5 * (n as f64).sqrt()),
        ("sqrt(n)".into(), (n as f64).sqrt()),
        ("n/8".into(), n as f64 / 8.0),
        ("n/2".into(), n as f64 / 2.0),
    ];
    let mut t = Table::new(
        &format!("E3: fundamental law of information recovery — LSQ accuracy, n = {n}"),
        &["noise alpha", "m=n", "m=2n", "m=4n", "m=8n"],
    );
    for (label, alpha) in &noise_levels {
        let mut cells = vec![label.clone()];
        for &f in &query_factors {
            let m = f * n;
            let mut acc = 0.0;
            for trial in 0..trials {
                let seed = derive_seed(0xE303, (f * 1000 + trial) as u64 + (*alpha * 10.0) as u64);
                let mut rng = seeded_rng(seed);
                let x = UniformBits::new(n).sample(&mut rng);
                let mut mech = BoundedNoiseSum::new(x.clone(), *alpha, seeded_rng(seed ^ 1));
                let res = least_squares_reconstruct(
                    &mut mech,
                    m,
                    &LsqConfig::default(),
                    &mut seeded_rng(seed ^ 2),
                );
                acc += reconstruction_accuracy(&x, &res.reconstruction);
            }
            cells.push(prob(acc / trials as f64));
        }
        t.row(cells);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_shape_holds() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<&str>> = csv
            .lines()
            .skip(2)
            .map(|l| l.split(',').collect())
            .collect();
        // Zero-noise, 8n queries: essentially perfect.
        let top_right: f64 = rows[0][4].parse().unwrap();
        assert!(top_right > 0.95, "zero-noise accuracy {top_right}");
        // Heavy noise (n/2), n queries: near chance.
        let bottom_left: f64 = rows[4][1].parse().unwrap();
        assert!(bottom_left < 0.8, "heavy-noise accuracy {bottom_left}");
        // Monotone-ish in queries at sqrt(n) noise.
        let mid_few: f64 = rows[2][1].parse().unwrap();
        let mid_many: f64 = rows[2][4].parse().unwrap();
        assert!(mid_many >= mid_few - 0.05, "few {mid_few} many {mid_many}");
    }
}
