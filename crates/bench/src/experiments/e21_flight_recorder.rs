//! E21 — request observability at the service edge: wire-propagated
//! correlation ids, the per-tenant flight recorder, and the labeled metric
//! views an operator of the Cohen–Nissim target system would have needed.
//! The production LP attack ("Linear Program Reconstruction in Practice",
//! arXiv:1810.05692) went unnoticed partly because nothing tied the flood
//! of subset queries back to one principal; this experiment drives the
//! [`so_serve`] service through a mixed episode — tagged and untagged
//! requests, answered workloads, a refused reconstruction attempt, metered
//! DP releases — and prints what the observability surface retained:
//! echoed request ids, flight-recorder records (codes, evidence, ε, rows),
//! and per-`{tenant, op}` / per-`{tenant, code}` counter deltas.
//!
//! Determinism: sessions are strictly sequential, so server-assigned ids
//! are `srv-1`, `srv-2`, … in request order whatever the worker count; the
//! transcript prints the recorder's cumulative total and the newest three
//! records only (never the ring length, the cap, or any `*_micros` field),
//! so `SO_FLIGHT_CAP=4` and the default 256 render byte-identical tables.
//! CI replays this experiment across `SO_THREADS`, `SO_STORAGE`,
//! `SO_SCHEDULE`, tracing, and `SO_FLIGHT_CAP` and diffs the output
//! against the checked-in `experiments/e21_transcript.txt` artifact.

use so_data::rng::{derive_seed, seeded_rng};
use so_plan::workload::Noise;
use so_serve::obs::{serve_requests_by_op, serve_tenant_refusals};
use so_serve::{
    lp_attack, serve_metrics, spawn, AttackOutcome, Response, ServerConfig, ServiceClient,
    TenantConfig, WireQuery,
};

use crate::{Scale, Table};

/// Master seed for every E21 stream.
const MASTER_SEED: u64 = 0xE21;

/// Truncates evidence for the transcript (deterministically).
fn clip(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        let head: String = s.chars().take(max).collect();
        format!("{head}…")
    }
}

/// One correlation row: issue `op` (optionally tagged) and report the id
/// that came back.
fn correlate(
    table: &mut Table,
    client: &mut ServiceClient,
    seq: usize,
    op: &str,
    supplied: Option<&str>,
    call: impl FnOnce(&mut ServiceClient),
) {
    if let Some(id) = supplied {
        client.set_next_request_id(id);
    }
    call(client);
    table.row(Vec::from([
        format!("#{seq}"),
        op.to_owned(),
        supplied.unwrap_or("—").to_owned(),
        client.last_request_id().unwrap_or("—").to_owned(),
    ]));
}

/// Runs E21 at `scale` and renders the tables.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(24, 48);
    let m = 4 * n;
    let one = || vec![WireQuery::Subset(vec![0])];

    // Counter deltas, not absolutes: the registry is process-global and
    // `run_all` executes every experiment in one process. Tenant names are
    // E21-scoped so labeled series never collide with other experiments.
    let sm = serve_metrics();
    let flight_base = sm.flight_records.get();
    let by_op_base = [
        serve_requests_by_op("workload", "e21-open").get(),
        serve_requests_by_op("workload", "e21-metered").get(),
        serve_requests_by_op("flight", "e21-open").get(),
    ];
    let refusal_base = serve_tenant_refusals("SO-RECON", "e21-metered").get();

    let tenants = Vec::from([
        TenantConfig::ungated("e21-open", n, derive_seed(MASTER_SEED, 10)),
        TenantConfig::gated("e21-metered", n, derive_seed(MASTER_SEED, 11))
            .with_continual_budget(1.0),
    ]);
    let server = spawn(tenants, ServerConfig::default(), None).expect("server boots");

    // ---- E21.1: request-id correlation over the wire ---------------------
    // Client-supplied ids echo verbatim; untagged requests get the server's
    // deterministic `srv-N` sequence.
    let mut correlation = Table::new(
        "E21.1 request-id correlation (client-tagged vs server-assigned)",
        &["request", "op", "supplied id", "echoed id"],
    );
    let mut c = ServiceClient::connect(server.local_addr()).expect("connect");
    correlate(&mut correlation, &mut c, 1, "hello", Some("boot-1"), |c| {
        c.hello("e21-open").expect("hello");
    });
    correlate(&mut correlation, &mut c, 2, "ping", None, |c| {
        c.ping().expect("ping");
    });
    correlate(&mut correlation, &mut c, 3, "workload", Some("wl-1"), |c| {
        c.workload(one(), Noise::Exact).expect("workload");
    });
    correlate(&mut correlation, &mut c, 4, "ping", None, |c| {
        c.ping().expect("ping");
    });

    // ---- E21.2: the flight recorder after a burst ------------------------
    // Four more answered workloads, then a `flight` dump on the same
    // session. The table shows the cumulative total and the newest three
    // records — cap-invariant by construction.
    for i in 1..=4 {
        c.set_next_request_id(&format!("q-{i}"));
        c.workload(one(), Noise::Exact).expect("workload");
    }
    c.set_next_request_id("dump-1");
    let (_, total, records) = c.flight().expect("flight dump");
    let mut recorder = Table::new(
        "E21.2 flight recorder, e21-open tenant (cumulative total + newest 3)",
        &["record", "deterministic fields"],
    );
    recorder.row(Vec::from([
        "recorded (all-time)".to_owned(),
        total.to_string(),
    ]));
    let newest = records.iter().rev().take(3).rev();
    for (i, r) in newest.enumerate() {
        recorder.row(Vec::from([
            format!("newest-{}", 3 - i),
            r.transcript_fields(),
        ]));
    }

    // ---- E21.3: refusal forensics + metered releases ---------------------
    // A reconstruction attempt against the gated tenant leaves a refusal
    // record with codes and evidence; a budget-fitting DP workload leaves
    // an answered record with its ε debit.
    let mut forensics = Table::new(
        "E21.3 flight-recorder forensics, e21-metered tenant",
        &["stage", "record"],
    );
    let mut g = ServiceClient::connect(server.local_addr()).expect("connect");
    g.set_next_request_id("atk-hello");
    g.hello("e21-metered").expect("hello");
    let mut rng = seeded_rng(derive_seed(MASTER_SEED, 20));
    g.set_next_request_id("atk-1");
    match lp_attack(&mut g, n, m, Noise::Exact, &mut rng).expect("attack ran") {
        AttackOutcome::Refused { .. } => {}
        other => panic!("gated tenant must refuse: {other:?}"),
    }
    g.set_next_request_id("dp-1");
    match g
        .workload(
            vec![WireQuery::Subset(vec![0]), WireQuery::Subset(vec![1, 2])],
            Noise::PureDp { epsilon: 0.1 },
        )
        .expect("dp workload")
    {
        Response::Answers { .. } => {}
        other => panic!("fitting DP workload must be answered: {other:?}"),
    }
    let (_, g_total, g_records) = g.flight().expect("flight dump");
    forensics.row(Vec::from([
        "recorded (all-time)".to_owned(),
        g_total.to_string(),
    ]));
    for r in g_records.iter().rev().take(2).rev() {
        forensics.row(Vec::from([
            format!("{} ({})", r.request_id, r.outcome),
            r.transcript_fields(),
        ]));
    }
    if let Some(refused) = g_records.iter().find(|r| r.outcome == "refused") {
        forensics.row(Vec::from([
            "refusal evidence".to_owned(),
            clip(&refused.evidence, 72),
        ]));
    }

    // ---- E21.4: the labeled metric views ---------------------------------
    let mut labeled = Table::new(
        "E21.4 per-tenant labeled metrics (deltas; gauges absolute)",
        &["series", "value"],
    );
    let by_op_now = [
        serve_requests_by_op("workload", "e21-open").get(),
        serve_requests_by_op("workload", "e21-metered").get(),
        serve_requests_by_op("flight", "e21-open").get(),
    ];
    let by_op_names = [
        "so_serve_requests_by_op_total{op=workload,tenant=e21-open}",
        "so_serve_requests_by_op_total{op=workload,tenant=e21-metered}",
        "so_serve_requests_by_op_total{op=flight,tenant=e21-open}",
    ];
    for (i, name) in by_op_names.iter().enumerate() {
        labeled.row(Vec::from([
            (*name).to_owned(),
            (by_op_now[i] - by_op_base[i]).to_string(),
        ]));
    }
    labeled.row(Vec::from([
        "so_serve_tenant_refusals_total{code=SO-RECON,tenant=e21-metered}".to_owned(),
        (serve_tenant_refusals("SO-RECON", "e21-metered").get() - refusal_base).to_string(),
    ]));
    labeled.row(Vec::from([
        "so_serve_flight_records_total".to_owned(),
        (sm.flight_records.get() - flight_base).to_string(),
    ]));
    let reg = so_obs::global();
    let spent = reg
        .gauge_value_with(
            "so_serve_tenant_epsilon_spent",
            &[("tenant", "e21-metered")],
        )
        .unwrap_or(0.0);
    let remaining = reg
        .gauge_value_with(
            "so_serve_tenant_epsilon_remaining",
            &[("tenant", "e21-metered")],
        )
        .unwrap_or(0.0);
    labeled.row(Vec::from([
        "so_serve_tenant_epsilon_spent{tenant=e21-metered}".to_owned(),
        format!("{spent:.4}"),
    ]));
    labeled.row(Vec::from([
        "so_serve_tenant_epsilon_remaining{tenant=e21-metered}".to_owned(),
        format!("{remaining:.4}"),
    ]));

    server.shutdown();
    Vec::from([correlation, recorder, forensics, labeled])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e21_correlates_records_and_meters() {
        let tables = run(Scale::Quick);
        let rendered: Vec<String> = tables.iter().map(|t| t.render()).collect();
        // Tagged ids echo; untagged requests draw the srv-N sequence.
        assert!(rendered[0].contains("boot-1"), "{}", rendered[0]);
        assert!(rendered[0].contains("srv-1"), "{}", rendered[0]);
        assert!(rendered[0].contains("srv-2"), "{}", rendered[0]);
        // The recorder keeps counting past what it retains, and the newest
        // records carry the client's ids.
        assert!(rendered[1].contains("id=q-4"), "{}", rendered[1]);
        assert!(!rendered[1].contains("micros"), "{}", rendered[1]);
        // Refusal forensics carry codes + evidence; the DP release its ε.
        assert!(rendered[2].contains("SO-RECON"), "{}", rendered[2]);
        assert!(rendered[2].contains("eps=0.2000"), "{}", rendered[2]);
        // Labeled views saw the episode.
        assert!(rendered[3].contains("e21-metered"), "{}", rendered[3]);
        assert!(
            rendered[3].contains("so_serve_tenant_epsilon_remaining{tenant=e21-metered} | 0.8000")
                || rendered[3].contains("0.8000"),
            "{}",
            rendered[3]
        );
    }

    #[test]
    fn e21_transcript_is_reproducible() {
        let a: Vec<String> = run(Scale::Quick).iter().map(|t| t.render()).collect();
        let b: Vec<String> = run(Scale::Quick).iter().map(|t| t.render()).collect();
        assert_eq!(a, b, "same seed, same tables");
    }
}
