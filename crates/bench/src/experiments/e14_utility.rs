//! E14 — utility/privacy trade-offs (§1.1 of the paper).
//!
//! (a) "A lower value of ε corresponds to a better privacy guarantee, but
//! also restricts the utility": Laplace vs geometric counting error vs ε,
//! plus composed budgets under basic vs advanced composition;
//! (b) k-anonymity information content vs k for both anonymizers
//! (generalization loss, discernibility, average class-size ratio).

use singling_out_core::game::DataModel;
use so_data::rng::seeded_rng;
use so_data::DatasetBuilder;
use so_dp::{AdvancedComposition, BasicComposition, GaussianCount, GeometricCount, LaplaceCount};
use so_kanon::{
    average_class_size_ratio, datafly_anonymize, discernibility_metric, generalization_loss,
    mondrian_anonymize, DataflyConfig, MondrianConfig,
};

use crate::models::{wide_model_hierarchies, wide_tabular_model, WIDE_QI_COLS};
use crate::table::{prob, Table};
use crate::Scale;

/// Runs E14.
pub fn run(scale: Scale) -> Vec<Table> {
    let reps = scale.pick(20_000usize, 100_000);
    let mut rng = seeded_rng(0xE1414);

    let mut t1 = Table::new(
        &format!("E14a: DP counting error vs eps (true count 100, {reps} releases)"),
        &[
            "eps",
            "laplace MAE",
            "geometric MAE",
            "gaussian MAE (delta=1e-5)",
            "theory 1/eps",
        ],
    );
    for eps in [0.05f64, 0.1, 0.5, 1.0, 2.0] {
        let lap = LaplaceCount::new(eps);
        let geo = GeometricCount::new(eps);
        // Classic Gaussian calibration only exists for eps < 1.
        let gauss = (eps < 1.0).then(|| GaussianCount::new(eps, 1e-5));
        let mut lap_err = 0.0;
        let mut geo_err = 0.0;
        let mut gauss_err = 0.0;
        for _ in 0..reps {
            lap_err += (lap.release(100, &mut rng) - 100.0).abs();
            geo_err += (geo.release(100, &mut rng) - 100).abs() as f64;
            if let Some(g) = &gauss {
                gauss_err += (g.release(100, &mut rng) - 100.0).abs();
            }
        }
        t1.row(vec![
            format!("{eps}"),
            format!("{:.3}", lap_err / reps as f64),
            format!("{:.3}", geo_err / reps as f64),
            if gauss.is_some() {
                format!("{:.3}", gauss_err / reps as f64)
            } else {
                "n/a".into()
            },
            format!("{:.3}", 1.0 / eps),
        ]);
    }

    let mut t2 = Table::new(
        "E14b: composed privacy loss of k queries at eps = 0.01 each",
        &["k", "basic eps", "advanced eps (delta = 1e-6)"],
    );
    let advanced = AdvancedComposition::new(1e-6);
    for k in [10usize, 100, 1_000, 10_000] {
        let b = BasicComposition.compose_uniform(0.01, k);
        let a = advanced.compose_uniform(0.01, k);
        t2.row(vec![
            k.to_string(),
            format!("{:.3}", b.epsilon),
            format!("{:.3}", a.epsilon),
        ]);
    }

    // k-anonymity utility.
    let model = wide_tabular_model();
    let n = scale.pick(400usize, 2_000);
    let rows = model.sample_dataset(n, &mut seeded_rng(0xE1415));
    let ds = {
        let mut b = DatasetBuilder::from_parts(
            model.sampler().distribution().schema().clone(),
            (**model.sampler().interner()).clone(),
        );
        for r in &rows {
            b.push_row(r.clone());
        }
        b.finish()
    };
    let hier = wide_model_hierarchies();
    let mut t3 = Table::new(
        &format!("E14c: k-anonymity information loss vs k (n = {n})"),
        &[
            "anonymizer",
            "k",
            "generalization loss",
            "discernibility",
            "avg class size ratio",
            "suppressed",
        ],
    );
    for k in [2usize, 5, 10, 25] {
        let anon = mondrian_anonymize(&ds, &WIDE_QI_COLS, &MondrianConfig { k });
        t3.row(vec![
            "mondrian".into(),
            k.to_string(),
            prob(generalization_loss(&anon, &ds)),
            discernibility_metric(&anon).to_string(),
            format!("{:.2}", average_class_size_ratio(&anon, k)),
            anon.suppressed_rows().len().to_string(),
        ]);
        let anon = datafly_anonymize(
            &ds,
            &WIDE_QI_COLS,
            &hier,
            &DataflyConfig {
                k,
                max_suppression_fraction: 0.05,
            },
        );
        t3.row(vec![
            "datafly".into(),
            k.to_string(),
            prob(generalization_loss(&anon, &ds)),
            discernibility_metric(&anon).to_string(),
            format!("{:.2}", average_class_size_ratio(&anon, k)),
            anon.suppressed_rows().len().to_string(),
        ]);
    }
    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_scales_inversely_with_eps_and_loss_grows_with_k() {
        let tables = run(Scale::Quick);
        // DP: MAE at ε = 0.05 ≈ 20; at ε = 2 ≈ 0.5.
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let mae_tight: f64 = rows[0][1].parse().unwrap();
        let mae_loose: f64 = rows[rows.len() - 1][1].parse().unwrap();
        assert!((mae_tight - 20.0).abs() < 1.5, "MAE(0.05) = {mae_tight}");
        assert!(mae_loose < 1.0, "MAE(2.0) = {mae_loose}");
        // The (ε, δ)-Gaussian pays for its relaxation with much more noise
        // at small ε (σ = √(2 ln(1.25/δ))/ε ≈ 4.8/ε vs Laplace MAE 1/ε).
        let gauss_tight: f64 = rows[0][3].parse().unwrap();
        assert!(gauss_tight > 3.0 * mae_tight, "gaussian {gauss_tight}");

        // Advanced composition wins at large k.
        let comp = tables[1].to_csv();
        let last: Vec<&str> = comp.lines().last().unwrap().split(',').collect();
        let basic: f64 = last[1].parse().unwrap();
        let adv: f64 = last[2].parse().unwrap();
        assert!(adv < basic / 5.0, "advanced {adv} vs basic {basic}");

        // Mondrian loss grows with k.
        let kan = tables[2].to_csv();
        let mondrian_rows: Vec<Vec<String>> = kan
            .lines()
            .skip(2)
            .filter(|l| l.starts_with("mondrian"))
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let loss_k2: f64 = mondrian_rows[0][2].parse().unwrap();
        let loss_k25: f64 = mondrian_rows[mondrian_rows.len() - 1][2].parse().unwrap();
        assert!(
            loss_k25 > loss_k2,
            "loss must grow with k: {loss_k2} → {loss_k25}"
        );
    }
}
