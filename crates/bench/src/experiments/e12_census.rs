//! E12 — the Census reconstruction (Garfinkel–Abowd–Martindale, paper §1).
//!
//! Paper numbers for the real 2010 data: exact block-level attributes with
//! age within one year for 71% of the US population; 17% re-identified via
//! commercial data; prior agency estimate 0.003%. The pipeline reproduces
//! the *shape*: high reconstruction + substantial re-identification from
//! exact tables, collapse under ε-DP publication.

use so_census::reconstruct::{reconstruct_counts_only, records_matched, records_matched_within};
use so_census::{
    commercial_database, dp_tabulate_block, reconstruct_block, reidentify, swap_records,
    tabulate_block, CensusConfig, CensusData, CommercialConfig, DpTablesConfig, SolverBudget,
    SwapConfig,
};
use so_data::rng::seeded_rng;

use crate::table::{prob, Table};
use crate::Scale;

/// Runs E12.
pub fn run(scale: Scale) -> Vec<Table> {
    let n_blocks = scale.pick(40usize, 200);
    let census = CensusData::generate(
        &CensusConfig {
            n_blocks,
            block_size_lo: 2,
            block_size_hi: 9,
            ..CensusConfig::default()
        },
        &mut seeded_rng(0xE1212),
    );
    let budget = SolverBudget::default();
    let mut rng = seeded_rng(0xE1213);

    let mut t = Table::new(
        &format!(
            "E12: census reconstruction + re-identification, {n_blocks} blocks, {} people",
            census.population()
        ),
        &[
            "publication",
            "blocks unique",
            "records exact",
            "records within ±1y",
            "claimed ids",
            "correct ids",
            "reid rate",
        ],
    );

    // --- Exact tables ----------------------------------------------------
    let mut guesses: Vec<Vec<so_census::Person>> = Vec::with_capacity(n_blocks);
    let mut unique_blocks = 0usize;
    let mut exact = 0usize;
    let mut within1 = 0usize;
    for b in 0..census.n_blocks() {
        let truth = census.block(b);
        let tables = tabulate_block(truth);
        let out = reconstruct_block(&tables, &budget);
        if out.is_unique() {
            unique_blocks += 1;
        }
        let guess = out
            .guess()
            .map(<[so_census::Person]>::to_vec)
            .unwrap_or_default();
        exact += records_matched(truth, &guess);
        within1 += records_matched_within(truth, &guess, 1);
        guesses.push(guess);
    }
    let commercial = commercial_database(&census, &CommercialConfig::default(), &mut rng);
    let reid = reidentify(&census, &guesses, &commercial, 1);
    let pop = census.population() as f64;
    t.row(vec![
        "exact tables".into(),
        format!("{unique_blocks}/{n_blocks}"),
        prob(exact as f64 / pop),
        prob(within1 as f64 / pop),
        reid.claimed.to_string(),
        reid.correct.to_string(),
        prob(reid.reidentification_rate()),
    ]);

    // --- Swapped tables (the 2010-era defense) ---------------------------
    for rate in [0.05f64, 0.15] {
        let (swapped, _) = swap_records(&census, &SwapConfig { swap_rate: rate }, &mut rng);
        let mut guesses: Vec<Vec<so_census::Person>> = Vec::with_capacity(n_blocks);
        let mut unique_blocks = 0usize;
        let mut exact = 0usize;
        let mut within1 = 0usize;
        for b in 0..census.n_blocks() {
            // Tables are exact tabulations of the SWAPPED file...
            let tables = tabulate_block(swapped.block(b));
            let out = reconstruct_block(&tables, &budget);
            if out.is_unique() {
                unique_blocks += 1;
            }
            let guess = out
                .guess()
                .map(<[so_census::Person]>::to_vec)
                .unwrap_or_default();
            // ...but success is measured against the TRUE residents.
            exact += records_matched(census.block(b), &guess);
            within1 += records_matched_within(census.block(b), &guess, 1);
            guesses.push(guess);
        }
        let reid = reidentify(&census, &guesses, &commercial, 1);
        t.row(vec![
            format!("swapped tables ({:.0}%)", rate * 100.0),
            format!("{unique_blocks}/{n_blocks}"),
            prob(exact as f64 / pop),
            prob(within1 as f64 / pop),
            reid.claimed.to_string(),
            reid.correct.to_string(),
            prob(reid.reidentification_rate()),
        ]);
    }

    // --- DP tables at several budgets -------------------------------------
    for eps in [2.0f64, 0.5, 0.1] {
        let mut guesses: Vec<Vec<so_census::Person>> = Vec::with_capacity(n_blocks);
        let mut unique_blocks = 0usize;
        let mut exact = 0usize;
        let mut within1 = 0usize;
        for b in 0..census.n_blocks() {
            let truth = census.block(b);
            let dp = dp_tabulate_block(truth, &DpTablesConfig { epsilon: eps }, &mut rng);
            let out = reconstruct_counts_only(&dp.race_sex_band, &budget);
            if out.is_unique() {
                unique_blocks += 1;
            }
            let guess = out
                .guess()
                .map(<[so_census::Person]>::to_vec)
                .unwrap_or_default();
            exact += records_matched(truth, &guess);
            within1 += records_matched_within(truth, &guess, 1);
            guesses.push(guess);
        }
        let reid = reidentify(&census, &guesses, &commercial, 1);
        t.row(vec![
            format!("dp tables (eps = {eps})"),
            format!("{unique_blocks}/{n_blocks}"),
            prob(exact as f64 / pop),
            prob(within1 as f64 / pop),
            reid.claimed.to_string(),
            reid.correct.to_string(),
            prob(reid.reidentification_rate()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tables_reconstruct_dp_tables_do_not() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let exact_within1: f64 = rows[0][3].parse().unwrap();
        let exact_reid: f64 = rows[0][6].parse().unwrap();
        // The paper's 71% within ±1 year is a full-scale (308M person)
        // figure; the Quick-scale synthetic blocks land in the high 60s.
        assert!(
            exact_within1 > 0.6,
            "within ±1y {exact_within1} (paper: 71%)"
        );
        assert!(exact_reid > 0.17, "re-id rate {exact_reid} (paper: 17%)");
        // Swapping (the 2010 defense) barely dents the attack — the
        // historical outcome the paper recounts.
        let swap_within1: f64 = rows[1][3].parse().unwrap();
        assert!(
            swap_within1 > exact_within1 - 0.15,
            "5% swapping should barely help: {swap_within1} vs {exact_within1}"
        );
        // Tight DP budget collapses re-identification.
        let dp_reid: f64 = rows[rows.len() - 1][6].parse().unwrap();
        assert!(
            dp_reid < exact_reid / 2.0,
            "dp reid {dp_reid} vs exact {exact_reid}"
        );
    }
}
