//! E2 — Theorem 1.1(ii): LP-decoding reconstruction under `α = c·√n`.
//!
//! Paper claim: polynomially many queries with `O(√n)` error still allow
//! reconstruction. The table sweeps `n` and `c`, reporting accuracy for the
//! LP decoder and (ablation) the projected-gradient least-squares decoder.

use so_data::dist::RecordDistribution;
use so_data::rng::{derive_seed, seeded_rng};
use so_data::UniformBits;
use so_query::BoundedNoiseSum;
use so_recon::least_squares::{least_squares_reconstruct, LsqConfig};
use so_recon::{lp_reconstruct, reconstruction_accuracy};

use crate::table::{prob, Table};
use crate::Scale;

/// Runs E2.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(2, 5);
    let ns = scale.pick(vec![32usize], vec![32usize, 48, 64]);
    let cs = [0.25f64, 0.5, 1.0];
    let queries_per_n = 6;
    let mut t = Table::new(
        "E2: LP-decoding reconstruction (Thm 1.1(ii)) — accuracy vs noise c (alpha = c*sqrt(n), m = 6n queries)",
        &["n", "c", "alpha", "m", "LP accuracy", "LSQ accuracy"],
    );
    for &n in &ns {
        for &c in &cs {
            let alpha = c * (n as f64).sqrt();
            let m = queries_per_n * n;
            let mut lp_acc = 0.0;
            let mut lsq_acc = 0.0;
            for trial in 0..trials {
                let seed = derive_seed(0xE202, (n * 100 + trial) as u64 + (c * 1e3) as u64);
                let mut rng = seeded_rng(seed);
                let x = UniformBits::new(n).sample(&mut rng);
                let mut mech = BoundedNoiseSum::new(x.clone(), alpha, seeded_rng(seed ^ 1));
                let lp =
                    lp_reconstruct(&mut mech, m, &mut seeded_rng(seed ^ 2)).expect("LP decode");
                lp_acc += reconstruction_accuracy(&x, &lp.reconstruction);
                let mut mech2 = BoundedNoiseSum::new(x.clone(), alpha, seeded_rng(seed ^ 3));
                let lsq = least_squares_reconstruct(
                    &mut mech2,
                    m,
                    &LsqConfig::default(),
                    &mut seeded_rng(seed ^ 4),
                );
                lsq_acc += reconstruction_accuracy(&x, &lsq.reconstruction);
            }
            t.row(vec![
                n.to_string(),
                format!("{c:.2}"),
                format!("{alpha:.1}"),
                m.to_string(),
                prob(lp_acc / trials as f64),
                prob(lsq_acc / trials as f64),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_high_accuracy_at_low_noise() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        // First data row is c = 0.25: LP accuracy should exceed 0.9.
        let first = csv.lines().nth(2).unwrap();
        let lp_acc: f64 = first.split(',').nth(4).unwrap().parse().unwrap();
        assert!(lp_acc > 0.9, "row: {first}");
    }
}
