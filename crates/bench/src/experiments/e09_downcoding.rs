//! E9 — Cohen \[12\]-style strengthening: boundary refinement.
//!
//! The boundary attacker exploits tight boxes (the box's minimum on a wide
//! numeric attribute is attained by exactly one member w.h.p.) and pushes
//! isolation well past the 37% of the plain class attack — toward the
//! ≈ 100% Cohen's full downcoding attack achieves. The table compares the
//! two attackers side by side across `k`.

use singling_out_core::attackers::{BoundaryAttacker, KAnonClassAttacker};
use singling_out_core::game::{run_pso_game, GameConfig};
use singling_out_core::mechanisms::{Anonymizer, KAnonMechanism};
use singling_out_core::stats::Z999;
use so_data::rng::seeded_rng;
use so_kanon::MondrianConfig;

use crate::models::{wide_tabular_model, WIDE_QI_COLS};
use crate::table::{prob, Table};
use crate::Scale;

/// Runs E9.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(120usize, 500);
    let n = 200usize;
    let model = wide_tabular_model();
    let class_attacker = KAnonClassAttacker {
        dist: model.sampler().distribution().clone(),
        qi_cols: WIDE_QI_COLS.to_vec(),
        interner: model.sampler().interner().clone(),
    };
    let boundary_attacker = BoundaryAttacker {
        dist: model.sampler().distribution().clone(),
        qi_cols: WIDE_QI_COLS.to_vec(),
        interner: model.sampler().interner().clone(),
    };
    let mut t = Table::new(
        &format!(
            "E9: boundary (downcoding-style) attack vs plain class attack, n = {n}, trials = {trials}"
        ),
        &[
            "k",
            "class attack success",
            "boundary attack success",
            "boundary breaks PSO",
        ],
    );
    for k in [2usize, 5, 10] {
        let mech = KAnonMechanism::new(
            &model,
            WIDE_QI_COLS.to_vec(),
            Anonymizer::Mondrian(MondrianConfig { k }),
        );
        let cfg = GameConfig::new(n, trials);
        let class_res = run_pso_game(
            &model,
            &mech,
            &class_attacker,
            &cfg,
            &mut seeded_rng(0xE909 + k as u64),
        );
        let boundary_res = run_pso_game(
            &model,
            &mech,
            &boundary_attacker,
            &cfg,
            &mut seeded_rng(0xE90A + k as u64),
        );
        t.row(vec![
            k.to_string(),
            prob(class_res.success_rate()),
            prob(boundary_res.success_rate()),
            boundary_res.breaks_pso_security(Z999, 0.05).to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_attack_dominates() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        for line in csv.lines().skip(2) {
            let cells: Vec<&str> = line.split(',').collect();
            let class: f64 = cells[1].parse().unwrap();
            let boundary: f64 = cells[2].parse().unwrap();
            assert!(
                boundary > class + 0.1,
                "boundary {boundary} should beat class {class}: {line}"
            );
            assert!(boundary > 0.55, "boundary success {boundary}: {line}");
            assert_eq!(cells[3], "true");
        }
    }
}
