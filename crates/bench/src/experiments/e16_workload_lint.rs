//! E16 — static workload linting: attack shapes are recognizable before
//! execution.
//!
//! The `so-analyze` linter runs over *declared* workloads — no query is
//! answered. The first table lints the attack workloads of E1 (exhaustive
//! reconstruction), E2 (LP reconstruction), E6 (prefix-descent composition)
//! and the classic differencing tracker, alongside the E7 DP workload and an
//! honest cross-tab, reporting per-lint finding counts and the verdict. The
//! second table demonstrates gatekeeper mode: a `CountingEngine` behind the
//! lint verdict refuses a flagged workload before answering a single query
//! (one citable refusal per offending query index), while the honest
//! workload flows through the whole-workload planner untouched —
//! `GatedEngine::execute` runs the identical plan the linter saw.

use so_analyze::{
    lint_workload, GatedEngine, LintConfig, LintId, LintReport, Noise, Severity, WorkloadSpec,
};
use so_data::rng::seeded_rng;
use so_data::{AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value};
use so_query::predicate::{
    AllRowPredicate, IntRangePredicate, KeyedHashPredicate, NotRowPredicate, RowHashPredicate,
    RowPredicate, ValueEqualsPredicate,
};
use so_query::shape::PredShape;
use so_query::workload::{all_subsets_workload, random_subset_workload, tracker_workload};
use so_query::CountingEngine;

use crate::table::Table;
use crate::Scale;

/// The E1 workload: every subset of `[n]`, one answer each.
pub fn exhaustive_spec(n: usize, noise: Noise) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n);
    w.push_subsets(&all_subsets_workload(n), noise);
    w
}

/// The E2 workload: `m` random density-1/2 subsets with bounded noise `α`.
pub fn lp_spec(n: usize, m: usize, alpha: f64, seed: u64) -> WorkloadSpec {
    let mut rng = seeded_rng(seed);
    let mut w = WorkloadSpec::new(n);
    w.push_subsets(
        &random_subset_workload(n, m, 0.5, &mut rng),
        Noise::Bounded { alpha },
    );
    w
}

/// The E6 composition-attack workload: the Theorem 2.8 prefix-descent chain
/// (one count per prefix depth `0..=depth` of a target record's bits).
pub fn prefix_descent_spec(n_rows: usize, depth: usize, noise: Noise) -> WorkloadSpec {
    let bits: Vec<bool> = (0..depth).map(|i| i % 3 == 0).collect();
    let mut w = WorkloadSpec::new(n_rows);
    for d in 0..=depth {
        w.push_shape(
            &PredShape::Prefix {
                bits: bits[..d].to_vec(),
            },
            noise,
        );
    }
    w
}

/// The differencing-tracker workload: the full set, then every
/// complement-of-singleton, all exact.
pub fn tracker_spec(n: usize) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n);
    w.push_subsets(&tracker_workload(n), Noise::Exact);
    w
}

/// An honest statistical workload: department counts plus department × sex
/// drill-downs (a textbook cross-tab), exact answers.
pub fn honest_crosstab(n_rows: usize) -> (Vec<Box<dyn RowPredicate>>, WorkloadSpec) {
    let mut preds: Vec<Box<dyn RowPredicate>> = Vec::new();
    for dept in 0..5i64 {
        preds.push(Box::new(ValueEqualsPredicate {
            col: 0,
            value: Value::Int(dept),
        }));
        for sex in 0..2i64 {
            preds.push(Box::new(AllRowPredicate {
                parts: vec![
                    Box::new(ValueEqualsPredicate {
                        col: 0,
                        value: Value::Int(dept),
                    }),
                    Box::new(ValueEqualsPredicate {
                        col: 1,
                        value: Value::Int(sex),
                    }),
                ],
            }));
        }
    }
    let mut w = WorkloadSpec::new(n_rows);
    for p in &preds {
        w.push_predicate(p.as_ref(), Noise::Exact);
    }
    (preds, w)
}

/// The hash-tracker differencing pair over tabular data: `A` and
/// `A ∧ ¬H` where `H` is a keyed-hash residue of design weight `1/4096`,
/// so the exact pair isolates an expected `n/4096 < 1` rows.
pub fn hash_tracker_pair(n_rows: usize) -> (Vec<Box<dyn RowPredicate>>, WorkloadSpec) {
    let range = IntRangePredicate {
        col: 0,
        lo: 0,
        hi: 1000,
    };
    let hash = RowHashPredicate {
        hash: KeyedHashPredicate::new(0xE16, 4096, 0),
        cols: vec![0, 1],
    };
    let preds: Vec<Box<dyn RowPredicate>> = vec![
        Box::new(AllRowPredicate {
            parts: vec![Box::new(range)],
        }),
        Box::new(AllRowPredicate {
            parts: vec![
                Box::new(range),
                Box::new(NotRowPredicate {
                    inner: Box::new(hash),
                }),
            ],
        }),
    ];
    let mut w = WorkloadSpec::new(n_rows);
    for p in &preds {
        w.push_predicate(p.as_ref(), Noise::Exact);
    }
    (preds, w)
}

/// A small dept × sex dataset for the gatekeeper demonstration.
fn crosstab_dataset(n: usize) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("sex", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..n {
        b.push_row(vec![Value::Int((i % 5) as i64), Value::Int((i % 2) as i64)]);
    }
    b.finish()
}

fn lint_row(t: &mut Table, label: &str, w: &mut WorkloadSpec, cfg: &LintConfig) -> LintReport {
    let r = lint_workload(w, cfg);
    let warns = r
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .count();
    t.row(vec![
        label.to_owned(),
        w.n_rows().to_string(),
        w.len().to_string(),
        r.count(LintId::Differencing).to_string(),
        r.count(LintId::ReconstructionDensity).to_string(),
        r.count(LintId::BudgetExceeded).to_string(),
        warns.to_string(),
        r.truncated.to_string(),
        r.verdict().to_owned(),
    ]);
    r
}

/// Runs E16.
pub fn run(scale: Scale) -> Vec<Table> {
    let cfg = LintConfig::default();
    let n_exh = scale.pick(8usize, 12);
    let n_lp = scale.pick(64usize, 200);
    let depth = 14usize; // ⌈2 log₂ 100⌉, the E6 negligibility threshold

    let mut t = Table::new(
        "E16: static workload lints — attack shapes flagged before execution (t = 1)",
        &[
            "workload",
            "n",
            "queries",
            LintId::Differencing.code(),
            LintId::ReconstructionDensity.code(),
            LintId::BudgetExceeded.code(),
            "warns",
            "truncated",
            "verdict",
        ],
    );
    lint_row(
        &mut t,
        "E1 exhaustive / exact",
        &mut exhaustive_spec(n_exh, Noise::Exact),
        &cfg,
    );
    lint_row(
        &mut t,
        "E1 exhaustive / alpha=n/8",
        &mut exhaustive_spec(
            n_exh,
            Noise::Bounded {
                alpha: n_exh as f64 / 8.0,
            },
        ),
        &cfg,
    );
    lint_row(
        &mut t,
        "E2 LP 4n queries / alpha~0.8sqrt(n)",
        &mut lp_spec(n_lp, 4 * n_lp, 0.8 * (n_lp as f64).sqrt(), 0xE162),
        &cfg,
    );
    lint_row(
        &mut t,
        "E6 prefix descent / exact",
        &mut prefix_descent_spec(100, depth, Noise::Exact),
        &cfg,
    );
    lint_row(&mut t, "tracker / exact", &mut tracker_spec(50), &cfg);
    lint_row(
        &mut t,
        "E7 prefix descent / DP eps=0.1",
        &mut prefix_descent_spec(100, depth, Noise::PureDp { epsilon: 0.1 }),
        &cfg,
    );
    lint_row(
        &mut t,
        "honest cross-tab / exact",
        &mut honest_crosstab(500).1,
        &cfg,
    );
    // The ε-budget precheck: the same DP descent against two gate budgets.
    // 15 queries at ε = 0.1 compose to 1.5 under basic composition.
    for budget in [1.0f64, 2.0] {
        let bcfg = LintConfig {
            epsilon_budget: Some(budget),
            ..LintConfig::default()
        };
        lint_row(
            &mut t,
            &format!("E7 DP descent / eps-budget {budget:.1}"),
            &mut prefix_descent_spec(100, depth, Noise::PureDp { epsilon: 0.1 }),
            &bcfg,
        );
    }

    // Gatekeeper mode: the lint verdict wired in front of a CountingEngine.
    let data = crosstab_dataset(scale.pick(200, 1000));
    let mut t2 = Table::new(
        "E16b: gatekeeper-mode CountingEngine — flagged workloads refused before any answer",
        &["workload", "gate", "reason", "answered", "refused"],
    );
    let runs: Vec<(&str, (Vec<Box<dyn RowPredicate>>, WorkloadSpec))> = vec![
        (
            "hash tracker pair / exact",
            hash_tracker_pair(data.n_rows()),
        ),
        ("honest cross-tab / exact", honest_crosstab(data.n_rows())),
    ];
    for (label, (_preds, w)) in runs {
        let mut gated = GatedEngine::new(CountingEngine::new(&data, None), w, &cfg);
        let _ = gated.execute();
        let reason = gated
            .report()
            .findings
            .iter()
            .find(|f| f.severity == Severity::Deny)
            .map_or("-".to_owned(), |f| f.lint.code().to_owned());
        t2.row(vec![
            label.to_owned(),
            if gated.is_open() { "open" } else { "closed" }.to_owned(),
            reason,
            gated.engine().auditor().queries_answered().to_string(),
            gated.engine().auditor().queries_refused().to_string(),
        ]);
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linter_flags_attack_workloads_with_correct_indices() {
        let cfg = LintConfig::default();
        // E1 exhaustive, exact: differencing names the ({0}, ∅) pair first,
        // and the density pass recognizes the exhaustive regime.
        let r = lint_workload(&mut exhaustive_spec(8, Noise::Exact), &cfg);
        assert!(r.denies());
        let d = r.findings_for(LintId::Differencing);
        assert!(!d.is_empty());
        assert_eq!(
            d[0].queries,
            vec![1, 0],
            "superset {{0}} ⊃ ∅ differ on row 0"
        );
        assert!(r.count(LintId::ReconstructionDensity) >= 1);

        // E6 prefix descent, exact: the adjacent pair at the weight gate.
        let r = lint_workload(&mut prefix_descent_spec(100, 14, Noise::Exact), &cfg);
        assert!(r.denies());
        let d = r.findings_for(LintId::Differencing);
        assert_eq!(d[0].queries, vec![6, 7], "first flagged pair at the gate");

        // Tracker: every finding pairs the full set with a complement.
        let r = lint_workload(&mut tracker_spec(50), &cfg);
        assert!(r.denies());
        for f in r.findings_for(LintId::Differencing) {
            assert_eq!(f.queries[0], 0, "full set is the superset: {f}");
        }

        // E7 DP descent: zero findings.
        let r = lint_workload(
            &mut prefix_descent_spec(100, 14, Noise::PureDp { epsilon: 0.1 }),
            &cfg,
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn quick_run_verdicts() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        let rows: Vec<Vec<String>> = tables[0]
            .to_csv()
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        let verdict = |label: &str| -> String {
            let row = rows
                .iter()
                .find(|r| r[0].starts_with(label))
                .unwrap_or_else(|| panic!("row {label}"));
            row[row.len() - 1].clone()
        };
        assert_eq!(verdict("E1 exhaustive / exact"), "REFUSE");
        assert_eq!(verdict("E1 exhaustive / alpha"), "REFUSE");
        assert_eq!(verdict("E2 LP"), "REFUSE");
        assert_eq!(verdict("E6 prefix descent"), "REFUSE");
        assert_eq!(verdict("tracker"), "REFUSE");
        assert_eq!(verdict("E7 prefix descent / DP"), "PASS");
        assert_eq!(verdict("honest cross-tab"), "PASS");
        assert_eq!(verdict("E7 DP descent / eps-budget 1.0"), "REFUSE");
        assert_eq!(verdict("E7 DP descent / eps-budget 2.0"), "PASS");

        // Gatekeeper: flagged workload answers nothing; honest answers all.
        let g: Vec<Vec<String>> = tables[1]
            .to_csv()
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        assert_eq!(g[0][1], "closed");
        assert_eq!(g[0][2], LintId::Differencing.code());
        assert_eq!(g[0][3], "0", "no query of the flagged workload answered");
        assert_eq!(g[0][4], "2");
        assert_eq!(g[1][1], "open");
        assert_eq!(g[1][3], "15");
        assert_eq!(g[1][4], "0");
    }
}
