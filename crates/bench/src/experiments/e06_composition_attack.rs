//! E6 — Theorems 2.7/2.8: PSO security does not compose.
//!
//! PSO success of the prefix-descent attacker against the composition of
//! `ℓ` exact count mechanisms, as a function of `ℓ`. The crossover sits at
//! `ℓ = ⌈c·log₂ n⌉` (the weight gate: a shorter prefix is not negligible);
//! beyond it success jumps to ≈ 1 — count mechanisms, individually secure
//! (E5), compose into a perfect singling-out machine.

use singling_out_core::attackers::{PrefixDescentAttacker, SliceFingerprintAttacker};
use singling_out_core::game::{run_pso_game, BitModel, GameConfig};
use singling_out_core::mechanisms::{AdaptiveCountOracle, SliceFingerprintOracle};
use singling_out_core::negligible::NegligibilityPolicy;
use so_data::rng::seeded_rng;

use crate::table::{prob, Table};
use crate::Scale;

/// Runs E6.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(60usize, 300);
    let n = 100usize;
    let model = BitModel::uniform(64);
    let policy = NegligibilityPolicy::default();
    let needed = policy.required_prefix_bits(n); // ⌈2 log2 100⌉ = 14
    let mut t = Table::new(
        &format!(
            "E6: composition of count mechanisms (Thm 2.8), n = {n}; negligible prefix needs {needed} bits"
        ),
        &[
            "levels (count queries)",
            "isolation rate",
            "PSO success",
            "note",
        ],
    );
    let levels: Vec<usize> = vec![4, needed / 2, needed - 1, needed, needed + 4, needed + 10];
    for &l in &levels {
        let cfg = GameConfig {
            policy,
            ..GameConfig::new(n, trials)
        };
        let res = run_pso_game(
            &model,
            &AdaptiveCountOracle::exact(l),
            &PrefixDescentAttacker,
            &cfg,
            &mut seeded_rng(0xE606 + l as u64),
        );
        let note = if l < needed {
            "prefix weight not negligible"
        } else {
            "ω(log n) regime — attack wins"
        };
        t.row(vec![
            l.to_string(),
            prob(res.isolation_rate()),
            prob(res.success_rate()),
            note.into(),
        ]);
    }

    // The theorem-exact variant: a genuinely FIXED set of count queries
    // (slice + bit fingerprints). Success = P(slice singleton) ≈ 1/e.
    let mut t2 = Table::new(
        &format!(
            "E6b: non-adaptive (fixed-query) composition attack, n = {n}; theory ≈ 1/e = 0.368"
        ),
        &["fingerprint bits", "queries", "PSO success"],
    );
    for bits in [10usize, 12, 16] {
        let cfg = GameConfig {
            policy,
            ..GameConfig::new(n, trials)
        };
        let res = run_pso_game(
            &model,
            &SliceFingerprintOracle::new(n as u64, bits, 0xE6B),
            &SliceFingerprintAttacker {
                modulus: n as u64,
                bits,
                seed: 0xE6B,
            },
            &cfg,
            &mut seeded_rng(0xE60B + bits as u64),
        );
        t2.row(vec![
            bits.to_string(),
            (1 + bits).to_string(),
            prob(res.success_rate()),
        ]);
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_behaviour() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(2)
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        // Below the negligibility threshold: zero PSO success.
        let below: f64 = rows[0][2].parse().unwrap();
        assert_eq!(below, 0.0);
        // Comfortably above: near-certain success.
        let above: f64 = rows[rows.len() - 1][2].parse().unwrap();
        assert!(above > 0.9, "success above threshold {above}");
        // Isolation rate is ~1 even below threshold (the descent always
        // pins a record; only the weight gate changes).
        let iso_below: f64 = rows[1][1].parse().unwrap();
        assert!(iso_below > 0.9, "isolation {iso_below}");
        // Fixed-query variant lands near 1/e.
        let t2 = tables[1].to_csv();
        for line in t2.lines().skip(2) {
            let rate: f64 = line.split(',').nth(2).unwrap().parse().unwrap();
            assert!((0.2..=0.52).contains(&rate), "fixed-query rate {rate}");
        }
    }
}
