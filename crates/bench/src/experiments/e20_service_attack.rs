//! E20 — linear program reconstruction against a *production-style* query
//! API (Cohen–Nissim, "Linear Program Reconstruction in Practice"): the
//! attack of E2 re-run with the attacker on the wrong side of a socket. A
//! multi-tenant [`so_serve`] instance is booted on the loopback interface
//! and the [`so_serve::lp_attack`] client speaks the length-prefixed wire
//! protocol to it — declaring the Dinur–Nissim density-½ subset workload,
//! submitting it as a remote query batch, and LP-decoding whatever the
//! service chooses to release. Against the ungated tenant the decoded
//! secret matches ≥95 % of rows; against the gated tenants the same
//! workload is refused at the service edge with citable `SO-LINREC` /
//! `SO-RECON` / `SO-CBUDGET` evidence, and the continual accountant meters
//! the only releases that do go out.
//!
//! Determinism: the server runs with `tick_per_request` logical time (no
//! wall clock anywhere in the serving path), client sessions are strictly
//! sequential, every RNG is seeded, and the ephemeral port never appears in
//! the output — so the rendered tables are byte-identical across
//! `SO_THREADS`, `SO_STORAGE`, `SO_SCHEDULE`, and tracing. CI replays this
//! experiment under every configuration axis and diffs the output against
//! the checked-in `experiments/e20_transcript.txt` artifact.

use so_data::rng::{derive_seed, seeded_rng};
use so_plan::workload::Noise;
use so_recon::reconstruction_accuracy;
use so_serve::{
    lp_attack, serve_metrics, serve_refusals, spawn, AttackOutcome, Response, ServerConfig,
    ServiceClient, TenantConfig,
};

use crate::{Scale, Table};

/// Master seed for every E20 stream (tenants and attack generators draw
/// derived streams, so stages never perturb each other).
const MASTER_SEED: u64 = 0xE20;

/// Renders the noise annotation the attacker declares.
fn noise_label(noise: Noise) -> String {
    match noise {
        Noise::Exact => "exact".to_owned(),
        Noise::Bounded { alpha } => format!("bounded α={alpha:.2}"),
        Noise::PureDp { epsilon } => format!("ε={epsilon:.4}/query"),
    }
}

/// Truncates an audit record for the transcript (deterministically).
fn clip(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        let head: String = s.chars().take(max).collect();
        format!("{head}…")
    }
}

/// One remote attack stage: fresh session, `hello`, the full LP workload,
/// then a row for the table. Accuracy is scored server-side against the
/// tenant's secret column — the attacker itself never sees it.
#[allow(clippy::too_many_arguments)]
fn attack_row(
    server: &so_serve::ServerHandle,
    tenant: &str,
    gate_label: &str,
    n: usize,
    m: usize,
    noise: Noise,
    stream: u64,
    target: f64,
) -> Vec<String> {
    let mut rng = seeded_rng(derive_seed(MASTER_SEED, stream));
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
    client.hello(tenant).expect("hello");
    let outcome = lp_attack(&mut client, n, m, noise, &mut rng).expect("attack ran");
    match outcome {
        AttackOutcome::Reconstructed { reconstruction, .. } => {
            let accuracy = server
                .with_tenant(tenant, |t| {
                    reconstruction_accuracy(t.secret(), &reconstruction)
                })
                .expect("tenant exists");
            let verdict = if accuracy >= target {
                "reconstructed — breach"
            } else if accuracy >= 0.75 {
                "partial reconstruction"
            } else {
                "decode defeated"
            };
            Vec::from([
                tenant.to_owned(),
                gate_label.to_owned(),
                noise_label(noise),
                m.to_string(),
                "answered".to_owned(),
                format!("{accuracy:.3}"),
                verdict.to_owned(),
            ])
        }
        AttackOutcome::Refused {
            codes, refusals, ..
        } => Vec::from([
            tenant.to_owned(),
            gate_label.to_owned(),
            noise_label(noise),
            m.to_string(),
            format!("refused ({refusals} refusals)"),
            "—".to_owned(),
            format!("defense held [{}]", codes.join(", ")),
        ]),
    }
}

/// The session tenant's budget state as a table row.
fn budget_row(server: &so_serve::ServerHandle, tenant: &str, stage: &str) -> Vec<String> {
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
    client.hello(tenant).expect("hello");
    match client.budget().expect("budget") {
        Response::BudgetState {
            accounting,
            spent,
            remaining,
            version,
        } => Vec::from([
            stage.to_owned(),
            if accounting { "continual" } else { "none" }.to_owned(),
            format!("{spent:.4}"),
            format!("{remaining:.4}"),
            format!("v{version}"),
        ]),
        other => panic!("unexpected budget response: {other:?}"),
    }
}

/// Runs E20 at `scale` and renders the tables.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(24, 48);
    let m = 4 * n;
    let alpha = (n as f64).sqrt() / 2.0;
    let budget = 1.0;
    // Per-query ε that fits the continual budget at either scale …
    let eps_fit = budget * 0.75 / m as f64;
    // … and one that blows through it.
    let eps_over = 0.05;

    // Counter deltas, not absolutes: the registry is process-global and
    // `run_all` executes every experiment in one process.
    let sm = serve_metrics();
    let base = [
        sm.sessions.get(),
        sm.requests.get(),
        sm.workloads_answered.get(),
        sm.workloads_refused.get(),
        sm.rate_limited.get(),
        sm.proto_errors.get(),
    ];
    let refusal_base = [
        serve_refusals("SO-LINREC").get(),
        serve_refusals("SO-RECON").get(),
        serve_refusals("SO-CBUDGET").get(),
    ];

    let tenants = Vec::from([
        TenantConfig::ungated("open", n, derive_seed(MASTER_SEED, 10)),
        TenantConfig::gated("guarded", n, derive_seed(MASTER_SEED, 11)),
        TenantConfig::gated("metered", n, derive_seed(MASTER_SEED, 12))
            .with_continual_budget(budget),
        TenantConfig::ungated("burst", n, derive_seed(MASTER_SEED, 13)).with_rate(3, 5),
    ]);
    let server = spawn(tenants, ServerConfig::default(), None).expect("server boots");

    // ---- E20.1: the remote LP attack, tenant by tenant -------------------
    let mut attacks = Table::new(
        &format!("E20.1 remote LP reconstruction over the wire (n = {n} rows, m = {m} queries)"),
        &[
            "tenant", "gate", "noise", "m", "service", "accuracy", "verdict",
        ],
    );
    let stages: [(&str, &str, Noise, u64); 7] = [
        ("open", "none", Noise::Exact, 20),
        ("open", "none", Noise::Bounded { alpha }, 21),
        ("open", "none", Noise::PureDp { epsilon: eps_fit }, 22),
        ("guarded", "lint", Noise::Exact, 23),
        ("metered", "lint+ε", Noise::Exact, 24),
        ("metered", "lint+ε", Noise::PureDp { epsilon: eps_over }, 25),
        ("metered", "lint+ε", Noise::PureDp { epsilon: eps_fit }, 26),
    ];
    for (tenant, gate, noise, stream) in stages {
        attacks.row(attack_row(&server, tenant, gate, n, m, noise, stream, 0.95));
    }

    // ---- E20.2: the audit trail the gated tenant kept --------------------
    let mut audit = Table::new(
        "E20.2 service-edge audit trail (guarded tenant)",
        &["entry", "audit record"],
    );
    server
        .with_tenant("guarded", |t| {
            let log = t.refusal_log();
            let total = log.len();
            let mut rows: Vec<(String, String)> = Vec::new();
            if let Some(first) = log.first() {
                rows.push(("first".to_owned(), clip(first, 96)));
            }
            if let Some(recon) = log.iter().find(|e| e.contains("SO-RECON")) {
                rows.push(("workload-level".to_owned(), clip(recon, 96)));
            }
            rows.push(("entries kept".to_owned(), total.to_string()));
            rows
        })
        .expect("tenant exists")
        .into_iter()
        .for_each(|(k, v)| {
            audit.row(Vec::from([k, v]));
        });

    // ---- E20.3: continual accounting on the metered tenant ---------------
    let mut budgets = Table::new(
        "E20.3 continual-release accounting (metered tenant, ε budget = 1.0)",
        &["stage", "accounting", "ε spent", "ε remaining", "version"],
    );
    budgets.row(budget_row(&server, "metered", "after the episode"));
    budgets.row(budget_row(&server, "open", "open tenant (control)"));

    // ---- E20.4: deterministic rate limiting ------------------------------
    let mut rate = Table::new(
        "E20.4 token-bucket rate limiting (burst tenant: capacity 3, +1 token / 5 ticks)",
        &["request", "op", "outcome"],
    );
    {
        let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
        client.hello("burst").expect("hello");
        let mut seq = 0usize;
        let mut retry_hint = 0u64;
        for _ in 0..6 {
            seq += 1;
            match client.budget().expect("call") {
                Response::BudgetState { .. } => {
                    rate.row(Vec::from([
                        format!("#{seq}"),
                        "budget".to_owned(),
                        "admitted".to_owned(),
                    ]));
                }
                Response::Error {
                    code,
                    retry_after_ticks,
                    ..
                } => {
                    retry_hint = retry_after_ticks.unwrap_or(0);
                    rate.row(Vec::from([
                        format!("#{seq}"),
                        "budget".to_owned(),
                        format!("{code}, retry after {retry_hint} ticks"),
                    ]));
                    break;
                }
                other => panic!("unexpected rate response: {other:?}"),
            }
        }
        // Honest retry-after: pings advance the logical clock without
        // touching the bucket; after `retry_hint` of them the next budget
        // request must be admitted.
        for _ in 0..retry_hint {
            client.ping().expect("ping");
        }
        seq += 1;
        let outcome = match client.budget().expect("call") {
            Response::BudgetState { .. } => format!("admitted after {retry_hint} ticks"),
            Response::Error { code, .. } => format!("{code} (retry hint was dishonest)"),
            other => panic!("unexpected rate response: {other:?}"),
        };
        rate.row(Vec::from([format!("#{seq}"), "budget".to_owned(), outcome]));
    }

    // ---- E20.5: what the live registry saw -------------------------------
    let mut counters = Table::new(
        "E20.5 service counters for the episode (deltas from the live registry)",
        &["metric", "count"],
    );
    let now = [
        sm.sessions.get(),
        sm.requests.get(),
        sm.workloads_answered.get(),
        sm.workloads_refused.get(),
        sm.rate_limited.get(),
        sm.proto_errors.get(),
    ];
    let refusal_now = [
        serve_refusals("SO-LINREC").get(),
        serve_refusals("SO-RECON").get(),
        serve_refusals("SO-CBUDGET").get(),
    ];
    let names = [
        "so_serve_sessions_total",
        "so_serve_requests_total",
        "so_serve_workloads_answered_total",
        "so_serve_workloads_refused_total",
        "so_serve_rate_limited_total",
        "so_serve_proto_errors_total",
    ];
    for (i, name) in names.iter().enumerate() {
        counters.row(Vec::from([
            (*name).to_owned(),
            (now[i] - base[i]).to_string(),
        ]));
    }
    for (i, code) in ["SO-LINREC", "SO-RECON", "SO-CBUDGET"].iter().enumerate() {
        counters.row(Vec::from([
            format!("so_serve_query_refusals_total{{code={code}}}"),
            (refusal_now[i] - refusal_base[i]).to_string(),
        ]));
    }

    server.shutdown();
    Vec::from([attacks, audit, budgets, rate, counters])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e20_reconstructs_open_and_is_refused_gated() {
        let tables = run(Scale::Quick);
        let rendered: Vec<String> = tables.iter().map(|t| t.render()).collect();
        let attacks = &rendered[0];
        assert!(attacks.contains("reconstructed — breach"));
        assert!(attacks.contains("SO-RECON"));
        assert!(attacks.contains("SO-CBUDGET"));
        assert!(rendered[1].contains("SO-RECON"));
        assert!(rendered[3].contains("SO-RATE"));
    }

    #[test]
    fn e20_transcript_is_reproducible() {
        let a: Vec<String> = run(Scale::Quick).iter().map(|t| t.render()).collect();
        let b: Vec<String> = run(Scale::Quick).iter().map(|t| t.render()).collect();
        assert_eq!(a, b, "same seed, same tables");
    }
}
