//! E15 — "k-anonymity is not closed under composition" (§1.1, refs \[12\],
//! \[23\]).
//!
//! The same dataset is released twice — once through Mondrian, once through
//! Datafly — each release k-anonymous on its own. Intersecting the two
//! partitions yields the joint equivalence classes an adversary holding
//! both releases sees; the table reports how far below `k` they fall and
//! how many records are singled out entirely.

use singling_out_core::attackers::intersection_exposure;
use singling_out_core::game::DataModel;
use so_data::rng::{derive_seed, seeded_rng};
use so_data::DatasetBuilder;
use so_kanon::{
    datafly_anonymize, is_k_anonymous, mondrian_anonymize, DataflyConfig, MondrianConfig,
};

use crate::models::{wide_model_hierarchies, wide_tabular_model, WIDE_QI_COLS};
use crate::table::{prob, Table};
use crate::Scale;

/// Runs E15.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = scale.pick(500usize, 2_000);
    let model = wide_tabular_model();
    let hier = wide_model_hierarchies();
    let mut t = Table::new(
        &format!("E15: composition of two k-anonymous releases (mondrian + datafly), n = {n}"),
        &[
            "k",
            "release1 k-anon",
            "release2 k-anon",
            "min joint class",
            "singled-out fraction",
        ],
    );
    for k in [2usize, 5, 10] {
        let rows = model.sample_dataset(n, &mut seeded_rng(derive_seed(0xE1515, k as u64)));
        let ds = {
            let mut b = DatasetBuilder::from_parts(
                model.sampler().distribution().schema().clone(),
                (**model.sampler().interner()).clone(),
            );
            for r in &rows {
                b.push_row(r.clone());
            }
            b.finish()
        };
        let anon1 = mondrian_anonymize(&ds, &WIDE_QI_COLS, &MondrianConfig { k });
        let anon2 = datafly_anonymize(
            &ds,
            &WIDE_QI_COLS,
            &hier,
            &DataflyConfig {
                k,
                max_suppression_fraction: 0.05,
            },
        );
        let exposure = intersection_exposure(&anon1, &anon2);
        t.row(vec![
            k.to_string(),
            is_k_anonymous(&anon1, k).to_string(),
            is_k_anonymous(&anon2, k).to_string(),
            exposure.min_joint_class.to_string(),
            prob(exposure.singled_out_fraction()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_classes_fall_below_k() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        for line in csv.lines().skip(2) {
            let cells: Vec<&str> = line.split(',').collect();
            let k: usize = cells[0].parse().unwrap();
            assert_eq!(cells[1], "true", "release 1 must be k-anonymous: {line}");
            assert_eq!(cells[2], "true", "release 2 must be k-anonymous: {line}");
            let min_joint: usize = cells[3].parse().unwrap();
            assert!(
                min_joint < k,
                "joint class {min_joint} should fall below k = {k}: {line}"
            );
        }
    }
}
