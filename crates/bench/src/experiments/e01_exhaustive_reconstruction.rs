//! E1 — Theorem 1.1(i): exhaustive reconstruction under `α = c·n` noise.
//!
//! Paper claim: with answers to all `2^n` subset queries within error
//! `α = c·n`, any consistent candidate agrees with the secret on all but
//! `4α` entries. The table reports, per `(n, c)`, the measured Hamming
//! error of the reconstruction, the theoretical bound `4c`, and whether the
//! bound held in every trial.

use so_data::dist::RecordDistribution;
use so_data::rng::{derive_seed, seeded_rng};
use so_data::UniformBits;
use so_query::{BoundedNoiseSum, RoundingSum, SubsetSumMechanism};
use so_recon::exhaustive_reconstruct;

use crate::table::{prob, Table};
use crate::Scale;

/// Runs E1. Two error models within the theorem's α budget: random uniform
/// noise (benign — the truth usually stays the unique consistent candidate)
/// and adversarial rounding (worst-case — the mechanism actively erases
/// low-order information, and the measured error approaches the regime the
/// 4α bound is about).
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(3, 10);
    let ns = scale.pick(vec![8usize, 12], vec![8usize, 10, 12, 14]);
    let cs = [0.05f64, 0.1, 0.2];
    let mut t = Table::new(
        "E1: exhaustive reconstruction (Thm 1.1(i)) — error fraction vs noise c (alpha = c*n)",
        &[
            "n",
            "c",
            "alpha",
            "noise model",
            "queries",
            "mean err frac",
            "max err frac",
            "bound 4c",
            "bound held",
        ],
    );
    for &n in &ns {
        for &c in &cs {
            let alpha = c * n as f64;
            for adversarial in [false, true] {
                let mut total_err = 0.0;
                let mut max_err: f64 = 0.0;
                let mut held = true;
                // Both mechanisms honour |answer − truth| ≤ α (RoundingSum
                // floors to the ⌊α⌋+1 grid), so the attacker searches with
                // the same α the theorem grants.
                let effective_alpha = alpha;
                for trial in 0..trials {
                    let seed = derive_seed(0xE101, (n * 1000 + trial) as u64 + (c * 1e4) as u64);
                    let mut rng = seeded_rng(seed);
                    let x = UniformBits::new(n).sample(&mut rng);
                    let mut mech: Box<dyn SubsetSumMechanism> = if adversarial {
                        Box::new(RoundingSum::new(x.clone(), alpha))
                    } else {
                        Box::new(BoundedNoiseSum::new(x.clone(), alpha, seeded_rng(seed ^ 1)))
                    };
                    let res = exhaustive_reconstruct(mech.as_mut(), effective_alpha)
                        .expect("truth is always consistent");
                    let err = x.hamming_distance(&res.reconstruction) as f64 / n as f64;
                    total_err += err;
                    max_err = max_err.max(err);
                    if err * n as f64 > 4.0 * effective_alpha {
                        held = false;
                    }
                }
                t.row(vec![
                    n.to_string(),
                    format!("{c:.2}"),
                    format!("{alpha:.1}"),
                    if adversarial { "rounding" } else { "uniform" }.into(),
                    (1u64 << n).to_string(),
                    prob(total_err / trials as f64),
                    prob(max_err),
                    format!("{:.2}", 4.0 * effective_alpha / n as f64),
                    held.to_string(),
                ]);
            }
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows_and_bound_holds() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].n_rows(), 2 * 3 * 2);
        let csv = tables[0].to_csv();
        for line in csv.lines().skip(2) {
            assert!(line.ends_with("true"), "bound violated: {line}");
        }
    }
}
