//! E8 — Theorem 2.10: k-anonymity permits predicate singling out at ≈ 37%.
//!
//! PSO games against Mondrian and Datafly releases over the wide tabular
//! model, sweeping `k` and `n`. The attacker conjoins the narrowest
//! equivalence-class predicate with a `1/k'` hash slice; the theory says
//! success ≈ `(1−1/k')^{k'−1} ≈ 1/e` independent of `k` — which the table
//! confirms, with every row breaking PSO security.

use singling_out_core::attackers::KAnonClassAttacker;
use singling_out_core::game::{run_pso_game, GameConfig};
use singling_out_core::mechanisms::{Anonymizer, KAnonMechanism};
use singling_out_core::stats::Z999;
use so_data::rng::seeded_rng;
use so_kanon::{DataflyConfig, MondrianConfig};

use crate::models::{wide_model_hierarchies, wide_tabular_model, WIDE_QI_COLS};
use crate::table::{interval, prob, Table};
use crate::Scale;

/// Runs E8.
pub fn run(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(240usize, 500);
    let model = wide_tabular_model();
    let attacker = KAnonClassAttacker {
        dist: model.sampler().distribution().clone(),
        qi_cols: WIDE_QI_COLS.to_vec(),
        interner: model.sampler().interner().clone(),
    };
    let mut t = Table::new(
        &format!("E8: k-anonymity PSO attack (Thm 2.10), trials = {trials}; theory ≈ 0.37"),
        &[
            "anonymizer",
            "k",
            "n",
            "PSO success",
            "99.9% CI",
            "breaks PSO security",
        ],
    );
    let ns = scale.pick(vec![200usize], vec![200usize, 500]);
    for &n in &ns {
        for k in [2usize, 5, 10] {
            let mech = KAnonMechanism::new(
                &model,
                WIDE_QI_COLS.to_vec(),
                Anonymizer::Mondrian(MondrianConfig { k }),
            );
            let cfg = GameConfig::new(n, trials);
            let res = run_pso_game(
                &model,
                &mech,
                &attacker,
                &cfg,
                &mut seeded_rng(0xE808 + (n * 100 + k) as u64),
            );
            let iv = res.success_interval(Z999);
            t.row(vec![
                "mondrian".into(),
                k.to_string(),
                n.to_string(),
                prob(res.success_rate()),
                interval(iv.lo, iv.hi),
                res.breaks_pso_security(Z999, 0.05).to_string(),
            ]);
        }
    }
    // Datafly ablation at one configuration.
    let n = ns[0];
    let k = 5usize;
    let mech = KAnonMechanism::new(
        &model,
        WIDE_QI_COLS.to_vec(),
        Anonymizer::Datafly(
            DataflyConfig {
                k,
                max_suppression_fraction: 0.05,
            },
            wide_model_hierarchies(),
        ),
    );
    let cfg = GameConfig::new(n, trials);
    let res = run_pso_game(&model, &mech, &attacker, &cfg, &mut seeded_rng(0xE808F));
    let iv = res.success_interval(Z999);
    t.row(vec![
        "datafly".into(),
        k.to_string(),
        n.to_string(),
        prob(res.success_rate()),
        interval(iv.lo, iv.hi),
        res.breaks_pso_security(Z999, 0.05).to_string(),
    ]);

    // Footnote 3: the attack carries over to ℓ-diversity unchanged. The
    // release is Mondrian + merge-based 3-diversity on the disease column.
    let mech = KAnonMechanism::new(
        &model,
        WIDE_QI_COLS.to_vec(),
        Anonymizer::Mondrian(MondrianConfig { k }),
    )
    .with_l_diversity(2, 3);
    let res = run_pso_game(&model, &mech, &attacker, &cfg, &mut seeded_rng(0xE808E));
    let iv = res.success_interval(Z999);
    t.row(vec![
        "mondrian+3-diversity".into(),
        k.to_string(),
        n.to_string(),
        prob(res.success_rate()),
        interval(iv.lo, iv.hi),
        res.breaks_pso_security(Z999, 0.05).to_string(),
    ]);

    // Robustness ablation: trust no weight hints — let the game itself
    // estimate every predicate's weight by Monte Carlo.
    let mech = KAnonMechanism::new(
        &model,
        WIDE_QI_COLS.to_vec(),
        Anonymizer::Mondrian(MondrianConfig { k }),
    );
    let cfg_mc = GameConfig {
        weight_check: singling_out_core::game::WeightCheck::MonteCarlo { samples: 4_000 },
        ..GameConfig::new(n, trials.min(200))
    };
    let res = run_pso_game(&model, &mech, &attacker, &cfg_mc, &mut seeded_rng(0xE808D));
    let iv = res.success_interval(Z999);
    t.row(vec![
        "mondrian (MC weight check)".into(),
        k.to_string(),
        n.to_string(),
        prob(res.success_rate()),
        interval(iv.lo, iv.hi),
        res.breaks_pso_security(Z999, 0.05).to_string(),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_configuration_breaks_pso_security_near_37_percent() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        for line in csv.lines().skip(2) {
            let cells: Vec<&str> = line.split(',').collect();
            let rate: f64 = cells[3].parse().unwrap();
            // The k = 2 configuration's true success rate sits near 0.5
            // (not 1/e, which only k ≥ 5 approaches), so the window must
            // reach past it with sampling slack.
            assert!(
                (0.2..=0.60).contains(&rate),
                "success {rate} far from 1/e: {line}"
            );
            assert_eq!(cells[5], "true", "row must break PSO security: {line}");
        }
    }
}
