//! Shared data models for the experiments.

use std::sync::Arc;

use singling_out_core::game::TabularModel;
use so_data::dist::{AttributeDistribution, Categorical, RowDistribution};
use so_data::{AttributeDef, AttributeRole, DataType, Schema};

/// The "typical dataset with many attributes" used by the k-anonymity
/// experiments (E8, E9, E15): two generalized quasi-identifiers over wide
/// integer domains plus three high-cardinality columns that anonymizers
/// release verbatim. The released columns drive equivalence-class predicate
/// weights into negligible territory, per Theorem 2.10's argument.
pub fn wide_tabular_model() -> TabularModel {
    let diseases: Vec<String> = (0..120).map(|i| format!("disease_{i}")).collect();
    let occupations: Vec<String> = (0..150).map(|i| format!("occupation_{i}")).collect();
    let schema = Schema::new(vec![
        AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("age_days", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        AttributeDef::new("occupation", DataType::Str, AttributeRole::Insensitive),
        AttributeDef::new("income_band", DataType::Int, AttributeRole::Insensitive),
    ]);
    let dist = RowDistribution::new(
        schema,
        vec![
            AttributeDistribution::IntUniform { lo: 0, hi: 99_999 },
            AttributeDistribution::IntUniform { lo: 0, hi: 36_499 },
            AttributeDistribution::StrChoice {
                values: diseases,
                dist: Categorical::uniform(120),
            },
            AttributeDistribution::StrChoice {
                values: occupations,
                dist: Categorical::uniform(150),
            },
            AttributeDistribution::IntChoice {
                values: (0..80).collect(),
                dist: Categorical::uniform(80),
            },
        ],
    );
    TabularModel::new(dist.sampler())
}

/// QI columns of [`wide_tabular_model`].
pub const WIDE_QI_COLS: [usize; 2] = [0, 1];

/// Generalization ladders for the Datafly runs over [`wide_tabular_model`].
pub fn wide_model_hierarchies() -> Arc<Vec<so_kanon::AttributeHierarchy>> {
    Arc::new(vec![
        so_kanon::AttributeHierarchy::ZipPrefix { digits: 5 },
        so_kanon::AttributeHierarchy::Numeric {
            anchor: 0,
            widths: vec![365, 1_825, 3_650, 18_250],
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use singling_out_core::game::DataModel;
    use so_data::rng::seeded_rng;

    #[test]
    fn model_samples_valid_rows() {
        let m = wide_tabular_model();
        let mut rng = seeded_rng(1);
        let rows = m.sample_dataset(50, &mut rng);
        assert_eq!(rows.len(), 50);
        for r in rows {
            assert_eq!(r.len(), 5);
            assert!((0..=99_999).contains(&r[0].as_int().unwrap()));
        }
    }
}
