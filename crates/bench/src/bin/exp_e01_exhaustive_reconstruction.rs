//! Binary wrapper for experiment module `e01_exhaustive_reconstruction` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e01_exhaustive_reconstruction::run(scale);
    so_bench::print_tables(&tables);
}
