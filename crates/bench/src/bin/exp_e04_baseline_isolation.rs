//! Binary wrapper for experiment module `e04_baseline_isolation` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e04_baseline_isolation::run(scale);
    so_bench::print_tables(&tables);
}
