//! Binary wrapper for experiment module `e13_membership` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e13_membership::run(scale);
    so_bench::print_tables(&tables);
}
