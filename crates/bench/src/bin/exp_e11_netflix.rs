//! Binary wrapper for experiment module `e11_netflix` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e11_netflix::run(scale);
    so_bench::print_tables(&tables);
}
