//! Binary wrapper for experiment module `e19_incremental` (pass `--quick` to reduce
//! scale, `--metrics` to append a metrics dump; see `SO_TRACE` /
//! `SO_METRICS` in the README's Observability section).

fn main() {
    so_bench::experiment_main(so_bench::experiments::e19_incremental::run);
}
