//! Binary wrapper for experiment module `e07_dp_pso` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e07_dp_pso::run(scale);
    so_bench::print_tables(&tables);
}
