//! Binary wrapper for experiment module `lt_legal_verdicts` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::lt_legal_verdicts::run(scale);
    so_bench::print_tables(&tables);
}
