//! E20 — LP reconstruction against the production-style serving API.

fn main() {
    so_bench::experiment_main(so_bench::experiments::e20_service_attack::run);
}
