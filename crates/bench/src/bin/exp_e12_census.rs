//! Binary wrapper for experiment module `e12_census` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e12_census::run(scale);
    so_bench::print_tables(&tables);
}
