//! E21 — request correlation, the flight recorder, and labeled metrics.

fn main() {
    so_bench::experiment_main(so_bench::experiments::e21_flight_recorder::run);
}
