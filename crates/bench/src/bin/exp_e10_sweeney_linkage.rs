//! Binary wrapper for experiment module `e10_sweeney_linkage` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e10_sweeney_linkage::run(scale);
    so_bench::print_tables(&tables);
}
