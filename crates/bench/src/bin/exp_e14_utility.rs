//! Binary wrapper for experiment module `e14_utility` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e14_utility::run(scale);
    so_bench::print_tables(&tables);
}
