//! Binary wrapper for experiment module `e06_composition_attack` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e06_composition_attack::run(scale);
    so_bench::print_tables(&tables);
}
