//! Runs every experiment in sequence (pass `--quick` to reduce scale,
//! `--metrics` to append one cumulative metrics dump; `SO_TRACE` /
//! `SO_METRICS` route spans and the dump to files).

use so_bench::{experiments as e, print_tables, Scale};

/// One experiment entry: label + runner.
type Experiment = (&'static str, fn(Scale) -> Vec<so_bench::Table>);

fn main() {
    so_obs::init_from_env();
    let scale = Scale::from_args();
    let runs: Vec<Experiment> = vec![
        ("E1", e::e01_exhaustive_reconstruction::run),
        ("E2", e::e02_lp_reconstruction::run),
        ("E3", e::e03_fundamental_law::run),
        ("E4", e::e04_baseline_isolation::run),
        ("E5", e::e05_count_pso::run),
        ("E6", e::e06_composition_attack::run),
        ("E7", e::e07_dp_pso::run),
        ("E8", e::e08_kanon_pso::run),
        ("E9", e::e09_downcoding::run),
        ("E10", e::e10_sweeney_linkage::run),
        ("E11", e::e11_netflix::run),
        ("E12", e::e12_census::run),
        ("E13", e::e13_membership::run),
        ("E14", e::e14_utility::run),
        ("E15", e::e15_kanon_composition::run),
        ("E16", e::e16_workload_lint::run),
        ("E17", e::e17_observability::run),
        ("E18", e::e18_query_matrix::run),
        ("E19", e::e19_incremental::run),
        ("E20", e::e20_service_attack::run),
        ("E21", e::e21_flight_recorder::run),
        ("LT", e::lt_legal_verdicts::run),
    ];
    for (name, f) in runs {
        eprintln!(">>> running {name} ...");
        let start = std::time::Instant::now();
        let tables = f(scale);
        print_tables(&tables);
        eprintln!(">>> {name} done in {:.1?}\n", start.elapsed());
    }
    if std::env::args().any(|a| a == "--metrics") {
        print!("{}", so_obs::global().render());
    }
    so_obs::write_metrics_if_env();
    so_obs::flush();
}
