//! Validates a recorded bench transcript (default: the repo's
//! `bench_output.txt`, or the path given as the first argument) with
//! [`so_bench::check_output::check_bench_output`]. Exits nonzero and lists
//! every failure when the artifact no longer parses.

use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench_output.txt".to_owned());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_bench_output: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let failures = so_bench::check_output::check_bench_output(&text);
    let report = so_bench::check_output::parse_bench_output(&text);
    if failures.is_empty() {
        println!(
            "{path}: OK ({} timings, {} groups required)",
            report.timings.len(),
            so_bench::check_output::REQUIRED_GROUPS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{path}: INVALID");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
