//! Binary wrapper for experiment module `e16_workload_lint` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e16_workload_lint::run(scale);
    so_bench::print_tables(&tables);
}
