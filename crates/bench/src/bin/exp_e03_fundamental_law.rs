//! Binary wrapper for experiment module `e03_fundamental_law` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e03_fundamental_law::run(scale);
    so_bench::print_tables(&tables);
}
