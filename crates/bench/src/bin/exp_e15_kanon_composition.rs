//! Binary wrapper for experiment module `e15_kanon_composition` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e15_kanon_composition::run(scale);
    so_bench::print_tables(&tables);
}
