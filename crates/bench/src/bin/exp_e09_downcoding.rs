//! Binary wrapper for experiment module `e09_downcoding` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e09_downcoding::run(scale);
    so_bench::print_tables(&tables);
}
