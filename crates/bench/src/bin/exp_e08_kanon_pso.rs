//! Binary wrapper for experiment module `e08_kanon_pso` (pass `--quick` to reduce scale).

fn main() {
    let scale = so_bench::Scale::from_args();
    let tables = so_bench::experiments::e08_kanon_pso::run(scale);
    so_bench::print_tables(&tables);
}
