#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # so-bench — experiment harness
//!
//! One module per experiment in DESIGN.md §3 (E1–E17, LT1/LT2), each
//! exposing `run(scale) -> Vec<Table>` so the binaries, the `run_all`
//! driver, and the integration tests share one code path. Binaries accept
//! `--quick` for a reduced-scale run and `--metrics` for a Prometheus-style
//! dump of the `so-obs` registry after the tables; `SO_TRACE` / `SO_METRICS`
//! route spans and metrics to files without touching stdout (see
//! [`experiment_main`]).

pub mod check_output;
pub mod experiments;
pub mod models;
pub mod table;

pub use table::Table;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters for smoke tests and `--quick`.
    Quick,
    /// The parameters recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parses process arguments (`--quick` selects [`Scale::Quick`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Selects between the two scale presets.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Prints the tables of one experiment, text form then CSV.
pub fn print_tables(tables: &[Table]) {
    for t in tables {
        println!("{}", t.render());
    }
    println!("--- CSV ---");
    for t in tables {
        println!("{}", t.to_csv());
    }
}

/// Shared entry point for the experiment binaries.
///
/// Installs the `SO_TRACE` JSON-lines subscriber if requested, parses
/// `--quick`, runs the experiment, and prints its tables. `--metrics`
/// additionally dumps the `so-obs` global registry to stdout in the
/// Prometheus text format; `SO_METRICS=path` writes the same dump to a file
/// instead. Neither `SO_TRACE` nor `SO_METRICS` adds a byte to stdout, so
/// traced and untraced transcripts stay byte-identical — the invariant the
/// CI determinism gate diffs.
pub fn experiment_main(run: fn(Scale) -> Vec<Table>) {
    so_obs::init_from_env();
    let tables = run(Scale::from_args());
    print_tables(&tables);
    if std::env::args().any(|a| a == "--metrics") {
        print!("{}", so_obs::global().render());
    }
    so_obs::write_metrics_if_env();
    so_obs::flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
