//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints its results as an aligned text table plus
//! an optional CSV block, so runs can be eyeballed, diffed, and pasted into
//! EXPERIMENTS.md without extra tooling.

/// A column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        out.push_str(&format!("{}\n", "-".repeat(total)));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Renders as CSV (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n", self.title);
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a probability with 4 decimals.
pub fn prob(p: f64) -> String {
    format!("{p:.4}")
}

/// Formats a probability interval (no comma — cells must stay CSV-safe).
pub fn interval(lo: f64, hi: f64) -> String {
    format!("[{lo:.4}..{hi:.4}]")
}

/// Formats a scientific-notation value.
pub fn sci(v: f64) -> String {
    format!("{v:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["n", "rate"]);
        t.row(vec!["10".into(), "0.37".into()]);
        t.row(vec!["100000".into(), "0.01".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("|      n | rate |"));
        assert!(s.contains("| 100000 | 0.01 |"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn csv_form() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "# demo\na,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        Table::new("t", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(prob(0.12345), "0.1235");
        assert_eq!(interval(0.1, 0.2), "[0.1000..0.2000]");
        assert_eq!(sci(0.000123), "1.23e-4");
    }
}
