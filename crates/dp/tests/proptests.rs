//! Property-based tests for the DP substrate.

use proptest::prelude::*;
use so_data::rng::seeded_rng;
use so_dp::{
    sample_laplace, sample_two_sided_geometric, AdvancedComposition, BasicComposition,
    GeometricCount, LaplaceCount, PrivacyAccountant,
};

proptest! {
    /// Laplace samples are finite for any positive scale.
    #[test]
    fn laplace_samples_finite(scale_milli in 1u64..100_000, seed in any::<u64>()) {
        let b = scale_milli as f64 / 1000.0;
        let mut rng = seeded_rng(seed);
        for _ in 0..20 {
            let x = sample_laplace(b, &mut rng);
            prop_assert!(x.is_finite(), "non-finite sample {x}");
        }
    }

    /// Geometric samples are integers whose magnitude stays sane for
    /// moderate ε (tail bound sanity: P[|X| > 60/ε] is astronomically small).
    #[test]
    fn geometric_samples_bounded(eps_milli in 50u64..5_000, seed in any::<u64>()) {
        let eps = eps_milli as f64 / 1000.0;
        let mut rng = seeded_rng(seed);
        for _ in 0..20 {
            let x = sample_two_sided_geometric(eps, &mut rng);
            prop_assert!((x.abs() as f64) < 60.0 / eps + 1.0, "outlier {x} at eps {eps}");
        }
    }

    /// Noisy counts are unbiased in aggregate (loose bound, per-case).
    #[test]
    fn counts_center_on_truth(count in 0usize..1_000, seed in any::<u64>()) {
        let mut rng = seeded_rng(seed);
        let lap = LaplaceCount::new(1.0);
        let geo = GeometricCount::new(1.0);
        let n = 500;
        let lap_mean: f64 = (0..n).map(|_| lap.release(count, &mut rng)).sum::<f64>() / n as f64;
        let geo_mean: f64 = (0..n).map(|_| geo.release(count, &mut rng)).sum::<i64>() as f64 / n as f64;
        // stddev of the mean ≈ sqrt(2)/sqrt(500) ≈ 0.063; allow 6σ.
        prop_assert!((lap_mean - count as f64).abs() < 0.4, "laplace mean {lap_mean}");
        prop_assert!((geo_mean - count as f64).abs() < 0.5, "geometric mean {geo_mean}");
    }

    /// Basic composition is additive and permutation-invariant.
    #[test]
    fn basic_composition_additive(mut epsilons in proptest::collection::vec(0.001f64..2.0, 1..20)) {
        let total: f64 = epsilons.iter().sum();
        let c = BasicComposition.compose(&epsilons);
        prop_assert!((c.epsilon - total).abs() < 1e-9);
        epsilons.reverse();
        let c2 = BasicComposition.compose(&epsilons);
        prop_assert!((c.epsilon - c2.epsilon).abs() < 1e-9);
    }

    /// Advanced composition is monotone in k and ε.
    #[test]
    fn advanced_composition_monotone(eps_milli in 1u64..500, k in 1usize..1_000) {
        let eps = eps_milli as f64 / 1000.0;
        let rule = AdvancedComposition::new(1e-6);
        let a = rule.compose_uniform(eps, k);
        let b = rule.compose_uniform(eps, k + 1);
        let c = rule.compose_uniform(eps * 1.1, k);
        prop_assert!(b.epsilon >= a.epsilon);
        prop_assert!(c.epsilon >= a.epsilon);
    }

    /// The accountant never overspends.
    #[test]
    fn accountant_never_overspends(spends in proptest::collection::vec(0.01f64..0.5, 1..40)) {
        let budget = 1.0;
        let mut acc = PrivacyAccountant::new(budget);
        for (i, &e) in spends.iter().enumerate() {
            acc.try_spend(&format!("q{i}"), e);
            prop_assert!(acc.spent() <= budget + 1e-9, "overspent {}", acc.spent());
        }
        prop_assert!((acc.spent() + acc.remaining() - budget).abs() < 1e-9);
    }
}
