#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # so-dp — differential privacy
//!
//! Implementation of the technology the paper holds up as the remedy
//! (Definition 1.2, Theorem 1.3, Theorem 2.9): ε-differentially private
//! mechanisms built from scratch —
//!
//! * noise samplers ([`samplers`]): Laplace via inverse CDF, two-sided
//!   geometric (the discrete Laplace), Gaussian via Box–Muller;
//! * mechanisms ([`mechanisms`]): the Laplace counting mechanism of
//!   Theorem 1.3, noisy histograms, randomized response, and the exponential
//!   mechanism;
//! * composition accounting ([`accountant`]): basic and advanced composition
//!   with a spendable privacy budget — the property ("differential privacy is
//!   closed under composition") that §1.1 contrasts with k-anonymity's
//!   composition failure;
//! * a Laplace-noised subset-sum mechanism ([`laplace_sum`]) implementing
//!   `so_query::SubsetSumMechanism`, so the Dinur–Nissim reconstruction
//!   attacks can be aimed at DP-protected data and be seen to fail.
//!
//! Neighboring convention: throughout we use the paper's Definition 1.2 —
//! datasets `x, x'` *differ on a single entry* (substitution / bounded DP).
//! Sensitivities are stated under that convention: a counting query has
//! sensitivity 1, a full histogram has L1 sensitivity 2.

pub mod accountant;
pub mod laplace_sum;
pub mod mechanisms;
pub mod obs;
pub mod samplers;
pub mod svt;
pub mod verify;

pub use accountant::{
    AdvancedComposition, BasicComposition, BudgetPrecheck, ContinualAccountant, PrivacyAccountant,
};
pub use laplace_sum::LaplaceSum;
pub use mechanisms::{
    exponential_mechanism, noisy_histogram, randomized_response, GaussianCount, GeometricCount,
    LaplaceCount,
};
pub use obs::{dp_metrics, DpMetrics};
pub use samplers::{sample_gaussian, sample_laplace, sample_two_sided_geometric};
pub use svt::{SparseVector, SvtAnswer};
pub use verify::{audit_dp_pair, DpAuditConfig, DpAuditResult};
