//! Differentially private mechanisms.
//!
//! Sensitivities are stated under the paper's substitution convention
//! (Definition 1.2: datasets differ on a single entry).

use rand::Rng;

use crate::samplers::{sample_laplace, sample_two_sided_geometric};

/// The Laplace counting mechanism of Theorem 1.3: on input `x ∈ {0,1}^n`
/// outputs `Σ x_i + Y` with `Y ~ Lap(1/ε)`. Substituting one record changes
/// the count by at most 1, so the mechanism is ε-DP.
///
/// ```
/// use so_dp::LaplaceCount;
/// use so_data::rng::seeded_rng;
/// let mechanism = LaplaceCount::new(1.0);
/// let noisy = mechanism.release(42, &mut seeded_rng(7));
/// assert!((noisy - 42.0).abs() < 20.0); // Lap(1) noise, huge tail margin
/// assert_eq!(mechanism.expected_absolute_error(), 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LaplaceCount {
    epsilon: f64,
}

impl LaplaceCount {
    /// Mechanism with privacy-loss parameter `ε > 0`.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite ε.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "bad epsilon {epsilon}"
        );
        LaplaceCount { epsilon }
    }

    /// The privacy-loss parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Releases a noisy version of the exact count `true_count`.
    pub fn release<R: Rng + ?Sized>(&self, true_count: usize, rng: &mut R) -> f64 {
        true_count as f64 + sample_laplace(1.0 / self.epsilon, rng)
    }

    /// Releases a noisy count for a query of sensitivity `delta` (e.g. a sum
    /// of values bounded by `delta`).
    pub fn release_with_sensitivity<R: Rng + ?Sized>(
        &self,
        true_value: f64,
        delta: f64,
        rng: &mut R,
    ) -> f64 {
        assert!(delta > 0.0 && delta.is_finite(), "bad sensitivity {delta}");
        true_value + sample_laplace(delta / self.epsilon, rng)
    }

    /// Expected absolute error of a release: `E|Lap(1/ε)| = 1/ε`.
    pub fn expected_absolute_error(&self) -> f64 {
        1.0 / self.epsilon
    }

    /// The two-sided `tail` quantile of the noise: the smallest `q` with
    /// `P(|noise| > q) = tail`.
    ///
    /// Delegates to [`so_plan::laplace_tail_quantile`] — the single home of
    /// this formula, shared with the workload planner's effective-α ordering
    /// ([`so_plan::workload::Noise::effective_alpha`]) so mechanism and
    /// planner can never disagree about a mechanism's error envelope.
    pub fn tail_quantile(&self, tail: f64) -> f64 {
        so_plan::laplace_tail_quantile(self.epsilon, tail)
    }
}

/// Integer-valued ε-DP counting via two-sided geometric noise (the discrete
/// analogue of [`LaplaceCount`]; ablation target in the utility benches).
#[derive(Debug, Clone, Copy)]
pub struct GeometricCount {
    epsilon: f64,
}

impl GeometricCount {
    /// Mechanism with privacy-loss parameter `ε > 0`.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite ε.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "bad epsilon {epsilon}"
        );
        GeometricCount { epsilon }
    }

    /// The privacy-loss parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Releases an integer noisy count.
    pub fn release<R: Rng + ?Sized>(&self, true_count: usize, rng: &mut R) -> i64 {
        true_count as i64 + sample_two_sided_geometric(self.epsilon, rng)
    }
}

/// Releases an ε-DP histogram: each bucket gets independent `Lap(2/ε)` noise.
/// Under substitution, one record change moves one unit of mass between two
/// buckets, so the L1 sensitivity of the histogram is 2.
pub fn noisy_histogram<R: Rng + ?Sized>(counts: &[usize], epsilon: f64, rng: &mut R) -> Vec<f64> {
    assert!(
        epsilon > 0.0 && epsilon.is_finite(),
        "bad epsilon {epsilon}"
    );
    counts
        .iter()
        .map(|&c| c as f64 + sample_laplace(2.0 / epsilon, rng))
        .collect()
}

/// The Gaussian counting mechanism: `(ε, δ)`-DP with
/// `σ = √(2 ln(1.25/δ)) · Δ / ε` (the classic analytic calibration). The
/// relaxation the paper's DP literature uses when pure ε-DP is too rigid;
/// included as the approximate-DP ablation — [`crate::verify`]'s pure-DP
/// audit correctly *fails* it at the tails.
#[derive(Debug, Clone, Copy)]
pub struct GaussianCount {
    epsilon: f64,
    delta: f64,
    sigma: f64,
}

impl GaussianCount {
    /// Mechanism with parameters `ε ∈ (0, 1)`, `δ ∈ (0, 1)` and sensitivity 1.
    ///
    /// # Panics
    /// Panics on out-of-range parameters (the classic calibration needs
    /// ε < 1).
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "classic Gaussian calibration needs 0 < ε < 1 (got {epsilon})"
        );
        assert!(delta > 0.0 && delta < 1.0, "bad delta {delta}");
        let sigma = (2.0 * (1.25 / delta).ln()).sqrt() / epsilon;
        GaussianCount {
            epsilon,
            delta,
            sigma,
        }
    }

    /// The privacy parameters `(ε, δ)`.
    pub fn parameters(&self) -> (f64, f64) {
        (self.epsilon, self.delta)
    }

    /// The calibrated noise standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Releases a noisy count.
    pub fn release<R: Rng + ?Sized>(&self, true_count: usize, rng: &mut R) -> f64 {
        true_count as f64 + crate::samplers::sample_gaussian(self.sigma, rng)
    }
}

/// Randomized response on one private bit: report the truth with probability
/// `e^ε / (1 + e^ε)`, else the opposite. ε-DP *locally* (each individual
/// randomizes their own bit — the oldest DP mechanism, Warner 1965).
pub fn randomized_response<R: Rng + ?Sized>(bit: bool, epsilon: f64, rng: &mut R) -> bool {
    assert!(
        epsilon > 0.0 && epsilon.is_finite(),
        "bad epsilon {epsilon}"
    );
    let p_truth = epsilon.exp() / (1.0 + epsilon.exp());
    if rng.gen::<f64>() < p_truth {
        bit
    } else {
        !bit
    }
}

/// Unbiased population-frequency estimator from randomized responses.
pub fn randomized_response_estimate(responses: &[bool], epsilon: f64) -> f64 {
    let p = epsilon.exp() / (1.0 + epsilon.exp());
    let observed = responses.iter().filter(|&&b| b).count() as f64 / responses.len() as f64;
    (observed - (1.0 - p)) / (2.0 * p - 1.0)
}

/// The exponential mechanism over a finite candidate set: selects candidate
/// `i` with probability `∝ exp(ε · score_i / (2 Δ))` where `Δ` is the score
/// sensitivity. Returns the chosen index.
///
/// # Panics
/// Panics on empty candidates, bad ε/Δ, or non-finite scores.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    scores: &[f64],
    epsilon: f64,
    sensitivity: f64,
    rng: &mut R,
) -> usize {
    assert!(!scores.is_empty(), "no candidates");
    assert!(
        epsilon > 0.0 && epsilon.is_finite(),
        "bad epsilon {epsilon}"
    );
    assert!(
        sensitivity > 0.0 && sensitivity.is_finite(),
        "bad sensitivity {sensitivity}"
    );
    // Normalize by max score for numerical stability.
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(max.is_finite(), "non-finite score");
    let weights: Vec<f64> = scores
        .iter()
        .map(|&s| (epsilon * (s - max) / (2.0 * sensitivity)).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    scores.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::rng::seeded_rng;

    #[test]
    fn laplace_count_is_unbiased() {
        let m = LaplaceCount::new(1.0);
        let mut rng = seeded_rng(200);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| m.release(50, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn laplace_count_error_scales_inversely_with_epsilon() {
        let mut rng = seeded_rng(201);
        let n = 50_000;
        let mae = |eps: f64, rng: &mut rand::rngs::StdRng| -> f64 {
            let m = LaplaceCount::new(eps);
            (0..n)
                .map(|_| (m.release(100, rng) - 100.0).abs())
                .sum::<f64>()
                / n as f64
        };
        let e_small = mae(0.1, &mut rng);
        let e_large = mae(1.0, &mut rng);
        // MAE at ε is 1/ε: 10 vs 1.
        assert!((e_small - 10.0).abs() < 0.5, "mae(0.1) = {e_small}");
        assert!((e_large - 1.0).abs() < 0.1, "mae(1.0) = {e_large}");
        assert_eq!(LaplaceCount::new(0.5).expected_absolute_error(), 2.0);
    }

    /// `tail_quantile` is the shared `so-plan` formula, and the empirical
    /// tail mass beyond it matches the requested level.
    #[test]
    fn laplace_count_tail_quantile_is_calibrated() {
        let m = LaplaceCount::new(0.5);
        assert_eq!(
            m.tail_quantile(1e-3),
            so_plan::laplace_tail_quantile(0.5, 1e-3)
        );
        let q = m.tail_quantile(0.05);
        let mut rng = seeded_rng(203);
        let n = 200_000;
        let beyond = (0..n)
            .filter(|_| (m.release(70, &mut rng) - 70.0).abs() > q)
            .count();
        let rate = beyond as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "tail rate {rate}");
    }

    /// Empirical ε-DP check: the output distributions of the mechanism on
    /// neighboring counts (c and c+1) must have likelihood ratio ≤ e^ε on
    /// every (discretized) output bucket, up to sampling slack.
    #[test]
    fn laplace_count_empirical_dp_inequality() {
        let eps = 1.0;
        let m = LaplaceCount::new(eps);
        let mut rng = seeded_rng(202);
        let n = 400_000;
        let bucket = |x: f64| (x * 2.0).round() as i64; // width-0.5 buckets
        let mut h0 = std::collections::HashMap::new();
        let mut h1 = std::collections::HashMap::new();
        for _ in 0..n {
            *h0.entry(bucket(m.release(10, &mut rng))).or_insert(0usize) += 1;
            *h1.entry(bucket(m.release(11, &mut rng))).or_insert(0usize) += 1;
        }
        let mut checked = 0;
        for (k, &c0) in &h0 {
            let c1 = *h1.get(k).unwrap_or(&0);
            // Only test well-populated buckets to control sampling noise.
            if c0 > 2000 && c1 > 2000 {
                let ratio = c0 as f64 / c1 as f64;
                // Slack factor 1.25 over e^ε for bucketization + sampling.
                assert!(
                    ratio < eps.exp() * 1.25 && ratio > (-eps).exp() / 1.25,
                    "bucket {k}: ratio {ratio}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 5, "too few buckets checked ({checked})");
    }

    #[test]
    fn geometric_count_integer_and_unbiased() {
        let m = GeometricCount::new(0.5);
        let mut rng = seeded_rng(203);
        let n = 100_000;
        let sum: i64 = (0..n).map(|_| m.release(42, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 42.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn noisy_histogram_shape_preserved() {
        let mut rng = seeded_rng(204);
        let counts = vec![1000usize, 0, 500];
        let noisy = noisy_histogram(&counts, 2.0, &mut rng);
        assert_eq!(noisy.len(), 3);
        // With ε=2 (scale 1), noise is tiny relative to 1000 vs 0.
        assert!(noisy[0] > noisy[1] + 100.0);
        assert!(noisy[2] > noisy[1] + 100.0);
    }

    #[test]
    fn randomized_response_estimator_consistent() {
        let mut rng = seeded_rng(205);
        let eps = 1.0;
        let n = 100_000;
        let true_frac = 0.3;
        let responses: Vec<bool> = (0..n)
            .map(|i| randomized_response(i < (n as f64 * true_frac) as usize, eps, &mut rng))
            .collect();
        let est = randomized_response_estimate(&responses, eps);
        assert!((est - true_frac).abs() < 0.02, "estimate {est}");
    }

    #[test]
    fn randomized_response_flips_at_expected_rate() {
        let mut rng = seeded_rng(206);
        let eps = f64::ln(3.0); // p_truth = 3/4
        let n = 100_000;
        let kept = (0..n)
            .filter(|_| randomized_response(true, eps, &mut rng))
            .count();
        let frac = kept as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "truth rate {frac}");
    }

    #[test]
    fn exponential_mechanism_prefers_high_scores() {
        let mut rng = seeded_rng(207);
        let scores = [0.0, 0.0, 10.0, 0.0];
        let n = 10_000;
        let wins = (0..n)
            .filter(|_| exponential_mechanism(&scores, 2.0, 1.0, &mut rng) == 2)
            .count();
        // exp(10) dominance: candidate 2 should win essentially always.
        assert!(wins as f64 / n as f64 > 0.98, "wins {wins}");
    }

    #[test]
    fn exponential_mechanism_uniform_on_equal_scores() {
        let mut rng = seeded_rng(208);
        let scores = [1.0, 1.0];
        let n = 20_000;
        let zeros = (0..n)
            .filter(|_| exponential_mechanism(&scores, 1.0, 1.0, &mut rng) == 0)
            .count();
        let frac = zeros as f64 / n as f64;
        assert!((0.48..=0.52).contains(&frac), "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "bad epsilon")]
    fn rejects_bad_epsilon() {
        LaplaceCount::new(-1.0);
    }

    #[test]
    fn gaussian_count_calibration_and_unbiasedness() {
        let m = GaussianCount::new(0.5, 1e-5);
        // σ = sqrt(2 ln(1.25/δ))/ε = sqrt(2·ln(125000))/0.5 ≈ 9.69.
        assert!((m.sigma() - (2.0f64 * (1.25 / 1e-5f64).ln()).sqrt() / 0.5).abs() < 1e-12);
        assert_eq!(m.parameters(), (0.5, 1e-5));
        let mut rng = seeded_rng(210);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.release(40, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 40.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "classic Gaussian calibration")]
    fn gaussian_rejects_large_epsilon() {
        GaussianCount::new(1.5, 1e-5);
    }
}
