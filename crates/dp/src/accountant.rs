//! Privacy-loss ("privacy budget") accounting.
//!
//! The paper: "The privacy loss parameter ε (also referred to as the
//! 'privacy budget') quantifies and bounds the excessive risk to an
//! individual... differential privacy is closed under composition, i.e., the
//! result of applying two or more differentially private analyses ...
//! preserves differential privacy (albeit with worse privacy loss parameter)."
//!
//! Two composition rules are implemented:
//!
//! * **basic composition** — `k` mechanisms at ε_i compose to `Σ ε_i`
//!   (pure ε-DP);
//! * **advanced composition** (Dwork–Rothblum–Vadhan) — `k` mechanisms at ε
//!   compose to `ε' = ε√(2k ln(1/δ')) + k ε (e^ε − 1)` with additional
//!   failure probability δ', trading a δ for a √k growth rate.
//!
//! [`ContinualAccountant`] extends the budget ledger to *continual release*
//! over a mutable, versioned dataset: each dataset version carries its own
//! expenditure sub-ledger, and the budget constrains the basic-composition
//! sum either over every version ever released against (the default — the
//! paper's closure-under-composition argument applies verbatim, since each
//! release is a DP mechanism over a neighbouring-dataset relation that
//! spans versions) or over a sliding window of the most recent `w` versions
//! (the bounded-memory regime of the continual-observation literature).

use std::collections::BTreeMap;

/// Result of composing `k` ε-DP mechanisms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComposedLoss {
    /// Composite ε.
    pub epsilon: f64,
    /// Composite δ (0 for basic composition of pure DP).
    pub delta: f64,
}

/// Basic (linear) composition of pure ε-DP losses.
#[derive(Debug, Clone, Copy, Default)]
pub struct BasicComposition;

impl BasicComposition {
    /// Composes `k` copies of an ε-DP mechanism.
    pub fn compose_uniform(&self, epsilon: f64, k: usize) -> ComposedLoss {
        ComposedLoss {
            epsilon: epsilon * k as f64,
            delta: 0.0,
        }
    }

    /// Composes heterogeneous losses.
    pub fn compose(&self, epsilons: &[f64]) -> ComposedLoss {
        ComposedLoss {
            epsilon: epsilons.iter().sum(),
            delta: 0.0,
        }
    }
}

/// Advanced composition with slack δ'.
#[derive(Debug, Clone, Copy)]
pub struct AdvancedComposition {
    /// The failure-probability slack δ' spent on tighter ε accounting.
    pub delta_slack: f64,
}

impl AdvancedComposition {
    /// Creates the rule with slack `δ' ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics for δ' outside (0, 1).
    pub fn new(delta_slack: f64) -> Self {
        assert!(
            delta_slack > 0.0 && delta_slack < 1.0,
            "bad delta slack {delta_slack}"
        );
        AdvancedComposition { delta_slack }
    }

    /// Composes `k` copies of an ε-DP mechanism:
    /// `ε' = ε √(2k ln(1/δ')) + k ε (e^ε − 1)`, δ = δ'.
    pub fn compose_uniform(&self, epsilon: f64, k: usize) -> ComposedLoss {
        let k_f = k as f64;
        let eps = epsilon * (2.0 * k_f * (1.0 / self.delta_slack).ln()).sqrt()
            + k_f * epsilon * (epsilon.exp() - 1.0);
        ComposedLoss {
            epsilon: eps,
            delta: self.delta_slack,
        }
    }
}

/// Outcome of statically prechecking a workload of per-analysis ε costs
/// against an accountant, *before* anything is spent. This is the API the
/// `so-analyze` workload linter uses: a whole query workload is summed
/// under worst-case (basic) composition and either admitted or refused as a
/// unit, so refusal happens before a single answer is released.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPrecheck {
    /// Worst-case total ε of the workload (basic composition).
    pub total: f64,
    /// Budget remaining in the accountant at precheck time.
    pub remaining: f64,
    /// True iff the whole workload fits in the remaining budget.
    pub admissible: bool,
    /// Index of the first analysis that would be refused, if any.
    pub first_refused: Option<usize>,
}

/// A spendable privacy budget with a running ledger (basic composition).
#[derive(Debug, Clone)]
pub struct PrivacyAccountant {
    budget: f64,
    spent: f64,
    ledger: Vec<(String, f64)>,
}

impl PrivacyAccountant {
    /// Opens an accountant with total budget `ε_total`.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite budget.
    pub fn new(budget: f64) -> Self {
        assert!(budget > 0.0 && budget.is_finite(), "bad budget {budget}");
        PrivacyAccountant {
            budget,
            spent: 0.0,
            ledger: Vec::new(),
        }
    }

    /// Attempts to spend `epsilon` on an analysis; returns false (and spends
    /// nothing) if the budget would be exceeded.
    pub fn try_spend(&mut self, label: &str, epsilon: f64) -> bool {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "bad epsilon {epsilon}"
        );
        if self.spent + epsilon > self.budget + 1e-12 {
            crate::obs::dp_metrics().budget_refusals.inc();
            return false;
        }
        self.spent += epsilon;
        self.ledger.push((label.to_owned(), epsilon));
        crate::obs::dp_metrics().epsilon_spent.add(epsilon);
        true
    }

    /// Statically sums the worst-case cost of a workload of per-analysis ε
    /// values (basic composition) against the remaining budget, spending
    /// nothing. Every cost must be positive and finite, mirroring
    /// [`PrivacyAccountant::try_spend`].
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite cost.
    pub fn precheck(&self, epsilons: &[f64]) -> BudgetPrecheck {
        let remaining = self.remaining();
        let mut total = 0.0;
        let mut first_refused = None;
        for (i, &eps) in epsilons.iter().enumerate() {
            assert!(eps > 0.0 && eps.is_finite(), "bad epsilon {eps}");
            total += eps;
            if first_refused.is_none() && total > remaining + 1e-12 {
                first_refused = Some(i);
            }
        }
        BudgetPrecheck {
            total,
            remaining,
            admissible: first_refused.is_none(),
            first_refused,
        }
    }

    /// Total ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining budget.
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent).max(0.0)
    }

    /// The ledger of `(label, ε)` expenditures in order.
    pub fn ledger(&self) -> &[(String, f64)] {
        &self.ledger
    }
}

/// A continual-release privacy accountant: ε composes across dataset
/// versions (basic composition), with an optional sliding window.
///
/// The owner advances the accountant whenever the underlying dataset's
/// version bumps ([`ContinualAccountant::advance_to`]); expenditures charge
/// to the version current at spend time. With no window, the budget bounds
/// the lifetime sum over every version; with a window of `w` versions, it
/// bounds the sum over the `w` most recent versions (older expenditure
/// "ages out" — the neighbouring relation only protects rows through their
/// last `w` versions of releases).
#[derive(Debug, Clone)]
pub struct ContinualAccountant {
    budget: f64,
    window: Option<usize>,
    current_version: u64,
    per_version: BTreeMap<u64, f64>,
    lifetime: f64,
}

impl ContinualAccountant {
    /// Opens an accountant whose budget bounds the ε sum over *all* dataset
    /// versions.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite budget.
    pub fn new(budget: f64) -> Self {
        assert!(budget > 0.0 && budget.is_finite(), "bad budget {budget}");
        ContinualAccountant {
            budget,
            window: None,
            current_version: 0,
            per_version: BTreeMap::new(),
            lifetime: 0.0,
        }
    }

    /// Opens an accountant whose budget bounds the ε sum over the `window`
    /// most recent dataset versions (the current version inclusive).
    ///
    /// # Panics
    /// Panics on a bad budget or a zero window.
    pub fn with_window(budget: f64, window: usize) -> Self {
        assert!(window >= 1, "window must cover at least one version");
        let mut a = Self::new(budget);
        a.window = Some(window);
        a
    }

    /// The dataset version expenditures currently charge to.
    pub fn version(&self) -> u64 {
        self.current_version
    }

    /// The sliding window in versions (`None` = lifetime accounting).
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Moves the accountant to dataset version `version` (idempotent for
    /// the current version). With a window, expenditure against versions
    /// that fell out of it stops counting toward the budget.
    ///
    /// # Panics
    /// Panics if `version` is older than the current version — continual
    /// release never rewinds.
    pub fn advance_to(&mut self, version: u64) {
        assert!(
            version >= self.current_version,
            "continual accountant cannot rewind from v{} to v{version}",
            self.current_version
        );
        self.current_version = version;
        if let Some(w) = self.window {
            // Prune sub-ledgers that can never re-enter the window; the
            // lifetime total survives in its own accumulator.
            let oldest = version.saturating_sub(w as u64 - 1);
            self.per_version = self.per_version.split_off(&oldest);
        }
    }

    /// The ε sum the budget currently constrains: every version's
    /// expenditure, or only the window's worth.
    pub fn spent(&self) -> f64 {
        self.per_version.values().sum()
    }

    /// Total ε ever spent, across all versions, window or not.
    pub fn lifetime_spent(&self) -> f64 {
        self.lifetime
    }

    /// Remaining budget against the (possibly windowed) spend.
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent()).max(0.0)
    }

    /// Expenditure charged to one version (0.0 if none, or if the version
    /// was pruned after leaving the window).
    pub fn spent_at(&self, version: u64) -> f64 {
        self.per_version.get(&version).copied().unwrap_or(0.0)
    }

    /// Attempts to spend `epsilon` against the current version; returns
    /// false (and spends nothing) if the windowed cumulative sum would
    /// exceed the budget.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite epsilon.
    pub fn try_spend(&mut self, epsilon: f64) -> bool {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "bad epsilon {epsilon}"
        );
        if self.spent() + epsilon > self.budget + 1e-12 {
            crate::obs::dp_metrics().budget_refusals.inc();
            return false;
        }
        *self.per_version.entry(self.current_version).or_insert(0.0) += epsilon;
        self.lifetime += epsilon;
        crate::obs::dp_metrics().epsilon_spent.add(epsilon);
        true
    }

    /// Statically sums a workload of per-analysis ε costs against the
    /// remaining (windowed) budget, spending nothing — the same contract as
    /// [`PrivacyAccountant::precheck`].
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite cost.
    pub fn precheck(&self, epsilons: &[f64]) -> BudgetPrecheck {
        let remaining = self.remaining();
        let mut total = 0.0;
        let mut first_refused = None;
        for (i, &eps) in epsilons.iter().enumerate() {
            assert!(eps > 0.0 && eps.is_finite(), "bad epsilon {eps}");
            total += eps;
            if first_refused.is_none() && total > remaining + 1e-12 {
                first_refused = Some(i);
            }
        }
        BudgetPrecheck {
            total,
            remaining,
            admissible: first_refused.is_none(),
            first_refused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_composition_is_linear() {
        let c = BasicComposition.compose_uniform(0.1, 10);
        assert!((c.epsilon - 1.0).abs() < 1e-12);
        assert_eq!(c.delta, 0.0);
        let h = BasicComposition.compose(&[0.1, 0.2, 0.3]);
        assert!((h.epsilon - 0.6).abs() < 1e-12);
    }

    #[test]
    fn advanced_composition_beats_basic_for_many_small_queries() {
        let eps = 0.01;
        let k = 10_000;
        let basic = BasicComposition.compose_uniform(eps, k);
        let adv = AdvancedComposition::new(1e-6).compose_uniform(eps, k);
        assert!(basic.epsilon > 99.0);
        assert!(
            adv.epsilon < basic.epsilon / 10.0,
            "advanced {} vs basic {}",
            adv.epsilon,
            basic.epsilon
        );
        assert_eq!(adv.delta, 1e-6);
    }

    #[test]
    fn advanced_composition_worse_for_single_query() {
        // For k = 1 the advanced bound's √ term alone exceeds ε.
        let adv = AdvancedComposition::new(1e-6).compose_uniform(1.0, 1);
        assert!(adv.epsilon > 1.0);
    }

    #[test]
    fn advanced_composition_monotone_in_k() {
        let rule = AdvancedComposition::new(1e-5);
        let mut prev = 0.0;
        for k in [1usize, 2, 4, 8, 16, 32] {
            let c = rule.compose_uniform(0.1, k);
            assert!(c.epsilon > prev, "k={k}");
            prev = c.epsilon;
        }
    }

    #[test]
    fn accountant_enforces_budget() {
        let mut a = PrivacyAccountant::new(1.0);
        assert!(a.try_spend("q1", 0.4));
        assert!(a.try_spend("q2", 0.4));
        assert!(!a.try_spend("q3", 0.4), "would exceed");
        assert!(a.try_spend("q3-small", 0.2));
        assert!((a.spent() - 1.0).abs() < 1e-12);
        assert!(a.remaining() < 1e-12);
        assert_eq!(a.ledger().len(), 3);
        assert_eq!(a.ledger()[0].0, "q1");
    }

    #[test]
    fn precheck_is_static_and_matches_try_spend() {
        let mut a = PrivacyAccountant::new(1.0);
        assert!(a.try_spend("prior", 0.3));
        let ok = a.precheck(&[0.2, 0.2, 0.3]);
        assert!(ok.admissible);
        assert_eq!(ok.first_refused, None);
        assert!((ok.total - 0.7).abs() < 1e-12);
        assert!((ok.remaining - 0.7).abs() < 1e-12);
        // Precheck spent nothing.
        assert!((a.spent() - 0.3).abs() < 1e-12);

        let too_much = a.precheck(&[0.2, 0.2, 0.4]);
        assert!(!too_much.admissible);
        assert_eq!(too_much.first_refused, Some(2));
        // The verdict agrees with actually spending, query by query.
        assert!(a.try_spend("q0", 0.2));
        assert!(a.try_spend("q1", 0.2));
        assert!(!a.try_spend("q2", 0.4));
    }

    #[test]
    fn precheck_of_empty_workload_is_admissible() {
        let a = PrivacyAccountant::new(0.5);
        let r = a.precheck(&[]);
        assert!(r.admissible);
        assert_eq!(r.total, 0.0);
    }

    #[test]
    #[should_panic(expected = "bad epsilon")]
    fn precheck_rejects_nonfinite_cost() {
        PrivacyAccountant::new(1.0).precheck(&[0.1, f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "bad epsilon")]
    fn accountant_rejects_nonpositive_spend() {
        PrivacyAccountant::new(1.0).try_spend("bad", 0.0);
    }

    #[test]
    #[should_panic(expected = "bad delta slack")]
    fn advanced_rejects_bad_slack() {
        AdvancedComposition::new(0.0);
    }

    #[test]
    fn continual_accountant_composes_across_versions() {
        let mut a = ContinualAccountant::new(1.0);
        assert!(a.try_spend(0.4));
        a.advance_to(1);
        assert!(a.try_spend(0.4));
        a.advance_to(2);
        assert!(
            !a.try_spend(0.4),
            "cumulative cross-version ε must hit the cap"
        );
        assert!(a.try_spend(0.2));
        assert!((a.spent() - 1.0).abs() < 1e-12);
        assert!(a.remaining() < 1e-12);
        assert!((a.lifetime_spent() - 1.0).abs() < 1e-12);
        assert!((a.spent_at(0) - 0.4).abs() < 1e-12);
        assert!((a.spent_at(2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn windowed_accounting_lets_old_expenditure_age_out() {
        let mut a = ContinualAccountant::with_window(0.5, 2);
        assert!(a.try_spend(0.3)); // v0
        a.advance_to(1);
        assert!(a.try_spend(0.2)); // window {0,1} now full
        assert!(!a.try_spend(0.1), "window sum 0.5 == budget");
        a.advance_to(2); // window {1,2}: v0's 0.3 ages out
        assert!((a.spent() - 0.2).abs() < 1e-12);
        assert!(a.try_spend(0.3));
        assert!((a.lifetime_spent() - 0.8).abs() < 1e-12);
        assert_eq!(a.spent_at(0), 0.0, "pruned after leaving the window");
    }

    #[test]
    fn continual_advance_is_idempotent_and_monotone() {
        let mut a = ContinualAccountant::new(1.0);
        a.advance_to(3);
        a.advance_to(3); // no-op
        assert_eq!(a.version(), 3);
        assert!(a.try_spend(0.5));
        assert!((a.spent_at(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn continual_accountant_never_rewinds() {
        let mut a = ContinualAccountant::new(1.0);
        a.advance_to(2);
        a.advance_to(1);
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn zero_window_is_rejected() {
        ContinualAccountant::with_window(1.0, 0);
    }

    #[test]
    fn continual_precheck_matches_spending() {
        let mut a = ContinualAccountant::new(1.0);
        assert!(a.try_spend(0.3));
        a.advance_to(1);
        let ok = a.precheck(&[0.3, 0.3]);
        assert!(ok.admissible);
        let over = a.precheck(&[0.3, 0.3, 0.3]);
        assert!(!over.admissible);
        assert_eq!(over.first_refused, Some(2));
        // Precheck spent nothing.
        assert!((a.spent() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn spend_exactly_at_tolerance_boundary_is_admitted() {
        let mut a = ContinualAccountant::new(0.3);
        for _ in 0..3 {
            assert!(a.try_spend(0.1), "floating-point sum must not refuse");
        }
        assert!(!a.try_spend(1e-9));
    }
}
