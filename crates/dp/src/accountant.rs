//! Privacy-loss ("privacy budget") accounting.
//!
//! The paper: "The privacy loss parameter ε (also referred to as the
//! 'privacy budget') quantifies and bounds the excessive risk to an
//! individual... differential privacy is closed under composition, i.e., the
//! result of applying two or more differentially private analyses ...
//! preserves differential privacy (albeit with worse privacy loss parameter)."
//!
//! Two composition rules are implemented:
//!
//! * **basic composition** — `k` mechanisms at ε_i compose to `Σ ε_i`
//!   (pure ε-DP);
//! * **advanced composition** (Dwork–Rothblum–Vadhan) — `k` mechanisms at ε
//!   compose to `ε' = ε√(2k ln(1/δ')) + k ε (e^ε − 1)` with additional
//!   failure probability δ', trading a δ for a √k growth rate.

/// Result of composing `k` ε-DP mechanisms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComposedLoss {
    /// Composite ε.
    pub epsilon: f64,
    /// Composite δ (0 for basic composition of pure DP).
    pub delta: f64,
}

/// Basic (linear) composition of pure ε-DP losses.
#[derive(Debug, Clone, Copy, Default)]
pub struct BasicComposition;

impl BasicComposition {
    /// Composes `k` copies of an ε-DP mechanism.
    pub fn compose_uniform(&self, epsilon: f64, k: usize) -> ComposedLoss {
        ComposedLoss {
            epsilon: epsilon * k as f64,
            delta: 0.0,
        }
    }

    /// Composes heterogeneous losses.
    pub fn compose(&self, epsilons: &[f64]) -> ComposedLoss {
        ComposedLoss {
            epsilon: epsilons.iter().sum(),
            delta: 0.0,
        }
    }
}

/// Advanced composition with slack δ'.
#[derive(Debug, Clone, Copy)]
pub struct AdvancedComposition {
    /// The failure-probability slack δ' spent on tighter ε accounting.
    pub delta_slack: f64,
}

impl AdvancedComposition {
    /// Creates the rule with slack `δ' ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics for δ' outside (0, 1).
    pub fn new(delta_slack: f64) -> Self {
        assert!(
            delta_slack > 0.0 && delta_slack < 1.0,
            "bad delta slack {delta_slack}"
        );
        AdvancedComposition { delta_slack }
    }

    /// Composes `k` copies of an ε-DP mechanism:
    /// `ε' = ε √(2k ln(1/δ')) + k ε (e^ε − 1)`, δ = δ'.
    pub fn compose_uniform(&self, epsilon: f64, k: usize) -> ComposedLoss {
        let k_f = k as f64;
        let eps = epsilon * (2.0 * k_f * (1.0 / self.delta_slack).ln()).sqrt()
            + k_f * epsilon * (epsilon.exp() - 1.0);
        ComposedLoss {
            epsilon: eps,
            delta: self.delta_slack,
        }
    }
}

/// Outcome of statically prechecking a workload of per-analysis ε costs
/// against an accountant, *before* anything is spent. This is the API the
/// `so-analyze` workload linter uses: a whole query workload is summed
/// under worst-case (basic) composition and either admitted or refused as a
/// unit, so refusal happens before a single answer is released.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPrecheck {
    /// Worst-case total ε of the workload (basic composition).
    pub total: f64,
    /// Budget remaining in the accountant at precheck time.
    pub remaining: f64,
    /// True iff the whole workload fits in the remaining budget.
    pub admissible: bool,
    /// Index of the first analysis that would be refused, if any.
    pub first_refused: Option<usize>,
}

/// A spendable privacy budget with a running ledger (basic composition).
#[derive(Debug, Clone)]
pub struct PrivacyAccountant {
    budget: f64,
    spent: f64,
    ledger: Vec<(String, f64)>,
}

impl PrivacyAccountant {
    /// Opens an accountant with total budget `ε_total`.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite budget.
    pub fn new(budget: f64) -> Self {
        assert!(budget > 0.0 && budget.is_finite(), "bad budget {budget}");
        PrivacyAccountant {
            budget,
            spent: 0.0,
            ledger: Vec::new(),
        }
    }

    /// Attempts to spend `epsilon` on an analysis; returns false (and spends
    /// nothing) if the budget would be exceeded.
    pub fn try_spend(&mut self, label: &str, epsilon: f64) -> bool {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "bad epsilon {epsilon}"
        );
        if self.spent + epsilon > self.budget + 1e-12 {
            crate::obs::dp_metrics().budget_refusals.inc();
            return false;
        }
        self.spent += epsilon;
        self.ledger.push((label.to_owned(), epsilon));
        crate::obs::dp_metrics().epsilon_spent.add(epsilon);
        true
    }

    /// Statically sums the worst-case cost of a workload of per-analysis ε
    /// values (basic composition) against the remaining budget, spending
    /// nothing. Every cost must be positive and finite, mirroring
    /// [`PrivacyAccountant::try_spend`].
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite cost.
    pub fn precheck(&self, epsilons: &[f64]) -> BudgetPrecheck {
        let remaining = self.remaining();
        let mut total = 0.0;
        let mut first_refused = None;
        for (i, &eps) in epsilons.iter().enumerate() {
            assert!(eps > 0.0 && eps.is_finite(), "bad epsilon {eps}");
            total += eps;
            if first_refused.is_none() && total > remaining + 1e-12 {
                first_refused = Some(i);
            }
        }
        BudgetPrecheck {
            total,
            remaining,
            admissible: first_refused.is_none(),
            first_refused,
        }
    }

    /// Total ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining budget.
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent).max(0.0)
    }

    /// The ledger of `(label, ε)` expenditures in order.
    pub fn ledger(&self) -> &[(String, f64)] {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_composition_is_linear() {
        let c = BasicComposition.compose_uniform(0.1, 10);
        assert!((c.epsilon - 1.0).abs() < 1e-12);
        assert_eq!(c.delta, 0.0);
        let h = BasicComposition.compose(&[0.1, 0.2, 0.3]);
        assert!((h.epsilon - 0.6).abs() < 1e-12);
    }

    #[test]
    fn advanced_composition_beats_basic_for_many_small_queries() {
        let eps = 0.01;
        let k = 10_000;
        let basic = BasicComposition.compose_uniform(eps, k);
        let adv = AdvancedComposition::new(1e-6).compose_uniform(eps, k);
        assert!(basic.epsilon > 99.0);
        assert!(
            adv.epsilon < basic.epsilon / 10.0,
            "advanced {} vs basic {}",
            adv.epsilon,
            basic.epsilon
        );
        assert_eq!(adv.delta, 1e-6);
    }

    #[test]
    fn advanced_composition_worse_for_single_query() {
        // For k = 1 the advanced bound's √ term alone exceeds ε.
        let adv = AdvancedComposition::new(1e-6).compose_uniform(1.0, 1);
        assert!(adv.epsilon > 1.0);
    }

    #[test]
    fn advanced_composition_monotone_in_k() {
        let rule = AdvancedComposition::new(1e-5);
        let mut prev = 0.0;
        for k in [1usize, 2, 4, 8, 16, 32] {
            let c = rule.compose_uniform(0.1, k);
            assert!(c.epsilon > prev, "k={k}");
            prev = c.epsilon;
        }
    }

    #[test]
    fn accountant_enforces_budget() {
        let mut a = PrivacyAccountant::new(1.0);
        assert!(a.try_spend("q1", 0.4));
        assert!(a.try_spend("q2", 0.4));
        assert!(!a.try_spend("q3", 0.4), "would exceed");
        assert!(a.try_spend("q3-small", 0.2));
        assert!((a.spent() - 1.0).abs() < 1e-12);
        assert!(a.remaining() < 1e-12);
        assert_eq!(a.ledger().len(), 3);
        assert_eq!(a.ledger()[0].0, "q1");
    }

    #[test]
    fn precheck_is_static_and_matches_try_spend() {
        let mut a = PrivacyAccountant::new(1.0);
        assert!(a.try_spend("prior", 0.3));
        let ok = a.precheck(&[0.2, 0.2, 0.3]);
        assert!(ok.admissible);
        assert_eq!(ok.first_refused, None);
        assert!((ok.total - 0.7).abs() < 1e-12);
        assert!((ok.remaining - 0.7).abs() < 1e-12);
        // Precheck spent nothing.
        assert!((a.spent() - 0.3).abs() < 1e-12);

        let too_much = a.precheck(&[0.2, 0.2, 0.4]);
        assert!(!too_much.admissible);
        assert_eq!(too_much.first_refused, Some(2));
        // The verdict agrees with actually spending, query by query.
        assert!(a.try_spend("q0", 0.2));
        assert!(a.try_spend("q1", 0.2));
        assert!(!a.try_spend("q2", 0.4));
    }

    #[test]
    fn precheck_of_empty_workload_is_admissible() {
        let a = PrivacyAccountant::new(0.5);
        let r = a.precheck(&[]);
        assert!(r.admissible);
        assert_eq!(r.total, 0.0);
    }

    #[test]
    #[should_panic(expected = "bad epsilon")]
    fn precheck_rejects_nonfinite_cost() {
        PrivacyAccountant::new(1.0).precheck(&[0.1, f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "bad epsilon")]
    fn accountant_rejects_nonpositive_spend() {
        PrivacyAccountant::new(1.0).try_spend("bad", 0.0);
    }

    #[test]
    #[should_panic(expected = "bad delta slack")]
    fn advanced_rejects_bad_slack() {
        AdvancedComposition::new(0.0);
    }
}
