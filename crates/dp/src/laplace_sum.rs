//! Laplace-noised subset-sum mechanism.
//!
//! Bridges the DP substrate into the Dinur–Nissim query model: each
//! subset-sum query is answered with `Lap(1/ε_q)` noise, where `ε_q` is the
//! per-query privacy loss. Pointing the reconstruction attacks of `so-recon`
//! at this mechanism (with a sensible total budget) demonstrates the
//! "remedy" side of the paper's story: with per-query noise calibrated to
//! the number of queries, reconstruction accuracy collapses to chance.

use rand::Rng;

use so_data::BitVec;
use so_query::{SubsetQuery, SubsetSumMechanism};

use crate::samplers::sample_laplace;

/// Answers subset-sum queries with independent Laplace noise; tracks the
/// cumulative (basic-composition) privacy loss.
pub struct LaplaceSum<R: Rng> {
    x: BitVec,
    per_query_epsilon: f64,
    queries_answered: usize,
    rng: R,
}

impl<R: Rng> LaplaceSum<R> {
    /// Serves `x` spending `per_query_epsilon` per answer.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite ε.
    pub fn new(x: BitVec, per_query_epsilon: f64, rng: R) -> Self {
        assert!(
            per_query_epsilon > 0.0 && per_query_epsilon.is_finite(),
            "bad epsilon {per_query_epsilon}"
        );
        LaplaceSum {
            x,
            per_query_epsilon,
            queries_answered: 0,
            rng,
        }
    }

    /// Per-query ε.
    pub fn per_query_epsilon(&self) -> f64 {
        self.per_query_epsilon
    }

    /// Total privacy loss under basic composition.
    pub fn total_epsilon_spent(&self) -> f64 {
        self.per_query_epsilon * self.queries_answered as f64
    }

    /// Number of queries answered.
    pub fn queries_answered(&self) -> usize {
        self.queries_answered
    }
}

impl<R: Rng> SubsetSumMechanism for LaplaceSum<R> {
    fn answer(&mut self, query: &SubsetQuery) -> f64 {
        self.queries_answered += 1;
        query.true_answer(&self.x) as f64
            + sample_laplace(1.0 / self.per_query_epsilon, &mut self.rng)
    }

    fn n(&self) -> usize {
        self.x.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::rng::seeded_rng;

    #[test]
    fn answers_are_unbiased() {
        let x = BitVec::from_bools(&[true; 10]);
        let mut m = LaplaceSum::new(x, 1.0, seeded_rng(300));
        let q = SubsetQuery::from_indices(10, &(0..10).collect::<Vec<_>>());
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.answer(&q)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert_eq!(m.queries_answered(), n);
    }

    #[test]
    fn budget_accumulates_linearly() {
        let x = BitVec::zeros(4);
        let mut m = LaplaceSum::new(x, 0.25, seeded_rng(301));
        let q = SubsetQuery::from_indices(4, &[0, 1]);
        for _ in 0..8 {
            m.answer(&q);
        }
        assert!((m.total_epsilon_spent() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn noise_scale_matches_epsilon() {
        let x = BitVec::zeros(8);
        let mut m = LaplaceSum::new(x, 0.5, seeded_rng(302));
        let q = SubsetQuery::from_indices(8, &[]);
        // True answer 0 → samples are pure Lap(2): E|X| = 2.
        let n = 50_000;
        let mae: f64 = (0..n).map(|_| m.answer(&q).abs()).sum::<f64>() / n as f64;
        assert!((mae - 2.0).abs() < 0.1, "mae {mae}");
    }
}
