//! Empirical differential-privacy verification.
//!
//! Definition 1.2 is a statement about output distributions on *neighboring*
//! inputs. For mechanisms with (discretizable) numeric output, the inequality
//! can be audited by Monte Carlo: sample both distributions, histogram them,
//! and check every well-populated bucket's likelihood ratio against `e^ε`.
//! This cannot *prove* DP (only a proof can), but it reliably catches broken
//! mechanisms and mis-calibrated noise — the same spirit as the paper's
//! insistence that privacy claims be falsifiable (§2.4.3).

use std::collections::HashMap;

use rand::Rng;

/// Result of an empirical DP audit.
#[derive(Debug, Clone)]
pub struct DpAuditResult {
    /// Largest observed log-likelihood ratio over checked buckets.
    pub max_log_ratio: f64,
    /// The claimed ε.
    pub claimed_epsilon: f64,
    /// Number of buckets with enough mass to check.
    pub buckets_checked: usize,
    /// Whether every checked bucket respected `e^(ε + slack)`.
    pub passed: bool,
}

/// Audit configuration.
#[derive(Debug, Clone, Copy)]
pub struct DpAuditConfig {
    /// Samples drawn from each of the two output distributions.
    pub samples: usize,
    /// Output discretization width.
    pub bucket_width: f64,
    /// Minimum per-bucket count (both sides) for the ratio to be checked.
    pub min_bucket_count: usize,
    /// Additive slack on ε absorbing discretization + sampling error.
    pub epsilon_slack: f64,
}

impl Default for DpAuditConfig {
    fn default() -> Self {
        DpAuditConfig {
            samples: 200_000,
            bucket_width: 0.5,
            min_bucket_count: 500,
            epsilon_slack: 0.25,
        }
    }
}

/// Audits a randomized function `f` claimed to be `ε`-DP across one pair of
/// neighboring inputs, by comparing the output distributions of
/// `f(input_a)` and `f(input_b)`.
///
/// `f` is called with the input and an RNG and must return a numeric output
/// (counts, noisy sums, ...).
pub fn audit_dp_pair<I, R: Rng + ?Sized>(
    f: impl Fn(&I, &mut R) -> f64,
    input_a: &I,
    input_b: &I,
    claimed_epsilon: f64,
    config: &DpAuditConfig,
    rng: &mut R,
) -> DpAuditResult {
    assert!(claimed_epsilon > 0.0 && claimed_epsilon.is_finite());
    let bucket = |x: f64| (x / config.bucket_width).round() as i64;
    let mut ha: HashMap<i64, usize> = HashMap::new();
    let mut hb: HashMap<i64, usize> = HashMap::new();
    for _ in 0..config.samples {
        *ha.entry(bucket(f(input_a, rng))).or_insert(0) += 1;
        *hb.entry(bucket(f(input_b, rng))).or_insert(0) += 1;
    }
    let mut max_log_ratio: f64 = 0.0;
    let mut buckets_checked = 0usize;
    for (k, &ca) in &ha {
        let cb = *hb.get(k).unwrap_or(&0);
        if ca >= config.min_bucket_count && cb >= config.min_bucket_count {
            buckets_checked += 1;
            let ratio = (ca as f64 / cb as f64).ln().abs();
            max_log_ratio = max_log_ratio.max(ratio);
        }
    }
    DpAuditResult {
        max_log_ratio,
        claimed_epsilon,
        buckets_checked,
        passed: max_log_ratio <= claimed_epsilon + config.epsilon_slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::LaplaceCount;
    use crate::samplers::sample_gaussian;
    use so_data::rng::seeded_rng;

    #[test]
    fn laplace_count_passes_its_claim() {
        let eps = 1.0;
        let m = LaplaceCount::new(eps);
        let res = audit_dp_pair(
            |&c: &usize, rng: &mut rand::rngs::StdRng| m.release(c, rng),
            &10,
            &11,
            eps,
            &DpAuditConfig::default(),
            &mut seeded_rng(400),
        );
        assert!(res.passed, "max log ratio {}", res.max_log_ratio);
        assert!(res.buckets_checked >= 5);
        // The observed ratio should actually approach ε somewhere.
        assert!(res.max_log_ratio > eps * 0.5, "ratio {}", res.max_log_ratio);
    }

    #[test]
    fn under_noised_mechanism_fails_the_audit() {
        // Claim ε = 0.2 but add Lap(1/1.0) noise — the true loss is 1.0.
        let m = LaplaceCount::new(1.0);
        let res = audit_dp_pair(
            |&c: &usize, rng: &mut rand::rngs::StdRng| m.release(c, rng),
            &10,
            &11,
            0.2,
            &DpAuditConfig::default(),
            &mut seeded_rng(401),
        );
        assert!(!res.passed, "audit should catch the over-claim");
    }

    #[test]
    fn deterministic_release_fails_catastrophically() {
        let res = audit_dp_pair(
            |&c: &usize, _rng: &mut rand::rngs::StdRng| c as f64,
            &10,
            &11,
            1.0,
            &DpAuditConfig {
                min_bucket_count: 100,
                ..DpAuditConfig::default()
            },
            &mut seeded_rng(402),
        );
        // Disjoint supports: no shared buckets to check, which the caller
        // must treat as failure (no evidence of overlap at all).
        assert_eq!(res.buckets_checked, 0);
    }

    #[test]
    fn gaussian_noise_violates_pure_dp_at_the_tails() {
        // Gaussian mechanisms are (ε, δ)-DP, not pure ε-DP; with enough
        // samples and tight slack the audit sees super-ε ratios in the
        // tails for a small claimed ε.
        let res = audit_dp_pair(
            |&c: &usize, rng: &mut rand::rngs::StdRng| c as f64 + sample_gaussian(0.4, rng),
            &10,
            &11,
            0.3,
            &DpAuditConfig {
                samples: 300_000,
                bucket_width: 0.25,
                min_bucket_count: 300,
                epsilon_slack: 0.2,
            },
            &mut seeded_rng(403),
        );
        assert!(
            !res.passed,
            "pure-DP audit should flag the Gaussian: max ratio {}",
            res.max_log_ratio
        );
    }
}
