//! Noise samplers, implemented from first principles.
//!
//! `rand` provides uniform variates only (by design — we keep the DP noise
//! path fully auditable in this crate). The Laplace sampler uses the inverse
//! CDF; the two-sided geometric (discrete Laplace) inverts the geometric CDF
//! on each side; the Gaussian uses Box–Muller.

use rand::Rng;

/// Samples `Lap(b)`: density `f(x) = exp(-|x|/b) / 2b`.
///
/// The paper's Theorem 1.3 adds `Y ~ Lap(1/ε)` to a count to obtain
/// ε-differential privacy.
///
/// # Panics
/// Panics if `b <= 0` or non-finite.
pub fn sample_laplace<R: Rng + ?Sized>(b: f64, rng: &mut R) -> f64 {
    assert!(b > 0.0 && b.is_finite(), "bad Laplace scale {b}");
    // Inverse CDF: for u ~ Uniform(-1/2, 1/2),
    //   X = -b * sign(u) * ln(1 - 2|u|)  ~ Lap(b).
    let u: f64 = rng.gen::<f64>() - 0.5;
    // Guard the logarithm's argument away from 0 (u = ±0.5 has prob. 0 but
    // floating point can graze it).
    let t = (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE);
    let x = -b * u.signum() * t.ln();
    let m = crate::obs::dp_metrics();
    m.laplace_draws.inc();
    m.noise_abs.observe(x.abs());
    draw_event("laplace", b);
    x
}

/// Emits one `dp.draw` trace event when tracing is on. Deliberately records
/// only the sampler and its *public* scale parameter — never the realized
/// noise value, which would let a trace reader denoise released counts.
fn draw_event(sampler: &str, scale: f64) {
    if so_obs::enabled() {
        so_obs::event(
            "dp.draw",
            &[
                ("sampler", sampler.to_owned()),
                ("scale", format!("{scale}")),
            ],
        );
    }
}

/// Samples the two-sided geometric distribution with parameter
/// `p = 1 - exp(-ε/Δ)`: the *discrete Laplace*, `Pr[X = k] ∝ exp(-ε|k|/Δ)`.
/// Adding it to an integer count gives ε-DP with integer outputs — the
/// "geometric mechanism".
///
/// # Panics
/// Panics if `epsilon_over_delta <= 0` or non-finite.
pub fn sample_two_sided_geometric<R: Rng + ?Sized>(epsilon_over_delta: f64, rng: &mut R) -> i64 {
    assert!(
        epsilon_over_delta > 0.0 && epsilon_over_delta.is_finite(),
        "bad geometric parameter {epsilon_over_delta}"
    );
    let alpha = (-epsilon_over_delta).exp(); // in (0, 1)
                                             // Sample magnitude: P[|X| = 0] = (1-α)/(1+α); P[|X| = k] = that * 2α^k...
                                             // Equivalent construction: X = G1 - G2 with G1, G2 iid Geometric(1-α)
                                             // (number of failures before first success).
    let g1 = sample_geometric_failures(1.0 - alpha, rng);
    let g2 = sample_geometric_failures(1.0 - alpha, rng);
    let x = g1 - g2;
    let m = crate::obs::dp_metrics();
    m.geometric_draws.inc();
    m.noise_abs.observe(x.unsigned_abs() as f64);
    draw_event("geometric", epsilon_over_delta);
    x
}

/// Number of failures before the first success of a Bernoulli(p) sequence,
/// sampled by CDF inversion: `floor(ln(U) / ln(1-p))`.
fn sample_geometric_failures<R: Rng + ?Sized>(p: f64, rng: &mut R) -> i64 {
    debug_assert!((0.0..=1.0).contains(&p));
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).floor() as i64
}

/// Samples `N(0, sigma^2)` via Box–Muller. Used for the Gaussian-mechanism
/// ablation (approximate DP), not for the core ε-DP results.
///
/// # Panics
/// Panics if `sigma <= 0` or non-finite.
pub fn sample_gaussian<R: Rng + ?Sized>(sigma: f64, rng: &mut R) -> f64 {
    assert!(
        sigma > 0.0 && sigma.is_finite(),
        "bad Gaussian sigma {sigma}"
    );
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let x = sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let m = crate::obs::dp_metrics();
    m.gaussian_draws.inc();
    m.noise_abs.observe(x.abs());
    draw_event("gaussian", sigma);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::rng::seeded_rng;

    const N: usize = 200_000;

    #[test]
    fn laplace_mean_and_scale() {
        let mut rng = seeded_rng(100);
        let b = 2.0;
        let samples: Vec<f64> = (0..N).map(|_| sample_laplace(b, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / N as f64;
        // Lap(b) has mean 0, variance 2b² = 8, stddev ≈ 2.83; SE ≈ 0.0063.
        assert!(mean.abs() < 0.05, "mean {mean}");
        let mean_abs = samples.iter().map(|x| x.abs()).sum::<f64>() / N as f64;
        // E|X| = b.
        assert!((mean_abs - b).abs() < 0.05, "E|X| = {mean_abs}");
    }

    #[test]
    fn laplace_median_is_zero() {
        let mut rng = seeded_rng(101);
        let pos = (0..N)
            .filter(|_| sample_laplace(1.0, &mut rng) > 0.0)
            .count();
        let frac = pos as f64 / N as f64;
        assert!((0.49..=0.51).contains(&frac), "positive fraction {frac}");
    }

    #[test]
    fn laplace_tail_decay() {
        // P[|X| > t] = exp(-t/b).
        let mut rng = seeded_rng(102);
        let b = 1.0;
        let t = 2.0;
        let exceed = (0..N)
            .filter(|_| sample_laplace(b, &mut rng).abs() > t)
            .count();
        let frac = exceed as f64 / N as f64;
        let expected = (-t / b).exp(); // ≈ 0.1353
        assert!((frac - expected).abs() < 0.01, "tail {frac} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "bad Laplace scale")]
    fn laplace_rejects_nonpositive_scale() {
        sample_laplace(0.0, &mut seeded_rng(0));
    }

    #[test]
    fn geometric_symmetric_and_integer() {
        let mut rng = seeded_rng(103);
        let eps = 0.5;
        let samples: Vec<i64> = (0..N)
            .map(|_| sample_two_sided_geometric(eps, &mut rng))
            .collect();
        let mean = samples.iter().sum::<i64>() as f64 / N as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        // P[X = 0] = (1-α)/(1+α) with α = e^-ε.
        let alpha = (-eps).exp();
        let p0_expected = (1.0 - alpha) / (1.0 + alpha);
        let p0 = samples.iter().filter(|&&x| x == 0).count() as f64 / N as f64;
        assert!((p0 - p0_expected).abs() < 0.01, "P0 {p0} vs {p0_expected}");
    }

    #[test]
    fn geometric_ratio_matches_epsilon() {
        // Pr[X = k+1] / Pr[X = k] = e^-ε for k ≥ 0.
        let mut rng = seeded_rng(104);
        let eps = 1.0;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..N {
            *counts
                .entry(sample_two_sided_geometric(eps, &mut rng))
                .or_insert(0usize) += 1;
        }
        let p0 = counts[&0] as f64;
        let p1 = counts[&1] as f64;
        let ratio = p1 / p0;
        let expected = (-eps).exp();
        assert!(
            (ratio - expected).abs() < 0.03,
            "ratio {ratio} vs {expected}"
        );
    }

    #[test]
    fn gaussian_mean_and_variance() {
        let mut rng = seeded_rng(105);
        let sigma = 3.0;
        let samples: Vec<f64> = (0..N).map(|_| sample_gaussian(sigma, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / N as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn geometric_failures_matches_expectation() {
        // E[failures] = (1-p)/p.
        let mut rng = seeded_rng(106);
        let p = 0.25;
        let total: i64 = (0..N).map(|_| sample_geometric_failures(p, &mut rng)).sum();
        let mean = total as f64 / N as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }
}
