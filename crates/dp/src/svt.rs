//! The Sparse Vector Technique (AboveThreshold).
//!
//! The paper's E5/E6 arc shows that answering *many* count queries exactly
//! destroys privacy, and that naive per-query noise spends ε linearly. SVT
//! is the classic way out when the analyst only cares *which* queries
//! exceed a threshold: an entire stream of threshold tests costs a constant
//! ε per reported "above", regardless of how many "below"s are answered.
//!
//! Implementation follows the standard (and *correct* — several published
//! variants are broken) AboveThreshold algorithm: noise the threshold once
//! with `Lap(2/ε₁)`, compare each query's `Lap(4/ε₁)`-noised answer against
//! it, halt after `c` aboves with total loss `ε = c·ε₁`.

use rand::Rng;

use crate::samplers::sample_laplace;

/// One answer from the sparse vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvtAnswer {
    /// The noisy answer was above the noisy threshold.
    Above,
    /// Below (free — does not consume the budget counter).
    Below,
    /// The mechanism has halted (budget of aboves exhausted).
    Halted,
}

/// An AboveThreshold sparse-vector session over sensitivity-1 queries.
pub struct SparseVector<R: Rng> {
    threshold: f64,
    noisy_threshold: f64,
    epsilon_per_above: f64,
    aboves_remaining: usize,
    answered: usize,
    rng: R,
}

impl<R: Rng> SparseVector<R> {
    /// Opens a session reporting up to `max_aboves` above-threshold events
    /// at total privacy loss `epsilon`.
    ///
    /// # Panics
    /// Panics on non-positive ε or zero `max_aboves`.
    pub fn new(threshold: f64, epsilon: f64, max_aboves: usize, mut rng: R) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "bad epsilon {epsilon}"
        );
        assert!(max_aboves >= 1, "need at least one reportable above");
        let epsilon_per_above = epsilon / max_aboves as f64;
        let noisy_threshold = threshold + sample_laplace(2.0 / epsilon_per_above, &mut rng);
        SparseVector {
            threshold,
            noisy_threshold,
            epsilon_per_above,
            aboves_remaining: max_aboves,
            answered: 0,
            rng,
        }
    }

    /// Tests one sensitivity-1 query value against the threshold.
    pub fn query(&mut self, true_value: f64) -> SvtAnswer {
        if self.aboves_remaining == 0 {
            return SvtAnswer::Halted;
        }
        self.answered += 1;
        let noisy = true_value + sample_laplace(4.0 / self.epsilon_per_above, &mut self.rng);
        if noisy >= self.noisy_threshold {
            self.aboves_remaining -= 1;
            // Re-noise the threshold for the next round (the multi-above
            // variant requires a fresh threshold per reported above).
            self.noisy_threshold =
                self.threshold + sample_laplace(2.0 / self.epsilon_per_above, &mut self.rng);
            SvtAnswer::Above
        } else {
            SvtAnswer::Below
        }
    }

    /// Queries answered so far (both kinds).
    pub fn queries_answered(&self) -> usize {
        self.answered
    }

    /// Reportable aboves left before the session halts.
    pub fn aboves_remaining(&self) -> usize {
        self.aboves_remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::rng::seeded_rng;

    #[test]
    fn clear_signals_are_detected() {
        // Queries far above/below the threshold relative to the noise scale
        // are classified correctly with overwhelming probability.
        let mut correct = 0;
        let trials = 200;
        for seed in 0..trials {
            let mut svt = SparseVector::new(50.0, 2.0, 1, seeded_rng(700 + seed));
            // 20 clear belows, then one clear above.
            let mut ok = true;
            for _ in 0..20 {
                if svt.query(10.0) != SvtAnswer::Below {
                    ok = false;
                }
            }
            if svt.query(90.0) != SvtAnswer::Above {
                ok = false;
            }
            if ok {
                correct += 1;
            }
        }
        assert!(correct > 190, "correct {correct}/{trials}");
    }

    #[test]
    fn halts_after_budgeted_aboves() {
        let mut svt = SparseVector::new(0.0, 1.0, 2, seeded_rng(710));
        assert_eq!(svt.query(1_000.0), SvtAnswer::Above);
        assert_eq!(svt.aboves_remaining(), 1);
        assert_eq!(svt.query(1_000.0), SvtAnswer::Above);
        assert_eq!(svt.query(1_000.0), SvtAnswer::Halted);
        assert_eq!(svt.query(-1_000.0), SvtAnswer::Halted);
    }

    #[test]
    fn belows_are_free() {
        let mut svt = SparseVector::new(100.0, 1.0, 1, seeded_rng(711));
        for _ in 0..10_000 {
            let _ = svt.query(0.0);
        }
        // Ten thousand below-threshold answers, budget still intact
        // (w.h.p. — noise could flip one; seed chosen to behave).
        assert_eq!(svt.aboves_remaining(), 1);
        assert_eq!(svt.queries_answered(), 10_000);
    }

    #[test]
    #[should_panic(expected = "bad epsilon")]
    fn rejects_bad_epsilon() {
        let _ = SparseVector::new(0.0, 0.0, 1, seeded_rng(1));
    }

    #[test]
    fn borderline_queries_are_noisy() {
        // Exactly at the threshold: answers split roughly evenly.
        let mut aboves = 0u32;
        let trials = 400u32;
        for seed in 0..trials {
            let mut svt = SparseVector::new(50.0, 1.0, 1, seeded_rng(720 + u64::from(seed)));
            if svt.query(50.0) == SvtAnswer::Above {
                aboves += 1;
            }
        }
        let frac = f64::from(aboves) / f64::from(trials);
        assert!((0.3..=0.7).contains(&frac), "above fraction {frac}");
    }
}
