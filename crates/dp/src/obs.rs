//! so-dp observability: noise-draw counters, the noise-magnitude histogram,
//! and privacy-budget accounting metrics, published to the `so-obs` global
//! registry.
//!
//! Draw counts are deterministic for a fixed workload (every release draws
//! a fixed number of variates); the magnitude histogram reflects the seeded
//! RNG stream and, like all histograms here, is export-only — it reaches the
//! `SO_METRICS` dump, never a transcript.

use std::sync::OnceLock;

use so_obs::{global, Counter, Gauge, Histogram};

/// Cached handles to the DP-layer metrics in the [`so_obs::global`]
/// registry. Fetch once via [`dp_metrics`]; updates are lock-free.
#[derive(Debug)]
pub struct DpMetrics {
    /// `so_dp_noise_draws_total{dist="laplace"}` — Laplace variates drawn.
    pub laplace_draws: Counter,
    /// `so_dp_noise_draws_total{dist="geometric"}` — two-sided-geometric
    /// variates drawn.
    pub geometric_draws: Counter,
    /// `so_dp_noise_draws_total{dist="gaussian"}` — Gaussian variates drawn.
    pub gaussian_draws: Counter,
    /// `so_dp_noise_abs` — |noise| magnitudes across all samplers
    /// (export-only).
    pub noise_abs: Histogram,
    /// `so_dp_epsilon_spent` — cumulative ε spent by successful
    /// [`PrivacyAccountant::try_spend`](crate::accountant::PrivacyAccountant::try_spend)
    /// calls, summed over every accountant in the process.
    pub epsilon_spent: Gauge,
    /// `so_dp_budget_refusals_total` — spends refused because they would
    /// exceed an accountant's budget.
    pub budget_refusals: Counter,
}

/// The DP layer's global metric handles, registered on first use.
pub fn dp_metrics() -> &'static DpMetrics {
    static METRICS: OnceLock<DpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        DpMetrics {
            laplace_draws: r.counter_with("so_dp_noise_draws_total", &[("dist", "laplace")]),
            geometric_draws: r.counter_with("so_dp_noise_draws_total", &[("dist", "geometric")]),
            gaussian_draws: r.counter_with("so_dp_noise_draws_total", &[("dist", "gaussian")]),
            noise_abs: r.histogram(
                "so_dp_noise_abs",
                &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            ),
            epsilon_spent: r.gauge("so_dp_epsilon_spent"),
            budget_refusals: r.counter("so_dp_budget_refusals_total"),
        }
    })
}
