//! Property-based tests for the PSO core.

use proptest::prelude::*;
use singling_out_core::baseline::baseline_isolation_probability;
use singling_out_core::isolation::{isolates, matching_count, FnPsoPredicate};
use singling_out_core::negligible::NegligibilityPolicy;
use singling_out_core::stats::{wilson_interval, Z95};

proptest! {
    /// The baseline closed form is a probability and is maximized near
    /// w = 1/n over a grid of weights.
    #[test]
    fn baseline_is_a_probability(n in 1usize..10_000, w in 0.0f64..=1.0) {
        let p = baseline_isolation_probability(n, w);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    /// Monotonicity in w on either side of the optimum 1/n.
    #[test]
    fn baseline_unimodal(n in 2usize..1_000) {
        let opt = 1.0 / n as f64;
        let below = baseline_isolation_probability(n, opt / 2.0);
        let peak = baseline_isolation_probability(n, opt);
        let above = baseline_isolation_probability(n, (opt * 4.0).min(1.0));
        prop_assert!(peak >= below, "peak {peak} below {below}");
        prop_assert!(peak >= above, "peak {peak} above {above}");
    }

    /// isolates() agrees with matching_count() == 1.
    #[test]
    fn isolation_consistent_with_count(records in proptest::collection::vec(0u32..20, 0..60), target in 0u32..20) {
        let p = FnPsoPredicate::new("eq", None, move |r: &u32| *r == target);
        prop_assert_eq!(isolates(&records, &p), matching_count(&records, &p) == 1);
    }

    /// The Wilson interval always contains the point estimate and stays in
    /// [0, 1].
    #[test]
    fn wilson_contains_point_estimate(trials in 1usize..10_000, frac in 0.0f64..=1.0) {
        let successes = ((trials as f64) * frac) as usize;
        let iv = wilson_interval(successes, trials, Z95);
        let p = successes as f64 / trials as f64;
        prop_assert!(iv.lo <= p + 1e-12 && p <= iv.hi + 1e-12);
        prop_assert!(iv.lo >= 0.0 && iv.hi <= 1.0);
    }

    /// Negligibility thresholds are monotone: larger n ⇒ smaller threshold;
    /// larger exponent ⇒ smaller threshold.
    #[test]
    fn negligibility_monotone(n in 2usize..100_000, c in 11u32..40) {
        let c = f64::from(c) / 10.0;
        let p1 = NegligibilityPolicy::new(c);
        let p2 = NegligibilityPolicy::new(c + 0.5);
        prop_assert!(p2.threshold(n) <= p1.threshold(n));
        prop_assert!(p1.threshold(n * 2) <= p1.threshold(n));
        // The required prefix bits really achieve the threshold.
        let bits = p1.required_prefix_bits(n);
        prop_assert!(p1.is_negligible(0.5f64.powi(bits as i32), n));
    }
}
