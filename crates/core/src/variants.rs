//! Alternative formalizations of singling out — §2.3.5 of the paper.
//!
//! > "Before ending this subsection, we note that other formulations of
//! > singling out may emerge from the very same text of the GDPR ... The
//! > emergence of such concepts can be of great benefit."
//!
//! This module explores one natural variant: **group isolation**. The
//! Article 29 Working Party's text speaks of isolating "some or all records
//! which identify an individual" — arguably a predicate that pins down a
//! *small group* (a household, a family) is also a singling-out harm. We
//! define `t`-group isolation (`1 ≤ Σ p(x_i) ≤ t`) and its baseline, and
//! show the machinery of Definition 2.4 carries over.
//!
//! Two facts fall out immediately (both unit-tested below):
//!
//! * the trivial baseline for `t`-group isolation is
//!   `Σ_{j=1..t} C(n,j) w^j (1−w)^{n−j}` — still ≈ constant at `w ≈ 1/n`
//!   and still negligible at negligible weights, so the Definition 2.4
//!   calibration survives the generalization;
//! * k-anonymity fails `t`-group isolation *immediately* for `t ≥ k`: the
//!   released class predicate itself (no refinement needed) isolates a
//!   group of size `k' ≤ t` with probability ≈ 1.

use crate::isolation::PsoPredicate;

/// True iff `p` matches at least one and at most `t` records — the group
/// generalization of Definition 2.1 (which is the `t = 1` case).
pub fn isolates_group<R>(records: &[R], p: &(impl PsoPredicate<R> + ?Sized), t: usize) -> bool {
    assert!(t >= 1, "group bound must be at least 1");
    let mut seen = 0usize;
    for r in records {
        if p.matches(r) {
            seen += 1;
            if seen > t {
                return false;
            }
        }
    }
    seen >= 1
}

/// Baseline probability that a data-independent weight-`w` predicate
/// `t`-group-isolates in an i.i.d. sample of size `n`:
/// `Σ_{j=1..t} C(n,j) w^j (1−w)^{n−j}`.
pub fn baseline_group_isolation_probability(n: usize, w: f64, t: usize) -> f64 {
    assert!((0.0..=1.0).contains(&w), "weight out of range: {w}");
    assert!(t >= 1);
    let mut sum = 0.0;
    // Iterative binomial pmf: P(j) = C(n,j) w^j (1-w)^(n-j).
    let mut pmf = (1.0 - w).powi(n as i32); // j = 0
    for j in 1..=t.min(n) {
        pmf *= (n - j + 1) as f64 / j as f64 * w / (1.0 - w);
        if !pmf.is_finite() {
            break;
        }
        sum += pmf;
    }
    sum.clamp(0.0, 1.0)
}

/// Footnote 11's other regime: *heavy* predicates with
/// `w = ω(log n / n)`. Such predicates match many records, so they isolate
/// with negligible probability for the opposite reason — formally,
/// `n·w·(1−w)^{n−1} ≤ n·e^{−(n−1)w}`, which is `n^{1−c(n−1)/n} → negl` at
/// `w = c·ln(n)/n`. This helper gives the threshold above which a weight
/// counts as heavy (and hence could be admitted to the success event
/// "analogously", as the footnote says).
pub fn heavy_weight_threshold(n: usize, c: f64) -> f64 {
    assert!(n >= 2 && c > 0.0);
    (c * (n as f64).ln() / n as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::baseline_isolation_probability;
    use crate::isolation::FnPsoPredicate;
    use crate::negligible::NegligibilityPolicy;

    #[test]
    fn heavy_predicates_isolate_negligibly() {
        // Footnote 11: weights ω(log n / n) give negligible isolation
        // probability; check the decay across n at c = 3.
        let mut prev_ratio = f64::INFINITY;
        for n in [100usize, 1_000, 10_000, 100_000] {
            let w = heavy_weight_threshold(n, 3.0);
            let p = baseline_isolation_probability(n, w);
            // Compare against 1/n: the heavy baseline decays faster.
            let ratio = p / (1.0 / n as f64);
            assert!(ratio < prev_ratio, "n = {n}: ratio {ratio}");
            prev_ratio = ratio;
        }
        // And at n = 100_000 it is already tiny in absolute terms.
        let p = baseline_isolation_probability(100_000, heavy_weight_threshold(100_000, 3.0));
        assert!(p < 1e-7, "p = {p}");
    }

    #[test]
    fn t_equals_one_recovers_definition_2_1() {
        for n in [10usize, 100, 365] {
            for w in [0.001, 0.01, 0.1] {
                let a = baseline_group_isolation_probability(n, w, 1);
                let b = baseline_isolation_probability(n, w);
                assert!((a - b).abs() < 1e-9, "n={n} w={w}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn group_isolation_is_monotone_in_t() {
        let n = 100;
        let w = 0.02;
        let mut prev = 0.0;
        for t in 1..=10 {
            let p = baseline_group_isolation_probability(n, w, t);
            assert!(p >= prev, "t={t}");
            prev = p;
        }
    }

    #[test]
    fn negligible_weight_keeps_group_baseline_negligible() {
        // The Definition 2.4 calibration survives: at w = n^-2 the group
        // baseline stays ≈ n · w = 1/n even for generous t.
        let policy = NegligibilityPolicy::default();
        let n = 1_000;
        let w = policy.threshold(n);
        let p = baseline_group_isolation_probability(n, w, 10);
        assert!(p < 2.0 / n as f64, "group baseline {p}");
    }

    #[test]
    fn isolates_group_counts_matches() {
        let records = vec![1u32, 2, 2, 3, 3, 3];
        let eq = |v: u32| FnPsoPredicate::new("eq", None, move |r: &u32| *r == v);
        assert!(isolates_group(&records, &eq(1), 1));
        assert!(!isolates_group(&records, &eq(2), 1));
        assert!(isolates_group(&records, &eq(2), 2));
        assert!(!isolates_group(&records, &eq(3), 2));
        assert!(isolates_group(&records, &eq(3), 3));
        assert!(
            !isolates_group(&records, &eq(9), 6),
            "zero matches never isolate"
        );
    }

    #[test]
    fn kanon_class_predicate_group_isolates_without_refinement() {
        // For t ≥ k', the released class predicate alone group-isolates:
        // the paper's 37% refinement step becomes unnecessary under the
        // group variant, making k-anonymity's failure even starker.
        use crate::game::PsoMechanism;
        use crate::game::{DataModel, TabularModel};
        use crate::mechanisms::{Anonymizer, KAnonMechanism};
        use so_data::dist::{AttributeDistribution, Categorical, RowDistribution};
        use so_data::rng::seeded_rng;
        use so_data::schema::{AttributeDef, AttributeRole, DataType};
        use so_data::Schema;
        use so_kanon::MondrianConfig;

        let schema = Schema::new(vec![
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ]);
        let dist = RowDistribution::new(
            schema,
            vec![
                AttributeDistribution::IntUniform { lo: 0, hi: 99_999 },
                AttributeDistribution::IntUniform { lo: 0, hi: 36_499 },
                AttributeDistribution::StrChoice {
                    values: (0..50).map(|i| format!("d{i}")).collect(),
                    dist: Categorical::uniform(50),
                },
            ],
        );
        let model = TabularModel::new(dist.sampler());
        let k = 5usize;
        let mech = KAnonMechanism::new(
            &model,
            vec![0, 1],
            Anonymizer::Mondrian(MondrianConfig { k }),
        );
        let mut rng = seeded_rng(500);
        let mut hits = 0;
        let trials = 50;
        for _ in 0..trials {
            let data = model.sample_dataset(150, &mut rng);
            let classes = mech.run(&data, &mut rng);
            // Take the first class; its box predicate (over QI cols only).
            let class = &classes[0];
            let qi_box = class.qi_box.clone();
            let pred = FnPsoPredicate::new("class box", None, move |r: &Vec<so_data::Value>| {
                qi_box[0].covers(&r[0], None) && qi_box[1].covers(&r[1], None)
            });
            // t = 4k is a generous group bound; the class has k..~4k rows.
            if isolates_group(&data, &pred, 4 * k) {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / trials as f64 > 0.9,
            "class predicates group-isolate almost always, got {hits}/{trials}"
        );
    }
}
