//! Statistics for Monte Carlo estimates.

/// A two-sided confidence interval for a proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// True iff the interval contains `p`.
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lo && p <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Wilson score interval for `successes / trials` at confidence `z` standard
/// normal quantiles (z = 1.96 for 95%, 2.576 for 99%, 3.29 for 99.9%).
///
/// Preferred over the normal approximation because it behaves at the
/// boundaries — PSO success probabilities are often near 0.
///
/// # Panics
/// Panics if `trials == 0` or `successes > trials`.
///
/// ```
/// use singling_out_core::stats::{wilson_interval, Z95};
/// let iv = wilson_interval(37, 100, Z95);
/// assert!(iv.contains(0.37));
/// assert!(iv.lo > 0.27 && iv.hi < 0.47);
/// ```
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> Interval {
    assert!(trials > 0, "no trials");
    assert!(successes <= trials, "more successes than trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    Interval {
        lo: (centre - half).max(0.0),
        hi: (centre + half).min(1.0),
    }
}

/// Conventional z value for 95% two-sided confidence.
pub const Z95: f64 = 1.959_963_985;
/// Conventional z value for 99.9% two-sided confidence (used by statistical
/// assertions in tests so flake probability stays tiny).
pub const Z999: f64 = 3.290_526_73;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_point_estimate() {
        let iv = wilson_interval(50, 100, Z95);
        assert!(iv.contains(0.5));
        assert!(iv.lo > 0.39 && iv.hi < 0.61);
    }

    #[test]
    fn zero_successes_interval_starts_at_zero() {
        let iv = wilson_interval(0, 1000, Z95);
        assert!(iv.lo.abs() < 1e-12, "lo {}", iv.lo);
        assert!(iv.hi < 0.01, "hi {}", iv.hi);
    }

    #[test]
    fn full_successes_interval_ends_at_one() {
        let iv = wilson_interval(1000, 1000, Z95);
        assert!((iv.hi - 1.0).abs() < 1e-12, "hi {}", iv.hi);
        assert!(iv.lo > 0.99);
    }

    #[test]
    fn width_shrinks_with_more_trials() {
        let narrow = wilson_interval(500, 10_000, Z95);
        let wide = wilson_interval(5, 100, Z95);
        assert!(narrow.width() < wide.width());
    }

    #[test]
    fn higher_confidence_is_wider() {
        let a = wilson_interval(30, 100, Z95);
        let b = wilson_interval(30, 100, Z999);
        assert!(b.width() > a.width());
    }

    #[test]
    #[should_panic(expected = "no trials")]
    fn zero_trials_rejected() {
        wilson_interval(0, 0, Z95);
    }
}
