//! Finite-`n` negligibility policies.
//!
//! Definition 2.4 requires the isolating predicate to have *negligible*
//! weight — an asymptotic notion (`f(n) = n^{-ω(1)}`). Experiments run at a
//! fixed `n`, so the workspace adopts an explicit surrogate: weight `w` is
//! treated as negligible at size `n` when `w ≤ n^{-c}` for a configurable
//! exponent `c` (default 2). Validating a claim then means observing the
//! predicted trend across a range of `n` — which is exactly what the
//! experiment sweeps do.
//!
//! The same policy object also answers the dual question from §2.2: weights
//! `w = ω(log n / n)` make isolation *unlikely for the trivial reason* that
//! too many records match; the in-between band is where trivial attackers
//! live.

/// Policy for declaring a weight negligible at finite `n`.
#[derive(Debug, Clone, Copy)]
pub struct NegligibilityPolicy {
    /// The exponent `c` in the threshold `n^-c`.
    pub exponent: f64,
}

impl Default for NegligibilityPolicy {
    fn default() -> Self {
        NegligibilityPolicy { exponent: 2.0 }
    }
}

impl NegligibilityPolicy {
    /// Policy with threshold `n^-c`.
    ///
    /// # Panics
    /// Panics unless `c > 1` (at `c = 1`, weight `1/n` — the trivial
    /// attacker's sweet spot — would count as negligible, trivializing
    /// Definition 2.4).
    pub fn new(exponent: f64) -> Self {
        assert!(
            exponent > 1.0 && exponent.is_finite(),
            "exponent must exceed 1 (got {exponent})"
        );
        NegligibilityPolicy { exponent }
    }

    /// The weight threshold at dataset size `n`.
    pub fn threshold(&self, n: usize) -> f64 {
        (n as f64).powf(-self.exponent)
    }

    /// True iff `w` counts as negligible at size `n`.
    pub fn is_negligible(&self, weight: f64, n: usize) -> bool {
        weight <= self.threshold(n)
    }

    /// The minimal prefix length (in bits) making a uniform-bits prefix
    /// predicate negligible at size `n`: smallest `L` with `2^-L ≤ n^-c`.
    pub fn required_prefix_bits(&self, n: usize) -> usize {
        (self.exponent * (n as f64).log2()).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_scales_with_exponent() {
        let p2 = NegligibilityPolicy::new(2.0);
        let p3 = NegligibilityPolicy::new(3.0);
        assert!((p2.threshold(100) - 1e-4).abs() < 1e-12);
        assert!((p3.threshold(100) - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn trivial_attacker_weight_is_not_negligible() {
        let policy = NegligibilityPolicy::default();
        for n in [10usize, 100, 1000, 100_000] {
            assert!(!policy.is_negligible(1.0 / n as f64, n), "n = {n}");
        }
    }

    #[test]
    fn sufficiently_small_weights_are_negligible() {
        let policy = NegligibilityPolicy::default();
        assert!(policy.is_negligible(1e-7, 1000));
        assert!(!policy.is_negligible(1e-5, 1000));
    }

    #[test]
    fn required_prefix_bits_matches_threshold() {
        let policy = NegligibilityPolicy::default();
        for n in [16usize, 100, 1024] {
            let bits = policy.required_prefix_bits(n);
            let weight = 0.5f64.powi(bits as i32);
            assert!(policy.is_negligible(weight, n), "n = {n}, bits = {bits}");
            // One bit fewer must not suffice.
            let weight_short = 0.5f64.powi(bits as i32 - 1);
            assert!(!policy.is_negligible(weight_short, n), "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "exponent must exceed 1")]
    fn rejects_weak_exponent() {
        NegligibilityPolicy::new(1.0);
    }
}
