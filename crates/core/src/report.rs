//! Assembles legal claims into a single audit report.
//!
//! The paper's program is that statements like "technology T satisfies
//! legal standard S" should be *falsifiable* and published with their
//! supporting analysis (§2.4.3). [`AuditReport`] is the publishable object:
//! a titled collection of [`Claim`]s rendered as plain text or Markdown,
//! with a verdict summary up front.

use crate::legal::{Claim, Verdict};

/// A bundle of legal-technical claims with shared context.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Report title.
    pub title: String,
    /// Free-form context lines (dataset, date, configuration).
    pub context: Vec<String>,
    /// The claims, in presentation order.
    pub claims: Vec<Claim>,
}

impl AuditReport {
    /// Starts an empty report.
    pub fn new(title: &str) -> Self {
        AuditReport {
            title: title.to_owned(),
            context: Vec::new(),
            claims: Vec::new(),
        }
    }

    /// Adds a context line.
    pub fn context(mut self, line: &str) -> Self {
        self.context.push(line.to_owned());
        self
    }

    /// Adds a claim.
    pub fn claim(mut self, claim: Claim) -> Self {
        self.claims.push(claim);
        self
    }

    /// Count of claims with the given verdict.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.claims.iter().filter(|c| c.verdict == verdict).count()
    }

    /// Renders as plain text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}\n{}\n\n",
            self.title,
            "=".repeat(self.title.len())
        ));
        for line in &self.context {
            out.push_str(&format!("{line}\n"));
        }
        if !self.context.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "Summary: {} claim(s) — {} fail the requirement, {} satisfy the necessary \
             condition, {} inconclusive.\n\n",
            self.claims.len(),
            self.count(Verdict::FailsRequirement),
            self.count(Verdict::SatisfiesNecessaryCondition),
            self.count(Verdict::Inconclusive),
        ));
        for c in &self.claims {
            out.push_str(&c.render());
            out.push('\n');
        }
        out
    }

    /// Renders as Markdown (for EXPERIMENTS.md-style documents).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n\n", self.title));
        for line in &self.context {
            out.push_str(&format!("> {line}\n"));
        }
        out.push('\n');
        for c in &self.claims {
            out.push_str(&format!("## {} — {}\n\n", c.technology, c.verdict));
            out.push_str(&format!("**Statement.** {}\n\n", c.statement));
            out.push_str("**Derivation.**\n\n");
            for (i, step) in c.derivation.iter().enumerate() {
                out.push_str(&format!("{}. {}\n", i + 1, step));
            }
            if !c.evidence.is_empty() {
                out.push_str("\n**Evidence.**\n\n");
                out.push_str("| game | successes | rate | 99.9% CI | baseline | n |\n");
                out.push_str("|---|---|---|---|---|---|\n");
                for e in &c.evidence {
                    out.push_str(&format!(
                        "| {} | {}/{} | {:.4} | [{:.4}, {:.4}] | {:.2e} | {} |\n",
                        e.label,
                        e.successes,
                        e.trials,
                        e.rate(),
                        e.rate_lo,
                        e.rate_hi,
                        e.baseline,
                        e.n
                    ));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::GameResult;
    use crate::legal::{kanon_singling_out_theorem, Technology};

    fn strong_game() -> GameResult {
        GameResult {
            n: 200,
            trials: 500,
            isolations: 190,
            pso_successes: 190,
            weight_rejections: 0,
            weight_threshold: 2.5e-5,
            baseline_at_threshold: 5e-3,
            mechanism: "mondrian-k-anonymity[k=5]".into(),
            attacker: "kanon-equivalence-class".into(),
        }
    }

    fn report() -> AuditReport {
        AuditReport::new("GDPR anonymization audit")
            .context("dataset: synthetic medical, n = 200")
            .claim(kanon_singling_out_theorem(5, &[strong_game()]))
    }

    #[test]
    fn text_report_contains_summary_and_claims() {
        let r = report();
        let text = r.render_text();
        assert!(text.starts_with("GDPR anonymization audit\n====="));
        assert!(text.contains("1 fail the requirement"));
        assert!(text.contains("LEGAL THEOREM — 5-anonymity"));
        assert!(text.contains("dataset: synthetic medical"));
    }

    #[test]
    fn markdown_report_has_tables() {
        let md = report().render_markdown();
        assert!(md.contains("# GDPR anonymization audit"));
        assert!(md.contains("## 5-anonymity — FAILS THE REQUIREMENT"));
        assert!(md.contains("| game | successes |"));
        assert!(md.contains("| kanon-equivalence-class vs mondrian-k-anonymity[k=5] | 190/500 |"));
    }

    #[test]
    fn verdict_counts() {
        let r = report();
        assert_eq!(r.count(Verdict::FailsRequirement), 1);
        assert_eq!(r.count(Verdict::Inconclusive), 0);
        let _ = Technology::ExactCount; // silence unused-import pedantry
    }
}
