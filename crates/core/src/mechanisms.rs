//! PSO-game wrappers for the technologies analyzed in §2.3.
//!
//! * [`CountMechanism`] — the counting mechanism `M_#q` of Theorem 2.5;
//! * [`AdaptiveCountOracle`] — the *composition* of count mechanisms behind
//!   Theorems 2.7/2.8: it simulates the canonical adaptive prefix-descent
//!   interaction (each step is one count query; the composed output is the
//!   transcript) with optional per-query Laplace noise, which turns the same
//!   object into the ε-DP mechanism of Theorem 2.9;
//! * [`KAnonMechanism`] — release of a k-anonymized dataset (Mondrian or
//!   Datafly) as the equivalence-class boxes the adversary actually sees
//!   (Theorem 2.10).
//!
//! Deviation note (documented in DESIGN.md §4): Theorem 2.8 asserts a
//! *fixed* set of `ω(log n)` count queries; the oracle here fixes the
//! descent *strategy* instead and publishes the interaction transcript. The
//! information content is the same and every step is a count query, but the
//! queries are chosen adaptively.

use std::sync::Arc;

use rand::Rng;

use so_data::{Dataset, DatasetBuilder, Interner, Schema, Value};
use so_dp::sample_laplace;
use so_kanon::{
    datafly_anonymize, mondrian_anonymize, AttributeHierarchy, DataflyConfig, GenValue,
    MondrianConfig,
};

use crate::game::{BitModel, DataModel, PsoMechanism, TabularModel};
use crate::isolation::PsoPredicate;

/// Theorem 2.5's counting mechanism `M_#q(x) = Σ q(x_i)`.
pub struct CountMechanism<M: DataModel> {
    predicate: Arc<dyn PsoPredicate<M::Record>>,
}

impl<M: DataModel> CountMechanism<M> {
    /// Counts the given predicate.
    pub fn new(predicate: Arc<dyn PsoPredicate<M::Record>>) -> Self {
        CountMechanism { predicate }
    }
}

impl<M: DataModel> PsoMechanism<M> for CountMechanism<M> {
    type Output = usize;

    fn run<R: Rng + ?Sized>(&self, data: &[M::Record], _rng: &mut R) -> usize {
        data.iter().filter(|r| self.predicate.matches(r)).count()
    }

    fn name(&self) -> String {
        format!("count[{}]", self.predicate.describe())
    }
}

/// One step of the adaptive-count transcript: the prefix bit chosen and the
/// (possibly noisy) count observed for the extended prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranscriptStep {
    /// Bit appended to the prefix at this step.
    pub bit: bool,
    /// The answer of the count mechanism for the extended prefix.
    pub count: f64,
}

/// The composed count mechanism of Theorems 2.7/2.8 (exact) and the ε-DP
/// variant of Theorem 2.9 (noisy): simulates prefix descent over bit-string
/// records, one count query per level, and outputs the transcript.
///
/// Descent strategy at each level: query the count of `prefix ∥ 0`; infer
/// `count(prefix ∥ 1) = count(prefix) − count(prefix ∥ 0)` (so exactly one
/// fresh count query per level); go to the branch with the smaller
/// *nonzero* (rounded) count, preferring isolation.
pub struct AdaptiveCountOracle {
    /// Number of levels (count queries) — `ℓ` in Theorem 2.8.
    pub levels: usize,
    /// Per-query Laplace privacy loss; `None` answers exactly.
    pub epsilon_per_query: Option<f64>,
}

impl AdaptiveCountOracle {
    /// Exact oracle with `levels` queries.
    pub fn exact(levels: usize) -> Self {
        AdaptiveCountOracle {
            levels,
            epsilon_per_query: None,
        }
    }

    /// ε-DP oracle: each count answered with `Lap(1/ε_q)` noise. Total loss
    /// under basic composition: `levels · ε_q`.
    pub fn noisy(levels: usize, epsilon_per_query: f64) -> Self {
        assert!(epsilon_per_query > 0.0 && epsilon_per_query.is_finite());
        AdaptiveCountOracle {
            levels,
            epsilon_per_query: Some(epsilon_per_query),
        }
    }

    /// Total privacy loss of the composed release (∞ when exact).
    pub fn total_epsilon(&self) -> f64 {
        match self.epsilon_per_query {
            Some(e) => e * self.levels as f64,
            None => f64::INFINITY,
        }
    }
}

fn prefix_matches(record: &so_data::BitVec, prefix: &[bool]) -> bool {
    prefix.len() <= record.len() && prefix.iter().enumerate().all(|(i, &b)| record.get(i) == b)
}

impl PsoMechanism<BitModel> for AdaptiveCountOracle {
    type Output = Vec<TranscriptStep>;

    fn run<R: Rng + ?Sized>(&self, data: &[so_data::BitVec], rng: &mut R) -> Vec<TranscriptStep> {
        let width = data.first().map_or(0, |r| r.len());
        let mut prefix: Vec<bool> = Vec::with_capacity(self.levels);
        let mut transcript = Vec::with_capacity(self.levels);
        let mut parent_count = data.len() as f64;
        for _ in 0..self.levels.min(width) {
            prefix.push(false);
            let exact0 = data.iter().filter(|r| prefix_matches(r, &prefix)).count() as f64;
            let count0 = match self.epsilon_per_query {
                None => exact0,
                Some(eps) => exact0 + sample_laplace(1.0 / eps, rng),
            };
            let count1 = parent_count - count0;
            // Choose the branch with the smaller apparent nonzero count.
            let zeroish = |c: f64| c < 0.5;
            let take_zero = if zeroish(count0) {
                false
            } else if zeroish(count1) {
                true
            } else {
                count0 <= count1
            };
            let (bit, count) = if take_zero {
                (false, count0)
            } else {
                (true, count1)
            };
            *prefix.last_mut().expect("pushed") = bit;
            transcript.push(TranscriptStep { bit, count });
            parent_count = count;
        }
        transcript
    }

    fn name(&self) -> String {
        match self.epsilon_per_query {
            None => format!("composed-counts[levels={}]", self.levels),
            Some(e) => format!(
                "dp-composed-counts[levels={}, eps/q={e}, eps={}]",
                self.levels,
                self.total_epsilon()
            ),
        }
    }
}

/// The *non-adaptive* composed count mechanism for Theorem 2.8: a FIXED set
/// of `1 + bits` count queries chosen before seeing any data, exactly as the
/// theorem states ("there exist ℓ = ω(log n) count mechanisms ...").
///
/// Query 0 counts a keyed hash slice of designed weight `1/n`. Query
/// `1 + j` counts `slice(x) ∧ x[j] = 1`. When the slice captures exactly one
/// record — probability `≈ 1/e` by the §2.2 baseline — the per-bit counts
/// spell out that record's first `bits` bits verbatim, and the attacker can
/// write down a predicate of weight `(1/n)·2^{-bits}` matching it alone.
pub struct SliceFingerprintOracle {
    /// Slice modulus (designed slice weight `1/modulus`; pick `≈ n`).
    pub modulus: u64,
    /// Number of record bits counted inside the slice.
    pub bits: usize,
    /// Public seed fixing the slice hash key (part of the mechanism
    /// description, so the attacker knows the fixed queries).
    pub seed: u64,
}

impl SliceFingerprintOracle {
    /// Fixed oracle: weight-`1/modulus` slice, `bits` bit-counts.
    pub fn new(modulus: u64, bits: usize, seed: u64) -> Self {
        assert!(modulus > 0);
        SliceFingerprintOracle {
            modulus,
            bits,
            seed,
        }
    }

    /// Total number of composed count queries `ℓ`.
    pub fn queries(&self) -> usize {
        1 + self.bits
    }

    /// The fixed slice predicate.
    pub fn in_slice(&self, record: &so_data::BitVec) -> bool {
        let bytes: Vec<u8> = record
            .words()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        so_data::rng::keyed_hash(self.seed, &bytes) % self.modulus == 0
    }
}

impl PsoMechanism<BitModel> for SliceFingerprintOracle {
    type Output = Vec<usize>;

    fn run<R: Rng + ?Sized>(&self, data: &[so_data::BitVec], _rng: &mut R) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.queries());
        out.push(data.iter().filter(|r| self.in_slice(r)).count());
        for j in 0..self.bits {
            out.push(
                data.iter()
                    .filter(|r| self.in_slice(r) && r.len() > j && r.get(j))
                    .count(),
            );
        }
        out
    }

    fn name(&self) -> String {
        format!(
            "slice-fingerprint-counts[1/{} slice + {} bit counts]",
            self.modulus, self.bits
        )
    }
}

/// A released equivalence class as the adversary sees it: the generalized
/// QI box, the class size, and — because k-anonymity constrains *only* the
/// quasi-identifiers — the verbatim value multisets of every other column.
/// The paper's toy example makes exactly this point: the class predicate is
/// `ZIP ∈ {1234*} ∧ Age ∈ {30-39} ∧ Disease ∈ PULM`, where the last
/// conjunct comes from the released (non-generalized) sensitive column and
/// is what drives the class predicate's weight into negligible territory.
#[derive(Debug, Clone)]
pub struct ReleasedClass {
    /// Generalized values, one per QI column.
    pub qi_box: Vec<GenValue>,
    /// Class size `k' ≥ k`.
    pub size: usize,
    /// For each non-QI column: `(column index, distinct values released for
    /// this class)`.
    pub value_sets: Vec<(usize, Vec<Value>)>,
}

/// Which k-anonymizer the mechanism runs.
#[derive(Clone)]
pub enum Anonymizer {
    /// Mondrian multidimensional partitioning.
    Mondrian(MondrianConfig),
    /// Full-domain generalization with ladders.
    Datafly(DataflyConfig, Arc<Vec<AttributeHierarchy>>),
}

/// Theorem 2.10's mechanism: k-anonymize the sampled dataset and release
/// the equivalence-class boxes.
pub struct KAnonMechanism {
    schema: Arc<Schema>,
    interner: Arc<Interner>,
    qi_cols: Vec<usize>,
    anonymizer: Anonymizer,
    /// Optional ℓ-diversity post-processing: `(sensitive column, ℓ)`.
    enforce_l: Option<(usize, usize)>,
}

impl KAnonMechanism {
    /// Builds the mechanism for rows drawn by `model`.
    pub fn new(model: &TabularModel, qi_cols: Vec<usize>, anonymizer: Anonymizer) -> Self {
        KAnonMechanism {
            schema: model.sampler().distribution().schema().clone(),
            interner: model.sampler().interner().clone(),
            qi_cols,
            anonymizer,
            enforce_l: None,
        }
    }

    /// Additionally enforces distinct ℓ-diversity on `sensitive_col` by
    /// class merging (footnote 3 of the paper: the PSO analysis covers the
    /// ℓ-diversity variant too — this lets the games test that claim).
    pub fn with_l_diversity(mut self, sensitive_col: usize, l: usize) -> Self {
        self.enforce_l = Some((sensitive_col, l));
        self
    }

    /// QI columns the boxes refer to.
    pub fn qi_cols(&self) -> &[usize] {
        &self.qi_cols
    }

    fn build_dataset(&self, rows: &[Vec<Value>]) -> Dataset {
        let mut b = DatasetBuilder::from_parts(self.schema.clone(), (*self.interner).clone());
        for row in rows {
            b.push_row(row.clone());
        }
        b.finish()
    }
}

impl PsoMechanism<TabularModel> for KAnonMechanism {
    type Output = Vec<ReleasedClass>;

    fn run<R: Rng + ?Sized>(&self, data: &[Vec<Value>], _rng: &mut R) -> Vec<ReleasedClass> {
        let ds = self.build_dataset(data);
        let mut anon = match &self.anonymizer {
            Anonymizer::Mondrian(cfg) => mondrian_anonymize(&ds, &self.qi_cols, cfg),
            Anonymizer::Datafly(cfg, hierarchies) => {
                datafly_anonymize(&ds, &self.qi_cols, hierarchies, cfg)
            }
        };
        if let Some((col, l)) = self.enforce_l {
            anon = so_kanon::enforce_l_diversity(&anon, &ds, col, l);
        }
        let non_qi: Vec<usize> = (0..self.schema.len())
            .filter(|c| !self.qi_cols.contains(c))
            .collect();
        anon.classes()
            .iter()
            .map(|c| {
                let value_sets = non_qi
                    .iter()
                    .map(|&col| {
                        let mut vals: Vec<Value> = c.rows.iter().map(|&r| ds.get(r, col)).collect();
                        vals.sort();
                        vals.dedup();
                        (col, vals)
                    })
                    .collect();
                ReleasedClass {
                    qi_box: c.qi_box.clone(),
                    size: c.rows.len(),
                    value_sets,
                }
            })
            .collect()
    }

    fn name(&self) -> String {
        let base = match &self.anonymizer {
            Anonymizer::Mondrian(cfg) => format!("mondrian-k-anonymity[k={}]", cfg.k),
            Anonymizer::Datafly(cfg, _) => format!("datafly-k-anonymity[k={}]", cfg.k),
        };
        match self.enforce_l {
            Some((_, l)) => format!("{base}+{l}-diversity"),
            None => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::BitModel;
    use crate::isolation::FnPsoPredicate;
    use so_data::dist::{AttributeDistribution, Categorical, RowDistribution};
    use so_data::rng::seeded_rng;
    use so_data::schema::{AttributeDef, AttributeRole, DataType};
    use so_data::BitVec;

    #[test]
    fn count_mechanism_counts_exactly() {
        let pred: Arc<dyn PsoPredicate<BitVec>> =
            Arc::new(FnPsoPredicate::new("bit0", Some(0.5), |r: &BitVec| {
                r.get(0)
            }));
        let mech: CountMechanism<BitModel> = CountMechanism::new(pred);
        let data = vec![
            BitVec::from_bools(&[true, false]),
            BitVec::from_bools(&[false, true]),
            BitVec::from_bools(&[true, true]),
        ];
        let out = mech.run(&data, &mut seeded_rng(150));
        assert_eq!(out, 2);
        assert!(mech.name().contains("count"));
    }

    #[test]
    fn exact_oracle_descends_to_a_single_record() {
        use so_data::dist::RecordDistribution;
        let model = BitModel::uniform(64);
        let mut rng = seeded_rng(151);
        let data = match &model {
            BitModel::Uniform(d) => d.sample_n(50, &mut rng),
            _ => unreachable!(),
        };
        let oracle = AdaptiveCountOracle::exact(30);
        let transcript = oracle.run(&data, &mut rng);
        assert_eq!(transcript.len(), 30);
        // Reconstruct the prefix; its exact count must be 1 at the end.
        let prefix: Vec<bool> = transcript.iter().map(|s| s.bit).collect();
        let matches = data.iter().filter(|r| prefix_matches(r, &prefix)).count();
        assert_eq!(matches, 1, "descent should isolate one record");
        // Counts along the way are non-increasing and end at 1.
        assert_eq!(transcript.last().unwrap().count, 1.0);
    }

    #[test]
    fn noisy_oracle_has_laplace_counts() {
        use so_data::dist::RecordDistribution;
        let model = BitModel::uniform(32);
        let mut rng = seeded_rng(152);
        let data = match &model {
            BitModel::Uniform(d) => d.sample_n(40, &mut rng),
            _ => unreachable!(),
        };
        let oracle = AdaptiveCountOracle::noisy(10, 0.1);
        let transcript = oracle.run(&data, &mut rng);
        assert_eq!(transcript.len(), 10);
        // Noisy counts are almost surely non-integers.
        assert!(transcript.iter().any(|s| s.count.fract().abs() > 1e-9));
        assert!((oracle.total_epsilon() - 1.0).abs() < 1e-12);
    }

    fn tabular_model() -> TabularModel {
        let schema = Schema::new(vec![
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ]);
        let dist = RowDistribution::new(
            schema,
            vec![
                AttributeDistribution::IntUniform {
                    lo: 10_000,
                    hi: 10_999,
                },
                AttributeDistribution::IntUniform { lo: 0, hi: 99 },
                AttributeDistribution::StrChoice {
                    values: vec!["COVID".into(), "CF".into()],
                    dist: Categorical::new(&[3.0, 1.0]),
                },
            ],
        );
        TabularModel::new(dist.sampler())
    }

    #[test]
    fn kanon_mechanism_releases_k_sized_classes() {
        let model = tabular_model();
        let mech = KAnonMechanism::new(
            &model,
            vec![0, 1],
            Anonymizer::Mondrian(MondrianConfig { k: 5 }),
        );
        let mut rng = seeded_rng(153);
        let data = model.sample_dataset(200, &mut rng);
        let classes = mech.run(&data, &mut rng);
        assert!(!classes.is_empty());
        let total: usize = classes.iter().map(|c| c.size).sum();
        assert_eq!(total, 200);
        for c in &classes {
            assert!(c.size >= 5, "undersized class {}", c.size);
            assert_eq!(c.qi_box.len(), 2);
        }
    }

    #[test]
    fn kanon_mechanism_boxes_cover_their_members() {
        // The released boxes must cover fresh samples that fall inside
        // (smoke: box covers the members used to build it — verified through
        // so-kanon's own invariant; here check GenValue::covers integration).
        let model = tabular_model();
        let mech = KAnonMechanism::new(
            &model,
            vec![0, 1],
            Anonymizer::Mondrian(MondrianConfig { k: 3 }),
        );
        let mut rng = seeded_rng(154);
        let data = model.sample_dataset(60, &mut rng);
        let classes = mech.run(&data, &mut rng);
        // Every record is covered by exactly one released box (partitions
        // are disjoint in QI space for Mondrian's tight boxes... sibling
        // boxes may share boundary values only on non-split dims, so assert
        // "at least one").
        for row in &data {
            let covered = classes
                .iter()
                .filter(|c| c.qi_box[0].covers(&row[0], None) && c.qi_box[1].covers(&row[1], None))
                .count();
            assert!(covered >= 1, "record not covered by any released box");
        }
    }
}
