//! Legal theorems — §2.4 of the paper.
//!
//! The paper's endgame: turn mathematical results about predicate singling
//! out into *rigorous statements of legal implication*. The key logical
//! asymmetry (from §2.2's design choices):
//!
//! * PSO security is **weaker** than the GDPR's intended notion of
//!   preventing singling out (no auxiliary information, i.i.d. data), and
//!   preventing singling out is **necessary** (Recital 26) for data to be
//!   considered anonymous;
//! * therefore **failing** PSO security implies failing the GDPR
//!   requirement (a legal theorem with teeth — Legal Theorem 2.1 and its
//!   Corollary for k-anonymity), while **satisfying** it only establishes a
//!   necessary condition (the paper's §2.4.1 verdict on differential
//!   privacy: "may provide the right level of anonymization ... further
//!   analysis is needed").
//!
//! [`Claim`] packages a verdict with its full derivation chain and the
//! empirical [`Evidence`] (game results with confidence intervals) so the
//! reasoning is auditable end to end.

use crate::game::GameResult;
use crate::stats::Z999;

/// The privacy technology a claim is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Technology {
    /// k-anonymity with the given parameter (also covers ℓ-diversity /
    /// t-closeness per footnote 3 of the paper).
    KAnonymity {
        /// The anonymity parameter.
        k: usize,
    },
    /// ε-differential privacy.
    DifferentialPrivacy {
        /// Total privacy loss (basic composition), ×1000 to stay `Eq`.
        epsilon_milli: u64,
    },
    /// Exact counting (Theorem 2.5's mechanism).
    ExactCount,
    /// A composition of count mechanisms (Theorems 2.7/2.8).
    ComposedCounts {
        /// Number of composed count queries.
        queries: usize,
    },
    /// Any other mechanism, by name.
    Other(String),
}

impl std::fmt::Display for Technology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Technology::KAnonymity { k } => write!(f, "{k}-anonymity"),
            Technology::DifferentialPrivacy { epsilon_milli } => {
                write!(
                    f,
                    "ε-differential privacy (ε = {})",
                    *epsilon_milli as f64 / 1000.0
                )
            }
            Technology::ExactCount => write!(f, "exact count mechanism"),
            Technology::ComposedCounts { queries } => {
                write!(f, "composition of {queries} count mechanisms")
            }
            Technology::Other(name) => write!(f, "{name}"),
        }
    }
}

/// The legal standard being tested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegalStandard {
    /// GDPR Recital 26's "singling out" criterion for identifiability.
    GdprSinglingOut,
    /// The GDPR anonymization standard as a whole (Recital 26).
    GdprAnonymization,
}

impl std::fmt::Display for LegalStandard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LegalStandard::GdprSinglingOut => {
                write!(f, "GDPR Recital 26 — prevention of singling out")
            }
            LegalStandard::GdprAnonymization => {
                write!(f, "GDPR Recital 26 — anonymization standard")
            }
        }
    }
}

/// Outcome of a legal-technical analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The technology provably fails the standard (the strong direction:
    /// PSO failure ⇒ GDPR failure).
    FailsRequirement,
    /// The technology passes the *necessary* condition tested; sufficiency
    /// for the standard remains open (the paper's DP verdict).
    SatisfiesNecessaryCondition,
    /// The evidence does not support either conclusion at the required
    /// confidence.
    Inconclusive,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::FailsRequirement => write!(f, "FAILS THE REQUIREMENT"),
            Verdict::SatisfiesNecessaryCondition => {
                write!(f, "SATISFIES THE NECESSARY CONDITION (sufficiency open)")
            }
            Verdict::Inconclusive => write!(f, "INCONCLUSIVE"),
        }
    }
}

/// One piece of empirical evidence: a PSO game result.
#[derive(Debug, Clone)]
pub struct Evidence {
    /// What was measured.
    pub label: String,
    /// Dataset size.
    pub n: usize,
    /// Game trials.
    pub trials: usize,
    /// PSO successes (isolation with negligible-weight predicate).
    pub successes: usize,
    /// Success-rate 99.9% Wilson interval lower bound.
    pub rate_lo: f64,
    /// Success-rate 99.9% Wilson interval upper bound.
    pub rate_hi: f64,
    /// Trivial-attacker baseline at the weight threshold.
    pub baseline: f64,
}

impl Evidence {
    /// Extracts evidence from a game result.
    pub fn from_game(label: &str, result: &GameResult) -> Evidence {
        let iv = result.success_interval(Z999);
        Evidence {
            label: label.to_owned(),
            n: result.n,
            trials: result.trials,
            successes: result.pso_successes,
            rate_lo: iv.lo,
            rate_hi: iv.hi,
            baseline: result.baseline_at_threshold,
        }
    }

    /// Point estimate.
    pub fn rate(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }
}

/// A legal theorem: a verdict plus its complete derivation.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Technology under analysis.
    pub technology: Technology,
    /// The standard tested.
    pub standard: LegalStandard,
    /// The verdict.
    pub verdict: Verdict,
    /// The formal statement (the "legal theorem" text).
    pub statement: String,
    /// Step-by-step derivation from legal text to verdict.
    pub derivation: Vec<String>,
    /// Supporting empirical evidence.
    pub evidence: Vec<Evidence>,
}

impl Claim {
    /// Renders the claim as a report block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("LEGAL THEOREM — {}\n", self.technology));
        out.push_str(&format!("  Standard:  {}\n", self.standard));
        out.push_str(&format!("  Verdict:   {}\n", self.verdict));
        out.push_str(&format!("  Statement: {}\n", self.statement));
        out.push_str("  Derivation:\n");
        for (i, step) in self.derivation.iter().enumerate() {
            out.push_str(&format!("    {}. {}\n", i + 1, step));
        }
        if !self.evidence.is_empty() {
            out.push_str("  Evidence:\n");
            for e in &self.evidence {
                out.push_str(&format!(
                    "    - {}: {}/{} successes (rate {:.4}, 99.9% CI [{:.4}, {:.4}]), baseline {:.2e}, n = {}\n",
                    e.label, e.successes, e.trials, e.rate(), e.rate_lo, e.rate_hi, e.baseline, e.n
                ));
            }
        }
        out
    }
}

/// Margin (absolute probability) the success rate must exceed the baseline
/// by, at 99.9% confidence, before we declare a PSO-security failure.
pub const FAILURE_MARGIN: f64 = 0.05;

/// Legal Theorem 2.1 + Legal Corollary 2.1, instantiated from evidence:
/// if the games show PSO success probability significantly above the
/// trivial baseline, k-anonymity fails to prevent singling out as required
/// by the GDPR, and hence does not meet the GDPR anonymization standard.
pub fn kanon_singling_out_theorem(k: usize, games: &[GameResult]) -> Claim {
    let evidence: Vec<Evidence> = games
        .iter()
        .map(|g| Evidence::from_game(&format!("{} vs {}", g.attacker, g.mechanism), g))
        .collect();
    let breaks = games
        .iter()
        .any(|g| g.breaks_pso_security(Z999, FAILURE_MARGIN));
    let verdict = if breaks {
        Verdict::FailsRequirement
    } else {
        Verdict::Inconclusive
    };
    let statement = if breaks {
        format!(
            "{k}-anonymity (similarly, ℓ-diversity and t-closeness) fails to prevent \
             singling out as required by the GDPR, and therefore does not meet the \
             GDPR standard for anonymization."
        )
    } else {
        format!(
            "The measured attacks did not demonstrate a PSO-security failure of \
             {k}-anonymity at the required confidence; no legal conclusion follows."
        )
    };
    Claim {
        technology: Technology::KAnonymity { k },
        standard: LegalStandard::GdprAnonymization,
        verdict,
        statement,
        derivation: vec![
            "GDPR Recital 26: data is anonymous only if the data subject is no longer \
             identifiable, accounting for all means reasonably likely to be used, \
             'such as singling out'."
                .into(),
            "Hence preventing singling out is a NECESSARY condition for GDPR \
             anonymization (§2.1)."
                .into(),
            "Security against predicate singling out (Definition 2.4) is a WEAKER \
             requirement than the GDPR's notion: no auxiliary information, i.i.d. \
             data (§2.2). Failing the weaker requirement implies failing the \
             stronger one."
                .into(),
            "The games below exhibit an attacker that, given only the k-anonymized \
             release, isolates a record with a negligible-weight predicate with \
             probability far above the trivial baseline — failing Definition 2.4 \
             (Theorem 2.10)."
                .into(),
            "Therefore k-anonymity fails to prevent GDPR singling out (Legal \
             Theorem 2.1), and does not meet the GDPR anonymization standard \
             (Legal Corollary 2.1)."
                .into(),
        ],
        evidence,
    }
}

/// §2.4.1's assessment of differential privacy: Theorem 2.9 (ε-DP ⇒ PSO
/// security), empirically corroborated, establishes the necessary condition;
/// sufficiency for the GDPR standard requires further analysis.
pub fn dp_singling_out_assessment(epsilon: f64, games: &[GameResult]) -> Claim {
    let evidence: Vec<Evidence> = games
        .iter()
        .map(|g| Evidence::from_game(&format!("{} vs {}", g.attacker, g.mechanism), g))
        .collect();
    let any_break = games
        .iter()
        .any(|g| g.breaks_pso_security(Z999, FAILURE_MARGIN));
    let verdict = if any_break {
        // Would contradict Theorem 2.9 — surface it loudly rather than hide it.
        Verdict::FailsRequirement
    } else {
        Verdict::SatisfiesNecessaryCondition
    };
    let statement = if any_break {
        format!(
            "MEASURED CONTRADICTION of Theorem 2.9 at ε = {epsilon}: an attack broke PSO \
             security of a differentially private mechanism — check the mechanism's \
             DP proof or the game configuration."
        )
    } else {
        format!(
            "ε-differential privacy (ε = {epsilon}) prevents predicate singling out \
             (Theorem 2.9); preventing singling out being necessary-but-possibly-\
             insufficient, differential privacy may provide the level of anonymization \
             the GDPR requires — a determination that needs further analysis (§2.4.1)."
        )
    };
    Claim {
        technology: Technology::DifferentialPrivacy {
            epsilon_milli: (epsilon * 1000.0).round() as u64,
        },
        standard: LegalStandard::GdprSinglingOut,
        verdict,
        statement,
        derivation: vec![
            "Theorem 2.9: an ε-differentially private mechanism (constant ε) prevents \
             predicate singling out."
                .into(),
            "The games below corroborate the theorem: every attack's PSO success stays \
             within the trivial baseline envelope."
                .into(),
            "Preventing singling out is necessary but possibly insufficient for the \
             GDPR anonymization standard (§2.2, §2.4.1), so the verdict is limited to \
             the necessary condition."
                .into(),
        ],
        evidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_game(successes: usize, trials: usize, baseline: f64) -> GameResult {
        GameResult {
            n: 200,
            trials,
            isolations: successes,
            pso_successes: successes,
            weight_rejections: 0,
            weight_threshold: 2.5e-5,
            baseline_at_threshold: baseline,
            mechanism: "mech".into(),
            attacker: "att".into(),
        }
    }

    #[test]
    fn strong_attack_evidence_yields_failure_verdict() {
        let claim = kanon_singling_out_theorem(5, &[fake_game(370, 1000, 1e-3)]);
        assert_eq!(claim.verdict, Verdict::FailsRequirement);
        assert!(claim.statement.contains("fails to prevent"));
        assert_eq!(claim.evidence.len(), 1);
        let rendered = claim.render();
        assert!(rendered.contains("LEGAL THEOREM"));
        assert!(rendered.contains("Derivation:"));
        assert!(rendered.contains("5-anonymity"));
    }

    #[test]
    fn weak_evidence_is_inconclusive() {
        // Success ≈ baseline: nothing follows.
        let claim = kanon_singling_out_theorem(5, &[fake_game(2, 1000, 1e-3)]);
        assert_eq!(claim.verdict, Verdict::Inconclusive);
    }

    #[test]
    fn dp_games_at_baseline_pass_necessary_condition() {
        let claim = dp_singling_out_assessment(1.0, &[fake_game(0, 1000, 1e-3)]);
        assert_eq!(claim.verdict, Verdict::SatisfiesNecessaryCondition);
        assert!(claim.statement.contains("further analysis"));
    }

    #[test]
    fn dp_contradiction_is_surfaced() {
        let claim = dp_singling_out_assessment(1.0, &[fake_game(500, 1000, 1e-3)]);
        assert_eq!(claim.verdict, Verdict::FailsRequirement);
        assert!(claim.statement.contains("CONTRADICTION"));
    }

    #[test]
    fn evidence_extraction_matches_game() {
        let g = fake_game(37, 100, 1e-4);
        let e = Evidence::from_game("test", &g);
        assert_eq!(e.successes, 37);
        assert_eq!(e.trials, 100);
        assert!((e.rate() - 0.37).abs() < 1e-12);
        assert!(e.rate_lo < 0.37 && 0.37 < e.rate_hi);
    }

    #[test]
    fn technology_display() {
        assert_eq!(Technology::KAnonymity { k: 3 }.to_string(), "3-anonymity");
        assert_eq!(
            Technology::DifferentialPrivacy { epsilon_milli: 500 }.to_string(),
            "ε-differential privacy (ε = 0.5)"
        );
        assert_eq!(
            Technology::ComposedCounts { queries: 20 }.to_string(),
            "composition of 20 count mechanisms"
        );
    }
}
