//! PSO-game observability: trial counters and per-trial timing published to
//! the `so-obs` global registry.
//!
//! Trial, isolation, and success counts are deterministic for a fixed seed;
//! the per-trial timing histogram is wall-clock and export-only. In the
//! parallel runner, workers touch only the histogram and the shared
//! counters — both commutative — so metric totals are thread-count
//! invariant; no ordered trace records are emitted from inside workers.

use std::sync::OnceLock;

use so_obs::{global, Counter, Histogram};

/// Cached handles to the PSO-game metrics in the [`so_obs::global`]
/// registry. Fetch once via [`pso_metrics`]; updates are lock-free.
#[derive(Debug)]
pub struct PsoMetrics {
    /// `so_pso_games_total` — completed game runs (serial or parallel).
    pub games: Counter,
    /// `so_pso_trials_total` — Monte Carlo trials played.
    pub trials: Counter,
    /// `so_pso_isolations_total` — trials where the returned predicate
    /// isolated a row (regardless of weight).
    pub isolations: Counter,
    /// `so_pso_successes_total` — trials counted as PSO successes
    /// (isolation at negligible weight — the Definition 2.4 event).
    pub successes: Counter,
    /// `so_pso_trial_micros` — wall-clock per trial (export-only).
    pub trial_micros: Histogram,
}

/// The PSO layer's global metric handles, registered on first use.
pub fn pso_metrics() -> &'static PsoMetrics {
    static METRICS: OnceLock<PsoMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        PsoMetrics {
            games: r.counter("so_pso_games_total"),
            trials: r.counter("so_pso_trials_total"),
            isolations: r.counter("so_pso_isolations_total"),
            successes: r.counter("so_pso_successes_total"),
            trial_micros: r.histogram(
                "so_pso_trial_micros",
                &[
                    10.0,
                    100.0,
                    1_000.0,
                    10_000.0,
                    100_000.0,
                    1_000_000.0,
                    10_000_000.0,
                ],
            ),
        }
    })
}
