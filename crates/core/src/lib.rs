#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # singling-out-core — predicate singling out and legal theorems
//!
//! The paper's primary contribution, as a library: a mathematical
//! formalization of the GDPR's notion of *singling out* (§2), machinery to
//! evaluate whether concrete privacy technologies provide *security against
//! predicate singling out* (PSO security, Cohen–Nissim), and an engine that
//! turns the resulting evidence into structured **legal theorems** (§2.4).
//!
//! The pieces follow the paper's development:
//!
//! * [`isolation`] — Definition 2.1: a predicate `p` *isolates* in
//!   `x = (x_1..x_n)` when `Σ p(x_i) = 1`;
//! * [`baseline`] — §2.2's trivial attackers: a weight-`w` predicate chosen
//!   independently of the data isolates with probability
//!   `n·w·(1−w)^{n−1}` (≈ 37% at `w = 1/n`; the birthday example);
//! * [`negligible`] — the finite-`n` surrogate for "negligible weight"
//!   (Definition 2.4 quantifies asymptotically; experiments run at fixed n);
//! * [`weight`] — predicate weight `w_D(p) = Pr_{x∼D}[p(x) = 1]`, exact
//!   where the distribution allows and Monte Carlo otherwise;
//! * [`game`] — Definition 2.4 as an executable security game: sample
//!   `x ∼ D^n`, run the mechanism, run the attacker, score isolation by a
//!   negligible-weight predicate;
//! * [`attackers`] — the attacks behind Theorems 2.5–2.10: baseline,
//!   count-composition (prefix descent), k-anonymity equivalence-class,
//!   boundary/downcoding, DP-output, and the k-anonymity intersection
//!   (composition) analysis;
//! * [`mechanisms`] — PSO-game wrappers for count queries, DP histograms,
//!   and k-anonymizers;
//! * [`legal`] — §2.4's legal theorems: claims with derivation chains from
//!   GDPR text (Recital 26) through Definition 2.4 to a verdict, backed by
//!   game evidence;
//! * [`variants`] — §2.3.5's invitation to explore other formulations,
//!   taken up with *group isolation*;
//! * [`stats`] — Wilson confidence intervals for the Monte Carlo estimates.

pub mod attackers;
pub mod baseline;
pub mod game;
pub mod isolation;
pub mod legal;
pub mod mechanisms;
pub mod negligible;
pub mod obs;
pub mod report;
pub mod stats;
pub mod variants;
pub mod weight;

pub use baseline::{baseline_isolation_probability, BaselineAttacker};
pub use game::{
    run_pso_game, run_pso_game_parallel, DataModel, GameConfig, GameResult, PsoAttacker,
    PsoMechanism,
};
pub use isolation::{isolates, matching_count, PsoPredicate};
pub use legal::{Claim, Evidence, LegalStandard, Technology, Verdict};
pub use negligible::NegligibilityPolicy;
pub use obs::{pso_metrics, PsoMetrics};
pub use report::AuditReport;
pub use stats::wilson_interval;
pub use variants::{baseline_group_isolation_probability, heavy_weight_threshold, isolates_group};
pub use weight::monte_carlo_weight;
