//! The attackers behind Theorems 2.5–2.10 and the k-anonymity composition
//! analysis.

use rand::Rng;

use so_data::dist::RowDistribution;
use so_data::rng::keyed_hash;
use so_data::{BitVec, Value};
use so_kanon::{AnonymizedDataset, GenValue};
use so_query::canonical_bytes;

use crate::game::{BitModel, PsoAttacker, TabularModel};
use crate::isolation::{FnPsoPredicate, PsoPredicate};
use crate::mechanisms::{ReleasedClass, TranscriptStep};
use crate::weight::box_weight;

// ---------------------------------------------------------------------------
// Theorem 2.8: composition of count mechanisms
// ---------------------------------------------------------------------------

/// Post-processor of the [`crate::mechanisms::AdaptiveCountOracle`]
/// transcript: rebuilds the descent prefix and outputs it as the isolating
/// predicate. With `ℓ = ω(log n)` exact count answers the prefix pins a
/// single record at weight `2^-ℓ` — the attack proving Theorem 2.8.
pub struct PrefixDescentAttacker;

impl PsoAttacker<BitModel, Vec<TranscriptStep>> for PrefixDescentAttacker {
    fn attack<R: Rng + ?Sized>(
        &self,
        output: &Vec<TranscriptStep>,
        _rng: &mut R,
    ) -> Box<dyn PsoPredicate<BitVec>> {
        let prefix: Vec<bool> = output.iter().map(|s| s.bit).collect();
        let weight = 0.5f64.powi(prefix.len() as i32);
        let label = format!(
            "prefix == {}",
            prefix
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>()
        );
        FnPsoPredicate::boxed(&label, Some(weight), move |r: &BitVec| {
            prefix.len() <= r.len() && prefix.iter().enumerate().all(|(i, &b)| r.get(i) == b)
        })
    }

    fn name(&self) -> String {
        "prefix-descent".into()
    }
}

/// The non-adaptive counterpart of [`PrefixDescentAttacker`]: post-processes
/// the published counts of the FIXED queries of
/// [`crate::mechanisms::SliceFingerprintOracle`]. When the slice count is
/// exactly 1, the per-bit counts ARE the captured record's bits; the output
/// predicate is `in_slice ∧ (bits 0..λ match)` — weight `(1/n)·2^{-λ}`,
/// isolation certain. Otherwise the attacker abstains. Overall success is
/// the constant `≈ 1/e` slice-singleton probability, which breaks PSO
/// security with a genuinely fixed query set, as Theorem 2.8 states.
pub struct SliceFingerprintAttacker {
    /// Slice modulus (must match the mechanism's).
    pub modulus: u64,
    /// Number of fingerprint bits (must match the mechanism's).
    pub bits: usize,
    /// The public seed identifying the fixed queries.
    pub seed: u64,
}

impl PsoAttacker<BitModel, Vec<usize>> for SliceFingerprintAttacker {
    fn attack<R: Rng + ?Sized>(
        &self,
        output: &Vec<usize>,
        _rng: &mut R,
    ) -> Box<dyn PsoPredicate<BitVec>> {
        if output.first() != Some(&1) {
            // Slice captured 0 or ≥2 records: abstain.
            return FnPsoPredicate::boxed("abstain", Some(0.0), |_: &BitVec| false);
        }
        let oracle =
            crate::mechanisms::SliceFingerprintOracle::new(self.modulus, self.bits, self.seed);
        // With a unique slice member, count of (slice ∧ bit_j) is the bit.
        let fingerprint: Vec<bool> = output[1..].iter().map(|&c| c == 1).collect();
        let weight = (1.0 / self.modulus as f64) * 0.5f64.powi(self.bits as i32);
        let label = format!(
            "slice(1/{}) AND bits == {}",
            self.modulus,
            fingerprint
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>()
        );
        FnPsoPredicate::boxed(&label, Some(weight), move |r: &BitVec| {
            oracle.in_slice(r)
                && fingerprint
                    .iter()
                    .enumerate()
                    .all(|(j, &b)| r.len() > j && r.get(j) == b)
        })
    }

    fn name(&self) -> String {
        "slice-fingerprint-postprocess".into()
    }
}

// ---------------------------------------------------------------------------
// Theorem 2.5: attackers against a single count output
// ---------------------------------------------------------------------------

/// The strongest generic thing an attacker can do with one count: condition
/// a random negligible-weight hash slice on it. Theorem 2.5 says nothing it
/// does can push PSO success above the negligible baseline; this attacker
/// exists so experiment E5 can *measure* that.
pub struct CountPostprocessAttacker {
    /// Hash-slice weight denominator (choose ≫ n² for negligible weight).
    pub modulus: u64,
}

impl PsoAttacker<BitModel, usize> for CountPostprocessAttacker {
    fn attack<R: Rng + ?Sized>(
        &self,
        output: &usize,
        rng: &mut R,
    ) -> Box<dyn PsoPredicate<BitVec>> {
        // Mix the observed count into the hash key — uses every bit of
        // information the mechanism leaked.
        let key = rng.gen::<u64>() ^ keyed_hash(0xC0_DE, &(*output as u64).to_le_bytes());
        let modulus = self.modulus;
        let weight = 1.0 / modulus as f64;
        FnPsoPredicate::boxed(
            &format!("H_count mod {modulus} == 0"),
            Some(weight),
            move |r: &BitVec| {
                let bytes: Vec<u8> = r.words().iter().flat_map(|w| w.to_le_bytes()).collect();
                keyed_hash(key, &bytes) % modulus == 0
            },
        )
    }

    fn name(&self) -> String {
        "count-postprocess".into()
    }
}

// ---------------------------------------------------------------------------
// Theorem 2.10: the equivalence-class attack on k-anonymity
// ---------------------------------------------------------------------------

/// The full equivalence-class predicate the paper's toy example describes:
/// "record lies in the generalized QI box AND every non-generalized column
/// takes one of the values released for this class"
/// (`ZIP ∈ 1234* ∧ Age ∈ 30-39 ∧ Disease ∈ PULM`).
pub struct ClassPredicate {
    /// QI column indices the box constrains.
    pub qi_cols: Vec<usize>,
    /// One generalized cell per QI column.
    pub qi_box: Vec<GenValue>,
    /// `(column, released values)` conjuncts for the non-QI columns.
    pub value_sets: Vec<(usize, Vec<Value>)>,
    /// Exact weight under the game's row distribution, if computed.
    pub weight: Option<f64>,
}

impl PsoPredicate<Vec<Value>> for ClassPredicate {
    fn matches(&self, record: &Vec<Value>) -> bool {
        self.qi_cols
            .iter()
            .zip(&self.qi_box)
            .all(|(&col, g)| g.covers(&record[col], None))
            && self
                .value_sets
                .iter()
                .all(|(col, set)| set.binary_search(&record[*col]).is_ok())
    }

    fn weight_hint(&self) -> Option<f64> {
        self.weight
    }

    fn describe(&self) -> String {
        let mut cells: Vec<String> = self
            .qi_cols
            .iter()
            .zip(&self.qi_box)
            .map(|(c, g)| format!("col{c} in {}", g.display(None)))
            .collect();
        for (c, set) in &self.value_sets {
            cells.push(format!("col{c} in released set ({} values)", set.len()));
        }
        cells.join(" AND ")
    }
}

/// Shared helper: the exact weight of a released class's full predicate
/// under the product distribution (QI box factors × non-QI value-set
/// factors).
fn full_class_weight(
    dist: &RowDistribution,
    qi_cols: &[usize],
    class: &ReleasedClass,
    resolve: &dyn Fn(so_data::Symbol) -> String,
) -> f64 {
    let taxonomies: Vec<Option<&so_kanon::Taxonomy>> = vec![None; qi_cols.len()];
    let qi_w = box_weight(dist, qi_cols, &class.qi_box, &taxonomies, resolve);
    let set_w: f64 = class
        .value_sets
        .iter()
        .map(|(col, set)| crate::weight::value_set_weight(&dist.attrs()[*col], set, resolve))
        .product();
    qi_w * set_w
}

/// The Theorem 2.10 attacker: pick the released equivalence class whose full
/// predicate has the smallest (exact) weight, and output `p ∧ p'` where `p`
/// is the class predicate and `p'` a fresh hash slice of weight `1/k'` —
/// isolating one of the `k'` class members with probability
/// `k'·(1/k')·(1−1/k')^{k'−1} ≈ 1/e ≈ 37%`, with overall predicate weight
/// `w(p)/k'`, negligible whenever the class-predicate weight is.
pub struct KAnonClassAttacker {
    /// The attacker's knowledge of `D` (§2.2 grants the k-anonymity
    /// analysis a known underlying distribution): used to choose the
    /// narrowest class and to report exact weight hints.
    pub dist: RowDistribution,
    /// QI columns of the release.
    pub qi_cols: Vec<usize>,
    /// Interner resolving string symbols in released value sets.
    pub interner: std::sync::Arc<so_data::Interner>,
}

impl KAnonClassAttacker {
    fn resolve_fn(&self) -> impl Fn(so_data::Symbol) -> String + '_ {
        move |s| self.interner.resolve(s).to_owned()
    }
}

impl PsoAttacker<TabularModel, Vec<ReleasedClass>> for KAnonClassAttacker {
    fn attack<R: Rng + ?Sized>(
        &self,
        output: &Vec<ReleasedClass>,
        rng: &mut R,
    ) -> Box<dyn PsoPredicate<Vec<Value>>> {
        let resolve = self.resolve_fn();
        // Choose the narrowest released class predicate.
        let Some((class, w)) = output
            .iter()
            .map(|c| (c, full_class_weight(&self.dist, &self.qi_cols, c, &resolve)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
        else {
            // Empty release: emit an unsatisfiable predicate.
            return FnPsoPredicate::boxed("false", Some(0.0), |_: &Vec<Value>| false);
        };
        let mut value_sets = class.value_sets.clone();
        for (_, set) in &mut value_sets {
            set.sort();
        }
        let class_pred = ClassPredicate {
            qi_cols: self.qi_cols.clone(),
            qi_box: class.qi_box.clone(),
            value_sets,
            weight: Some(w),
        };
        let k_prime = class.size.max(1) as u64;
        let key = rng.gen::<u64>();
        let combined_weight = w / k_prime as f64;
        let label = format!("({}) AND H mod {k_prime} == 0", class_pred.describe());
        FnPsoPredicate::boxed(&label, Some(combined_weight), move |r: &Vec<Value>| {
            class_pred.matches(r) && keyed_hash(key, &canonical_bytes(r)) % k_prime == 0
        })
    }

    fn name(&self) -> String {
        "kanon-equivalence-class".into()
    }
}

// ---------------------------------------------------------------------------
// Cohen [12]-style strengthening: boundary refinement ("downcoding" lite)
// ---------------------------------------------------------------------------

/// A strengthened attacker against generalization-based k-anonymity,
/// exploiting that greedy anonymizers emit *tight* boxes: the box's lower
/// endpoint on a numeric QI is attained by at least one member, and over
/// wide domains by exactly one with probability → 1. The predicate
/// `box ∧ (attr = lo)` then isolates far more often than 37%.
///
/// This is a simplified form of Cohen's downcoding attack (which reaches
/// ≈ 100% on hierarchical recodings); DESIGN.md §4 documents the gap.
pub struct BoundaryAttacker {
    /// Row distribution (for weight hints and for picking the best class).
    pub dist: RowDistribution,
    /// QI columns of the release.
    pub qi_cols: Vec<usize>,
    /// Interner resolving string symbols in released value sets.
    pub interner: std::sync::Arc<so_data::Interner>,
}

impl PsoAttacker<TabularModel, Vec<ReleasedClass>> for BoundaryAttacker {
    fn attack<R: Rng + ?Sized>(
        &self,
        output: &Vec<ReleasedClass>,
        _rng: &mut R,
    ) -> Box<dyn PsoPredicate<Vec<Value>>> {
        // Score each (class, numeric attribute) pair: prefer wide boxes
        // relative to class size — the regime where the minimum is unique
        // w.h.p.
        let mut best: Option<(usize, usize, i64, f64)> = None; // (class idx, qi idx, lo, score)
        for (ci, class) in output.iter().enumerate() {
            for (qi, g) in class.qi_box.iter().enumerate() {
                if let GenValue::IntRange { lo, hi } = g {
                    let span = (hi - lo + 1) as f64;
                    let score = span / class.size.max(1) as f64;
                    if best.map_or(true, |(_, _, _, s)| score > s) {
                        best = Some((ci, qi, *lo, score));
                    }
                }
            }
        }
        let Some((ci, qi, lo, _)) = best else {
            // No refinable box (all cells exact/suppressed): abstain.
            return FnPsoPredicate::boxed("false", Some(0.0), |_: &Vec<Value>| false);
        };
        let class = &output[ci];
        // Pin the chosen attribute to the box's lower endpoint; keep the
        // other conjuncts (box + released value sets) as in the class
        // predicate.
        let mut pinned_box = class.qi_box.clone();
        pinned_box[qi] = GenValue::Exact(Value::Int(lo));
        let pinned_class = ReleasedClass {
            qi_box: pinned_box,
            size: class.size,
            value_sets: class.value_sets.clone(),
        };
        let resolve = |s: so_data::Symbol| self.interner.resolve(s).to_owned();
        let w = full_class_weight(&self.dist, &self.qi_cols, &pinned_class, &resolve);
        let mut value_sets = pinned_class.value_sets.clone();
        for (_, set) in &mut value_sets {
            set.sort();
        }
        let pred = ClassPredicate {
            qi_cols: self.qi_cols.clone(),
            qi_box: pinned_class.qi_box,
            value_sets,
            weight: Some(w),
        };
        let label = format!("boundary: col{} == {lo} within class", self.qi_cols[qi]);
        FnPsoPredicate::boxed(&label, Some(w), move |r: &Vec<Value>| pred.matches(r))
    }

    fn name(&self) -> String {
        "boundary-downcoding".into()
    }
}

// ---------------------------------------------------------------------------
// §1.1 / E15: k-anonymity does not compose (intersection analysis)
// ---------------------------------------------------------------------------

/// Result of intersecting two k-anonymized releases of the same data.
#[derive(Debug, Clone, Copy)]
pub struct IntersectionExposure {
    /// Records whose joint (release-1 class ∩ release-2 class) is a
    /// singleton — uniquely identified by combining the releases.
    pub singled_out: usize,
    /// Smallest joint class size observed.
    pub min_joint_class: usize,
    /// Total records.
    pub n: usize,
}

impl IntersectionExposure {
    /// Fraction of records singled out by the intersection.
    pub fn singled_out_fraction(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.singled_out as f64 / self.n as f64
        }
    }
}

/// Intersects the class partitions of two releases of the *same* underlying
/// dataset (Ganta–Kasiviswanathan–Smith composition attacks, cited by the
/// paper as \[23\]; also \[12\]). Each release is k-anonymous on its own; the
/// joint classes `C₁ ∩ C₂` are what an adversary holding both releases
/// effectively sees.
pub fn intersection_exposure(
    anon1: &AnonymizedDataset,
    anon2: &AnonymizedDataset,
) -> IntersectionExposure {
    let n = anon1.n_original_rows();
    assert_eq!(n, anon2.n_original_rows(), "releases of different datasets");
    // Map each row to its class id in each release.
    let class_of = |anon: &AnonymizedDataset| -> Vec<Option<usize>> {
        let mut m = vec![None; n];
        for (ci, class) in anon.classes().iter().enumerate() {
            for &r in &class.rows {
                m[r] = Some(ci);
            }
        }
        m
    };
    let c1 = class_of(anon1);
    let c2 = class_of(anon2);
    let mut joint: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    for r in 0..n {
        if let (Some(a), Some(b)) = (c1[r], c2[r]) {
            *joint.entry((a, b)).or_insert(0) += 1;
        }
    }
    let mut singled_out = 0usize;
    let mut min_joint = usize::MAX;
    for r in 0..n {
        if let (Some(a), Some(b)) = (c1[r], c2[r]) {
            let size = joint[&(a, b)];
            min_joint = min_joint.min(size);
            if size == 1 {
                singled_out += 1;
            }
        }
    }
    IntersectionExposure {
        singled_out,
        min_joint_class: if min_joint == usize::MAX {
            0
        } else {
            min_joint
        },
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{run_pso_game, DataModel, GameConfig};
    use crate::mechanisms::{AdaptiveCountOracle, Anonymizer, CountMechanism, KAnonMechanism};
    use crate::negligible::NegligibilityPolicy;
    use so_data::dist::{AttributeDistribution, Categorical};
    use so_data::rng::seeded_rng;
    use so_data::schema::{AttributeDef, AttributeRole, DataType};
    use so_data::Schema;
    use so_kanon::{mondrian_anonymize, MondrianConfig};
    use std::sync::Arc;

    /// A "typical dataset with many attributes" (the paper's words): two
    /// generalized quasi-identifiers plus several high-cardinality columns
    /// that k-anonymizers leave untouched. The untouched columns drive the
    /// class-predicate weight into negligible territory — the crux of
    /// Theorem 2.10's "hence it is typically the case that the predicates
    /// ... would have negligible weights".
    fn wide_tabular_model() -> TabularModel {
        let diseases: Vec<String> = (0..120).map(|i| format!("disease_{i}")).collect();
        let occupations: Vec<String> = (0..150).map(|i| format!("occupation_{i}")).collect();
        let schema = Schema::new(vec![
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
            AttributeDef::new("occupation", DataType::Str, AttributeRole::Insensitive),
            AttributeDef::new("income_band", DataType::Int, AttributeRole::Insensitive),
        ]);
        let dist = RowDistribution::new(
            schema,
            vec![
                AttributeDistribution::IntUniform { lo: 0, hi: 99_999 },
                AttributeDistribution::IntUniform { lo: 0, hi: 36_499 },
                AttributeDistribution::StrChoice {
                    values: diseases,
                    dist: Categorical::uniform(120),
                },
                AttributeDistribution::StrChoice {
                    values: occupations,
                    dist: Categorical::uniform(150),
                },
                AttributeDistribution::IntChoice {
                    values: (0..80).collect(),
                    dist: Categorical::uniform(80),
                },
            ],
        );
        TabularModel::new(dist.sampler())
    }

    #[test]
    fn composition_attack_wins_with_enough_levels() {
        // Theorem 2.8: ℓ = ω(log n) exact counts ⇒ PSO success ≈ 1.
        let n = 100;
        let model = BitModel::uniform(64);
        let policy = NegligibilityPolicy::default();
        let levels = policy.required_prefix_bits(n) + 4;
        let cfg = GameConfig {
            policy,
            ..GameConfig::new(n, 150)
        };
        let res = run_pso_game(
            &model,
            &AdaptiveCountOracle::exact(levels),
            &PrefixDescentAttacker,
            &cfg,
            &mut seeded_rng(160),
        );
        assert!(
            res.success_rate() > 0.95,
            "success {} with {levels} levels",
            res.success_rate()
        );
        assert!(res.breaks_pso_security(crate::stats::Z999, 0.1));
    }

    #[test]
    fn composition_attack_fails_with_few_levels() {
        // With ℓ far below 2·log2(n) the prefix weight is not negligible, so
        // the weight gate rejects every isolation.
        let n = 256;
        let model = BitModel::uniform(64);
        let cfg = GameConfig::new(n, 60);
        let res = run_pso_game(
            &model,
            &AdaptiveCountOracle::exact(6),
            &PrefixDescentAttacker,
            &cfg,
            &mut seeded_rng(161),
        );
        assert_eq!(
            res.pso_successes, 0,
            "weight 2^-6 is not negligible at n=256"
        );
    }

    #[test]
    fn non_adaptive_composition_attack_succeeds_near_one_over_e() {
        // Theorem 2.8 with a genuinely FIXED query set: the slice +
        // fingerprint oracle. Success = P(slice singleton) ≈ 1/e.
        let n = 100usize;
        let model = BitModel::uniform(64);
        let policy = NegligibilityPolicy::default();
        // Weight (1/n)·2^-bits must clear n^-2: bits ≥ log2(n) + margin.
        let bits = 12usize;
        let cfg = GameConfig {
            policy,
            ..GameConfig::new(n, 400)
        };
        let res = run_pso_game(
            &model,
            &crate::mechanisms::SliceFingerprintOracle::new(n as u64, bits, 0xF1CED),
            &SliceFingerprintAttacker {
                modulus: n as u64,
                bits,
                seed: 0xF1CED,
            },
            &cfg,
            &mut seeded_rng(168),
        );
        let rate = res.success_rate();
        assert!(
            (0.25..=0.5).contains(&rate),
            "fixed-query composition attack should win ≈ 1/e, got {rate}"
        );
        assert!(res.breaks_pso_security(crate::stats::Z999, 0.05));
    }

    #[test]
    fn dp_noise_defeats_the_composition_attack() {
        // Theorem 2.9 in action: the same attack against the ε-DP oracle.
        let n = 100;
        let model = BitModel::uniform(64);
        let policy = NegligibilityPolicy::default();
        let levels = policy.required_prefix_bits(n) + 4;
        let cfg = GameConfig {
            policy,
            ..GameConfig::new(n, 150)
        };
        let res = run_pso_game(
            &model,
            &AdaptiveCountOracle::noisy(levels, 0.05),
            &PrefixDescentAttacker,
            &cfg,
            &mut seeded_rng(162),
        );
        assert!(
            res.success_rate() < 0.05,
            "DP should crush the attack, got {}",
            res.success_rate()
        );
    }

    #[test]
    fn count_mechanism_attacker_stays_at_baseline() {
        // Theorem 2.5: a single exact count gives the attacker nothing.
        let n = 100;
        let model = BitModel::uniform(64);
        let pred: Arc<dyn PsoPredicate<BitVec>> = Arc::new(crate::isolation::FnPsoPredicate::new(
            "bit0",
            Some(0.5),
            |r: &BitVec| r.get(0),
        ));
        let cfg = GameConfig::new(n, 2_000);
        let res = run_pso_game(
            &model,
            &CountMechanism::<BitModel>::new(pred),
            &CountPostprocessAttacker {
                modulus: (n * n * 100) as u64,
            },
            &cfg,
            &mut seeded_rng(163),
        );
        // Negligible-weight predicate ⇒ success within noise of the
        // (negligible) baseline.
        assert!(res.success_rate() < 0.01, "success {}", res.success_rate());
        assert!(!res.breaks_pso_security(crate::stats::Z999, 0.01));
    }

    #[test]
    fn kanon_class_attack_succeeds_around_37_percent() {
        // Theorem 2.10.
        let model = wide_tabular_model();
        let mech = KAnonMechanism::new(
            &model,
            vec![0, 1],
            Anonymizer::Mondrian(MondrianConfig { k: 5 }),
        );
        let attacker = KAnonClassAttacker {
            dist: model.sampler().distribution().clone(),
            qi_cols: vec![0, 1],
            interner: model.sampler().interner().clone(),
        };
        let cfg = GameConfig::new(200, 400);
        let res = run_pso_game(&model, &mech, &attacker, &cfg, &mut seeded_rng(164));
        let rate = res.success_rate();
        assert!(
            (0.25..=0.50).contains(&rate),
            "k-anonymity PSO success {rate}, expected ≈ 0.37"
        );
        assert!(res.breaks_pso_security(crate::stats::Z999, 0.05));
    }

    #[test]
    fn boundary_attack_beats_the_class_attack() {
        let model = wide_tabular_model();
        let mech = KAnonMechanism::new(
            &model,
            vec![0, 1],
            Anonymizer::Mondrian(MondrianConfig { k: 5 }),
        );
        let cfg = GameConfig::new(200, 300);
        let class_res = run_pso_game(
            &model,
            &mech,
            &KAnonClassAttacker {
                dist: model.sampler().distribution().clone(),
                qi_cols: vec![0, 1],
                interner: model.sampler().interner().clone(),
            },
            &cfg,
            &mut seeded_rng(165),
        );
        let boundary_res = run_pso_game(
            &model,
            &mech,
            &BoundaryAttacker {
                dist: model.sampler().distribution().clone(),
                qi_cols: vec![0, 1],
                interner: model.sampler().interner().clone(),
            },
            &cfg,
            &mut seeded_rng(166),
        );
        assert!(
            boundary_res.success_rate() > class_res.success_rate() + 0.15,
            "boundary {} vs class {}",
            boundary_res.success_rate(),
            class_res.success_rate()
        );
        assert!(
            boundary_res.success_rate() > 0.6,
            "boundary attack rate {}",
            boundary_res.success_rate()
        );
    }

    #[test]
    fn intersection_of_two_releases_singles_out() {
        // The same data k-anonymized twice by *different* anonymizers
        // (Mondrian partitioning vs Datafly full-domain generalization)
        // partitions differently; the intersection of the two partitions
        // shatters classes below k — the paper's "k-anonymity is not closed
        // under composition" ([12], [23]).
        let model = wide_tabular_model();
        let mut rng = seeded_rng(167);
        let rows = model.sample_dataset(300, &mut rng);
        let ds = {
            // Rebuild the dataset the same way the mechanism does.
            let mut b = so_data::DatasetBuilder::from_parts(
                model.sampler().distribution().schema().clone(),
                (**model.sampler().interner()).clone(),
            );
            for r in &rows {
                b.push_row(r.clone());
            }
            b.finish()
        };
        let anon1 = mondrian_anonymize(&ds, &[0, 1], &MondrianConfig { k: 5 });
        let hierarchies = vec![
            so_kanon::AttributeHierarchy::ZipPrefix { digits: 5 },
            so_kanon::AttributeHierarchy::Numeric {
                anchor: 0,
                widths: vec![365, 1_825, 3_650, 18_250],
            },
        ];
        let anon2 = so_kanon::datafly_anonymize(
            &ds,
            &[0, 1],
            &hierarchies,
            &so_kanon::DataflyConfig {
                k: 5,
                max_suppression_fraction: 0.05,
            },
        );
        assert!(so_kanon::is_k_anonymous(&anon1, 5));
        assert!(so_kanon::is_k_anonymous(&anon2, 5));
        let exposure = intersection_exposure(&anon1, &anon2);
        assert_eq!(exposure.n, 300);
        // Each release alone guarantees crowds of ≥ 5; jointly, classes
        // shrink below k.
        assert!(
            exposure.min_joint_class < 5,
            "joint classes should shrink below k (min = {})",
            exposure.min_joint_class
        );
    }
}
