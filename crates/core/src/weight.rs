//! Predicate weight `w_D(p) = Pr_{x ∼ D}[p(x) = 1]` (§2.2).
//!
//! The weight is the quantity Definition 2.4 gates success on. Two paths:
//!
//! * **Monte Carlo** ([`monte_carlo_weight`]) — works for any model and
//!   predicate; returns the estimate with a Wilson interval;
//! * **exact** — available for structured predicates under product
//!   distributions: [`box_weight`] computes the weight of a k-anonymity
//!   equivalence-class box under a [`RowDistribution`], which is how
//!   Theorem 2.10's "the predicates corresponding to the equivalence
//!   classes would have negligible weights" is checked without sampling
//!   error.

use rand::Rng;

use so_data::dist::{AttributeDistribution, RowDistribution};
use so_kanon::{GenValue, Taxonomy};

use crate::game::DataModel;
use crate::isolation::PsoPredicate;
use crate::stats::{wilson_interval, Interval, Z95};

/// Monte Carlo weight estimate with a 95% Wilson interval.
pub fn monte_carlo_weight<M: DataModel, R: Rng + ?Sized>(
    model: &M,
    predicate: &(impl PsoPredicate<M::Record> + ?Sized),
    samples: usize,
    rng: &mut R,
) -> (f64, Interval) {
    assert!(samples > 0, "need at least one sample");
    let mut hits = 0usize;
    for _ in 0..samples {
        let r = model.sample_record(rng);
        if predicate.matches(&r) {
            hits += 1;
        }
    }
    (
        hits as f64 / samples as f64,
        wilson_interval(hits, samples, Z95),
    )
}

/// Exact weight of a single generalized cell under one attribute
/// distribution.
///
/// `taxonomy` is needed only for `CategoryNode` cells. Returns the
/// probability a fresh sample of that attribute lands in the cell.
pub fn gen_value_weight(
    g: &GenValue,
    attr: &AttributeDistribution,
    taxonomy: Option<&Taxonomy>,
    resolve: &dyn Fn(so_data::Symbol) -> String,
) -> f64 {
    match g {
        GenValue::Suppressed => 1.0,
        GenValue::Exact(v) => attr.point_probability(v, resolve),
        GenValue::IntRange { lo, hi } => attr.interval_probability(*lo, *hi),
        GenValue::CategoryNode(node) => {
            let Some(tax) = taxonomy else { return 0.0 };
            // Sum the probabilities of all leaf labels under the node.
            tax.leaves_under(*node)
                .into_iter()
                .map(|leaf| match attr {
                    AttributeDistribution::StrChoice { values, dist } => values
                        .iter()
                        .position(|v| v == tax.label(leaf))
                        .map_or(0.0, |i| dist.probability(i)),
                    _ => 0.0,
                })
                .sum()
        }
    }
}

/// Exact weight of a "value ∈ released set" conjunct under one attribute
/// distribution: the sum of the point masses of the set members. This is
/// the factor each *non-generalized* column contributes to an
/// equivalence-class predicate (the `Disease ∈ PULM`-style conjunct of the
/// paper's toy example).
pub fn value_set_weight(
    attr: &AttributeDistribution,
    values: &[so_data::Value],
    resolve: &dyn Fn(so_data::Symbol) -> String,
) -> f64 {
    values
        .iter()
        .map(|v| attr.point_probability(v, resolve))
        .sum()
}

/// Exact weight of an equivalence-class box under a product row
/// distribution: the product over quasi-identifier columns of the cell
/// weights (non-QI columns are unconstrained by the box).
pub fn box_weight(
    dist: &RowDistribution,
    qi_cols: &[usize],
    qi_box: &[GenValue],
    taxonomies: &[Option<&Taxonomy>],
    resolve: &dyn Fn(so_data::Symbol) -> String,
) -> f64 {
    assert_eq!(qi_cols.len(), qi_box.len(), "box arity mismatch");
    assert_eq!(qi_cols.len(), taxonomies.len(), "taxonomy arity mismatch");
    qi_cols
        .iter()
        .zip(qi_box)
        .zip(taxonomies)
        .map(|((&col, g), tax)| gen_value_weight(g, &dist.attrs()[col], *tax, resolve))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::BitModel;
    use crate::isolation::FnPsoPredicate;
    use so_data::dist::Categorical;
    use so_data::rng::seeded_rng;
    use so_data::schema::{AttributeDef, AttributeRole, DataType};
    use so_data::{Schema, UniformBits, Value};

    #[test]
    fn monte_carlo_weight_matches_design() {
        let model = BitModel::uniform(32);
        let p = FnPsoPredicate::new("bit0", None, |r: &so_data::BitVec| r.get(0));
        let (w, iv) = monte_carlo_weight(&model, &p, 20_000, &mut seeded_rng(130));
        assert!((w - 0.5).abs() < 0.02, "w = {w}");
        assert!(iv.contains(0.5));
        let _ = UniformBits::new(1);
    }

    fn toy_dist() -> RowDistribution {
        let schema = Schema::new(vec![
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("disease", DataType::Str, AttributeRole::Sensitive),
        ]);
        RowDistribution::new(
            schema,
            vec![
                AttributeDistribution::IntUniform {
                    lo: 10_000,
                    hi: 10_099,
                },
                AttributeDistribution::IntUniform { lo: 0, hi: 99 },
                AttributeDistribution::StrChoice {
                    values: vec!["COVID".into(), "Asthma".into(), "CF".into(), "Flu".into()],
                    dist: Categorical::new(&[1.0, 1.0, 1.0, 1.0]),
                },
            ],
        )
    }

    #[test]
    fn box_weight_is_product_of_cell_weights() {
        let d = toy_dist();
        let resolve = |_s: so_data::Symbol| String::new();
        let qi_box = vec![
            GenValue::IntRange {
                lo: 10_000,
                hi: 10_009,
            }, // 10/100
            GenValue::IntRange { lo: 30, hi: 39 }, // 10/100
        ];
        let w = box_weight(&d, &[0, 1], &qi_box, &[None, None], &resolve);
        assert!((w - 0.01).abs() < 1e-12, "w = {w}");
    }

    #[test]
    fn suppressed_cells_do_not_constrain() {
        let d = toy_dist();
        let resolve = |_s: so_data::Symbol| String::new();
        let qi_box = vec![GenValue::Suppressed, GenValue::IntRange { lo: 0, hi: 49 }];
        let w = box_weight(&d, &[0, 1], &qi_box, &[None, None], &resolve);
        assert!((w - 0.5).abs() < 1e-12, "w = {w}");
    }

    #[test]
    fn exact_cell_uses_point_mass() {
        let d = toy_dist();
        let resolve = |_s: so_data::Symbol| String::new();
        let qi_box = vec![GenValue::Exact(Value::Int(10_042)), GenValue::Suppressed];
        let w = box_weight(&d, &[0, 1], &qi_box, &[None, None], &resolve);
        assert!((w - 0.01).abs() < 1e-12, "w = {w}");
    }

    #[test]
    fn category_node_weight_sums_leaf_masses() {
        let d = toy_dist();
        let mut tax = Taxonomy::new("ANY");
        let pulm = tax.add_child(0, "PULM");
        tax.add_child(pulm, "COVID");
        tax.add_child(pulm, "Asthma");
        tax.add_child(pulm, "CF");
        tax.add_child(0, "Flu");
        let resolve = |_s: so_data::Symbol| String::new();
        let w = gen_value_weight(
            &GenValue::CategoryNode(pulm),
            &d.attrs()[2],
            Some(&tax),
            &resolve,
        );
        assert!((w - 0.75).abs() < 1e-12, "w = {w}");
    }

    #[test]
    fn out_of_support_exact_cell_has_zero_weight() {
        let d = toy_dist();
        let resolve = |_s: so_data::Symbol| String::new();
        let w = gen_value_weight(
            &GenValue::Exact(Value::Int(99_999)),
            &d.attrs()[0],
            None,
            &resolve,
        );
        assert_eq!(w, 0.0);
    }
}
