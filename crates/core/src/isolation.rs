//! Isolation — Definition 2.1 of the paper.
//!
//! > A predicate `p : X → {0,1}` *isolates* in the database
//! > `x = (x_1, ..., x_n) ∈ X^n` if `p(x_i) = 1` for exactly one record.
//!
//! Isolation is a property of the *original* records, never of the
//! mechanism output, and never by reference to a record's position — both
//! points the paper makes explicitly when setting up the formalization.

/// A predicate over records of type `R`, as produced by a PSO attacker.
///
/// This is the core-crate counterpart of `so_query::Predicate`, extended
/// with an optional *design weight*: attackers built from keyed hashes or
/// prefix predicates know the weight of what they output by construction,
/// which the game can then verify by Monte Carlo instead of estimating from
/// scratch.
pub trait PsoPredicate<R: ?Sized>: Send + Sync {
    /// Evaluates the predicate on a record.
    fn matches(&self, record: &R) -> bool;

    /// The attacker's claimed weight `w_D(p)`, if known by construction.
    fn weight_hint(&self) -> Option<f64> {
        None
    }

    /// Human-readable description for reports.
    fn describe(&self) -> String {
        "<predicate>".to_owned()
    }
}

impl<R: ?Sized, P: PsoPredicate<R> + ?Sized> PsoPredicate<R> for Box<P> {
    fn matches(&self, record: &R) -> bool {
        (**self).matches(record)
    }

    fn weight_hint(&self) -> Option<f64> {
        (**self).weight_hint()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Boxed predicate closure.
type PredicateFn<R> = Box<dyn Fn(&R) -> bool + Send + Sync>;

/// Closure-backed predicate with an optional weight hint.
pub struct FnPsoPredicate<R: ?Sized> {
    label: String,
    weight: Option<f64>,
    f: PredicateFn<R>,
}

impl<R: ?Sized> FnPsoPredicate<R> {
    /// Wraps a closure.
    pub fn new(
        label: &str,
        weight: Option<f64>,
        f: impl Fn(&R) -> bool + Send + Sync + 'static,
    ) -> Self {
        FnPsoPredicate {
            label: label.to_owned(),
            weight,
            f: Box::new(f),
        }
    }
}

impl<R: ?Sized> PsoPredicate<R> for FnPsoPredicate<R> {
    fn matches(&self, record: &R) -> bool {
        (self.f)(record)
    }

    fn weight_hint(&self) -> Option<f64> {
        self.weight
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

impl<R: ?Sized + 'static> FnPsoPredicate<R> {
    /// Boxes a closure directly (convenience for attacker implementations).
    pub fn boxed(
        label: &str,
        weight: Option<f64>,
        f: impl Fn(&R) -> bool + Send + Sync + 'static,
    ) -> Box<dyn PsoPredicate<R>> {
        Box::new(Self::new(label, weight, f))
    }
}

/// Number of records in `x` matching `p`.
pub fn matching_count<R>(records: &[R], p: &(impl PsoPredicate<R> + ?Sized)) -> usize {
    records.iter().filter(|r| p.matches(r)).count()
}

/// Definition 2.1: true iff `p` matches exactly one record of `x`.
pub fn isolates<R>(records: &[R], p: &(impl PsoPredicate<R> + ?Sized)) -> bool {
    // Early exit after the second match.
    let mut seen = 0usize;
    for r in records {
        if p.matches(r) {
            seen += 1;
            if seen > 1 {
                return false;
            }
        }
    }
    seen == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq_pred(target: u32) -> FnPsoPredicate<u32> {
        FnPsoPredicate::new(&format!("== {target}"), None, move |r: &u32| *r == target)
    }

    #[test]
    fn isolation_requires_exactly_one_match() {
        let records = vec![1u32, 2, 3, 2];
        assert!(isolates(&records, &eq_pred(1)));
        assert!(!isolates(&records, &eq_pred(2))); // two matches
        assert!(!isolates(&records, &eq_pred(9))); // zero matches
    }

    #[test]
    fn matching_count_counts() {
        let records = vec![1u32, 2, 2, 2];
        assert_eq!(matching_count(&records, &eq_pred(2)), 3);
        assert_eq!(matching_count(&records, &eq_pred(7)), 0);
    }

    #[test]
    fn empty_dataset_never_isolated() {
        let records: Vec<u32> = vec![];
        assert!(!isolates(&records, &eq_pred(1)));
    }

    #[test]
    fn weight_hint_round_trips() {
        let p = FnPsoPredicate::new("w", Some(0.125), |_: &u32| true);
        assert_eq!(p.weight_hint(), Some(0.125));
        let boxed: Box<dyn PsoPredicate<u32>> = Box::new(p);
        assert_eq!(boxed.weight_hint(), Some(0.125));
        assert_eq!(boxed.describe(), "w");
    }
}
