//! Trivial (baseline) attackers — §2.2 of the paper.
//!
//! The paper's pivotal observation about Definition 2.3: *"There exist
//! trivial attackers, that do not even look at the outcome y of the
//! mechanism, and yet isolate with high probability!"* A predicate of weight
//! `w`, chosen independently of the data, isolates with probability
//! `n·w·(1−w)^{n−1} ≈ n·w·e^{−n·w}` — about 37% (`1/e`) at `w = 1/n`, as in
//! the birthday example (`n = 365`, one fixed date).
//!
//! This is why Definition 2.4 scores an attacker only when the isolating
//! predicate has *negligible* weight: the baseline success at negligible
//! weight is itself negligible, so any attacker beating it must be
//! extracting information from the mechanism output.

use rand::Rng;

use so_data::rng::keyed_hash;
use so_data::BitVec;

use crate::isolation::PsoPredicate;

/// Closed form for the probability that a data-independent predicate of
/// weight `w` isolates in an i.i.d. sample of size `n`:
/// `n · w · (1 − w)^{n−1}`.
///
/// ```
/// use singling_out_core::baseline::baseline_isolation_probability;
/// // The paper's birthday example: n = 365, uniform dates ⇒ ≈ 37%.
/// let p = baseline_isolation_probability(365, 1.0 / 365.0);
/// assert!((p - 0.368).abs() < 0.001);
/// ```
pub fn baseline_isolation_probability(n: usize, w: f64) -> f64 {
    assert!((0.0..=1.0).contains(&w), "weight out of range: {w}");
    if n == 0 {
        return 0.0;
    }
    n as f64 * w * (1.0 - w).powi(n as i32 - 1)
}

/// The weight maximizing the baseline: `w* = 1/n`, giving
/// `(1 − 1/n)^{n−1} → 1/e ≈ 36.8%`.
pub fn optimal_baseline_weight(n: usize) -> f64 {
    assert!(n > 0);
    1.0 / n as f64
}

/// A keyed-hash predicate of designed weight `1/modulus` over generic
/// records, given a serialization function — the Leftover-Hash-Lemma-style
/// construction the paper invokes for building trivial attackers at any
/// target weight.
/// Boxed record-serialization closure.
type ToBytesFn<R> = Box<dyn Fn(&R) -> Vec<u8> + Send + Sync>;

/// A keyed-hash predicate of designed weight `1/modulus` over generic
/// records, given a serialization function — the Leftover-Hash-Lemma-style
/// construction the paper invokes for building trivial attackers at any
/// target weight.
pub struct HashSlicePredicate<R: ?Sized> {
    key: u64,
    modulus: u64,
    target: u64,
    to_bytes: ToBytesFn<R>,
}

impl<R: ?Sized> HashSlicePredicate<R> {
    /// Predicate of designed weight `1/modulus`.
    ///
    /// # Panics
    /// Panics on `modulus == 0` or `target >= modulus`.
    pub fn new(
        key: u64,
        modulus: u64,
        target: u64,
        to_bytes: impl Fn(&R) -> Vec<u8> + Send + Sync + 'static,
    ) -> Self {
        assert!(modulus > 0, "modulus must be positive");
        assert!(target < modulus, "target must be a residue");
        HashSlicePredicate {
            key,
            modulus,
            target,
            to_bytes: Box::new(to_bytes),
        }
    }
}

impl<R: ?Sized> PsoPredicate<R> for HashSlicePredicate<R> {
    fn matches(&self, record: &R) -> bool {
        keyed_hash(self.key, &(self.to_bytes)(record)) % self.modulus == self.target
    }

    fn weight_hint(&self) -> Option<f64> {
        Some(1.0 / self.modulus as f64)
    }

    fn describe(&self) -> String {
        format!(
            "H_{:#x}(record) mod {} == {}",
            self.key, self.modulus, self.target
        )
    }
}

/// The baseline attacker over bit-string records: ignores any mechanism
/// output and emits a hash-slice predicate of weight `1/modulus`.
#[derive(Debug, Clone, Copy)]
pub struct BaselineAttacker {
    /// Target weight denominator.
    pub modulus: u64,
}

impl BaselineAttacker {
    /// Builds the predicate for one game trial (fresh key per trial).
    pub fn predicate<R: Rng + ?Sized>(&self, rng: &mut R) -> Box<dyn PsoPredicate<BitVec>> {
        let key = rng.gen::<u64>();
        let modulus = self.modulus;
        Box::new(HashSlicePredicate::new(key, modulus, 0, |r: &BitVec| {
            r.words().iter().flat_map(|w| w.to_le_bytes()).collect()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isolation::isolates;
    use so_data::dist::RecordDistribution;
    use so_data::rng::seeded_rng;
    use so_data::UniformBits;

    #[test]
    fn closed_form_peaks_near_one_over_e() {
        for n in [10usize, 100, 365, 10_000] {
            let p = baseline_isolation_probability(n, 1.0 / n as f64);
            assert!((0.34..=0.40).contains(&p), "n = {n}: peak {p} not near 1/e");
        }
    }

    #[test]
    fn birthday_example_matches_paper() {
        // §2.2: n = 365, uniform dates, one fixed date ⇒ ≈ 37%.
        let p = baseline_isolation_probability(365, 1.0 / 365.0);
        assert!((p - 0.3681).abs() < 0.001, "p = {p}");
    }

    #[test]
    fn closed_form_vanishes_at_extremes() {
        assert_eq!(baseline_isolation_probability(100, 0.0), 0.0);
        assert!(baseline_isolation_probability(100, 1.0) < 1e-12);
        // Negligible weight ⇒ negligible success.
        let p = baseline_isolation_probability(1000, 1e-6);
        assert!(p < 1e-3 + 1e-12, "p = {p}");
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        let n = 50;
        let trials = 20_000;
        let d = UniformBits::new(64);
        let mut rng = seeded_rng(120);
        let attacker = BaselineAttacker { modulus: n as u64 };
        let mut hits = 0;
        for _ in 0..trials {
            let records = d.sample_n(n, &mut rng);
            let p = attacker.predicate(&mut rng);
            if isolates(&records, p.as_ref()) {
                hits += 1;
            }
        }
        let emp = f64::from(hits) / f64::from(trials as u32);
        let theory = baseline_isolation_probability(n, 1.0 / n as f64);
        assert!(
            (emp - theory).abs() < 0.02,
            "empirical {emp} vs theory {theory}"
        );
    }

    #[test]
    fn hash_slice_weight_hint() {
        let p: HashSlicePredicate<BitVec> =
            HashSlicePredicate::new(1, 128, 0, |r: &BitVec| vec![r.low_u64() as u8]);
        assert_eq!(p.weight_hint(), Some(1.0 / 128.0));
    }

    #[test]
    #[should_panic(expected = "weight out of range")]
    fn rejects_bad_weight() {
        baseline_isolation_probability(10, 1.5);
    }
}
