//! The predicate-singling-out security game — Definition 2.4, executable.
//!
//! > A mechanism `M` prevents predicate singling out if for every attacker
//! > `A`,
//! > `Pr[x ∼ D^n; y := M(x); p := A(y)  s.t.  w_D(p) = negl(n) ∧ Σ p(x_i) = 1]`
//! > is a negligible function of `n`.
//!
//! [`run_pso_game`] plays the quantified experiment by Monte Carlo: sample
//! the dataset i.i.d., run the mechanism, hand *only the output* to the
//! attacker, then score the returned predicate against the original records
//! (per Definition 2.1) and against the negligible-weight gate. The result
//! carries everything a "legal theorem" needs: success counts, Wilson
//! intervals, and the baseline success achievable by trivial attackers at
//! the same weight threshold.

use rand::Rng;

use so_data::dist::{ProductBernoulli, RecordDistribution, RowSampler, UniformBits};
use so_data::{BitVec, Value};

use crate::baseline::baseline_isolation_probability;
use crate::isolation::{isolates, PsoPredicate};
use crate::negligible::NegligibilityPolicy;
use crate::stats::{wilson_interval, Interval};

/// A data-generation model: the paper's `D ∈ Δ(X)` together with its record
/// type `X`.
pub trait DataModel: Send + Sync {
    /// The record type `X`.
    type Record: Clone + Send + Sync;

    /// Samples one record from `D`.
    fn sample_record<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Record;

    /// Samples `x ∼ D^n`.
    fn sample_dataset<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Self::Record> {
        (0..n).map(|_| self.sample_record(rng)).collect()
    }
}

/// Bit-string records (`X = {0,1}^d`).
#[derive(Debug, Clone)]
pub enum BitModel {
    /// Uniform over `{0,1}^d`.
    Uniform(UniformBits),
    /// Independent per-bit probabilities.
    Bernoulli(ProductBernoulli),
}

impl BitModel {
    /// Uniform model of the given width.
    pub fn uniform(width: usize) -> Self {
        BitModel::Uniform(UniformBits::new(width))
    }

    /// Record width in bits.
    pub fn width(&self) -> usize {
        match self {
            BitModel::Uniform(d) => d.width(),
            BitModel::Bernoulli(d) => d.width(),
        }
    }
}

impl DataModel for BitModel {
    type Record = BitVec;

    fn sample_record<R: Rng + ?Sized>(&self, rng: &mut R) -> BitVec {
        match self {
            BitModel::Uniform(d) => d.sample(rng),
            BitModel::Bernoulli(d) => d.sample(rng),
        }
    }
}

/// Tabular records (`X` = typed rows under a product distribution).
#[derive(Debug, Clone)]
pub struct TabularModel {
    sampler: RowSampler,
}

impl TabularModel {
    /// Wraps a pre-interned row sampler.
    pub fn new(sampler: RowSampler) -> Self {
        TabularModel { sampler }
    }

    /// The row sampler (gives access to the distribution and interner).
    pub fn sampler(&self) -> &RowSampler {
        &self.sampler
    }
}

impl DataModel for TabularModel {
    type Record = Vec<Value>;

    fn sample_record<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Value> {
        self.sampler.sample_row(rng)
    }
}

/// An anonymization mechanism `M : X^n → Y` in the PSO game.
pub trait PsoMechanism<M: DataModel>: Send + Sync {
    /// The output type `Y`.
    type Output;

    /// Runs the mechanism on a dataset.
    fn run<R: Rng + ?Sized>(&self, data: &[M::Record], rng: &mut R) -> Self::Output;

    /// Mechanism name for reports.
    fn name(&self) -> String;
}

/// A PSO attacker `A : Y → (X → {0,1})`.
pub trait PsoAttacker<M: DataModel, O>: Send + Sync {
    /// Produces an isolating predicate from the mechanism output alone.
    fn attack<R: Rng + ?Sized>(&self, output: &O, rng: &mut R) -> Box<dyn PsoPredicate<M::Record>>;

    /// Attacker name for reports.
    fn name(&self) -> String;
}

/// How the game verifies predicate weights.
#[derive(Debug, Clone, Copy)]
pub enum WeightCheck {
    /// Use the attacker's `weight_hint()` when present, falling back to
    /// Monte Carlo with the given sample count. Hints are audited by the
    /// crate's tests; this is the fast path for experiments.
    TrustHints {
        /// MC samples when no hint is available.
        fallback_samples: usize,
    },
    /// Always estimate by Monte Carlo.
    MonteCarlo {
        /// MC samples per trial.
        samples: usize,
    },
}

/// Game parameters.
#[derive(Debug, Clone, Copy)]
pub struct GameConfig {
    /// Dataset size `n`.
    pub n: usize,
    /// Monte Carlo trials of the full experiment.
    pub trials: usize,
    /// Finite-`n` negligibility policy.
    pub policy: NegligibilityPolicy,
    /// Weight verification mode.
    pub weight_check: WeightCheck,
}

impl GameConfig {
    /// A sensible default: trust hints, fall back to 2 000 samples.
    pub fn new(n: usize, trials: usize) -> Self {
        GameConfig {
            n,
            trials,
            policy: NegligibilityPolicy::default(),
            weight_check: WeightCheck::TrustHints {
                fallback_samples: 2_000,
            },
        }
    }
}

/// Outcome of a PSO game run.
#[derive(Debug, Clone)]
pub struct GameResult {
    /// Dataset size.
    pub n: usize,
    /// Trials played.
    pub trials: usize,
    /// Trials where the predicate isolated (regardless of weight).
    pub isolations: usize,
    /// Trials where the predicate isolated *and* had negligible weight —
    /// the event Definition 2.4 bounds.
    pub pso_successes: usize,
    /// Trials where isolation happened but the weight gate rejected it
    /// (the trivial-attacker regime).
    pub weight_rejections: usize,
    /// The negligibility threshold used, `n^-c`.
    pub weight_threshold: f64,
    /// Baseline success of a trivial attacker operating exactly at the
    /// threshold weight: `n · t · (1−t)^{n−1}` — the yardstick a mechanism
    /// must hold every attacker to.
    pub baseline_at_threshold: f64,
    /// Names for reporting.
    pub mechanism: String,
    /// Attacker name.
    pub attacker: String,
}

impl GameResult {
    /// Point estimate of the PSO success probability.
    pub fn success_rate(&self) -> f64 {
        self.pso_successes as f64 / self.trials as f64
    }

    /// Wilson interval of the PSO success probability.
    pub fn success_interval(&self, z: f64) -> Interval {
        wilson_interval(self.pso_successes, self.trials, z)
    }

    /// Point estimate of raw isolation (ignoring the weight gate).
    pub fn isolation_rate(&self) -> f64 {
        self.isolations as f64 / self.trials as f64
    }

    /// True when, at confidence `z`, the success probability provably
    /// exceeds the trivial baseline by `margin` — the evidence needed to
    /// declare that the mechanism FAILS to prevent predicate singling out.
    pub fn breaks_pso_security(&self, z: f64, margin: f64) -> bool {
        self.success_interval(z).lo > self.baseline_at_threshold + margin
    }
}

/// Plays the game of Definition 2.4.
pub fn run_pso_game<M, Mech, Att, R>(
    model: &M,
    mechanism: &Mech,
    attacker: &Att,
    config: &GameConfig,
    rng: &mut R,
) -> GameResult
where
    M: DataModel,
    Mech: PsoMechanism<M>,
    Att: PsoAttacker<M, Mech::Output>,
    R: Rng + ?Sized,
{
    assert!(config.n > 0 && config.trials > 0, "empty game");
    let span = so_obs::span("pso.game");
    let metrics = crate::obs::pso_metrics();
    let threshold = config.policy.threshold(config.n);
    let mut isolations = 0usize;
    let mut pso_successes = 0usize;
    let mut weight_rejections = 0usize;
    for _ in 0..config.trials {
        let trial_start = std::time::Instant::now();
        let data = model.sample_dataset(config.n, rng);
        let output = mechanism.run(&data, rng);
        let predicate = attacker.attack(&output, rng);
        if isolates(&data, predicate.as_ref()) {
            isolations += 1;
            let weight = match (config.weight_check, predicate.weight_hint()) {
                (WeightCheck::TrustHints { .. }, Some(hint)) => hint,
                (WeightCheck::TrustHints { fallback_samples }, None) => {
                    estimate_weight(model, predicate.as_ref(), fallback_samples, rng)
                }
                (WeightCheck::MonteCarlo { samples }, _) => {
                    estimate_weight(model, predicate.as_ref(), samples, rng)
                }
            };
            if config.policy.is_negligible(weight, config.n) {
                pso_successes += 1;
            } else {
                weight_rejections += 1;
            }
        }
        metrics
            .trial_micros
            .observe(trial_start.elapsed().as_micros() as f64);
    }
    metrics.games.inc();
    metrics.trials.add(config.trials as u64);
    metrics.isolations.add(isolations as u64);
    metrics.successes.add(pso_successes as u64);
    if so_obs::enabled() {
        span.finish_with(&[
            ("mechanism", mechanism.name()),
            ("attacker", attacker.name()),
            ("trials", config.trials.to_string()),
            ("successes", pso_successes.to_string()),
        ]);
    }
    GameResult {
        n: config.n,
        trials: config.trials,
        isolations,
        pso_successes,
        weight_rejections,
        weight_threshold: threshold,
        baseline_at_threshold: baseline_isolation_probability(config.n, threshold),
        mechanism: mechanism.name(),
        attacker: attacker.name(),
    }
}

/// Plays the game of Definition 2.4 with **per-trial derived seeds**, split
/// across `threads` OS threads. Unlike [`run_pso_game`] (which consumes one
/// RNG stream sequentially), every trial `t` runs on its own
/// `seeded_rng(derive_seed(master_seed, t))`, so the result is bit-for-bit
/// identical for ANY thread count — parallelism without losing the
/// reproducibility the experiment suite depends on.
pub fn run_pso_game_parallel<M, Mech, Att>(
    model: &M,
    mechanism: &Mech,
    attacker: &Att,
    config: &GameConfig,
    master_seed: u64,
    threads: usize,
) -> GameResult
where
    M: DataModel,
    Mech: PsoMechanism<M>,
    Att: PsoAttacker<M, Mech::Output>,
{
    assert!(config.n > 0 && config.trials > 0, "empty game");
    assert!(threads >= 1, "need at least one thread");
    let span = so_obs::span("pso.game");
    let metrics = crate::obs::pso_metrics();
    let threshold = config.policy.threshold(config.n);

    /// Per-trial outcome, combined associatively so ordering cannot matter.
    #[derive(Default, Clone, Copy)]
    struct Tally {
        isolations: usize,
        pso_successes: usize,
        weight_rejections: usize,
    }

    let run_trial = |trial: usize| -> Tally {
        // Workers publish only to the (commutative) timing histogram;
        // counters and trace records are the coordinator's job, so metric
        // state stays thread-count invariant.
        let _timer = TrialTimer {
            start: std::time::Instant::now(),
            metrics,
        };
        let mut rng =
            so_data::rng::seeded_rng(so_data::rng::derive_seed(master_seed, trial as u64));
        let data = model.sample_dataset(config.n, &mut rng);
        let output = mechanism.run(&data, &mut rng);
        let predicate = attacker.attack(&output, &mut rng);
        if !isolates(&data, predicate.as_ref()) {
            return Tally::default();
        }
        let weight = match (config.weight_check, predicate.weight_hint()) {
            (WeightCheck::TrustHints { .. }, Some(hint)) => hint,
            (WeightCheck::TrustHints { fallback_samples }, None) => {
                estimate_weight(model, predicate.as_ref(), fallback_samples, &mut rng)
            }
            (WeightCheck::MonteCarlo { samples }, _) => {
                estimate_weight(model, predicate.as_ref(), samples, &mut rng)
            }
        };
        if config.policy.is_negligible(weight, config.n) {
            Tally {
                isolations: 1,
                pso_successes: 1,
                weight_rejections: 0,
            }
        } else {
            Tally {
                isolations: 1,
                pso_successes: 0,
                weight_rejections: 1,
            }
        }
    };

    // Shared chunked fan-out from so-plan: chunks come back in trial order
    // and the tally is associative, so any thread count folds identically.
    let total = so_plan::ParallelExecutor::with_threads(threads)
        .map_chunks(config.trials, |trials| {
            let mut acc = Tally::default();
            for t in trials {
                let r = run_trial(t);
                acc.isolations += r.isolations;
                acc.pso_successes += r.pso_successes;
                acc.weight_rejections += r.weight_rejections;
            }
            acc
        })
        .into_iter()
        .fold(Tally::default(), |mut acc, r| {
            acc.isolations += r.isolations;
            acc.pso_successes += r.pso_successes;
            acc.weight_rejections += r.weight_rejections;
            acc
        });

    metrics.games.inc();
    metrics.trials.add(config.trials as u64);
    metrics.isolations.add(total.isolations as u64);
    metrics.successes.add(total.pso_successes as u64);
    if so_obs::enabled() {
        span.finish_with(&[
            ("mechanism", mechanism.name()),
            ("attacker", attacker.name()),
            ("trials", config.trials.to_string()),
            ("successes", total.pso_successes.to_string()),
            ("threads", threads.to_string()),
        ]);
    }
    GameResult {
        n: config.n,
        trials: config.trials,
        isolations: total.isolations,
        pso_successes: total.pso_successes,
        weight_rejections: total.weight_rejections,
        weight_threshold: threshold,
        baseline_at_threshold: baseline_isolation_probability(config.n, threshold),
        mechanism: mechanism.name(),
        attacker: attacker.name(),
    }
}

/// Observes a trial's wall-clock duration into the timing histogram when
/// dropped, covering every exit path of a trial closure.
struct TrialTimer {
    start: std::time::Instant,
    metrics: &'static crate::obs::PsoMetrics,
}

impl Drop for TrialTimer {
    fn drop(&mut self) {
        self.metrics
            .trial_micros
            .observe(self.start.elapsed().as_micros() as f64);
    }
}

fn estimate_weight<M: DataModel, R: Rng + ?Sized>(
    model: &M,
    predicate: &dyn PsoPredicate<M::Record>,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let mut hits = 0usize;
    for _ in 0..samples {
        if predicate.matches(&model.sample_record(rng)) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isolation::FnPsoPredicate;
    use so_data::rng::seeded_rng;

    /// Mechanism that outputs nothing (the strongest possible privacy).
    struct NullMechanism;

    impl PsoMechanism<BitModel> for NullMechanism {
        type Output = ();

        fn run<R: Rng + ?Sized>(&self, _data: &[BitVec], _rng: &mut R) {}

        fn name(&self) -> String {
            "null".into()
        }
    }

    /// Mechanism that leaks the first record verbatim (no privacy at all).
    struct LeakFirstRecord;

    impl PsoMechanism<BitModel> for LeakFirstRecord {
        type Output = BitVec;

        fn run<R: Rng + ?Sized>(&self, data: &[BitVec], _rng: &mut R) -> BitVec {
            data[0].clone()
        }

        fn name(&self) -> String {
            "leak-first-record".into()
        }
    }

    /// Attacker exploiting the leak: "equals the leaked record", weight
    /// 2^-width (negligible).
    struct ExactMatchAttacker;

    impl PsoAttacker<BitModel, BitVec> for ExactMatchAttacker {
        fn attack<R: Rng + ?Sized>(
            &self,
            output: &BitVec,
            _rng: &mut R,
        ) -> Box<dyn PsoPredicate<BitVec>> {
            let target = output.clone();
            let weight = 0.5f64.powi(target.len() as i32);
            FnPsoPredicate::boxed("== leaked record", Some(weight), move |r: &BitVec| {
                *r == target
            })
        }

        fn name(&self) -> String {
            "exact-match".into()
        }
    }

    /// Trivial attacker at weight 1/n — isolates often, but never with a
    /// negligible-weight predicate.
    struct TrivialAttacker {
        n: usize,
    }

    impl PsoAttacker<BitModel, ()> for TrivialAttacker {
        fn attack<R: Rng + ?Sized>(&self, _: &(), rng: &mut R) -> Box<dyn PsoPredicate<BitVec>> {
            crate::baseline::BaselineAttacker {
                modulus: self.n as u64,
            }
            .predicate(rng)
        }

        fn name(&self) -> String {
            "trivial-1/n".into()
        }
    }

    #[test]
    fn leaky_mechanism_is_broken_by_the_game() {
        let model = BitModel::uniform(64);
        let cfg = GameConfig::new(100, 400);
        let res = run_pso_game(
            &model,
            &LeakFirstRecord,
            &ExactMatchAttacker,
            &cfg,
            &mut seeded_rng(140),
        );
        // The leaked record is unique in the dataset w.h.p. (2^-64 collisions),
        // so the attacker isolates it almost every trial at negligible weight.
        assert!(res.success_rate() > 0.95, "rate {}", res.success_rate());
        assert!(res.breaks_pso_security(crate::stats::Z999, 0.05));
    }

    #[test]
    fn trivial_attacker_is_filtered_by_the_weight_gate() {
        let model = BitModel::uniform(64);
        let cfg = GameConfig::new(100, 1_000);
        let res = run_pso_game(
            &model,
            &NullMechanism,
            &TrivialAttacker { n: 100 },
            &cfg,
            &mut seeded_rng(141),
        );
        // Isolation happens at the ≈37% baseline...
        assert!(
            (res.isolation_rate() - 0.37).abs() < 0.06,
            "isolation {}",
            res.isolation_rate()
        );
        // ...but never counts as PSO success: weight 1/n is not negligible.
        assert_eq!(res.pso_successes, 0);
        assert_eq!(res.weight_rejections, res.isolations);
        assert!(!res.breaks_pso_security(crate::stats::Z999, 0.0));
    }

    #[test]
    fn null_mechanism_with_negligible_weight_attacker_rarely_succeeds() {
        // Attacker emitting negligible-weight predicates against no output:
        // success probability is the (negligible) baseline.
        struct NegligibleTrivial;
        impl PsoAttacker<BitModel, ()> for NegligibleTrivial {
            fn attack<R: Rng + ?Sized>(
                &self,
                _: &(),
                rng: &mut R,
            ) -> Box<dyn PsoPredicate<BitVec>> {
                // Weight 2^-40 ≪ 100^-2.
                crate::baseline::BaselineAttacker { modulus: 1 << 40 }.predicate(rng)
            }
            fn name(&self) -> String {
                "trivial-negligible".into()
            }
        }
        let model = BitModel::uniform(64);
        let cfg = GameConfig::new(100, 2_000);
        let res = run_pso_game(
            &model,
            &NullMechanism,
            &NegligibleTrivial,
            &cfg,
            &mut seeded_rng(142),
        );
        assert_eq!(res.pso_successes, 0, "negligible weight ⇒ ~zero success");
    }

    #[test]
    fn monte_carlo_weight_check_agrees_with_hints() {
        // Force MC weight estimation; the exact-match attacker's predicate
        // has weight 2^-64 ≈ 0 and must still pass the gate.
        let model = BitModel::uniform(64);
        let cfg = GameConfig {
            weight_check: WeightCheck::MonteCarlo { samples: 200 },
            ..GameConfig::new(50, 100)
        };
        let res = run_pso_game(
            &model,
            &LeakFirstRecord,
            &ExactMatchAttacker,
            &cfg,
            &mut seeded_rng(143),
        );
        assert!(res.success_rate() > 0.95, "rate {}", res.success_rate());
    }

    #[test]
    fn parallel_runner_is_thread_count_invariant() {
        let model = BitModel::uniform(64);
        let cfg = GameConfig::new(80, 120);
        let results: Vec<super::GameResult> = [1usize, 2, 4, 7]
            .iter()
            .map(|&threads| {
                super::run_pso_game_parallel(
                    &model,
                    &LeakFirstRecord,
                    &ExactMatchAttacker,
                    &cfg,
                    0xDEED,
                    threads,
                )
            })
            .collect();
        for r in &results[1..] {
            assert_eq!(r.pso_successes, results[0].pso_successes);
            assert_eq!(r.isolations, results[0].isolations);
            assert_eq!(r.weight_rejections, results[0].weight_rejections);
        }
        // And the attack still wins.
        assert!(results[0].success_rate() > 0.9);
    }

    #[test]
    fn parallel_runner_matches_expected_statistics() {
        // Against the null mechanism the trivial attacker's isolation rate
        // stays ≈ 37% under the parallel runner too.
        let model = BitModel::uniform(64);
        let cfg = GameConfig::new(100, 600);
        let res = super::run_pso_game_parallel(
            &model,
            &NullMechanism,
            &TrivialAttacker { n: 100 },
            &cfg,
            0xBEEF,
            4,
        );
        assert!(
            (res.isolation_rate() - 0.37).abs() < 0.07,
            "isolation {}",
            res.isolation_rate()
        );
        assert_eq!(res.pso_successes, 0);
    }

    #[test]
    fn result_bookkeeping_is_consistent() {
        let model = BitModel::uniform(32);
        let cfg = GameConfig::new(30, 200);
        let res = run_pso_game(
            &model,
            &NullMechanism,
            &TrivialAttacker { n: 30 },
            &cfg,
            &mut seeded_rng(144),
        );
        assert_eq!(res.trials, 200);
        assert_eq!(res.isolations, res.pso_successes + res.weight_rejections);
        assert_eq!(res.mechanism, "null");
        assert_eq!(res.attacker, "trivial-1/n");
        // n = 30 ⇒ threshold 30^-2 ≈ 1.1e-3 ⇒ baseline ≈ 0.03.
        assert!(res.baseline_at_threshold < 0.05);
    }
}
