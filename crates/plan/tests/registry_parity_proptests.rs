//! Property test for `PlanStats` parity between the locally tallied stats
//! and the `so-obs` global registry mirror, across thread counts.
//!
//! This file holds exactly one test so the process-wide registry sees no
//! concurrent publishers: each proptest case snapshots the registry,
//! executes, and asserts the registry *delta* equals the execution's own
//! `PlanStats` — serial and at every thread count 1–8, on row counts that
//! land on and off 64-bit word boundaries.

use proptest::prelude::*;

use so_data::{AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value};
use so_plan::{NodeCache, Noise, ParallelExecutor, PlanStats, PredShape, QueryPlan, WorkloadSpec};

fn build_ds(n_rows: usize) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..n_rows {
        b.push_row(vec![
            Value::Int((i * 37 % 90) as i64),
            Value::Int((i % 5) as i64),
        ]);
    }
    b.finish()
}

fn build_workload(n_rows: usize, ranges: &[(i64, i64)]) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n_rows);
    for &(lo, hi) in ranges {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        w.push_shape(&PredShape::IntRange { col: 0, lo, hi }, Noise::Exact);
        w.push_shape(
            &PredShape::And(vec![
                PredShape::IntRange { col: 0, lo, hi },
                PredShape::ValueEquals {
                    col: 1,
                    value: Value::Int((lo % 5).abs()),
                },
            ]),
            Noise::Exact,
        );
    }
    w
}

fn stats_delta(before: &PlanStats, after: &PlanStats) -> PlanStats {
    PlanStats {
        queries: after.queries - before.queries,
        distinct_targets: after.distinct_targets - before.distinct_targets,
        nodes_evaluated: after.nodes_evaluated - before.nodes_evaluated,
        atom_scans: after.atom_scans - before.atom_scans,
        cache_hits: after.cache_hits - before.cache_hits,
        unanswerable: after.unanswerable - before.unanswerable,
    }
}

fn executions() -> u64 {
    so_obs::global()
        .counter_value("so_plan_executions_total")
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every execution — serial and threads 1–8 — the registry's
    /// counter deltas equal the locally returned `PlanStats`, and the
    /// executions counter advances by exactly one.
    #[test]
    fn registry_mirrors_plan_stats_at_every_thread_count(
        // Sizes straddle word boundaries (63, 64, 65, …) and thread counts.
        n_rows in 1usize..200,
        ranges in proptest::collection::vec((0i64..100, 0i64..100), 1..5),
    ) {
        let ds = build_ds(n_rows);
        let w = build_workload(n_rows, &ranges);
        let plan = QueryPlan::from_spec(&w);

        let before = so_plan::registry_plan_stats();
        let execs_before = executions();
        let mut serial_cache = NodeCache::new();
        let (_, serial_stats) =
            plan.execute(w.pool(), &ds, w.evaluators(), &mut serial_cache);
        prop_assert_eq!(
            stats_delta(&before, &so_plan::registry_plan_stats()),
            serial_stats,
            "serial registry delta diverged"
        );
        prop_assert_eq!(executions() - execs_before, 1);

        for threads in 1..=8usize {
            let before = so_plan::registry_plan_stats();
            let execs_before = executions();
            let mut cache = NodeCache::new();
            let (_, stats) = ParallelExecutor::with_threads(threads)
                .execute(&plan, w.pool(), &ds, w.evaluators(), &mut cache);
            prop_assert_eq!(&stats, &serial_stats, "threads={}", threads);
            prop_assert_eq!(
                stats_delta(&before, &so_plan::registry_plan_stats()),
                stats,
                "registry delta diverged at threads={}",
                threads
            );
            prop_assert_eq!(executions() - execs_before, 1, "threads={}", threads);
        }
    }
}
