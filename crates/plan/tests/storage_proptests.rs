//! Packed-vs-oracle equivalence properties for the storage-aware kernels.
//!
//! The packed engine is only admissible because it is *invisible* in the
//! answers: for every atom, dataset, and row range, the packed scan path
//! must select exactly the rows the uncompressed oracle selects, which in
//! turn must agree with the row-at-a-time [`eval_atom_row`] semantics.
//! These properties pin the tricky corners of `scan_value_equals`:
//!
//! * `Value::Missing` selects exactly the masked rows;
//! * `Float` equality follows `total_cmp` (NaN is self-equal, `-0.0` and
//!   `+0.0` are distinct) — floats never pack, so the fallback must kick in
//!   seamlessly under the packed engine;
//! * a target whose type does not match the column selects nothing.

use proptest::prelude::*;

use so_data::{
    AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Date, Schema, StorageEngine,
    Value,
};
use so_plan::kernels::{eval_atom_row, scan_atom, scan_atom_range};
use so_plan::Atom;

/// Cell recipe for one row of the 5-column test schema
/// (int, float, str, bool, date) — `None` means Missing.
#[derive(Debug, Clone)]
struct RowSpec {
    int: Option<i64>,
    float: Option<f64>,
    str_: Option<u8>,
    bool_: Option<bool>,
    date: Option<i32>,
}

fn arb_float() -> BoxedStrategy<f64> {
    prop_oneof![
        4 => proptest::num::f64::NORMAL,
        1 => Just(f64::NAN),
        1 => Just(-0.0f64),
        1 => Just(0.0f64),
        1 => Just(f64::INFINITY),
    ]
    .boxed()
}

/// `Some` with probability ~0.9, `None` (→ Missing cell) otherwise.
fn opt<T, S>(s: S) -> BoxedStrategy<Option<T>>
where
    T: std::fmt::Debug + Clone + 'static,
    S: Strategy<Value = T> + 'static,
{
    prop_oneof![
        9 => s.prop_map(Some),
        1 => Just(None),
    ]
    .boxed()
}

fn arb_row() -> impl Strategy<Value = RowSpec> {
    (
        opt(-50i64..50),
        opt(arb_float()),
        opt(0u8..6),
        opt(any::<bool>()),
        opt(-1000i32..1000),
    )
        .prop_map(|(int, float, str_, bool_, date)| RowSpec {
            int,
            float,
            str_,
            bool_,
            date,
        })
}

fn build(rows: &[RowSpec], engine: StorageEngine) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("i", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("f", DataType::Float, AttributeRole::QuasiIdentifier),
        AttributeDef::new("s", DataType::Str, AttributeRole::QuasiIdentifier),
        AttributeDef::new("b", DataType::Bool, AttributeRole::QuasiIdentifier),
        AttributeDef::new("d", DataType::Date, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    let names = ["ant", "bee", "cat", "dog", "eel", "fox"];
    let syms: Vec<_> = names.iter().map(|n| b.intern(n)).collect();
    for r in rows {
        b.push_row(vec![
            r.int.map_or(Value::Missing, Value::Int),
            r.float.map_or(Value::Missing, Value::Float),
            r.str_
                .map_or(Value::Missing, |i| Value::Str(syms[i as usize])),
            r.bool_.map_or(Value::Missing, Value::Bool),
            r.date
                .map_or(Value::Missing, |d| Value::Date(Date::from_day_number(d))),
        ]);
    }
    b.finish_with_engine(engine)
}

/// Every ValueEquals/IntRange target this schema can be probed with,
/// including Missing, type-mismatched, and out-of-domain targets.
fn probe_atoms(ds: &Dataset) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let nan = Value::Float(f64::NAN);
    let sym = ds.interner().get("cat").unwrap();
    let absent_sym = ds.interner().get("fox").unwrap();
    for col in 0..ds.n_cols() {
        atoms.push(Atom::ValueEquals {
            col,
            value: Value::Missing,
        });
        // Type-matched and deliberately type-MISmatched targets per column.
        for value in [
            Value::Int(7),
            Value::Float(-0.0),
            Value::Float(0.0),
            nan.clone(),
            Value::Str(sym),
            Value::Str(absent_sym),
            Value::Bool(true),
            Value::Date(Date::from_day_number(250)),
        ] {
            atoms.push(Atom::ValueEquals { col, value });
        }
        atoms.push(Atom::IntRange {
            col,
            lo: -10,
            hi: 25,
        });
        atoms.push(Atom::IntRange { col, lo: 5, hi: -5 }); // inverted
    }
    // Every value that actually occurs in the dataset is also a target, so
    // dictionary hits are exercised, not just misses.
    for row in 0..ds.n_rows().min(8) {
        for col in 0..ds.n_cols() {
            atoms.push(Atom::ValueEquals {
                col,
                value: ds.get(row, col),
            });
        }
    }
    atoms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every probe atom: packed scan == oracle scan == row oracle,
    /// bit for bit, on arbitrary datasets with ~10% missing cells.
    #[test]
    fn packed_scans_equal_oracle_and_row_semantics(
        rows in proptest::collection::vec(arb_row(), 0..120),
    ) {
        let oracle = build(&rows, StorageEngine::Uncompressed);
        let packed = build(&rows, StorageEngine::Packed);
        for atom in probe_atoms(&oracle) {
            let a = scan_atom(&atom, &oracle).expect("tabular atom");
            let b = scan_atom(&atom, &packed).expect("tabular atom");
            prop_assert_eq!(&a, &b, "atom {:?}", &atom);
            for row in 0..oracle.n_rows() {
                prop_assert_eq!(
                    Some(a.get(row)),
                    eval_atom_row(&atom, &oracle, row),
                    "atom {:?} row {}", &atom, row
                );
            }
        }
    }

    /// Shard-local packed scans hold exactly the word-aligned slices of the
    /// full packed scan — the property the parallel merge relies on.
    #[test]
    fn packed_range_scans_are_aligned_slices(
        rows in proptest::collection::vec(arb_row(), 65..200),
        cut_words in 1usize..3,
    ) {
        let packed = build(&rows, StorageEngine::Packed);
        let n = packed.n_rows();
        // Clamp to a word boundary within the dataset (n >= 65 here).
        let cut = (cut_words * 64).min(n / 64 * 64);
        for atom in [
            Atom::IntRange { col: 0, lo: -20, hi: 20 },
            Atom::ValueEquals { col: 0, value: Value::Int(3) },
            Atom::ValueEquals { col: 2, value: Value::Missing },
        ] {
            let full = scan_atom(&atom, &packed).expect("tabular");
            let head = scan_atom_range(&atom, &packed, 0..cut).expect("tabular");
            let tail = scan_atom_range(&atom, &packed, cut..n).expect("tabular");
            prop_assert_eq!(&head, &full.slice_aligned(0..cut), "atom {:?}", &atom);
            prop_assert_eq!(&tail, &full.slice_aligned(cut..n), "atom {:?}", &atom);
        }
    }
}

#[test]
fn float_total_cmp_corners_under_both_engines() {
    let rows: Vec<RowSpec> = [f64::NAN, -0.0, 0.0, 1.5, f64::NAN]
        .into_iter()
        .map(|f| RowSpec {
            int: Some(1),
            float: Some(f),
            str_: None,
            bool_: None,
            date: None,
        })
        .collect();
    for engine in [StorageEngine::Uncompressed, StorageEngine::Packed] {
        let ds = build(&rows, engine);
        // NaN is self-equal under total_cmp: both NaN rows selected.
        let nan = scan_atom(
            &Atom::ValueEquals {
                col: 1,
                value: Value::Float(f64::NAN),
            },
            &ds,
        )
        .unwrap();
        assert_eq!(nan.indices(), vec![0, 4], "{engine:?}");
        // -0.0 and +0.0 are distinct values.
        let neg = scan_atom(
            &Atom::ValueEquals {
                col: 1,
                value: Value::Float(-0.0),
            },
            &ds,
        )
        .unwrap();
        let pos = scan_atom(
            &Atom::ValueEquals {
                col: 1,
                value: Value::Float(0.0),
            },
            &ds,
        )
        .unwrap();
        assert_eq!(neg.indices(), vec![1], "{engine:?}");
        assert_eq!(pos.indices(), vec![2], "{engine:?}");
        // Str-typed probe of a Float column selects nothing; Missing
        // selects exactly the masked rows (here: the whole str column).
        let sym = ds.interner().get("cat").unwrap();
        let mismatched = scan_atom(
            &Atom::ValueEquals {
                col: 1,
                value: Value::Str(sym),
            },
            &ds,
        )
        .unwrap();
        assert!(mismatched.is_none(), "{engine:?}");
        let missing = scan_atom(
            &Atom::ValueEquals {
                col: 2,
                value: Value::Missing,
            },
            &ds,
        )
        .unwrap();
        assert_eq!(missing.count(), ds.n_rows(), "{engine:?}");
    }
}
