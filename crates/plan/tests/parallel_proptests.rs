//! Property tests for sharded parallel plan execution.
//!
//! The contract under test is the determinism gate's foundation: for any
//! dataset size (including sizes that do not divide 64 and datasets smaller
//! than the thread count), any workload mixing typed atoms, boolean
//! structure, and opaque closure predicates, and any thread count from 1 to
//! 8, [`ParallelExecutor::execute`] must produce **bit-identical** outcomes,
//! stats, and cache contents to the serial [`QueryPlan::execute`].

use proptest::prelude::*;
use std::sync::Arc;

use so_data::{
    AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, SelectionVector, Value,
};
use so_plan::{
    NodeCache, Noise, ParallelExecutor, PredShape, QueryPlan, RowPredicate, WorkloadSpec,
};

fn build_ds(ages: &[i64]) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for (i, &a) in ages.iter().enumerate() {
        b.push_row(vec![Value::Int(a), Value::Int((i % 5) as i64)]);
    }
    b.finish()
}

/// An opaque closure predicate: invisible to the typed scan kernels, so the
/// parallel path must evaluate it per-shard through `eval_row`.
struct EveryKth {
    k: usize,
}

impl RowPredicate for EveryKth {
    fn eval_row(&self, _ds: &Dataset, row: usize) -> bool {
        row % self.k == 0
    }
}

fn build_workload(n_rows: usize, ranges: &[(i64, i64)], opaque_k: usize) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n_rows);
    for &(lo, hi) in ranges {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        w.push_shape(&PredShape::IntRange { col: 0, lo, hi }, Noise::Exact);
        // Boolean structure over shared conjuncts, so AND/OR/NOT nodes (and
        // the cross-shard child fetch) are exercised, not just atoms.
        w.push_shape(
            &PredShape::And(vec![
                PredShape::IntRange { col: 0, lo, hi },
                PredShape::Not(Box::new(PredShape::ValueEquals {
                    col: 1,
                    value: Value::Int((lo % 5).abs()),
                })),
            ]),
            Noise::Exact,
        );
    }
    w.push_predicate_arc(Arc::new(EveryKth { k: opaque_k }), Noise::Exact);
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel ≡ serial: outcomes, stats, and every cached bitmap, for all
    /// thread counts 1–8, on datasets whose sizes land on and off word
    /// boundaries — including datasets with fewer rows than threads.
    #[test]
    fn parallel_execution_is_thread_count_invariant(
        ages in proptest::collection::vec(0i64..100, 1..300),
        ranges in proptest::collection::vec((0i64..100, 0i64..100), 1..6),
        opaque_k in 1usize..7,
    ) {
        let ds = build_ds(&ages);
        let w = build_workload(ds.n_rows(), &ranges, opaque_k);
        let plan = QueryPlan::from_spec(&w);
        let mut serial_cache = NodeCache::new();
        let (serial, serial_stats) =
            plan.execute(w.pool(), &ds, w.evaluators(), &mut serial_cache);
        for threads in 1..=8usize {
            let mut cache = NodeCache::new();
            let (out, stats) = ParallelExecutor::with_threads(threads)
                .execute(&plan, w.pool(), &ds, w.evaluators(), &mut cache);
            prop_assert_eq!(&out, &serial, "threads={}", threads);
            prop_assert_eq!(stats, serial_stats, "threads={}", threads);
            prop_assert_eq!(cache.len(), serial_cache.len(), "threads={}", threads);
            for (id, bitmap) in &serial_cache {
                prop_assert_eq!(
                    cache.get(id),
                    Some(bitmap),
                    "node {:?} diverged at threads={}",
                    id,
                    threads
                );
            }
        }
    }

    /// Word-aligned slicing and shard-order concatenation round-trip any
    /// bitmap — the merge algebra the executor is built on.
    #[test]
    fn shard_slices_reassemble_exactly(
        bits in proptest::collection::vec(any::<bool>(), 1..400),
        max_shards in 1usize..9,
    ) {
        let full = SelectionVector::from_fn(bits.len(), |i| bits[i]);
        let ranges = so_data::word_aligned_ranges(bits.len(), max_shards);
        let merged = SelectionVector::concat_aligned(
            ranges.iter().map(|r| full.slice_aligned(r.clone())),
        );
        prop_assert_eq!(&merged, &full);
        prop_assert_eq!(merged.count(), bits.iter().filter(|&&b| b).count());
    }

    /// Chunked fan-out over an item list is order-preserving and complete
    /// for every thread count (the `map_chunks` contract the mechanisms,
    /// k-anonymity merge, and PSO game loop rely on).
    #[test]
    fn map_chunks_equals_sequential_map(
        n_items in 0usize..500,
        threads in 1usize..9,
    ) {
        let exec = ParallelExecutor::with_threads(threads);
        let got: Vec<usize> = exec
            .map_chunks(n_items, |r| r.map(|i| i * i).collect::<Vec<_>>())
            .concat();
        let want: Vec<usize> = (0..n_items).map(|i| i * i).collect();
        prop_assert_eq!(got, want);
    }
}
