#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # so-plan — the predicate compilation pipeline
//!
//! Every attack in the paper — Dinur–Nissim reconstruction (Theorem 1.1),
//! the differencing / tracker shapes of Theorems 2.5–2.10, the census
//! tabulation replay — is a *workload* of thousands of structurally
//! overlapping predicates. This crate is the single canonical
//! representation and compilation pipeline those workloads flow through:
//!
//! ```text
//! RowPredicate ──shape()──▶ PredShape ──lift──▶ ExprId (hash-consed IR)
//!                                                   │
//!                                 WorkloadSpec ──compile──▶ QueryPlan
//!                                                   │
//!                                  bitmap kernels ──▶ SelectionVector
//! ```
//!
//! * [`predicate`] — the [`Predicate`] / [`RowPredicate`] traits and the
//!   canonical row-byte encoding. The concrete typed predicates live in
//!   `so-query`; the traits live here so workload declarations can carry
//!   executable predicates.
//! * [`shape`] — [`PredShape`], the structural reflection of a predicate
//!   (what used to key the bitmap cache directly, now the on-ramp to the
//!   IR).
//! * [`ir`] — the hash-consed predicate algebra: [`PredPool`] / [`ExprId`]
//!   with constant folding, NNF, and a stable structural FNV hash. One pool
//!   is shared by the static linter (`so-analyze`) and the executing engine
//!   (`so-query`), so the plan that is linted is the plan that runs.
//! * [`kernels`] — columnar scan kernels giving each IR atom its bitmap
//!   semantics over a [`so_data::Dataset`]; `so-query`'s typed predicates
//!   delegate here, so there is exactly one implementation of each atom.
//! * [`subset`] — [`SubsetQuery`], the Dinur–Nissim subset-sum question.
//! * [`workload`] — [`WorkloadSpec`], the declared plan of a workload
//!   (queries + noise annotations + registered closure evaluators).
//! * [`plan`] — [`QueryPlan`], the compiled whole-workload execution plan:
//!   hash-consing deduplicates structurally equal queries, shared
//!   subexpressions are scanned once, and NOT/AND/OR evaluate as pure
//!   word-ops over child bitmaps.
//! * [`noise`] — the one shared copy of the Laplace tail-quantile /
//!   effective-α logic (see [`noise::laplace_tail_quantile`]).
//! * [`parallel`] — [`ParallelExecutor`], sharded multi-threaded plan
//!   execution over word-aligned row chunks ([`so_data::ShardedDataset`]),
//!   bit-identical to the serial path at every thread count
//!   (`SO_THREADS` override).
//! * [`obs`] — the bridge to the `so-obs` global metrics registry: every
//!   execution publishes its [`PlanStats`] counters and (export-only)
//!   wall-clock histograms there.

pub mod ir;
pub mod kernels;
pub mod noise;
pub mod obs;
pub mod parallel;
pub mod plan;
pub mod predicate;
pub mod shape;
pub mod subset;
pub mod workload;

pub use ir::{Atom, ExprId, PredNode, PredPool};
pub use noise::laplace_tail_quantile;
pub use obs::{plan_metrics, registry_plan_stats, storage_metrics, PlanMetrics, StorageMetrics};
pub use parallel::{ParallelExecutor, SchedulePolicy, MORSEL_ROWS, SCHEDULE_ENV, THREADS_ENV};
pub use plan::{NodeCache, PlanOutcome, PlanStats, QueryPlan};
pub use predicate::{canonical_bytes, Predicate, RowPredicate};
pub use shape::{next_opaque_id, PredShape};
pub use subset::SubsetQuery;
pub use workload::{Noise, QueryKind, QuerySpec, WorkloadSpec};
