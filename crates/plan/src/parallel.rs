//! Sharded multi-threaded plan execution.
//!
//! A [`ParallelExecutor`] runs a compiled [`QueryPlan`]'s bitmap kernels on
//! a [`std::thread::scope`] pool, one worker per word-aligned row shard of
//! the dataset ([`so_data::ShardedDataset`]), and merges the per-shard
//! results **deterministically in shard order**:
//!
//! ```text
//!               ┌─ shard 0 rows [0, 64k)     ── scan/AND/OR/NOT ─┐
//!   QueryPlan ──┼─ shard 1 rows [64k, 128k)  ── scan/AND/OR/NOT ─┼─ concat
//!               └─ shard 2 rows [128k, n)    ── scan/AND/OR/NOT ─┘   words
//!                                                                      │
//!                                                   NodeCache ◀────────┘
//! ```
//!
//! Because shard boundaries are multiples of 64, a shard-local
//! [`SelectionVector`] occupies whole words of the full bitmap and the merge
//! ([`SelectionVector::concat_aligned`]) is a pure word copy — answers are
//! **bit-identical to the serial path for every thread count**, which is
//! what lets a CI determinism gate diff transcripts across `SO_THREADS`
//! settings. Each worker evaluates the plan's node order into a shard-local
//! cache; the shared [`NodeCache`] is only read during the scatter phase
//! (word-aligned slices of already-compiled bitmaps) and only written after
//! the join barrier, in plan order.
//!
//! ## Scheduling: static shards vs morsels
//!
//! Two ways to hand ranges to the worker pool, selected by
//! [`SchedulePolicy`] (`SO_SCHEDULE` env):
//!
//! * **static** — one contiguous range per worker (the classic layout).
//!   Zero coordination, but a skewed shard (e.g. a worker descheduled by
//!   the OS, or NUMA-unlucky pages) stalls the join barrier.
//! * **morsel** — the row space is pre-cut into fixed-size word-aligned
//!   morsels ([`MORSEL_ROWS`] rows) and workers *claim* the next morsel
//!   index from a shared atomic cursor until none remain, so a slow worker
//!   simply claims fewer morsels.
//!
//! Determinism is preserved under both: the morsel partition depends only
//! on `n_rows` (never on which worker ran what), every result is tagged
//! with its morsel index, and the merge sorts by index before
//! concatenating — so answers, cache contents, and stats are bit-identical
//! to the serial path for every thread count under either schedule. `Auto`
//! (the default) uses morsels when there are enough of them to rebalance
//! (≥ 2 per worker) and static shards otherwise.
//!
//! Thread count comes from the `SO_THREADS` environment variable
//! ([`THREADS_ENV`]), defaulting to [`std::thread::available_parallelism`];
//! no dependencies beyond `std` are involved. The executor also exposes
//! [`ParallelExecutor::map_chunks`], the generic deterministic fan-out used
//! by the subset-sum mechanisms, the k-anonymity class merge, and the PSO
//! game loop.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use so_data::{Dataset, SelectionVector, ShardedDataset};

use crate::ir::{Atom, ExprId, PredNode, PredPool};
use crate::kernels::scan_atom_range;
use crate::plan::{NodeCache, PlanOutcome, PlanStats, QueryPlan};
use crate::predicate::RowPredicate;

/// Environment variable overriding the worker thread count (a positive
/// integer). Unset or unparsable values fall back to the machine's available
/// parallelism.
pub const THREADS_ENV: &str = "SO_THREADS";

/// Environment variable selecting the range schedule: `static`, `morsel`,
/// or anything else (including unset) for `auto`.
pub const SCHEDULE_ENV: &str = "SO_SCHEDULE";

/// Rows per morsel under morsel-driven scheduling: 1024 words. Word-aligned
/// by construction, so morsel bitmaps merge by pure word copy, and small
/// enough that a skewed worker re-balances at fine grain.
pub const MORSEL_ROWS: usize = 1 << 16;

/// How [`ParallelExecutor::execute`] cuts the row space into worker ranges.
///
/// Every policy produces bit-identical answers — the choice is purely a
/// load-balancing strategy (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Morsels when there are at least two per worker, else static shards.
    #[default]
    Auto,
    /// One contiguous word-aligned shard per worker.
    Static,
    /// Fixed-size word-aligned morsels claimed from an atomic cursor.
    Morsel,
}

impl SchedulePolicy {
    /// Reads [`SCHEDULE_ENV`] (`SO_SCHEDULE`): `static` or `morsel`
    /// (case-insensitive) select those policies; anything else is `Auto`.
    pub fn from_env() -> Self {
        Self::from_opt(std::env::var(SCHEDULE_ENV).ok().as_deref())
    }

    /// [`SchedulePolicy::from_env`] with an injected value, for tests.
    pub fn from_opt(value: Option<&str>) -> Self {
        match value.map(str::trim) {
            Some(s) if s.eq_ignore_ascii_case("static") => SchedulePolicy::Static,
            Some(s) if s.eq_ignore_ascii_case("morsel") => SchedulePolicy::Morsel,
            _ => SchedulePolicy::Auto,
        }
    }
}

/// A deterministic scoped-thread executor with a fixed worker count.
///
/// Construction is cheap (no threads are kept alive between calls); workers
/// are spawned per execution with [`std::thread::scope`], so borrowed
/// datasets, pools, and caches flow in without `'static` bounds or new
/// dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExecutor {
    threads: usize,
    policy: SchedulePolicy,
    morsel_rows: usize,
}

impl ParallelExecutor {
    /// An executor with an explicit worker count. The schedule policy is
    /// taken from the environment ([`SchedulePolicy::from_env`]) so
    /// `SO_SCHEDULE` reaches engines that only configure a thread count.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        Self::with_threads_and_policy(threads, SchedulePolicy::from_env())
    }

    /// An executor with an explicit worker count and schedule policy.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn with_threads_and_policy(threads: usize, policy: SchedulePolicy) -> Self {
        assert!(threads >= 1, "need at least one thread");
        ParallelExecutor {
            threads,
            policy,
            morsel_rows: MORSEL_ROWS,
        }
    }

    /// An executor honouring the [`THREADS_ENV`] (`SO_THREADS`) and
    /// [`SCHEDULE_ENV`] (`SO_SCHEDULE`) overrides, defaulting to the
    /// machine's available parallelism under the `Auto` schedule.
    pub fn from_env() -> Self {
        Self::with_threads(threads_from(std::env::var(THREADS_ENV).ok().as_deref()))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured schedule policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Overrides the morsel size (tests exercise multi-morsel claiming on
    /// small datasets with this).
    ///
    /// # Panics
    /// Panics unless `rows` is a positive multiple of 64 (morsel boundaries
    /// must stay word-aligned for the merge to be a pure word copy).
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        assert!(
            rows > 0 && rows % 64 == 0,
            "morsel size must be a positive multiple of 64, got {rows}"
        );
        self.morsel_rows = rows;
        self
    }

    /// The worker ranges for `n_rows` under the configured policy, plus the
    /// schedule actually chosen (`"static"` / `"morsel"`, for traces). A
    /// pure function of the executor configuration and `n_rows` — never of
    /// runtime timing — which is what keeps execution deterministic.
    fn plan_ranges(
        &self,
        sharded: &ShardedDataset,
        n_rows: usize,
    ) -> (Vec<Range<usize>>, &'static str) {
        let n_morsels = n_rows.div_ceil(self.morsel_rows.max(1));
        let use_morsels = match self.policy {
            SchedulePolicy::Static => false,
            SchedulePolicy::Morsel => true,
            // Rebalancing needs slack: at least two morsels per worker.
            SchedulePolicy::Auto => n_morsels >= 2 * self.threads,
        };
        if use_morsels {
            let ranges = (0..n_morsels)
                .map(|i| i * self.morsel_rows..((i + 1) * self.morsel_rows).min(n_rows))
                .collect();
            (ranges, "morsel")
        } else {
            (sharded.ranges().to_vec(), "static")
        }
    }

    /// Executes a compiled plan against `ds`, sharding rows across the
    /// worker pool and merging per-shard bitmaps into `cache` in shard
    /// order. Single-threaded executors (and datasets too small to split
    /// into multiple word-aligned shards) delegate to the serial
    /// [`QueryPlan::execute`] directly.
    ///
    /// Answers, the resulting cache contents, and the returned [`PlanStats`]
    /// are identical to the serial path for every thread count: scans are
    /// counted once per distinct atom (not once per shard), and opaque
    /// predicates are evaluated per-shard through
    /// [`RowPredicate::eval_row`], which the trait contract requires to
    /// agree exactly with [`RowPredicate::scan`].
    pub fn execute(
        &self,
        plan: &QueryPlan,
        pool: &PredPool,
        ds: &Dataset,
        evaluators: &HashMap<u64, Arc<dyn RowPredicate>>,
        cache: &mut NodeCache,
    ) -> (Vec<PlanOutcome>, PlanStats) {
        let sharded = ShardedDataset::new(ds, self.threads);
        if self.threads == 1 || sharded.n_shards() <= 1 {
            return plan.execute(pool, ds, evaluators, cache);
        }
        let started = std::time::Instant::now();
        let span = so_obs::span("plan.execute");
        let mut stats = PlanStats {
            queries: plan.targets().len(),
            distinct_targets: {
                let mut t: Vec<ExprId> = plan.targets().iter().flatten().copied().collect();
                t.sort_unstable();
                t.dedup();
                t.len()
            },
            ..PlanStats::default()
        };
        // Scatter-phase planning (mirrors the serial path's bookkeeping): a
        // node is evaluable iff it is already cached, is a constant, is an
        // atom with tabular semantics (or a registered opaque evaluator), or
        // is a boolean node over evaluable children. Increasing-id order
        // guarantees children are classified before parents.
        let mut available: Vec<bool> = vec![false; pool.len()];
        let mut eval_ids: Vec<ExprId> = Vec::new();
        for &id in plan.order() {
            if cache.contains_key(&id) {
                stats.cache_hits += 1;
                available[id.index()] = true;
                continue;
            }
            let ok = match pool.node(id) {
                PredNode::True | PredNode::False => true,
                PredNode::Atom(atom) => match atom {
                    Atom::BitExtract { .. } => false,
                    Atom::Opaque { id: oid } => evaluators.contains_key(oid),
                    _ => true,
                },
                PredNode::And(children) | PredNode::Or(children) => {
                    children.iter().all(|c| available[c.index()])
                }
                PredNode::Not(inner) => available[inner.index()],
            };
            available[id.index()] = ok;
            if ok {
                eval_ids.push(id);
            }
        }
        let (ranges, schedule) = self.plan_ranges(&sharded, ds.n_rows());
        if !eval_ids.is_empty() {
            let shared_cache: &NodeCache = cache;
            let eval: &[ExprId] = &eval_ids;
            let range_slice: &[Range<usize>] = &ranges;
            // Workers claim the next unprocessed range index from a shared
            // cursor — under morsel scheduling a slow worker simply claims
            // fewer morsels. Each result is tagged with its range index so
            // the merge can restore deterministic range order regardless of
            // which worker ran what.
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let workers = self.threads.min(range_slice.len());
            let mut tagged: Vec<(usize, Vec<SelectionVector>, u64)> = std::thread::scope(|scope| {
                let cursor = &cursor;
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut done: Vec<(usize, Vec<SelectionVector>, u64)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(rows) = range_slice.get(i) else {
                                    break;
                                };
                                let t0 = std::time::Instant::now();
                                let out = execute_shard(
                                    eval,
                                    pool,
                                    ds,
                                    evaluators,
                                    shared_cache,
                                    rows.clone(),
                                );
                                done.push((i, out, t0.elapsed().as_micros() as u64));
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            tagged.sort_unstable_by_key(|&(i, _, _)| i);
            debug_assert!(tagged.iter().enumerate().all(|(k, t)| k == t.0));
            // Per-range observability is reported *after* the join barrier,
            // in range order, so trace files are deterministically ordered
            // even though workers finish in any order. (Timings themselves
            // are wall-clock and export-only.)
            let metrics = crate::obs::plan_metrics();
            for (i, _, micros) in &tagged {
                metrics.shard_micros.observe(*micros as f64);
                if so_obs::enabled() {
                    so_obs::event(
                        "plan.shard",
                        &[
                            ("shard", i.to_string()),
                            ("rows", range_slice[*i].len().to_string()),
                            ("us", micros.to_string()),
                        ],
                    );
                }
            }
            // Merge barrier: concatenate each node's range bitmaps in range
            // order and publish to the shared cache in plan order.
            let mut columns: Vec<std::vec::IntoIter<SelectionVector>> = tagged
                .into_iter()
                .map(|(_, bitmaps, _)| bitmaps.into_iter())
                .collect();
            for &id in &eval_ids {
                let merged = SelectionVector::concat_aligned(
                    columns.iter_mut().map(|c| c.next().expect("shard result")),
                );
                debug_assert_eq!(merged.len(), ds.n_rows());
                if let PredNode::Atom(atom) = pool.node(id) {
                    stats.atom_scans += 1;
                    // Storage metrics count once per distinct merged atom —
                    // never per shard/morsel — so totals match the serial
                    // path at every thread count.
                    crate::obs::record_packed_scan(atom, ds);
                }
                stats.nodes_evaluated += 1;
                cache.insert(id, merged);
            }
        }
        let outcomes: Vec<PlanOutcome> = plan
            .targets()
            .iter()
            .map(|t| match t {
                Some(id) => match cache.get(id) {
                    Some(b) => PlanOutcome::Count(b.count()),
                    None => {
                        stats.unanswerable += 1;
                        PlanOutcome::Unanswerable
                    }
                },
                None => {
                    stats.unanswerable += 1;
                    PlanOutcome::Unanswerable
                }
            })
            .collect();
        crate::obs::record_execution(&stats, started.elapsed().as_micros() as u64);
        if so_obs::enabled() {
            span.finish_with(&[
                ("queries", stats.queries.to_string()),
                ("atom_scans", stats.atom_scans.to_string()),
                ("cache_hits", stats.cache_hits.to_string()),
                ("nodes_evaluated", stats.nodes_evaluated.to_string()),
                ("shards", ranges.len().to_string()),
                ("schedule", schedule.to_string()),
            ]);
        }
        (outcomes, stats)
    }

    /// Splits `0..n_items` into at most [`ParallelExecutor::threads`]
    /// contiguous chunks of (near-)equal size, ascending and non-empty. The
    /// partition depends only on `n_items` and the configured thread count —
    /// never on scheduling — which is what keeps [`Self::map_chunks`]
    /// deterministic.
    pub fn chunk_ranges(&self, n_items: usize) -> Vec<Range<usize>> {
        if n_items == 0 {
            return Vec::new();
        }
        let chunks = self.threads.min(n_items);
        let per = n_items.div_ceil(chunks);
        (0..chunks)
            .map(|i| i * per..((i + 1) * per).min(n_items))
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// Applies `f` to each chunk of `0..n_items` (see
    /// [`Self::chunk_ranges`]) across the worker pool and returns the
    /// results **in ascending chunk order**, regardless of which worker
    /// finished first. With one thread (or one chunk) everything runs inline
    /// on the caller's thread.
    ///
    /// `f` must be a pure function of its range for the combined result to
    /// be independent of the thread count — give each item its own derived
    /// RNG seed rather than sharing a stream across items.
    pub fn map_chunks<T, F>(&self, n_items: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        let ranges = self.chunk_ranges(n_items);
        if ranges.len() <= 1 {
            return ranges.into_iter().map(f).collect();
        }
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| scope.spawn(move || f(r)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("chunk worker panicked"))
                .collect()
        })
    }
}

impl Default for ParallelExecutor {
    /// Equivalent to [`ParallelExecutor::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

/// Resolves the worker count from an optional `SO_THREADS` value, falling
/// back to available parallelism (and 1 if that is unknown).
fn threads_from(env: Option<&str>) -> usize {
    env.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// One worker's pass: evaluates `eval_ids` (a valid bottom-up schedule) over
/// the rows `rows`, returning the shard-local bitmaps in `eval_ids` order.
/// Children resolve from the worker's own shard-local results or, for nodes
/// compiled by an earlier execution, from word-aligned slices of the shared
/// cache.
fn execute_shard(
    eval_ids: &[ExprId],
    pool: &PredPool,
    ds: &Dataset,
    evaluators: &HashMap<u64, Arc<dyn RowPredicate>>,
    cache: &NodeCache,
    rows: Range<usize>,
) -> Vec<SelectionVector> {
    let len = rows.len();
    let mut local: HashMap<ExprId, SelectionVector> = HashMap::with_capacity(eval_ids.len());
    // Owned copy of child `c`'s shard bitmap (clone from this pass's local
    // results, or an aligned slice of a previously cached full bitmap).
    let fetch = |local: &HashMap<ExprId, SelectionVector>, c: ExprId| -> SelectionVector {
        match local.get(&c) {
            Some(b) => b.clone(),
            None => cache[&c].slice_aligned(rows.clone()),
        }
    };
    for &id in eval_ids {
        let bitmap = match pool.node(id) {
            PredNode::True => SelectionVector::all(len),
            PredNode::False => SelectionVector::none(len),
            PredNode::Atom(atom) => match scan_atom_range(atom, ds, rows.clone()) {
                Some(b) => b,
                None => match atom {
                    Atom::Opaque { id: oid } => {
                        let p = &evaluators[oid];
                        SelectionVector::from_fn(len, |i| p.eval_row(ds, rows.start + i))
                    }
                    _ => unreachable!("non-evaluable atoms are filtered before the scatter"),
                },
            },
            PredNode::And(children) => {
                let mut acc = fetch(&local, children[0]);
                for &c in &children[1..] {
                    match local.get(&c) {
                        Some(b) => acc.and_assign(b),
                        None => acc.and_assign(&cache[&c].slice_aligned(rows.clone())),
                    }
                }
                acc
            }
            PredNode::Or(children) => {
                let mut acc = fetch(&local, children[0]);
                for &c in &children[1..] {
                    match local.get(&c) {
                        Some(b) => acc.or_assign(b),
                        None => acc.or_assign(&cache[&c].slice_aligned(rows.clone())),
                    }
                }
                acc
            }
            PredNode::Not(inner) => {
                let mut b = fetch(&local, *inner);
                b.not_assign();
                b
            }
        };
        local.insert(id, bitmap);
    }
    eval_ids
        .iter()
        .map(|id| local.remove(id).expect("evaluated above"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::PredShape;
    use crate::workload::{Noise, WorkloadSpec};
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};

    fn ds(n: usize) -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("dept", DataType::Int, AttributeRole::QuasiIdentifier),
        ]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..n {
            b.push_row(vec![
                Value::Int((i * 37 % 90) as i64),
                Value::Int((i % 7) as i64),
            ]);
        }
        b.finish()
    }

    fn workload(n_rows: usize) -> WorkloadSpec {
        let mut w = WorkloadSpec::new(n_rows);
        for q in 0..40usize {
            let lo = (q % 9 * 10) as i64;
            let shape = PredShape::And(vec![
                PredShape::IntRange {
                    col: 0,
                    lo,
                    hi: lo + 19,
                },
                PredShape::Not(Box::new(PredShape::ValueEquals {
                    col: 1,
                    value: Value::Int((q % 7) as i64),
                })),
            ]);
            w.push_shape(&shape, Noise::Exact);
        }
        w
    }

    /// The cross-thread-count invariant the whole module exists for — under
    /// every schedule policy, and for both storage engines.
    #[test]
    fn parallel_matches_serial_for_every_thread_count() {
        use so_data::StorageEngine;
        for n in [1usize, 63, 64, 65, 127, 130, 1000] {
            for engine in [StorageEngine::Uncompressed, StorageEngine::Packed] {
                let data = ds(n).with_engine(engine);
                let w = workload(n);
                let plan = QueryPlan::from_spec(&w);
                let mut serial_cache = NodeCache::new();
                let (serial, serial_stats) =
                    plan.execute(w.pool(), &data, w.evaluators(), &mut serial_cache);
                for threads in 1..=8 {
                    for policy in [
                        SchedulePolicy::Auto,
                        SchedulePolicy::Static,
                        SchedulePolicy::Morsel,
                    ] {
                        let exec = ParallelExecutor::with_threads_and_policy(threads, policy)
                            // 128-row morsels so small datasets really
                            // exercise multi-morsel cursor claiming.
                            .with_morsel_rows(128);
                        let mut cache = NodeCache::new();
                        let (out, stats) =
                            exec.execute(&plan, w.pool(), &data, w.evaluators(), &mut cache);
                        let ctx = format!("n={n} threads={threads} {policy:?} {engine:?}");
                        assert_eq!(out, serial, "{ctx}");
                        assert_eq!(stats, serial_stats, "{ctx}");
                        // Cache contents are bit-identical too, not just counts.
                        assert_eq!(cache.len(), serial_cache.len(), "{ctx}");
                        for (id, bm) in &serial_cache {
                            assert_eq!(cache[id], *bm, "{ctx} node {id:?}");
                        }
                    }
                }
            }
        }
    }

    /// Packed and uncompressed engines answer identically through the
    /// parallel path (the engine only changes the scan representation).
    #[test]
    fn packed_engine_matches_oracle_through_executor() {
        use so_data::StorageEngine;
        let base = ds(1000);
        let w = workload(1000);
        let plan = QueryPlan::from_spec(&w);
        let mut results = Vec::new();
        for engine in [StorageEngine::Uncompressed, StorageEngine::Packed] {
            let data = base.with_engine(engine);
            let mut cache = NodeCache::new();
            let (out, stats) = ParallelExecutor::with_threads_and_policy(4, SchedulePolicy::Morsel)
                .with_morsel_rows(64)
                .execute(&plan, w.pool(), &data, w.evaluators(), &mut cache);
            results.push((out, stats));
        }
        assert_eq!(results[0], results[1]);
    }

    /// Morsel partitioning: word-aligned starts, exact coverage, pure
    /// function of `n_rows` and the configured morsel size.
    #[test]
    fn morsel_ranges_are_word_aligned_and_cover() {
        for n in [0usize, 1, 64, 127, 128, 129, 1000, 65_536, 65_537] {
            let exec = ParallelExecutor::with_threads_and_policy(4, SchedulePolicy::Morsel)
                .with_morsel_rows(128);
            let data = ds(n.min(2000)); // sharded only needs n_rows
            let sharded = ShardedDataset::new(&data, 4);
            let (ranges, schedule) = exec.plan_ranges(&sharded, n);
            assert_eq!(schedule, "morsel");
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "n={n}");
                assert_eq!(r.start % 64, 0, "n={n}");
                assert!(!r.is_empty(), "n={n}");
                assert!(r.len() <= 128, "n={n}");
                next = r.end;
            }
            assert_eq!(next, n, "n={n}");
        }
    }

    /// Auto rebalances only when there are at least two morsels per worker.
    #[test]
    fn auto_policy_picks_morsels_only_with_slack() {
        let data = ds(100);
        let sharded = ShardedDataset::new(&data, 2);
        let auto2 =
            ParallelExecutor::with_threads_and_policy(2, SchedulePolicy::Auto).with_morsel_rows(64);
        // 100 rows / 64-row morsels = 2 morsels < 2 * 2 workers → static.
        assert_eq!(auto2.plan_ranges(&sharded, 100).1, "static");
        // 256 rows = 4 morsels ≥ 2 * 2 workers → morsel.
        assert_eq!(auto2.plan_ranges(&sharded, 256).1, "morsel");
        let fixed = ParallelExecutor::with_threads_and_policy(2, SchedulePolicy::Static)
            .with_morsel_rows(64);
        assert_eq!(fixed.plan_ranges(&sharded, 10_000).1, "static");
    }

    #[test]
    fn schedule_policy_parsing() {
        assert_eq!(SchedulePolicy::from_opt(None), SchedulePolicy::Auto);
        assert_eq!(SchedulePolicy::from_opt(Some("auto")), SchedulePolicy::Auto);
        assert_eq!(
            SchedulePolicy::from_opt(Some(" STATIC ")),
            SchedulePolicy::Static
        );
        assert_eq!(
            SchedulePolicy::from_opt(Some("Morsel")),
            SchedulePolicy::Morsel
        );
        assert_eq!(
            SchedulePolicy::from_opt(Some("garbage")),
            SchedulePolicy::Auto
        );
    }

    /// Pins the fallback behaviour for garbage and empty `SO_SCHEDULE`
    /// values, mirroring the `SO_THREADS` treatment: anything that is not
    /// `static` or `morsel` — including the empty string, whitespace, and
    /// near-misses — falls back to [`SchedulePolicy::Auto`] rather than
    /// erroring.
    #[test]
    fn schedule_policy_garbage_and_empty_fall_back_to_auto() {
        for s in ["", "   ", "0", "-1", "staticc", "mor sel", "MORSELS", "☃"] {
            assert_eq!(
                SchedulePolicy::from_opt(Some(s)),
                SchedulePolicy::Auto,
                "{s:?} must fall back to Auto"
            );
        }
        assert_eq!(SchedulePolicy::default(), SchedulePolicy::Auto);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn misaligned_morsel_size_panics() {
        let _ = ParallelExecutor::with_threads(2).with_morsel_rows(100);
    }

    /// A warm cache is reused: re-execution does zero scans and the
    /// parallel path reports the same cache hits as the serial one.
    #[test]
    fn warm_cache_short_circuits_in_parallel() {
        let data = ds(300);
        let w = workload(300);
        let plan = QueryPlan::from_spec(&w);
        let exec = ParallelExecutor::with_threads(4);
        let mut cache = NodeCache::new();
        let (first, stats1) = exec.execute(&plan, w.pool(), &data, w.evaluators(), &mut cache);
        assert!(stats1.atom_scans > 0);
        let (again, stats2) = exec.execute(&plan, w.pool(), &data, w.evaluators(), &mut cache);
        assert_eq!(first, again);
        assert_eq!(stats2.atom_scans, 0);
        assert_eq!(stats2.nodes_evaluated, 0);
        assert_eq!(stats2.cache_hits, stats1.nodes_evaluated);
    }

    /// Mixed-availability workloads: unanswerable queries stay unanswerable
    /// (and are not cached) while answerable ones still parallelize.
    #[test]
    fn unanswerable_nodes_survive_sharding() {
        let data = ds(200);
        let mut w = WorkloadSpec::new(200);
        let i_opaque = w.push_shape(&PredShape::Opaque { id: u64::MAX }, Noise::Exact);
        let i_ok = w.push_shape(
            &PredShape::IntRange {
                col: 0,
                lo: 0,
                hi: 44,
            },
            Noise::Exact,
        );
        let plan = QueryPlan::from_spec(&w);
        let mut cache = NodeCache::new();
        let (out, stats) = ParallelExecutor::with_threads(3).execute(
            &plan,
            w.pool(),
            &data,
            w.evaluators(),
            &mut cache,
        );
        assert_eq!(out[i_opaque], PlanOutcome::Unanswerable);
        assert!(matches!(out[i_ok], PlanOutcome::Count(_)));
        assert_eq!(stats.unanswerable, 1);
    }

    #[test]
    fn map_chunks_preserves_order_and_covers_everything() {
        for threads in 1..=8 {
            let exec = ParallelExecutor::with_threads(threads);
            for n in [0usize, 1, 5, 8, 100] {
                let ranges = exec.chunk_ranges(n);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n);
                // Concatenated chunk results equal the sequential map.
                let got: Vec<usize> = exec.map_chunks(n, |r| r.collect::<Vec<_>>()).concat();
                assert_eq!(got, (0..n).collect::<Vec<_>>(), "threads={threads} n={n}");
            }
        }
    }

    /// `SO_THREADS=0`, negative, and garbage values must all fall back to
    /// available parallelism — never reach `with_threads`'s `>= 1` assert.
    /// (`-3` fails the `usize` parse, `0` fails the `>= 1` filter.)
    #[test]
    fn threads_from_env_parsing() {
        assert_eq!(threads_from(Some("4")), 4);
        assert_eq!(threads_from(Some(" 2 ")), 2);
        let fallback = threads_from(None);
        assert!(fallback >= 1);
        assert_eq!(threads_from(Some("0")), fallback, "zero is ignored");
        assert_eq!(threads_from(Some("-3")), fallback, "negative is ignored");
        assert_eq!(threads_from(Some("lots")), fallback, "garbage is ignored");
        assert_eq!(threads_from(Some("")), fallback, "empty is ignored");
        // And the constructor path built on it cannot panic for any of
        // these: with_threads receives the fallback, which is >= 1.
        for v in [Some("0"), Some("-3"), Some("lots"), None] {
            let exec = ParallelExecutor::with_threads(threads_from(v));
            assert!(exec.threads() >= 1, "{v:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        ParallelExecutor::with_threads(0);
    }
}
