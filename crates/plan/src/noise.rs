//! Shared noise-magnitude arithmetic.
//!
//! Exactly one copy of the Laplace tail-quantile formula lives in the
//! workspace — here. Both consumers delegate to it:
//!
//! * [`crate::workload::Noise::effective_alpha`] uses the 99.9% quantile to
//!   map a pure-DP annotation onto Theorem 1.1's "within α of the true
//!   answer" premise for the reconstruction-density lint;
//! * `so-dp`'s `LaplaceCount::tail_quantile` exposes the same formula on the
//!   executing mechanism, so lint-side and mechanism-side error estimates
//!   can never drift apart.

/// The (1 − `tail`) quantile of |X| for `X ~ Laplace(0, 1/epsilon)`:
/// `ln(1/tail) / epsilon`.
///
/// In other words, a Laplace count with privacy-loss `epsilon` lands within
/// this distance of the true answer with probability `1 − tail`. With
/// `tail = 1e-3` this is the `ln(1000)/ε` effective-α used by the
/// reconstruction-density lint.
///
/// # Panics
/// Panics unless `epsilon > 0` and `0 < tail < 1`.
pub fn laplace_tail_quantile(epsilon: f64, tail: f64) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
    assert!(
        tail > 0.0 && tail < 1.0,
        "tail probability must be in (0, 1), got {tail}"
    );
    (1.0 / tail).ln() / epsilon
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_matches_closed_form() {
        let q = laplace_tail_quantile(0.5, 1e-3);
        assert!((q - (1000.0f64).ln() / 0.5).abs() < 1e-12);
        // Tighter tails demand larger quantiles; more privacy loss, smaller.
        assert!(laplace_tail_quantile(0.5, 1e-6) > q);
        assert!(laplace_tail_quantile(1.0, 1e-3) < q);
    }

    #[test]
    fn quantile_is_a_true_tail_bound() {
        // P(|X| > q) = exp(-ε q) should equal the requested tail exactly.
        for &(eps, tail) in &[(0.1, 1e-3), (1.0, 0.05), (2.0, 0.5)] {
            let q = laplace_tail_quantile(eps, tail);
            assert!(((-eps * q).exp() - tail).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn zero_epsilon_panics() {
        laplace_tail_quantile(0.0, 1e-3);
    }

    #[test]
    #[should_panic(expected = "tail")]
    fn bad_tail_panics() {
        laplace_tail_quantile(1.0, 1.5);
    }
}
