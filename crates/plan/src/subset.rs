//! Subset-sum queries over binary datasets.

use so_data::BitVec;

/// A subset query `q ⊆ [n]` in the Dinur–Nissim setting: membership is a bit
/// mask over record indices, and the true answer against `x ∈ {0,1}^n` is
/// `Σ_{i∈q} x_i`.
#[derive(Debug, Clone)]
pub struct SubsetQuery {
    members: BitVec,
}

impl SubsetQuery {
    /// Builds a query from a membership mask.
    pub fn new(members: BitVec) -> Self {
        SubsetQuery { members }
    }

    /// Builds from explicit indices.
    ///
    /// # Panics
    /// Panics if any index is `>= n`.
    pub fn from_indices(n: usize, indices: &[usize]) -> Self {
        let mut members = BitVec::zeros(n);
        for &i in indices {
            members.set(i, true);
        }
        SubsetQuery { members }
    }

    /// The membership mask.
    pub fn members(&self) -> &BitVec {
        &self.members
    }

    /// Universe size `n`.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// Number of members `|q|`.
    pub fn size(&self) -> usize {
        self.members.count_ones()
    }

    /// True iff index `i` is in the subset.
    pub fn contains(&self, i: usize) -> bool {
        self.members.get(i)
    }

    /// Exact answer `Σ_{i∈q} x_i` against the secret dataset `x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n`.
    pub fn true_answer(&self, x: &BitVec) -> u64 {
        assert_eq!(x.len(), self.members.len(), "dataset/query size mismatch");
        // Word-parallel AND + popcount.
        self.members
            .words()
            .iter()
            .zip(x.words())
            .map(|(q, xv)| u64::from((q & xv).count_ones()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_query_true_answer() {
        let x = BitVec::from_bools(&[true, false, true, true, false]);
        let q = SubsetQuery::from_indices(5, &[0, 1, 2]);
        assert_eq!(q.true_answer(&x), 2);
        assert_eq!(q.size(), 3);
        assert_eq!(q.n(), 5);
        assert!(q.contains(1));
        assert!(!q.contains(3));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let x = BitVec::zeros(4);
        SubsetQuery::from_indices(5, &[0]).true_answer(&x);
    }
}
