//! Compiled whole-workload execution plans.
//!
//! A [`QueryPlan`] is a [`crate::workload::WorkloadSpec`] after compilation:
//! the distinct IR expressions reachable from the workload's predicate
//! queries, in bottom-up evaluation order. Hash-consing has already
//! deduplicated structurally equal queries and shared subexpressions, so
//! executing the plan
//!
//! * scans each distinct atom **once** (the expensive part — a pass over a
//!   column or a row-hash loop),
//! * evaluates each AND/OR/NOT node **once** as pure word-ops over its
//!   children's bitmaps,
//! * answers every query as a popcount of its target bitmap.
//!
//! The [`NodeCache`] is caller-owned, so an engine can keep it across
//! workloads: a predicate the engine has already compiled — via a previous
//! workload or a single-query `count` — is never rescanned.
//!
//! Interning order guarantees a child's [`ExprId`] is smaller than its
//! parent's, so increasing-id order over the reachable set is a valid
//! evaluation schedule; no explicit topological sort is needed.

use std::collections::HashMap;
use std::sync::Arc;

use so_data::{Dataset, SelectionVector};

use crate::ir::{Atom, ExprId, PredNode, PredPool};
use crate::kernels::scan_atom;
use crate::predicate::RowPredicate;
use crate::workload::{QueryKind, WorkloadSpec};

/// Per-expression compiled bitmaps, keyed by the owning pool's [`ExprId`].
/// Caller-owned so it can persist across plan executions (and across
/// single-query engine calls) against the same dataset.
pub type NodeCache = HashMap<ExprId, SelectionVector>;

/// Counters describing what executing a plan actually did.
///
/// Each execution tallies its own `PlanStats` locally (the deterministic
/// value engines and transcripts consume) and publishes the same counts to
/// the [`so_obs::global`] metrics registry; the cumulative process-wide view
/// is available as [`crate::obs::registry_plan_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Queries in the workload.
    pub queries: usize,
    /// Distinct target expressions after hash-consing (≤ `queries`).
    pub distinct_targets: usize,
    /// IR nodes evaluated fresh this execution (not served by the cache).
    pub nodes_evaluated: usize,
    /// Dataset scans performed (atom scans + opaque evaluator scans) — the
    /// expensive part; everything else is word-ops over existing bitmaps.
    pub atom_scans: usize,
    /// Node lookups served by the [`NodeCache`].
    pub cache_hits: usize,
    /// Queries with no tabular answer (subset queries, bit-string atoms,
    /// opaque atoms without a registered evaluator).
    pub unanswerable: usize,
}

/// The answer the plan produced for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOutcome {
    /// Exact count of matching rows.
    Count(usize),
    /// The query cannot be answered by the tabular bitmap engine: subset
    /// queries (answer those against a bit dataset with
    /// `SubsetSumMechanism`), predicates over bit-string records, or opaque
    /// predicates with no registered evaluator.
    Unanswerable,
}

/// A compiled workload: per-query target expressions plus the distinct
/// reachable IR nodes in bottom-up evaluation order.
pub struct QueryPlan {
    targets: Vec<Option<ExprId>>,
    order: Vec<ExprId>,
}

impl QueryPlan {
    /// Compiles a plan for explicit per-query targets (`None` marks a query
    /// with no predicate target, e.g. a subset query) against the pool that
    /// owns them.
    pub fn compile(pool: &PredPool, targets: Vec<Option<ExprId>>) -> Self {
        let mut reachable: Vec<bool> = vec![false; pool.len()];
        let mut stack: Vec<ExprId> = targets.iter().flatten().copied().collect();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.index()], true) {
                continue;
            }
            match pool.node(id) {
                PredNode::True | PredNode::False | PredNode::Atom(_) => {}
                PredNode::And(children) | PredNode::Or(children) => {
                    stack.extend(children.iter().copied());
                }
                PredNode::Not(inner) => stack.push(*inner),
            }
        }
        // Increasing index = children before parents (interning invariant),
        // so ascending order over the reachable set is the schedule.
        let order: Vec<ExprId> = (0..pool.len())
            .filter(|&i| reachable[i])
            .map(ExprId::from_index)
            .collect();
        QueryPlan { targets, order }
    }

    /// Compiles a workload spec against its own pool. Subset queries get a
    /// `None` target (they have no tabular predicate; see [`PlanOutcome`]).
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        let targets: Vec<Option<ExprId>> = spec
            .queries()
            .iter()
            .map(|q| match &q.kind {
                QueryKind::Pred(id) => Some(*id),
                QueryKind::Subset(_) => None,
            })
            .collect();
        Self::compile(spec.pool(), targets)
    }

    /// Per-query target expressions (`None` for subset queries).
    pub fn targets(&self) -> &[Option<ExprId>] {
        &self.targets
    }

    /// The distinct reachable IR nodes in evaluation (increasing-id) order.
    pub fn order(&self) -> &[ExprId] {
        &self.order
    }

    /// Executes the plan against a dataset, filling `cache` bottom-up and
    /// answering each query as a popcount of its target bitmap.
    ///
    /// `evaluators` supplies closure scans for [`Atom::Opaque`] atoms (see
    /// [`WorkloadSpec::push_predicate_arc`]); opaque atoms without one, and
    /// bit-string atoms, make the nodes above them unanswerable. The cache
    /// must be keyed by the same `pool` and must have been built against the
    /// same `ds` — engines guarantee both by owning pool, cache, and dataset
    /// together.
    pub fn execute(
        &self,
        pool: &PredPool,
        ds: &Dataset,
        evaluators: &HashMap<u64, Arc<dyn RowPredicate>>,
        cache: &mut NodeCache,
    ) -> (Vec<PlanOutcome>, PlanStats) {
        let started = std::time::Instant::now();
        let span = so_obs::span("plan.execute");
        let n = ds.n_rows();
        let mut stats = PlanStats {
            queries: self.targets.len(),
            distinct_targets: {
                let mut t: Vec<ExprId> = self.targets.iter().flatten().copied().collect();
                t.sort_unstable();
                t.dedup();
                t.len()
            },
            ..PlanStats::default()
        };
        // Nodes with no tabular semantics *this execution* (an opaque atom
        // may gain an evaluator in a later workload, so this is not cached).
        let mut unavailable: Vec<bool> = Vec::new();
        let is_unavailable = |v: &Vec<bool>, id: ExprId| id.index() < v.len() && v[id.index()];
        for &id in &self.order {
            if unavailable.len() <= id.index() {
                unavailable.resize(id.index() + 1, false);
            }
            if cache.contains_key(&id) {
                stats.cache_hits += 1;
                continue;
            }
            let bitmap: Option<SelectionVector> = match pool.node(id) {
                PredNode::True => Some(SelectionVector::all(n)),
                PredNode::False => Some(SelectionVector::none(n)),
                PredNode::Atom(atom) => match scan_atom(atom, ds) {
                    Some(b) => {
                        stats.atom_scans += 1;
                        Some(b)
                    }
                    None => match atom {
                        Atom::Opaque { id: opaque_id } => evaluators.get(opaque_id).map(|p| {
                            stats.atom_scans += 1;
                            p.scan(ds)
                        }),
                        _ => None,
                    },
                },
                PredNode::And(children) => {
                    if children.iter().any(|&c| is_unavailable(&unavailable, c)) {
                        None
                    } else {
                        let mut acc = cache[&children[0]].clone();
                        for c in &children[1..] {
                            acc.and_assign(&cache[c]);
                        }
                        Some(acc)
                    }
                }
                PredNode::Or(children) => {
                    if children.iter().any(|&c| is_unavailable(&unavailable, c)) {
                        None
                    } else {
                        let mut acc = cache[&children[0]].clone();
                        for c in &children[1..] {
                            acc.or_assign(&cache[c]);
                        }
                        Some(acc)
                    }
                }
                PredNode::Not(inner) => {
                    if is_unavailable(&unavailable, *inner) {
                        None
                    } else {
                        let mut b = cache[inner].clone();
                        b.not_assign();
                        Some(b)
                    }
                }
            };
            match bitmap {
                Some(b) => {
                    stats.nodes_evaluated += 1;
                    cache.insert(id, b);
                }
                None => unavailable[id.index()] = true,
            }
        }
        let outcomes: Vec<PlanOutcome> = self
            .targets
            .iter()
            .map(|t| match t {
                Some(id) => match cache.get(id) {
                    Some(b) => PlanOutcome::Count(b.count()),
                    None => {
                        stats.unanswerable += 1;
                        PlanOutcome::Unanswerable
                    }
                },
                None => {
                    stats.unanswerable += 1;
                    PlanOutcome::Unanswerable
                }
            })
            .collect();
        crate::obs::record_execution(&stats, started.elapsed().as_micros() as u64);
        if so_obs::enabled() {
            span.finish_with(&[
                ("queries", stats.queries.to_string()),
                ("atom_scans", stats.atom_scans.to_string()),
                ("cache_hits", stats.cache_hits.to_string()),
                ("nodes_evaluated", stats.nodes_evaluated.to_string()),
            ]);
        }
        (outcomes, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::PredShape;
    use crate::workload::Noise;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};

    fn ds() -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("score", DataType::Int, AttributeRole::Sensitive),
        ]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..70i64 {
            b.push_row(vec![Value::Int(20 + (i % 50)), Value::Int(i)]);
        }
        b.finish()
    }

    fn range(col: usize, lo: i64, hi: i64) -> PredShape {
        PredShape::IntRange { col, lo, hi }
    }

    #[test]
    fn shared_conjunct_is_scanned_once() {
        let ds = ds();
        let mut w = WorkloadSpec::new(ds.n_rows());
        let shared = range(0, 30, 60);
        // Ten queries all refining the same base range.
        for i in 0..10 {
            w.push_shape(
                &PredShape::And(vec![shared.clone(), range(1, 0, 10 + i)]),
                Noise::Exact,
            );
        }
        let plan = QueryPlan::from_spec(&w);
        let mut cache = NodeCache::new();
        let (outcomes, stats) = plan.execute(w.pool(), &ds, w.evaluators(), &mut cache);
        assert_eq!(outcomes.len(), 10);
        // 1 shared atom + 10 refinement atoms, each scanned exactly once.
        assert_eq!(stats.atom_scans, 11);
        assert_eq!(stats.unanswerable, 0);
        // Every answer matches a scalar re-count.
        for (i, o) in outcomes.iter().enumerate() {
            let expected = (0..ds.n_rows())
                .filter(|&r| {
                    let age = ds.get(r, 0).as_int().unwrap();
                    let score = ds.get(r, 1).as_int().unwrap();
                    (30..=60).contains(&age) && (0..=10 + i as i64).contains(&score)
                })
                .count();
            assert_eq!(*o, PlanOutcome::Count(expected), "query {i}");
        }
        // Re-executing against the same cache does zero new work.
        let (again, stats2) = plan.execute(w.pool(), &ds, w.evaluators(), &mut cache);
        assert_eq!(again, outcomes);
        assert_eq!(stats2.atom_scans, 0);
        assert_eq!(stats2.nodes_evaluated, 0);
        assert_eq!(stats2.cache_hits, stats.nodes_evaluated);
    }

    #[test]
    fn duplicate_queries_collapse_to_one_target() {
        let ds = ds();
        let mut w = WorkloadSpec::new(ds.n_rows());
        for _ in 0..5 {
            w.push_shape(&range(0, 25, 45), Noise::Exact);
        }
        let plan = QueryPlan::from_spec(&w);
        let mut cache = NodeCache::new();
        let (outcomes, stats) = plan.execute(w.pool(), &ds, w.evaluators(), &mut cache);
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.distinct_targets, 1);
        assert_eq!(stats.atom_scans, 1);
        assert!(outcomes.windows(2).all(|p| p[0] == p[1]));
    }

    #[test]
    fn negation_is_word_ops_not_a_second_scan() {
        let ds = ds();
        let mut w = WorkloadSpec::new(ds.n_rows());
        let r = range(0, 30, 60);
        let a = w.push_shape(&r, Noise::Exact);
        let b = w.push_shape(&PredShape::Not(Box::new(r)), Noise::Exact);
        let plan = QueryPlan::from_spec(&w);
        let mut cache = NodeCache::new();
        let (outcomes, stats) = plan.execute(w.pool(), &ds, w.evaluators(), &mut cache);
        assert_eq!(stats.atom_scans, 1, "NOT reuses the positive bitmap");
        let (PlanOutcome::Count(pos), PlanOutcome::Count(neg)) = (outcomes[a], outcomes[b]) else {
            panic!("both answerable");
        };
        assert_eq!(pos + neg, ds.n_rows());
    }

    #[test]
    fn subset_and_unregistered_opaque_are_unanswerable() {
        let ds = ds();
        let mut w = WorkloadSpec::new(ds.n_rows());
        let s = crate::subset::SubsetQuery::from_indices(ds.n_rows(), &[0, 1, 2]);
        let i_subset = w.push_subset(&s, Noise::Exact);
        let i_opaque = w.push_shape(&PredShape::Opaque { id: u64::MAX }, Noise::Exact);
        let i_ok = w.push_shape(&range(0, 0, 200), Noise::Exact);
        let plan = QueryPlan::from_spec(&w);
        let mut cache = NodeCache::new();
        let (outcomes, stats) = plan.execute(w.pool(), &ds, w.evaluators(), &mut cache);
        assert_eq!(outcomes[i_subset], PlanOutcome::Unanswerable);
        assert_eq!(outcomes[i_opaque], PlanOutcome::Unanswerable);
        assert_eq!(outcomes[i_ok], PlanOutcome::Count(ds.n_rows()));
        assert_eq!(stats.unanswerable, 2);
    }

    #[test]
    fn registered_evaluator_executes_opaque_queries() {
        struct EvenRows;
        impl RowPredicate for EvenRows {
            fn eval_row(&self, _ds: &Dataset, row: usize) -> bool {
                row % 2 == 0
            }
        }
        let ds = ds();
        let mut w = WorkloadSpec::new(ds.n_rows());
        let i = w.push_predicate_arc(Arc::new(EvenRows), Noise::Exact);
        let plan = QueryPlan::from_spec(&w);
        let mut cache = NodeCache::new();
        let (outcomes, stats) = plan.execute(w.pool(), &ds, w.evaluators(), &mut cache);
        assert_eq!(outcomes[i], PlanOutcome::Count(ds.n_rows().div_ceil(2)));
        assert_eq!(stats.atom_scans, 1);
        assert_eq!(stats.unanswerable, 0);
    }
}
