//! Workload declarations — the input to both the linter and the planner.
//!
//! A [`WorkloadSpec`] is the *plan* of a query workload — what will be
//! asked, and with how much noise — declared before anything executes.
//! Subset-sum queries are kept as their membership masks (the lints can do
//! exact set arithmetic on those); predicate queries are lifted into the
//! canonical IR of [`crate::ir`], so structurally equal predicates share an
//! id and refinement relationships are visible symbolically.
//!
//! The same spec then drives execution: `so-analyze` lints it, and
//! `so-query`'s `CountingEngine::execute_workload` compiles it into a
//! [`crate::plan::QueryPlan`] and answers it with bitmap kernels. Closure
//! predicates that cannot expose structure are carried as *registered
//! evaluators* ([`WorkloadSpec::push_predicate_arc`]) keyed by their opaque
//! id, so the planner can still execute them (as whole-predicate scans)
//! while the linter conservatively treats them as unknowns.

use std::collections::HashMap;
use std::sync::Arc;

use so_data::BitVec;

use crate::ir::{Atom, ExprId, PredPool};
use crate::noise::laplace_tail_quantile;
use crate::predicate::RowPredicate;
use crate::shape::{next_opaque_id, PredShape};
use crate::subset::SubsetQuery;

/// How a query's answers will be released — the noise annotation the lints
/// reason about.
///
/// This is *declared* release noise, consumed by the static lints (e.g. the
/// reconstruction-density lint compares workload size against
/// [`Noise::effective_alpha`]); the executing engine returns exact counts
/// and leaves noise addition to the caller's release mechanism, so the
/// annotation here must match whatever mechanism actually publishes the
/// answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Noise {
    /// Exact answers (no noise). Differencing on exact pairs is arithmetic.
    Exact,
    /// Answers with worst-case additive error at most `alpha` (the `α` of
    /// Theorem 1.1's bounded-error mechanisms).
    Bounded {
        /// Worst-case additive error bound.
        alpha: f64,
    },
    /// Answers through a pure ε-DP mechanism (e.g. Laplace counts).
    PureDp {
        /// Per-query privacy-loss parameter.
        epsilon: f64,
    },
}

/// The tail probability behind [`Noise::effective_alpha`]'s pure-DP arm:
/// the Laplace noise exceeds the effective α on a given query with
/// probability `1e-3`.
pub const EFFECTIVE_ALPHA_TAIL: f64 = 1e-3;

impl Noise {
    /// Effective worst-case-style error magnitude used by the
    /// reconstruction-density lint: 0 for exact answers, `α` for bounded
    /// noise, and for pure DP the 99.9% quantile of the Laplace noise
    /// ([`laplace_tail_quantile`] at [`EFFECTIVE_ALPHA_TAIL`], i.e.
    /// `ln(1000)/ε`) — the scale at which Theorem 1.1's "within α of the
    /// true answer" premise effectively holds for the whole workload.
    pub fn effective_alpha(&self) -> f64 {
        match *self {
            Noise::Exact => 0.0,
            Noise::Bounded { alpha } => alpha,
            Noise::PureDp { epsilon } => laplace_tail_quantile(epsilon, EFFECTIVE_ALPHA_TAIL),
        }
    }
}

/// What a query asks.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// A Dinur–Nissim subset-sum query, kept as its membership mask.
    Subset(BitVec),
    /// A predicate counting query, lifted into the pool.
    Pred(ExprId),
}

/// One planned query: what is asked and how it will be answered.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The question.
    pub kind: QueryKind,
    /// The release mechanism's noise annotation.
    pub noise: Noise,
}

/// A declared workload over a dataset of `n_rows` records: the one object
/// that flows through `so-analyze`'s `lint_workload` *and*
/// `so-query`'s `CountingEngine::execute_workload`.
pub struct WorkloadSpec {
    n_rows: usize,
    queries: Vec<QuerySpec>,
    pool: PredPool,
    evaluators: HashMap<u64, Arc<dyn RowPredicate>>,
}

impl WorkloadSpec {
    /// An empty workload against a dataset of `n_rows` records.
    pub fn new(n_rows: usize) -> Self {
        WorkloadSpec {
            n_rows,
            queries: Vec::new(),
            pool: PredPool::new(),
            evaluators: HashMap::new(),
        }
    }

    /// Number of records in the target dataset.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of planned queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True iff no queries are planned.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The planned queries, in declaration order.
    pub fn queries(&self) -> &[QuerySpec] {
        &self.queries
    }

    /// The predicate pool backing `Pred` queries.
    pub fn pool(&self) -> &PredPool {
        &self.pool
    }

    /// Mutable access to the pool (for building expressions directly).
    pub fn pool_mut(&mut self) -> &mut PredPool {
        &mut self.pool
    }

    /// The registered closure evaluator for an opaque atom id, if any.
    pub fn evaluator(&self, opaque_id: u64) -> Option<&Arc<dyn RowPredicate>> {
        self.evaluators.get(&opaque_id)
    }

    /// All registered closure evaluators, keyed by opaque atom id.
    pub fn evaluators(&self) -> &HashMap<u64, Arc<dyn RowPredicate>> {
        &self.evaluators
    }

    /// Plans a subset-sum query. Returns its index.
    ///
    /// # Panics
    /// Panics if the query's universe size disagrees with `n_rows`.
    pub fn push_subset(&mut self, q: &SubsetQuery, noise: Noise) -> usize {
        assert_eq!(
            q.n(),
            self.n_rows,
            "subset query over universe of {} rows pushed into a workload over {}",
            q.n(),
            self.n_rows
        );
        self.push_kind(QueryKind::Subset(q.members().clone()), noise)
    }

    /// Plans every query of a subset workload in order.
    pub fn push_subsets(&mut self, qs: &[SubsetQuery], noise: Noise) {
        for q in qs {
            self.push_subset(q, noise);
        }
    }

    /// Plans a predicate counting query via its structural shape. Returns
    /// its index.
    ///
    /// Declares the *shape* only: an opaque or volatile predicate pushed
    /// this way is visible to the lints but has no registered evaluator, so
    /// execution reports it unanswerable. Use
    /// [`WorkloadSpec::push_predicate_arc`] when the workload will also be
    /// executed.
    pub fn push_predicate(&mut self, p: &dyn RowPredicate, noise: Noise) -> usize {
        let id = self.pool.lift_row_predicate(p);
        self.push_kind(QueryKind::Pred(id), noise)
    }

    /// Plans a predicate counting query *and* keeps the predicate around so
    /// the planner can execute it. Returns its index.
    ///
    /// * Fully structural shapes (no opaque/volatile node) are lifted into
    ///   the IR as usual — the bitmap kernels execute them and hash-consing
    ///   shares their subexpressions; the `Arc` is not retained.
    /// * A top-level [`PredShape::Opaque`] registers the predicate as the
    ///   evaluator for its stable id, so repeated pushes of the *same
    ///   instance* still dedupe to one expression.
    /// * Anything else (volatile, or structure mixed with opaque nodes) is
    ///   wrapped whole as a single fresh opaque atom with the predicate as
    ///   its evaluator: sound — never aliases another predicate's bitmap —
    ///   at the cost of sub-expression sharing for that query.
    pub fn push_predicate_arc(&mut self, p: Arc<dyn RowPredicate>, noise: Noise) -> usize {
        let shape = p.shape();
        let id = if shape.is_fully_structural() {
            self.pool.lift(&shape)
        } else {
            let opaque_id = match shape {
                PredShape::Opaque { id } => id,
                _ => next_opaque_id(),
            };
            self.evaluators.insert(opaque_id, p);
            self.pool.atom(Atom::Opaque { id: opaque_id })
        };
        self.push_kind(QueryKind::Pred(id), noise)
    }

    /// Plans a predicate counting query from an explicit shape.
    pub fn push_shape(&mut self, shape: &PredShape, noise: Noise) -> usize {
        let id = self.pool.lift(shape);
        self.push_kind(QueryKind::Pred(id), noise)
    }

    /// Plans a predicate counting query from an already-interned expression.
    pub fn push_expr(&mut self, id: ExprId, noise: Noise) -> usize {
        self.push_kind(QueryKind::Pred(id), noise)
    }

    fn push_kind(&mut self, kind: QueryKind, noise: Noise) -> usize {
        self.queries.push(QuerySpec { kind, noise });
        self.queries.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::Dataset;

    #[test]
    fn structurally_equal_predicates_share_an_id() {
        let mut w = WorkloadSpec::new(10);
        let shape = PredShape::IntRange {
            col: 0,
            lo: 1,
            hi: 5,
        };
        w.push_shape(&shape, Noise::Exact);
        w.push_shape(&shape.clone(), Noise::Exact);
        let ids: Vec<_> = w
            .queries()
            .iter()
            .map(|s| match &s.kind {
                QueryKind::Pred(id) => *id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids[0], ids[1]);
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn subset_universe_mismatch_panics() {
        let mut w = WorkloadSpec::new(10);
        let q = SubsetQuery::from_indices(5, &[0, 1]);
        w.push_subset(&q, Noise::Exact);
    }

    #[test]
    fn effective_alpha_orders_mechanisms() {
        assert_eq!(Noise::Exact.effective_alpha(), 0.0);
        assert_eq!(Noise::Bounded { alpha: 3.0 }.effective_alpha(), 3.0);
        let dp = Noise::PureDp { epsilon: 0.5 }.effective_alpha();
        assert!(dp > 13.0 && dp < 14.0, "ln(1000)/0.5 ≈ 13.8, got {dp}");
    }

    struct StatelessTrue;
    impl RowPredicate for StatelessTrue {
        fn eval_row(&self, _ds: &Dataset, _row: usize) -> bool {
            true
        }
        // Default shape: Volatile.
    }

    struct Stable {
        id: u64,
    }
    impl RowPredicate for Stable {
        fn eval_row(&self, _ds: &Dataset, _row: usize) -> bool {
            true
        }
        fn shape(&self) -> PredShape {
            PredShape::Opaque { id: self.id }
        }
    }

    #[test]
    fn volatile_arcs_get_distinct_evaluators() {
        let mut w = WorkloadSpec::new(4);
        w.push_predicate_arc(Arc::new(StatelessTrue), Noise::Exact);
        w.push_predicate_arc(Arc::new(StatelessTrue), Noise::Exact);
        let ids: Vec<_> = w
            .queries()
            .iter()
            .map(|s| match &s.kind {
                QueryKind::Pred(id) => *id,
                _ => unreachable!(),
            })
            .collect();
        assert_ne!(ids[0], ids[1], "volatile predicates must never alias");
        assert_eq!(w.evaluators().len(), 2);
    }

    #[test]
    fn stable_opaque_arcs_dedupe_by_identity() {
        let mut w = WorkloadSpec::new(4);
        let p: Arc<dyn RowPredicate> = Arc::new(Stable {
            id: next_opaque_id(),
        });
        let i = w.push_predicate_arc(Arc::clone(&p), Noise::Exact);
        let j = w.push_predicate_arc(Arc::clone(&p), Noise::Exact);
        let ids: Vec<_> = w
            .queries()
            .iter()
            .map(|s| match &s.kind {
                QueryKind::Pred(id) => *id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids[i], ids[j], "same instance shares one expression");
        assert_eq!(w.evaluators().len(), 1);
    }

    #[test]
    fn structural_arcs_are_not_retained() {
        struct Range;
        impl RowPredicate for Range {
            fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
                crate::kernels::eval_atom_row(
                    &Atom::IntRange {
                        col: 0,
                        lo: 0,
                        hi: 9,
                    },
                    ds,
                    row,
                )
                .unwrap_or(false)
            }
            fn shape(&self) -> PredShape {
                PredShape::IntRange {
                    col: 0,
                    lo: 0,
                    hi: 9,
                }
            }
        }
        let mut w = WorkloadSpec::new(4);
        w.push_predicate_arc(Arc::new(Range), Noise::Exact);
        assert!(
            w.evaluators().is_empty(),
            "structural shapes need no evaluator"
        );
    }
}
