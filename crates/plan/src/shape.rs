//! Structural reflection of predicates.
//!
//! `describe()` strings are for humans: they collide (two closures can share
//! a label, every custom [`crate::predicate::RowPredicate`] inherits the
//! same default) and they are fragile as machine-facing keys. [`PredShape`]
//! is the canonical structural form of a predicate — the node kind plus the
//! data it carries, with combinator children held recursively. Equal shapes
//! are guaranteed to select the same rows, which is exactly the contract a
//! bitmap cache or a static workload linter needs:
//!
//! * the execution engine lifts shapes into the interned predicate-algebra
//!   IR of [`crate::ir`] ([`crate::ir::PredPool::lift`]) and keys its
//!   compiled-bitmap cache by the resulting [`crate::ir::ExprId`], closing
//!   the label-collision cache-unsoundness hole;
//! * `so-analyze` runs differencing / reconstruction-density lints over the
//!   same lifted expressions before execution.
//!
//! Closure-backed predicates cannot expose structure; they either carry a
//! process-unique identity assigned at construction ([`PredShape::Opaque`],
//! safe to cache because no two instances share an id) or refuse a stable
//! identity altogether ([`PredShape::Volatile`], never cached).

use std::sync::atomic::{AtomicU64, Ordering};

use so_data::Value;

use crate::predicate::canonical_bytes;

static OPAQUE_IDS: AtomicU64 = AtomicU64::new(0);

/// Returns a fresh process-unique identity for an opaque (closure-backed)
/// predicate. Assigned once at construction time so the same instance keeps
/// the same shape for its whole life.
pub fn next_opaque_id() -> u64 {
    OPAQUE_IDS.fetch_add(1, Ordering::Relaxed)
}

/// The structural form of a predicate: atoms carry their full payload,
/// combinators carry their children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredShape {
    /// Integer range atom `lo ≤ row[col] ≤ hi` (inclusive).
    IntRange {
        /// Column index.
        col: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Exact-value atom `row[col] == value`.
    ValueEquals {
        /// Column index.
        col: usize,
        /// Required value.
        value: Value,
    },
    /// Keyed-hash residue atom over selected columns of a row
    /// (the Theorem 2.10 refinement predicate).
    RowHash {
        /// Hash key.
        key: u64,
        /// Residue modulus (design weight `1/modulus`).
        modulus: u64,
        /// Accepted residue class.
        target: u64,
        /// Columns fed to the hash, in order.
        cols: Vec<usize>,
    },
    /// Keyed-hash residue atom over a whole bit-string record
    /// (the Leftover-Hash-Lemma predicates of §2.2).
    KeyedHash {
        /// Hash key.
        key: u64,
        /// Residue modulus (design weight `1/modulus`).
        modulus: u64,
        /// Accepted residue class.
        target: u64,
    },
    /// Single-bit atom `record[bit] == value` over bit-string records.
    BitExtract {
        /// Bit position.
        bit: usize,
        /// Required value.
        value: bool,
    },
    /// Fixed-leading-bits atom over bit-string records (uniform weight
    /// `2^-len` — the Theorem 2.8 composition-attack predicate family).
    Prefix {
        /// Required leading bits.
        bits: Vec<bool>,
    },
    /// Conjunction of children.
    And(Vec<PredShape>),
    /// Disjunction of children.
    Or(Vec<PredShape>),
    /// Negation of a child.
    Not(Box<PredShape>),
    /// Unknown structure with a *stable* process-unique identity: two equal
    /// `Opaque` shapes are guaranteed to be the same underlying closure, so
    /// caching by this shape is sound.
    Opaque {
        /// Identity from [`next_opaque_id`].
        id: u64,
    },
    /// Unknown structure and no stable identity — the conservative default
    /// for predicates that do not implement shape reflection. Never safe to
    /// use as a cache key (`Volatile == Volatile` says nothing about the
    /// underlying predicates agreeing).
    Volatile,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl PredShape {
    /// True iff the shape can soundly key a cache: no [`PredShape::Volatile`]
    /// node anywhere in the tree.
    pub fn is_cache_stable(&self) -> bool {
        match self {
            PredShape::Volatile => false,
            PredShape::And(children) | PredShape::Or(children) => {
                children.iter().all(PredShape::is_cache_stable)
            }
            PredShape::Not(inner) => inner.is_cache_stable(),
            _ => true,
        }
    }

    /// True iff the shape is *fully structural*: no [`PredShape::Opaque`] or
    /// [`PredShape::Volatile`] node anywhere. Fully structural shapes lift
    /// into IR expressions that the bitmap kernels can execute without any
    /// registered closure evaluator, and their subexpressions can be shared
    /// across structurally equal queries from different sources.
    pub fn is_fully_structural(&self) -> bool {
        match self {
            PredShape::Volatile | PredShape::Opaque { .. } => false,
            PredShape::And(children) | PredShape::Or(children) => {
                children.iter().all(PredShape::is_fully_structural)
            }
            PredShape::Not(inner) => inner.is_fully_structural(),
            _ => true,
        }
    }

    /// Stable 64-bit structural digest (FNV-1a over a canonical byte
    /// encoding). Stable across processes and runs — usable in logs, audit
    /// trails, and cross-process cache-key comparisons where the fragile
    /// `describe()` string used to be. Equality of shapes implies equality
    /// of hashes; the converse holds up to FNV collisions, so soundness-
    /// critical consumers (the bitmap cache) key on the full shape and use
    /// the hash only as a digest.
    pub fn structural_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(32);
        self.encode(&mut bytes);
        fnv1a(&bytes)
    }

    /// Canonical byte encoding: one tag byte per node, payload in
    /// little-endian, children length-prefixed.
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PredShape::IntRange { col, lo, hi } => {
                out.push(1);
                out.extend_from_slice(&(*col as u64).to_le_bytes());
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            PredShape::ValueEquals { col, value } => {
                out.push(2);
                out.extend_from_slice(&(*col as u64).to_le_bytes());
                out.extend_from_slice(&canonical_bytes(std::slice::from_ref(value)));
            }
            PredShape::RowHash {
                key,
                modulus,
                target,
                cols,
            } => {
                out.push(3);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&modulus.to_le_bytes());
                out.extend_from_slice(&target.to_le_bytes());
                out.extend_from_slice(&(cols.len() as u64).to_le_bytes());
                for &c in cols {
                    out.extend_from_slice(&(c as u64).to_le_bytes());
                }
            }
            PredShape::KeyedHash {
                key,
                modulus,
                target,
            } => {
                out.push(4);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&modulus.to_le_bytes());
                out.extend_from_slice(&target.to_le_bytes());
            }
            PredShape::BitExtract { bit, value } => {
                out.push(5);
                out.extend_from_slice(&(*bit as u64).to_le_bytes());
                out.push(u8::from(*value));
            }
            PredShape::Prefix { bits } => {
                out.push(6);
                out.extend_from_slice(&(bits.len() as u64).to_le_bytes());
                for &b in bits {
                    out.push(u8::from(b));
                }
            }
            PredShape::And(children) => {
                out.push(7);
                out.extend_from_slice(&(children.len() as u64).to_le_bytes());
                for c in children {
                    c.encode(out);
                }
            }
            PredShape::Or(children) => {
                out.push(8);
                out.extend_from_slice(&(children.len() as u64).to_le_bytes());
                for c in children {
                    c.encode(out);
                }
            }
            PredShape::Not(inner) => {
                out.push(9);
                inner.encode(out);
            }
            PredShape::Opaque { id } => {
                out.push(10);
                out.extend_from_slice(&id.to_le_bytes());
            }
            PredShape::Volatile => out.push(11),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_hash_distinguishes_payloads() {
        let a = PredShape::IntRange {
            col: 0,
            lo: 1,
            hi: 5,
        };
        let b = PredShape::IntRange {
            col: 0,
            lo: 1,
            hi: 6,
        };
        let c = PredShape::IntRange {
            col: 1,
            lo: 1,
            hi: 5,
        };
        assert_ne!(a.structural_hash(), b.structural_hash());
        assert_ne!(a.structural_hash(), c.structural_hash());
        assert_eq!(a.structural_hash(), a.clone().structural_hash());
    }

    #[test]
    fn combinator_hash_depends_on_structure() {
        let x = PredShape::BitExtract {
            bit: 0,
            value: true,
        };
        let y = PredShape::BitExtract {
            bit: 1,
            value: true,
        };
        let and = PredShape::And(vec![x.clone(), y.clone()]);
        let or = PredShape::Or(vec![x.clone(), y.clone()]);
        let swapped = PredShape::And(vec![y, x.clone()]);
        assert_ne!(and.structural_hash(), or.structural_hash());
        // Raw shapes are positional; canonicalization lives in the IR pool.
        assert_ne!(and.structural_hash(), swapped.structural_hash());
        assert_ne!(
            PredShape::Not(Box::new(x.clone())).structural_hash(),
            x.structural_hash()
        );
    }

    #[test]
    fn volatile_is_never_cache_stable() {
        assert!(!PredShape::Volatile.is_cache_stable());
        assert!(!PredShape::And(vec![
            PredShape::BitExtract {
                bit: 0,
                value: true
            },
            PredShape::Volatile
        ])
        .is_cache_stable());
        assert!(PredShape::Opaque { id: 7 }.is_cache_stable());
        assert!(PredShape::Not(Box::new(PredShape::Opaque { id: 7 })).is_cache_stable());
    }

    #[test]
    fn fully_structural_excludes_opaque_and_volatile() {
        assert!(PredShape::IntRange {
            col: 0,
            lo: 0,
            hi: 9
        }
        .is_fully_structural());
        assert!(!PredShape::Opaque { id: 3 }.is_fully_structural());
        assert!(!PredShape::Volatile.is_fully_structural());
        assert!(!PredShape::And(vec![
            PredShape::BitExtract {
                bit: 0,
                value: true
            },
            PredShape::Opaque { id: 1 },
        ])
        .is_fully_structural());
        assert!(
            PredShape::Not(Box::new(PredShape::Prefix { bits: vec![true] })).is_fully_structural()
        );
    }

    #[test]
    fn opaque_ids_are_unique() {
        let a = next_opaque_id();
        let b = next_opaque_id();
        assert_ne!(a, b);
    }
}
