//! Bitmap scan kernels — the one implementation of each atom's semantics.
//!
//! Every [`Atom`] of the IR has exactly one row-level and one columnar
//! (bitmap) evaluation, defined here. `so-query`'s typed predicates
//! (`IntRangePredicate`, `ValueEqualsPredicate`, `RowHashPredicate`, …)
//! delegate to these kernels, and [`crate::plan::QueryPlan`] executes
//! compiled workloads with them — so the linter, the single-query engine
//! path, and the batched planner can never disagree about what a predicate
//! selects.
//!
//! Atoms whose record type does not match return `None` rather than a wrong
//! answer: bit-string atoms ([`Atom::BitExtract`]) have no tabular
//! semantics, tabular atoms have no bit-string semantics, and
//! [`Atom::Opaque`] atoms are executable only through a registered closure
//! evaluator (see [`crate::workload::WorkloadSpec::push_predicate_arc`]).

use so_data::rng::keyed_hash;
use so_data::{BitVec, Dataset, SelectionVector, Value};

use crate::ir::Atom;
use crate::predicate::canonical_bytes;

/// Evaluates an atom on one row of a tabular dataset. `None` when the atom
/// has no tabular semantics ([`Atom::BitExtract`], [`Atom::Opaque`]).
pub fn eval_atom_row(atom: &Atom, ds: &Dataset, row: usize) -> Option<bool> {
    match atom {
        Atom::IntRange { col, lo, hi } => Some(
            ds.get(row, *col)
                .as_int()
                .is_some_and(|v| v >= *lo && v <= *hi),
        ),
        Atom::ValueEquals { col, value } => Some(ds.get(row, *col) == *value),
        Atom::RowHash {
            key,
            modulus,
            target,
            cols,
        } => {
            let vals: Vec<Value> = cols.iter().map(|&c| ds.get(row, c)).collect();
            Some(keyed_hash(*key, &canonical_bytes(&vals)) % *modulus == *target)
        }
        Atom::KeyedHash {
            key,
            modulus,
            target,
        } => {
            let vals: Vec<Value> = (0..ds.n_cols()).map(|c| ds.get(row, c)).collect();
            Some(keyed_hash(*key, &canonical_bytes(&vals)) % *modulus == *target)
        }
        Atom::BitExtract { .. } | Atom::Opaque { .. } => None,
    }
}

/// Evaluates an atom on one bit-string record. `None` when the atom has no
/// bit-string semantics (tabular and opaque atoms).
pub fn eval_atom_bits(atom: &Atom, record: &BitVec) -> Option<bool> {
    match atom {
        Atom::BitExtract { bit, value } => Some(record.get(*bit) == *value),
        Atom::KeyedHash {
            key,
            modulus,
            target,
        } => {
            let bytes: Vec<u8> = record
                .words()
                .iter()
                .flat_map(|w| w.to_le_bytes())
                .collect();
            Some(keyed_hash(*key, &bytes) % *modulus == *target)
        }
        _ => None,
    }
}

/// Compiles an atom into a selection bitmap over the rows of `ds` — the
/// columnar scan kernel. `None` when the atom has no tabular semantics.
///
/// Typed atoms evaluate on the dataset's storage engine: when the column
/// exposes a packed segment ([`Dataset::packed_column`]), `ValueEquals` and
/// `IntRange` compare dictionary / frame-of-reference codes directly on the
/// packed words; otherwise they read the uncompressed slice and pack 64
/// rows per word ([`SelectionVector::from_column`]). Both paths select
/// exactly the same rows — proptests pin the equivalence. Hash atoms walk
/// rows (the hash is inherently row-at-a-time) but still emit a packed
/// bitmap so downstream boolean combination stays word-parallel.
///
/// This full-range entry point also publishes the storage metrics
/// (`so_storage_packed_scans_total`, bytes gauges) — once per scan, so
/// serial plan execution and `so-query`'s single-predicate scans count
/// identically. The shard-local [`scan_atom_range`] records nothing;
/// sharded execution reports once per distinct merged atom instead.
pub fn scan_atom(atom: &Atom, ds: &Dataset) -> Option<SelectionVector> {
    let out = scan_atom_range(atom, ds, 0..ds.n_rows());
    if out.is_some() {
        crate::obs::record_packed_scan(atom, ds);
    }
    out
}

/// The shard-local form of [`scan_atom`]: the same kernel restricted to the
/// row range `rows`, emitting a bitmap of length `rows.len()` whose bit `i`
/// is row `rows.start + i`. `scan_atom` is this over `0..n_rows`, so the
/// serial and sharded execution paths cannot disagree — a shard-local bitmap
/// over a word-aligned range holds exactly the corresponding words of the
/// full-dataset bitmap.
///
/// # Panics
/// Panics if the range extends past the dataset.
pub fn scan_atom_range(
    atom: &Atom,
    ds: &Dataset,
    rows: std::ops::Range<usize>,
) -> Option<SelectionVector> {
    assert!(
        rows.start <= rows.end && rows.end <= ds.n_rows(),
        "row range {}..{} out of range {}",
        rows.start,
        rows.end,
        ds.n_rows()
    );
    let len = rows.len();
    match atom {
        Atom::IntRange { col, lo, hi } => {
            // Packed fast path: range-check frame-of-reference codes on the
            // packed words (missing rows carry an out-of-range reserved
            // code, so no mask pass is needed).
            if let Some(packed) = ds.packed_column(*col) {
                return Some(packed.scan_int_range(*lo, *hi, rows));
            }
            let column = ds.column(*col);
            Some(match column.int_values() {
                Some(vals) => SelectionVector::from_column(
                    &vals[rows.clone()],
                    &column.missing_mask()[rows],
                    |&v| v >= *lo && v <= *hi,
                ),
                // Non-Int column: as_int() is always None, nothing matches.
                None => SelectionVector::none(len),
            })
        }
        Atom::ValueEquals { col, value } => {
            // Packed fast path: one dictionary lookup, then a code-equality
            // sweep. Out-of-dictionary, wrong-type, and Missing targets all
            // keep exact Value semantics (see PackedColumn::code_for).
            if let Some(packed) = ds.packed_column(*col) {
                return Some(packed.scan_value_equals(value, rows));
            }
            Some(scan_value_equals(ds, *col, value, rows))
        }
        Atom::RowHash { .. } | Atom::KeyedHash { .. } => Some(SelectionVector::from_fn(len, |i| {
            eval_atom_row(atom, ds, rows.start + i).expect("hash atoms have tabular semantics")
        })),
        Atom::BitExtract { .. } | Atom::Opaque { .. } => None,
    }
}

/// Columnar exact-value kernel over a row range, one typed arm per
/// [`Value`] variant.
fn scan_value_equals(
    ds: &Dataset,
    col: usize,
    value: &Value,
    rows: std::ops::Range<usize>,
) -> SelectionVector {
    let column = ds.column(col);
    let missing = &column.missing_mask()[rows.clone()];
    let len = rows.len();
    match value {
        // `Missing == Missing` holds under Value's total order, so the
        // Missing target selects exactly the masked rows.
        Value::Missing => SelectionVector::from_fn(len, |i| missing[i]),
        Value::Int(x) => match column.int_values() {
            Some(vals) => SelectionVector::from_column(&vals[rows], missing, |v| v == x),
            None => SelectionVector::none(len),
        },
        // Value's float order is total_cmp, which separates -0.0 from
        // +0.0 and equates NaN with itself; mirror it bit-exactly.
        Value::Float(x) => match column.float_values() {
            Some(vals) => SelectionVector::from_column(&vals[rows], missing, |v| {
                v.total_cmp(x) == std::cmp::Ordering::Equal
            }),
            None => SelectionVector::none(len),
        },
        Value::Str(x) => match column.str_values() {
            Some(vals) => SelectionVector::from_column(&vals[rows], missing, |v| v == x),
            None => SelectionVector::none(len),
        },
        Value::Bool(x) => match column.bool_values() {
            Some(vals) => SelectionVector::from_column(&vals[rows], missing, |v| v == x),
            None => SelectionVector::none(len),
        },
        Value::Date(x) => match column.date_values() {
            Some(vals) => {
                let day = x.day_number();
                SelectionVector::from_column(&vals[rows], missing, |&v| v == day)
            }
            None => SelectionVector::none(len),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema};

    fn ds() -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("sex", DataType::Str, AttributeRole::QuasiIdentifier),
        ]);
        let mut b = DatasetBuilder::new(schema);
        let f = b.intern("F");
        let m = b.intern("M");
        for (age, sex) in [(30, f), (40, m), (50, f), (70, m), (90, f)] {
            b.push_row(vec![Value::Int(age), Value::Str(sex)]);
        }
        b.finish()
    }

    #[test]
    fn scan_matches_eval_row_for_every_tabular_atom() {
        let ds = ds();
        let f = ds.interner().get("F").unwrap();
        let atoms = [
            Atom::IntRange {
                col: 0,
                lo: 35,
                hi: 75,
            },
            Atom::ValueEquals {
                col: 1,
                value: Value::Str(f),
            },
            Atom::RowHash {
                key: 0xBEEF,
                modulus: 2,
                target: 0,
                cols: vec![0, 1],
            },
            Atom::KeyedHash {
                key: 0xCAFE,
                modulus: 3,
                target: 1,
            },
        ];
        for atom in &atoms {
            let bitmap = scan_atom(atom, &ds).expect("tabular atom scans");
            for row in 0..ds.n_rows() {
                assert_eq!(
                    Some(bitmap.get(row)),
                    eval_atom_row(atom, &ds, row),
                    "atom {atom:?} row {row}"
                );
            }
        }
    }

    #[test]
    fn bit_atoms_have_no_tabular_scan() {
        let ds = ds();
        assert!(scan_atom(
            &Atom::BitExtract {
                bit: 0,
                value: true
            },
            &ds
        )
        .is_none());
        assert!(scan_atom(&Atom::Opaque { id: 1 }, &ds).is_none());
    }

    #[test]
    fn range_scan_holds_the_aligned_words_of_the_full_scan() {
        // Build enough rows to straddle word boundaries, then check every
        // tabular atom kind: the shard-local bitmap over a word-aligned
        // range must equal the full bitmap's slice over the same rows.
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..150i64 {
            b.push_row(vec![Value::Int(i % 37)]);
        }
        let big = b.finish();
        let atoms = [
            Atom::IntRange {
                col: 0,
                lo: 5,
                hi: 20,
            },
            Atom::ValueEquals {
                col: 0,
                value: Value::Int(7),
            },
            Atom::KeyedHash {
                key: 0xCAFE,
                modulus: 3,
                target: 1,
            },
        ];
        for atom in &atoms {
            let full = scan_atom(atom, &big).expect("tabular");
            for (lo, hi) in [(0usize, 64usize), (64, 128), (128, 150), (0, 150), (64, 64)] {
                let part = scan_atom_range(atom, &big, lo..hi).expect("tabular");
                assert_eq!(part, full.slice_aligned(lo..hi), "atom {atom:?} {lo}..{hi}");
            }
        }
    }

    #[test]
    fn bit_extract_eval_bits() {
        let r = BitVec::from_bools(&[true, false, true]);
        assert_eq!(
            eval_atom_bits(
                &Atom::BitExtract {
                    bit: 1,
                    value: false
                },
                &r
            ),
            Some(true)
        );
        assert_eq!(
            eval_atom_bits(
                &Atom::IntRange {
                    col: 0,
                    lo: 0,
                    hi: 1
                },
                &r
            ),
            None
        );
    }
}
