//! The canonical predicate-algebra IR.
//!
//! Predicates arrive as behaviour (trait objects) with a structural
//! reflection ([`PredShape`]); this module gives them an *algebra*: every
//! distinct expression is interned exactly once in a [`PredPool`]
//! (hash-consing), so structural equality is id equality, and the smart
//! constructors canonicalize as they build —
//!
//! * flattening (`And(And(a,b),c)` → `And(a,b,c)`) and child sorting
//!   (commutativity),
//! * constant folding (`p ∧ false` → `false`, `p ∨ ¬p` → `true`, …),
//! * double-negation elimination, with [`PredPool::nnf`] pushing the
//!   remaining negations down to atoms,
//! * prefix expansion (`prefix == b₀b₁…` → `bit[0]==b₀ ∧ bit[1]==b₁ ∧ …`),
//!   which is what makes the Theorem 2.8 prefix-descent chains visible to
//!   the conjunct-refinement differencing lint.
//!
//! Every interned expression carries a *stable* structural hash (FNV-1a over
//! a canonical encoding, invariant across runs and processes) that replaces
//! the fragile `describe()` strings wherever a machine-facing predicate
//! identity is needed.
//!
//! Interning is children-first: a node's children are always interned before
//! the node itself, so `a.index() < b.index()` whenever `a` is a
//! subexpression of `b` — increasing-[`ExprId`] order is a valid bottom-up
//! evaluation order, which is what [`crate::plan::QueryPlan`] exploits.

use std::collections::HashMap;

use so_data::{BitVec, Dataset, Value};

use crate::kernels::{eval_atom_bits, eval_atom_row};
use crate::predicate::{canonical_bytes, RowPredicate};
use crate::shape::{fnv1a, next_opaque_id, PredShape};

/// Handle to an interned expression in a [`PredPool`]. Within one pool,
/// equal ids ⇔ structurally equal expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw pool index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> Self {
        ExprId(u32::try_from(i).expect("pool overflow"))
    }
}

/// An atomic predicate: carries its full payload, so two atoms are the same
/// test iff they are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// Integer range test `lo ≤ row[col] ≤ hi`.
    IntRange {
        /// Column index.
        col: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Exact-value test `row[col] == value`.
    ValueEquals {
        /// Column index.
        col: usize,
        /// Required value.
        value: Value,
    },
    /// Keyed-hash residue over selected columns (design weight `1/modulus`).
    RowHash {
        /// Hash key.
        key: u64,
        /// Residue modulus.
        modulus: u64,
        /// Accepted residue class.
        target: u64,
        /// Columns fed to the hash, in order.
        cols: Vec<usize>,
    },
    /// Keyed-hash residue over a whole record (design weight `1/modulus`).
    KeyedHash {
        /// Hash key.
        key: u64,
        /// Residue modulus.
        modulus: u64,
        /// Accepted residue class.
        target: u64,
    },
    /// Single-bit test over bit-string records (uniform weight `1/2`).
    BitExtract {
        /// Bit position.
        bit: usize,
        /// Required value.
        value: bool,
    },
    /// Opaque predicate known only by a unique identity — never equal to any
    /// other atom, weight unknown. Executable only when a closure evaluator
    /// is registered for the id (see
    /// [`crate::workload::WorkloadSpec::push_predicate_arc`]).
    Opaque {
        /// Stable unique identity.
        id: u64,
    },
}

/// One node of the interned predicate algebra.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredNode {
    /// The tautology (matches every record).
    True,
    /// The contradiction (matches nothing).
    False,
    /// An atomic test.
    Atom(Atom),
    /// Conjunction of children (flattened, sorted, deduplicated).
    And(Vec<ExprId>),
    /// Disjunction of children (flattened, sorted, deduplicated).
    Or(Vec<ExprId>),
    /// Negation of a child.
    Not(ExprId),
}

/// A hash-consing arena of predicate expressions.
///
/// All construction goes through the smart constructors ([`PredPool::and`],
/// [`PredPool::or`], [`PredPool::not`], [`PredPool::atom`], …), which
/// canonicalize and constant-fold, so a tautology is *the* id
/// [`PredPool::tru`] and a contradiction is *the* id [`PredPool::fals`] —
/// the tautology/contradiction lint is an id comparison.
pub struct PredPool {
    nodes: Vec<PredNode>,
    hashes: Vec<u64>,
    interned: HashMap<PredNode, ExprId>,
    true_id: ExprId,
    false_id: ExprId,
}

impl Default for PredPool {
    fn default() -> Self {
        Self::new()
    }
}

impl PredPool {
    /// Creates an empty pool (with the two constants pre-interned).
    pub fn new() -> Self {
        let mut pool = PredPool {
            nodes: Vec::new(),
            hashes: Vec::new(),
            interned: HashMap::new(),
            true_id: ExprId(0),
            false_id: ExprId(0),
        };
        pool.true_id = pool.intern(PredNode::True);
        pool.false_id = pool.intern(PredNode::False);
        pool
    }

    /// Number of distinct interned expressions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the pool holds only the two constants.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// The tautology id.
    pub fn tru(&self) -> ExprId {
        self.true_id
    }

    /// The contradiction id.
    pub fn fals(&self) -> ExprId {
        self.false_id
    }

    /// The node behind an id.
    pub fn node(&self, id: ExprId) -> &PredNode {
        &self.nodes[id.index()]
    }

    /// Stable structural hash of an expression: FNV-1a over a canonical
    /// encoding, identical across pools, runs, and processes for
    /// structurally equal expressions.
    pub fn structural_hash(&self, id: ExprId) -> u64 {
        self.hashes[id.index()]
    }

    fn intern(&mut self, node: PredNode) -> ExprId {
        if let Some(&id) = self.interned.get(&node) {
            return id;
        }
        let hash = self.compute_hash(&node);
        let id = ExprId(u32::try_from(self.nodes.len()).expect("pool overflow"));
        self.nodes.push(node.clone());
        self.hashes.push(hash);
        self.interned.insert(node, id);
        id
    }

    fn compute_hash(&self, node: &PredNode) -> u64 {
        let mut buf = Vec::with_capacity(32);
        match node {
            PredNode::True => buf.push(0),
            PredNode::False => buf.push(1),
            PredNode::Atom(a) => encode_atom(a, &mut buf),
            PredNode::And(children) | PredNode::Or(children) => {
                buf.push(if matches!(node, PredNode::And(_)) {
                    7
                } else {
                    8
                });
                buf.extend_from_slice(&(children.len() as u64).to_le_bytes());
                for &c in children {
                    buf.extend_from_slice(&self.hashes[c.index()].to_le_bytes());
                }
            }
            PredNode::Not(inner) => {
                buf.push(9);
                buf.extend_from_slice(&self.hashes[inner.index()].to_le_bytes());
            }
        }
        fnv1a(&buf)
    }

    /// Interns an atom.
    pub fn atom(&mut self, atom: Atom) -> ExprId {
        self.intern(PredNode::Atom(atom))
    }

    /// Canonical conjunction: flattens nested `And`s, drops `true`, folds to
    /// `false` on any `false` child or any `x ∧ ¬x` pair, deduplicates, and
    /// sorts children by structural hash. Zero children fold to `true`, one
    /// child to itself.
    pub fn and(&mut self, children: impl IntoIterator<Item = ExprId>) -> ExprId {
        let mut flat: Vec<ExprId> = Vec::new();
        for c in children {
            if c == self.false_id {
                return self.false_id;
            }
            if c == self.true_id {
                continue;
            }
            match self.node(c) {
                PredNode::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(c),
            }
        }
        self.finish_nary(flat, true)
    }

    /// Canonical disjunction (dual of [`PredPool::and`]): zero children fold
    /// to `false`, any `true` child or `x ∨ ¬x` pair folds to `true`.
    pub fn or(&mut self, children: impl IntoIterator<Item = ExprId>) -> ExprId {
        let mut flat: Vec<ExprId> = Vec::new();
        for c in children {
            if c == self.true_id {
                return self.true_id;
            }
            if c == self.false_id {
                continue;
            }
            match self.node(c) {
                PredNode::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(c),
            }
        }
        self.finish_nary(flat, false)
    }

    /// Shared tail of `and`/`or`: dedupe, sort canonically, detect
    /// complementary pairs, unwrap trivial arities.
    fn finish_nary(&mut self, mut flat: Vec<ExprId>, is_and: bool) -> ExprId {
        flat.sort_by_key(|c| (self.hashes[c.index()], *c));
        flat.dedup();
        // x together with ¬x collapses to the absorbing constant.
        let present: std::collections::HashSet<ExprId> = flat.iter().copied().collect();
        for &c in &flat {
            if let PredNode::Not(inner) = self.node(c) {
                if present.contains(inner) {
                    return if is_and { self.false_id } else { self.true_id };
                }
            }
        }
        match flat.len() {
            0 => {
                if is_and {
                    self.true_id
                } else {
                    self.false_id
                }
            }
            1 => flat[0],
            _ => self.intern(if is_and {
                PredNode::And(flat)
            } else {
                PredNode::Or(flat)
            }),
        }
    }

    /// Canonical negation: folds constants and double negation.
    pub fn not(&mut self, id: ExprId) -> ExprId {
        if id == self.true_id {
            return self.false_id;
        }
        if id == self.false_id {
            return self.true_id;
        }
        if let PredNode::Not(inner) = self.node(id) {
            return *inner;
        }
        self.intern(PredNode::Not(id))
    }

    /// Negation-normal form: pushes every negation down to the atoms
    /// (`¬(a ∧ b)` → `¬a ∨ ¬b`, `¬¬x` → `x`), re-canonicalizing on the way
    /// up. After NNF, a conjunction's structure is exactly its conjunct set,
    /// which is what the differencing lint compares.
    pub fn nnf(&mut self, id: ExprId) -> ExprId {
        self.nnf_signed(id, false)
    }

    fn nnf_signed(&mut self, id: ExprId, negated: bool) -> ExprId {
        match self.node(id).clone() {
            PredNode::True => {
                if negated {
                    self.false_id
                } else {
                    self.true_id
                }
            }
            PredNode::False => {
                if negated {
                    self.true_id
                } else {
                    self.false_id
                }
            }
            PredNode::Atom(_) => {
                if negated {
                    self.not(id)
                } else {
                    id
                }
            }
            PredNode::And(children) => {
                let mapped: Vec<ExprId> = children
                    .into_iter()
                    .map(|c| self.nnf_signed(c, negated))
                    .collect();
                if negated {
                    self.or(mapped)
                } else {
                    self.and(mapped)
                }
            }
            PredNode::Or(children) => {
                let mapped: Vec<ExprId> = children
                    .into_iter()
                    .map(|c| self.nnf_signed(c, negated))
                    .collect();
                if negated {
                    self.and(mapped)
                } else {
                    self.or(mapped)
                }
            }
            PredNode::Not(inner) => self.nnf_signed(inner, !negated),
        }
    }

    /// Lifts a structural reflection into the pool. Prefix atoms are
    /// expanded into conjunctions of bit tests; [`PredShape::Volatile`]
    /// shapes (structure unknown, identity unstable) become fresh opaque
    /// atoms — conservatively unequal to everything, including their own
    /// later lifts.
    pub fn lift(&mut self, shape: &PredShape) -> ExprId {
        match shape {
            PredShape::IntRange { col, lo, hi } => self.atom(Atom::IntRange {
                col: *col,
                lo: *lo,
                hi: *hi,
            }),
            PredShape::ValueEquals { col, value } => self.atom(Atom::ValueEquals {
                col: *col,
                value: *value,
            }),
            PredShape::RowHash {
                key,
                modulus,
                target,
                cols,
            } => self.atom(Atom::RowHash {
                key: *key,
                modulus: *modulus,
                target: *target,
                cols: cols.clone(),
            }),
            PredShape::KeyedHash {
                key,
                modulus,
                target,
            } => self.atom(Atom::KeyedHash {
                key: *key,
                modulus: *modulus,
                target: *target,
            }),
            PredShape::BitExtract { bit, value } => self.atom(Atom::BitExtract {
                bit: *bit,
                value: *value,
            }),
            PredShape::Prefix { bits } => {
                let atoms: Vec<ExprId> = bits
                    .iter()
                    .enumerate()
                    .map(|(bit, &value)| self.atom(Atom::BitExtract { bit, value }))
                    .collect();
                self.and(atoms)
            }
            PredShape::And(children) => {
                let ids: Vec<ExprId> = children.iter().map(|c| self.lift(c)).collect();
                self.and(ids)
            }
            PredShape::Or(children) => {
                let ids: Vec<ExprId> = children.iter().map(|c| self.lift(c)).collect();
                self.or(ids)
            }
            PredShape::Not(inner) => {
                let i = self.lift(inner);
                self.not(i)
            }
            PredShape::Opaque { id } => self.atom(Atom::Opaque { id: *id }),
            PredShape::Volatile => self.atom(Atom::Opaque {
                id: next_opaque_id(),
            }),
        }
    }

    /// Lifts a row predicate via its [`RowPredicate::shape`].
    pub fn lift_row_predicate(&mut self, p: &dyn RowPredicate) -> ExprId {
        let shape = p.shape();
        self.lift(&shape)
    }

    /// Re-interns an expression from another pool into this one, preserving
    /// structure (and therefore the stable structural hash). `memo` caches
    /// translations so shared subexpressions stay shared; reuse one memo map
    /// for a whole workload import. This is how the executing engine adopts
    /// the exact expressions a workload declared (and the linter saw) while
    /// keeping its own persistent cross-workload pool.
    pub fn import(
        &mut self,
        other: &PredPool,
        id: ExprId,
        memo: &mut HashMap<ExprId, ExprId>,
    ) -> ExprId {
        if let Some(&translated) = memo.get(&id) {
            return translated;
        }
        let translated = match other.node(id).clone() {
            PredNode::True => self.true_id,
            PredNode::False => self.false_id,
            PredNode::Atom(a) => self.atom(a),
            PredNode::And(children) => {
                let mapped: Vec<ExprId> = children
                    .iter()
                    .map(|&c| self.import(other, c, memo))
                    .collect();
                self.and(mapped)
            }
            PredNode::Or(children) => {
                let mapped: Vec<ExprId> = children
                    .iter()
                    .map(|&c| self.import(other, c, memo))
                    .collect();
                self.or(mapped)
            }
            PredNode::Not(inner) => {
                let mapped = self.import(other, inner, memo);
                self.not(mapped)
            }
        };
        memo.insert(id, translated);
        translated
    }

    /// The conjunct set of an expression: the children if it is a
    /// conjunction, else the expression itself. Meaningful on NNF'd ids.
    pub fn conjuncts(&self, id: ExprId) -> Vec<ExprId> {
        match self.node(id) {
            PredNode::And(children) => children.clone(),
            _ => vec![id],
        }
    }

    /// Every distinct atom [`ExprId`] reachable from `id`, in increasing id
    /// order (which is deterministic: interning order). The sign analyses of
    /// `so-analyze`'s query-matrix layer partition the record space on
    /// exactly this atom set.
    pub fn collect_atoms(&self, id: ExprId) -> Vec<ExprId> {
        let mut out = Vec::new();
        self.collect_atoms_into(id, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_atoms_into(&self, id: ExprId, out: &mut Vec<ExprId>) {
        match self.node(id) {
            PredNode::True | PredNode::False => {}
            PredNode::Atom(_) => out.push(id),
            PredNode::And(children) | PredNode::Or(children) => {
                for &c in children {
                    self.collect_atoms_into(c, out);
                }
            }
            PredNode::Not(inner) => self.collect_atoms_into(*inner, out),
        }
    }

    /// The atom payload behind an id, if the node is an atom.
    pub fn atom_payload(&self, id: ExprId) -> Option<&Atom> {
        match self.node(id) {
            PredNode::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// The *design* weight of an atom id, if it has one: bit tests are
    /// `1/2` under the uniform-bits model, keyed-hash residues `1/modulus`.
    /// Data-dependent atoms (ranges, value tests, opaque closures) have no
    /// design weight and return `None` — any bound derived from them must
    /// stay vacuous.
    pub fn atom_design_weight(&self, id: ExprId) -> Option<f64> {
        let (lo, hi) = self.weight_interval(id);
        (matches!(self.node(id), PredNode::Atom(_)) && lo == hi).then_some(hi)
    }

    /// Three-valued evaluation of an expression under a partial truth
    /// assignment to its atoms: `Ok(b)` when the assignment decides the
    /// expression, `Err(atom)` naming the first (in child order) blocking
    /// undetermined atom otherwise. `assign` returns `None` for atoms the
    /// assignment leaves open. This is the sign analysis the query-matrix
    /// cell refinement splits on: a cell is split on exactly the atom that
    /// blocks a query's membership from being decided.
    pub fn eval_signed(
        &self,
        id: ExprId,
        assign: &dyn Fn(ExprId) -> Option<bool>,
    ) -> Result<bool, ExprId> {
        match self.node(id) {
            PredNode::True => Ok(true),
            PredNode::False => Ok(false),
            PredNode::Atom(_) => assign(id).ok_or(id),
            PredNode::And(children) => self.eval_signed_nary(children, assign, true),
            PredNode::Or(children) => self.eval_signed_nary(children, assign, false),
            PredNode::Not(inner) => self.eval_signed(*inner, assign).map(|b| !b),
        }
    }

    /// Shared And/Or arm of [`PredPool::eval_signed`]: a decisive child
    /// (false for And, true for Or) wins even when siblings are
    /// undetermined; otherwise the first blocking atom is reported.
    fn eval_signed_nary(
        &self,
        children: &[ExprId],
        assign: &dyn Fn(ExprId) -> Option<bool>,
        strict_all: bool,
    ) -> Result<bool, ExprId> {
        let mut blocked: Option<ExprId> = None;
        for &c in children {
            match self.eval_signed(c, assign) {
                Ok(b) if b != strict_all => return Ok(b),
                Ok(_) => {}
                Err(atom) => {
                    blocked.get_or_insert(atom);
                }
            }
        }
        match blocked {
            Some(atom) => Err(atom),
            None => Ok(strict_all),
        }
    }

    /// True iff the expression contains an [`Atom::Opaque`] anywhere — i.e.
    /// it is executable only with a registered closure evaluator.
    pub fn contains_opaque(&self, id: ExprId) -> bool {
        match self.node(id) {
            PredNode::True | PredNode::False => false,
            PredNode::Atom(a) => matches!(a, Atom::Opaque { .. }),
            PredNode::And(children) | PredNode::Or(children) => {
                children.iter().any(|&c| self.contains_opaque(c))
            }
            PredNode::Not(inner) => self.contains_opaque(*inner),
        }
    }

    /// Evaluates an expression on one row of a tabular dataset. Returns
    /// `None` if the expression contains an atom that has no tabular
    /// semantics (bit-string atoms, opaque closures) *and* that atom's value
    /// is needed to decide the result.
    pub fn eval_row(&self, id: ExprId, ds: &Dataset, row: usize) -> Option<bool> {
        match self.node(id) {
            PredNode::True => Some(true),
            PredNode::False => Some(false),
            PredNode::Atom(a) => eval_atom_row(a, ds, row),
            PredNode::And(children) => {
                combine(children.iter().map(|&c| self.eval_row(c, ds, row)), true)
            }
            PredNode::Or(children) => {
                combine(children.iter().map(|&c| self.eval_row(c, ds, row)), false)
            }
            PredNode::Not(inner) => self.eval_row(*inner, ds, row).map(|b| !b),
        }
    }

    /// Evaluates an expression on one bit-string record. Returns `None` if
    /// an atom with no bit-string semantics is needed to decide the result.
    pub fn eval_bits(&self, id: ExprId, record: &BitVec) -> Option<bool> {
        match self.node(id) {
            PredNode::True => Some(true),
            PredNode::False => Some(false),
            PredNode::Atom(a) => eval_atom_bits(a, record),
            PredNode::And(children) => {
                combine(children.iter().map(|&c| self.eval_bits(c, record)), true)
            }
            PredNode::Or(children) => {
                combine(children.iter().map(|&c| self.eval_bits(c, record)), false)
            }
            PredNode::Not(inner) => self.eval_bits(*inner, record).map(|b| !b),
        }
    }

    /// Heuristic weight interval `[lo, hi]` of an expression under the
    /// product model: atoms with a *design* weight (bit tests `1/2` under
    /// the uniform-bits model, keyed-hash residues `1/modulus` by the
    /// Leftover Hash Lemma) contribute exactly, data-dependent atoms
    /// (ranges, value tests, opaque closures) contribute the vacuous
    /// `[0, 1]`, and conjunctions multiply as if independent — the same
    /// independence the paper's uniform-bit model grants the attack
    /// predicates. Lints treat the interval as evidence, not proof.
    pub fn weight_interval(&self, id: ExprId) -> (f64, f64) {
        match self.node(id) {
            PredNode::True => (1.0, 1.0),
            PredNode::False => (0.0, 0.0),
            PredNode::Atom(a) => match a {
                Atom::BitExtract { .. } => (0.5, 0.5),
                Atom::RowHash { modulus, .. } | Atom::KeyedHash { modulus, .. } => {
                    let w = 1.0 / (*modulus).max(1) as f64;
                    (w, w)
                }
                Atom::IntRange { lo, hi, .. } if lo > hi => (0.0, 0.0),
                Atom::IntRange { .. } | Atom::ValueEquals { .. } | Atom::Opaque { .. } => {
                    (0.0, 1.0)
                }
            },
            PredNode::And(children) => children.iter().fold((1.0, 1.0), |(lo, hi), &c| {
                let (clo, chi) = self.weight_interval(c);
                (lo * clo, hi * chi)
            }),
            PredNode::Or(children) => {
                let (mut lo, mut hi) = (0.0f64, 0.0f64);
                for &c in children {
                    let (clo, chi) = self.weight_interval(c);
                    lo = lo.max(clo);
                    hi += chi;
                }
                (lo, hi.min(1.0))
            }
            PredNode::Not(inner) => {
                let (lo, hi) = self.weight_interval(*inner);
                (1.0 - hi, 1.0 - lo)
            }
        }
    }

    /// Human-readable rendering for diagnostics.
    pub fn render(&self, id: ExprId) -> String {
        match self.node(id) {
            PredNode::True => "true".to_owned(),
            PredNode::False => "false".to_owned(),
            PredNode::Atom(a) => match a {
                Atom::IntRange { col, lo, hi } => format!("col{col} in [{lo}, {hi}]"),
                Atom::ValueEquals { col, value } => format!("col{col} == {value}"),
                Atom::RowHash {
                    key,
                    modulus,
                    target,
                    cols,
                } => format!("H_{key:#x}(cols {cols:?}) mod {modulus} == {target}"),
                Atom::KeyedHash {
                    key,
                    modulus,
                    target,
                } => format!("H_{key:#x}(record) mod {modulus} == {target}"),
                Atom::BitExtract { bit, value } => format!("bit[{bit}] == {}", u8::from(*value)),
                Atom::Opaque { id } => format!("<opaque #{id}>"),
            },
            PredNode::And(children) => {
                let parts: Vec<String> = children.iter().map(|&c| self.render(c)).collect();
                format!("({})", parts.join(" AND "))
            }
            PredNode::Or(children) => {
                let parts: Vec<String> = children.iter().map(|&c| self.render(c)).collect();
                format!("({})", parts.join(" OR "))
            }
            PredNode::Not(inner) => format!("NOT {}", self.render(*inner)),
        }
    }
}

/// Three-valued combine for And (`strict_all = true`) / Or (`false`):
/// a decisive child (false for And, true for Or) wins even when siblings
/// are unknown.
fn combine(results: impl Iterator<Item = Option<bool>>, strict_all: bool) -> Option<bool> {
    let mut saw_unknown = false;
    for r in results {
        match r {
            Some(b) if b != strict_all => return Some(b),
            Some(_) => {}
            None => saw_unknown = true,
        }
    }
    if saw_unknown {
        None
    } else {
        Some(strict_all)
    }
}

fn encode_atom(atom: &Atom, out: &mut Vec<u8>) {
    match atom {
        Atom::IntRange { col, lo, hi } => {
            out.push(16);
            out.extend_from_slice(&(*col as u64).to_le_bytes());
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        Atom::ValueEquals { col, value } => {
            out.push(17);
            out.extend_from_slice(&(*col as u64).to_le_bytes());
            out.extend_from_slice(&canonical_bytes(std::slice::from_ref(value)));
        }
        Atom::RowHash {
            key,
            modulus,
            target,
            cols,
        } => {
            out.push(18);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&modulus.to_le_bytes());
            out.extend_from_slice(&target.to_le_bytes());
            out.extend_from_slice(&(cols.len() as u64).to_le_bytes());
            for &c in cols {
                out.extend_from_slice(&(c as u64).to_le_bytes());
            }
        }
        Atom::KeyedHash {
            key,
            modulus,
            target,
        } => {
            out.push(19);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&modulus.to_le_bytes());
            out.extend_from_slice(&target.to_le_bytes());
        }
        Atom::BitExtract { bit, value } => {
            out.push(20);
            out.extend_from_slice(&(*bit as u64).to_le_bytes());
            out.push(u8::from(*value));
        }
        Atom::Opaque { id } => {
            out.push(21);
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bit(pool: &mut PredPool, b: usize, v: bool) -> ExprId {
        pool.atom(Atom::BitExtract { bit: b, value: v })
    }

    #[test]
    fn interning_dedupes_structurally() {
        let mut pool = PredPool::new();
        let a = bit(&mut pool, 0, true);
        let b = bit(&mut pool, 1, false);
        let left = pool.and([a, b]);
        let right = pool.and([b, a]);
        assert_eq!(left, right, "commutativity is canonicalized away");
        assert_eq!(
            pool.structural_hash(left),
            pool.structural_hash(right),
            "hashes agree"
        );
    }

    #[test]
    fn constant_folding() {
        let mut pool = PredPool::new();
        let a = bit(&mut pool, 0, true);
        let t = pool.tru();
        let f = pool.fals();
        assert_eq!(pool.and([a, f]), f);
        assert_eq!(pool.and([a, t]), a);
        assert_eq!(pool.or([a, t]), t);
        assert_eq!(pool.or([a, f]), a);
        assert_eq!(pool.and([]), t);
        assert_eq!(pool.or([]), f);
        let na = pool.not(a);
        assert_eq!(pool.and([a, na]), f, "x AND NOT x is false");
        assert_eq!(pool.or([a, na]), t, "x OR NOT x is true");
        assert_eq!(pool.not(na), a, "double negation");
    }

    #[test]
    fn nested_flattening() {
        let mut pool = PredPool::new();
        let a = bit(&mut pool, 0, true);
        let b = bit(&mut pool, 1, true);
        let c = bit(&mut pool, 2, true);
        let ab = pool.and([a, b]);
        let abc = pool.and([ab, c]);
        let flat = pool.and([a, b, c]);
        assert_eq!(abc, flat);
        assert_eq!(pool.conjuncts(abc).len(), 3);
    }

    #[test]
    fn nnf_pushes_negations_to_atoms() {
        let mut pool = PredPool::new();
        let a = bit(&mut pool, 0, true);
        let b = bit(&mut pool, 1, true);
        let ab = pool.and([a, b]);
        let neg = pool.not(ab);
        let nnf = pool.nnf(neg);
        // ¬(a ∧ b) = ¬a ∨ ¬b
        let na = pool.not(a);
        let nb = pool.not(b);
        let expected = pool.or([na, nb]);
        assert_eq!(nnf, expected);
        // NNF of an NNF is a fixpoint.
        assert_eq!(pool.nnf(nnf), nnf);
    }

    #[test]
    fn prefix_lifts_to_bit_conjunction() {
        let mut pool = PredPool::new();
        let lifted = pool.lift(&PredShape::Prefix {
            bits: vec![true, false],
        });
        let b0 = bit(&mut pool, 0, true);
        let b1 = bit(&mut pool, 1, false);
        let expected = pool.and([b0, b1]);
        assert_eq!(lifted, expected);
        // The empty prefix is the tautology.
        let empty = pool.lift(&PredShape::Prefix { bits: vec![] });
        assert_eq!(empty, pool.tru());
    }

    #[test]
    fn volatile_lifts_are_never_equal() {
        let mut pool = PredPool::new();
        let a = pool.lift(&PredShape::Volatile);
        let b = pool.lift(&PredShape::Volatile);
        assert_ne!(a, b);
    }

    #[test]
    fn weight_interval_product_model() {
        let mut pool = PredPool::new();
        let lifted = pool.lift(&PredShape::Prefix {
            bits: vec![true; 10],
        });
        let (lo, hi) = pool.weight_interval(lifted);
        assert!((lo - 2.0f64.powi(-10)).abs() < 1e-12);
        assert!((hi - 2.0f64.powi(-10)).abs() < 1e-12);
        let hash = pool.atom(Atom::KeyedHash {
            key: 1,
            modulus: 128,
            target: 0,
        });
        assert_eq!(pool.weight_interval(hash), (1.0 / 128.0, 1.0 / 128.0));
        let range = pool.atom(Atom::IntRange {
            col: 0,
            lo: 0,
            hi: 10,
        });
        assert_eq!(pool.weight_interval(range), (0.0, 1.0));
    }

    #[test]
    fn eval_bits_matches_prefix_semantics() {
        let mut pool = PredPool::new();
        let prefix = vec![true, false];
        let id = pool.lift(&PredShape::Prefix {
            bits: prefix.clone(),
        });
        for bools in [
            vec![true, false, true],
            vec![true, true, false],
            vec![false, false, false],
        ] {
            let r = BitVec::from_bools(&bools);
            let expected = prefix.iter().enumerate().all(|(i, &b)| r.get(i) == b);
            assert_eq!(pool.eval_bits(id, &r), Some(expected));
        }
    }

    #[test]
    fn structural_hash_is_stable_across_pools() {
        let shape = PredShape::And(vec![
            PredShape::BitExtract {
                bit: 3,
                value: true,
            },
            PredShape::KeyedHash {
                key: 0xfeed,
                modulus: 64,
                target: 5,
            },
        ]);
        let mut p1 = PredPool::new();
        let mut p2 = PredPool::new();
        // Warm p2 with unrelated junk so raw indices differ.
        for i in 0..5 {
            p2.atom(Atom::BitExtract {
                bit: 100 + i,
                value: false,
            });
        }
        let a = p1.lift(&shape);
        let b = p2.lift(&shape);
        assert_eq!(p1.structural_hash(a), p2.structural_hash(b));
    }

    #[test]
    fn import_preserves_structure_and_sharing() {
        let mut src = PredPool::new();
        let a = bit(&mut src, 0, true);
        let b = bit(&mut src, 1, false);
        let shared = src.and([a, b]);
        let nb = src.not(b);
        let second = src.and([shared, nb]); // folds: a ∧ b ∧ ¬b = false
        assert_eq!(second, src.fals());
        let tracker = src.not(shared);

        let mut dst = PredPool::new();
        // Warm dst so raw ids differ from src's.
        dst.atom(Atom::BitExtract {
            bit: 99,
            value: true,
        });
        let mut memo = HashMap::new();
        let shared_d = dst.import(&src, shared, &mut memo);
        let tracker_d = dst.import(&src, tracker, &mut memo);
        assert_eq!(
            dst.structural_hash(shared_d),
            src.structural_hash(shared),
            "import preserves the stable hash"
        );
        assert_eq!(dst.structural_hash(tracker_d), src.structural_hash(tracker));
        // The imported NOT shares its child with the imported conjunction.
        match dst.node(tracker_d) {
            PredNode::Not(inner) => assert_eq!(*inner, shared_d, "sharing survives import"),
            other => panic!("expected Not, got {other:?}"),
        }
        // Importing again is a no-op (hash-consing in the destination).
        let mut memo2 = HashMap::new();
        assert_eq!(dst.import(&src, shared, &mut memo2), shared_d);
    }

    #[test]
    fn collect_atoms_is_sorted_and_deduped() {
        let mut pool = PredPool::new();
        let a = bit(&mut pool, 0, true);
        let b = bit(&mut pool, 1, true);
        let na = pool.not(a);
        let e = pool.or([na, b]);
        let e2 = pool.and([a, e]);
        let atoms = pool.collect_atoms(e2);
        assert_eq!(atoms, vec![a, b], "a appears once despite two sites");
        assert!(pool.collect_atoms(pool.tru()).is_empty());
    }

    #[test]
    fn atom_design_weight_distinguishes_designed_from_data_dependent() {
        let mut pool = PredPool::new();
        let b = bit(&mut pool, 0, true);
        assert_eq!(pool.atom_design_weight(b), Some(0.5));
        let h = pool.atom(Atom::KeyedHash {
            key: 1,
            modulus: 64,
            target: 0,
        });
        assert_eq!(pool.atom_design_weight(h), Some(1.0 / 64.0));
        let r = pool.atom(Atom::IntRange {
            col: 0,
            lo: 0,
            hi: 9,
        });
        assert_eq!(pool.atom_design_weight(r), None, "data-dependent");
        let and = pool.and([b, h]);
        assert_eq!(pool.atom_design_weight(and), None, "not an atom");
    }

    #[test]
    fn eval_signed_reports_the_blocking_atom() {
        let mut pool = PredPool::new();
        let a = bit(&mut pool, 0, true);
        let b = bit(&mut pool, 1, true);
        let nb = pool.not(b);
        let e = pool.and([a, nb]);
        // A decisive false child wins even with b open.
        let decided = pool.eval_signed(e, &|id| (id == a).then_some(false));
        assert_eq!(decided, Ok(false));
        // a = true leaves ¬b blocking on atom b.
        let blocked = pool.eval_signed(e, &|id| (id == a).then_some(true));
        assert_eq!(blocked, Err(b));
        // Full assignment decides.
        let done = pool.eval_signed(e, &|_| Some(true));
        assert_eq!(done, Ok(false), "a ∧ ¬b with b=true is false");
    }

    #[test]
    fn contains_opaque_walks_the_tree() {
        let mut pool = PredPool::new();
        let structural = bit(&mut pool, 0, true);
        let opaque = pool.atom(Atom::Opaque { id: 42 });
        let mixed = pool.and([structural, opaque]);
        assert!(!pool.contains_opaque(structural));
        assert!(pool.contains_opaque(opaque));
        assert!(pool.contains_opaque(mixed));
        let not_mixed = pool.not(mixed);
        assert!(pool.contains_opaque(not_mixed));
    }
}
