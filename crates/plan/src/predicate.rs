//! Predicates `p : X → {0,1}` over records.
//!
//! The Article 29 Working Party defines singling out as "the possibility to
//! isolate some or all records which identify an individual in the dataset";
//! the paper formalizes the isolating object as a *predicate* on records
//! (Definition 2.1). Everything downstream — isolation, predicate weight,
//! the PSO game, workload planning — is parameterized by these traits. The
//! concrete typed predicates (range / value / keyed-hash tests and the
//! boolean combinators) live in `so-query`; the traits live here so that
//! [`crate::workload::WorkloadSpec`] can carry executable predicates and the
//! compilation pipeline stays below the engine.

use std::sync::Arc;

use so_data::{Dataset, SelectionVector, Value};

use crate::shape::PredShape;

/// A boolean predicate over records of type `R`.
pub trait Predicate<R: ?Sized>: Send + Sync {
    /// Evaluates the predicate on one record.
    fn eval(&self, record: &R) -> bool;

    /// Human-readable description (for audit logs and experiment output).
    fn describe(&self) -> String {
        "<predicate>".to_owned()
    }

    /// Structural form of the predicate (see [`PredShape`]). The default is
    /// [`PredShape::Volatile`] — structure unknown, never cached; typed
    /// predicates override it so caches and the static workload linter can
    /// reason about them.
    fn shape(&self) -> PredShape {
        PredShape::Volatile
    }
}

impl<R: ?Sized, P: Predicate<R> + ?Sized> Predicate<R> for &P {
    fn eval(&self, record: &R) -> bool {
        (**self).eval(record)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn shape(&self) -> PredShape {
        (**self).shape()
    }
}

impl<R: ?Sized, P: Predicate<R> + ?Sized> Predicate<R> for Arc<P> {
    fn eval(&self, record: &R) -> bool {
        (**self).eval(record)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn shape(&self) -> PredShape {
        (**self).shape()
    }
}

impl<R: ?Sized, P: Predicate<R> + ?Sized> Predicate<R> for Box<P> {
    fn eval(&self, record: &R) -> bool {
        (**self).eval(record)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn shape(&self) -> PredShape {
        (**self).shape()
    }
}

/// A predicate over rows of a tabular [`Dataset`], evaluated positionally so
/// implementations can avoid materializing rows.
pub trait RowPredicate: Send + Sync {
    /// Evaluates the predicate on row `row` of `ds`.
    fn eval_row(&self, ds: &Dataset, row: usize) -> bool;

    /// Evaluates the predicate over *every* row at once, returning a
    /// selection bitmap (bit `i` set iff row `i` matches).
    ///
    /// The default implementation is the row-at-a-time loop and serves as
    /// the reference oracle; typed predicates override it with columnar
    /// scan kernels that read one column slice and combine results with
    /// word-level boolean ops. Implementations must agree exactly with
    /// [`RowPredicate::eval_row`] on every row.
    fn scan(&self, ds: &Dataset) -> SelectionVector {
        SelectionVector::from_fn(ds.n_rows(), |row| self.eval_row(ds, row))
    }

    /// Human-readable description.
    fn describe(&self) -> String {
        "<row predicate>".to_owned()
    }

    /// Structural form of the predicate (see [`PredShape`]). The default is
    /// [`PredShape::Volatile`]: structure unknown and identity unstable, so
    /// the engine's bitmap cache will evaluate the predicate fresh on every
    /// query rather than risk returning another predicate's cached rows.
    /// Typed predicates override this; opaque closures should go through
    /// `so-query`'s `FnRowPredicate`, which carries a stable unique identity
    /// instead.
    fn shape(&self) -> PredShape {
        PredShape::Volatile
    }
}

impl<P: RowPredicate + ?Sized> RowPredicate for Arc<P> {
    fn eval_row(&self, ds: &Dataset, row: usize) -> bool {
        (**self).eval_row(ds, row)
    }

    fn scan(&self, ds: &Dataset) -> SelectionVector {
        (**self).scan(ds)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn shape(&self) -> PredShape {
        (**self).shape()
    }
}

/// Canonical byte encoding of a row for hashing: type tag + payload per cell.
pub fn canonical_bytes(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 9);
    for v in row {
        match v {
            Value::Int(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Float(x) => {
                out.push(2);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&s.index().to_le_bytes());
            }
            Value::Bool(b) => {
                out.push(4);
                out.push(u8::from(*b));
            }
            Value::Date(d) => {
                out.push(5);
                out.extend_from_slice(&d.day_number().to_le_bytes());
            }
            Value::Missing => out.push(0),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_bytes_injective_across_types() {
        // Int(1) and Bool(true) and Float(bits of 1) must encode differently.
        let a = canonical_bytes(&[Value::Int(1)]);
        let b = canonical_bytes(&[Value::Bool(true)]);
        let c = canonical_bytes(&[Value::Float(f64::from_bits(1))]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
