//! Bridge from the plan layer to the `so-obs` global registry.
//!
//! [`QueryPlan::execute`](crate::plan::QueryPlan::execute) and
//! [`ParallelExecutor::execute`](crate::parallel::ParallelExecutor::execute)
//! tally a local [`PlanStats`] per execution — the deterministic value
//! engines and transcripts consume — and *additionally* publish the same
//! counts here, so a `SO_METRICS` dump shows cumulative totals across the
//! whole process. [`registry_plan_stats`] reconstructs that cumulative view
//! as a [`PlanStats`], which is what lets a test assert registry parity with
//! locally tallied stats.
//!
//! Wall-clock data (the `*_micros` histograms) is export-only: it reaches
//! the `SO_METRICS` dump and `SO_TRACE` records, never a transcript.

use std::sync::OnceLock;

use so_data::Dataset;
use so_obs::{global, Counter, Gauge, Histogram};

use crate::ir::Atom;
use crate::plan::PlanStats;

/// Upper bounds (µs) for the execution / shard timing histograms.
const MICRO_BOUNDS: [f64; 8] = [
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
    100_000_000.0,
];

/// Cached handles to the plan-layer metrics in the [`so_obs::global`]
/// registry. Fetch once via [`plan_metrics`]; updates are lock-free.
#[derive(Debug)]
pub struct PlanMetrics {
    /// `so_plan_executions_total` — completed plan executions (serial or
    /// sharded; single-scan engine fast paths do not count).
    pub executions: Counter,
    /// `so_plan_queries_total` — workload queries presented to executions.
    pub queries: Counter,
    /// `so_plan_distinct_targets_total` — distinct target expressions after
    /// hash-consing, summed over executions.
    pub distinct_targets: Counter,
    /// `so_plan_nodes_evaluated_total` — IR nodes evaluated fresh (not
    /// served by a cache).
    pub nodes_evaluated: Counter,
    /// `so_plan_atom_scans_total` — dataset scans, the expensive part of
    /// every execution.
    pub atom_scans: Counter,
    /// `so_plan_cache_hits_total` — node lookups served by a
    /// [`NodeCache`](crate::plan::NodeCache).
    pub cache_hits: Counter,
    /// `so_plan_unanswerable_total` — queries with no tabular answer.
    pub unanswerable: Counter,
    /// `so_plan_execute_micros` — wall-clock per plan execution
    /// (export-only).
    pub execute_micros: Histogram,
    /// `so_plan_shard_micros` — wall-clock per shard worker pass
    /// (export-only).
    pub shard_micros: Histogram,
}

/// The plan layer's global metric handles, registered on first use.
pub fn plan_metrics() -> &'static PlanMetrics {
    static METRICS: OnceLock<PlanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        PlanMetrics {
            executions: r.counter("so_plan_executions_total"),
            queries: r.counter("so_plan_queries_total"),
            distinct_targets: r.counter("so_plan_distinct_targets_total"),
            nodes_evaluated: r.counter("so_plan_nodes_evaluated_total"),
            atom_scans: r.counter("so_plan_atom_scans_total"),
            cache_hits: r.counter("so_plan_cache_hits_total"),
            unanswerable: r.counter("so_plan_unanswerable_total"),
            execute_micros: r.histogram("so_plan_execute_micros", &MICRO_BOUNDS),
            shard_micros: r.histogram("so_plan_shard_micros", &MICRO_BOUNDS),
        }
    })
}

/// Cached handles to the storage-layer metrics: how often atom scans took
/// the packed fast path, and how many packed bytes those scans streamed
/// (versus the uncompressed bytes they *would* have streamed).
///
/// Both are recorded once per distinct atom evaluation — at the full-range
/// [`crate::kernels::scan_atom`] on serial paths and once per merged atom
/// node on sharded paths — never once per shard or morsel, so the totals
/// are identical at every thread count and under every schedule (the CI
/// determinism gate diffs metric dumps across `SO_THREADS` values).
#[derive(Debug)]
pub struct StorageMetrics {
    /// `so_storage_packed_scans_total` — atom scans served by a packed
    /// column segment.
    pub packed_scans: Counter,
    /// `so_storage_packed_scanned_bytes` — cumulative packed bytes those
    /// scans read (gauge, monotone by construction).
    pub packed_scanned_bytes: Gauge,
    /// `so_storage_oracle_bytes_avoided` — cumulative uncompressed bytes
    /// the same scans would have read through the oracle layout.
    pub oracle_bytes_avoided: Gauge,
}

/// The storage layer's global metric handles, registered on first use.
pub fn storage_metrics() -> &'static StorageMetrics {
    static METRICS: OnceLock<StorageMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        StorageMetrics {
            packed_scans: r.counter("so_storage_packed_scans_total"),
            packed_scanned_bytes: r.gauge("so_storage_packed_scanned_bytes"),
            oracle_bytes_avoided: r.gauge("so_storage_oracle_bytes_avoided"),
        }
    })
}

/// Publishes one packed-path atom scan, if `atom` reads a column that the
/// dataset exposes as a packed segment. Call exactly once per distinct atom
/// evaluation (not per shard) to keep metric dumps thread-count-invariant.
pub fn record_packed_scan(atom: &Atom, ds: &Dataset) {
    let col = match atom {
        Atom::IntRange { col, .. } | Atom::ValueEquals { col, .. } => *col,
        _ => return,
    };
    if let Some(packed) = ds.packed_column(col) {
        use so_data::ColumnSegment as _;
        let m = storage_metrics();
        m.packed_scans.inc();
        m.packed_scanned_bytes.add(packed.packed_bytes() as f64);
        m.oracle_bytes_avoided
            .add(ds.column(col).scan_bytes() as f64);
    }
}

/// Adds one execution's (or one engine fast path's) counters to the global
/// registry without touching the execution counter or timings. Used by
/// `so-query` for single-scan paths that bypass plan execution.
pub fn publish_stats(stats: &PlanStats) {
    let m = plan_metrics();
    m.queries.add(stats.queries as u64);
    m.distinct_targets.add(stats.distinct_targets as u64);
    m.nodes_evaluated.add(stats.nodes_evaluated as u64);
    m.atom_scans.add(stats.atom_scans as u64);
    m.cache_hits.add(stats.cache_hits as u64);
    m.unanswerable.add(stats.unanswerable as u64);
}

/// Publishes one completed plan execution: all [`PlanStats`] counters, the
/// execution counter, and the (export-only) wall-clock histogram.
pub fn record_execution(stats: &PlanStats, micros: u64) {
    publish_stats(stats);
    let m = plan_metrics();
    m.executions.inc();
    m.execute_micros.observe(micros as f64);
}

/// The cumulative [`PlanStats`] view over the global registry: what every
/// execution (and engine fast path) in this process published so far.
/// Counters that were never touched read as zero.
pub fn registry_plan_stats() -> PlanStats {
    let r = global();
    let get = |name: &str| r.counter_value(name).unwrap_or(0) as usize;
    PlanStats {
        queries: get("so_plan_queries_total"),
        distinct_targets: get("so_plan_distinct_targets_total"),
        nodes_evaluated: get("so_plan_nodes_evaluated_total"),
        atom_scans: get("so_plan_atom_scans_total"),
        cache_hits: get("so_plan_cache_hits_total"),
        unanswerable: get("so_plan_unanswerable_total"),
    }
}
