//! Bridge from the plan layer to the `so-obs` global registry.
//!
//! [`QueryPlan::execute`](crate::plan::QueryPlan::execute) and
//! [`ParallelExecutor::execute`](crate::parallel::ParallelExecutor::execute)
//! tally a local [`PlanStats`] per execution — the deterministic value
//! engines and transcripts consume — and *additionally* publish the same
//! counts here, so a `SO_METRICS` dump shows cumulative totals across the
//! whole process. [`registry_plan_stats`] reconstructs that cumulative view
//! as a [`PlanStats`], which is what lets a test assert registry parity with
//! locally tallied stats.
//!
//! Wall-clock data (the `*_micros` histograms) is export-only: it reaches
//! the `SO_METRICS` dump and `SO_TRACE` records, never a transcript.

use std::sync::OnceLock;

use so_obs::{global, Counter, Histogram};

use crate::plan::PlanStats;

/// Upper bounds (µs) for the execution / shard timing histograms.
const MICRO_BOUNDS: [f64; 8] = [
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
    100_000_000.0,
];

/// Cached handles to the plan-layer metrics in the [`so_obs::global`]
/// registry. Fetch once via [`plan_metrics`]; updates are lock-free.
#[derive(Debug)]
pub struct PlanMetrics {
    /// `so_plan_executions_total` — completed plan executions (serial or
    /// sharded; single-scan engine fast paths do not count).
    pub executions: Counter,
    /// `so_plan_queries_total` — workload queries presented to executions.
    pub queries: Counter,
    /// `so_plan_distinct_targets_total` — distinct target expressions after
    /// hash-consing, summed over executions.
    pub distinct_targets: Counter,
    /// `so_plan_nodes_evaluated_total` — IR nodes evaluated fresh (not
    /// served by a cache).
    pub nodes_evaluated: Counter,
    /// `so_plan_atom_scans_total` — dataset scans, the expensive part of
    /// every execution.
    pub atom_scans: Counter,
    /// `so_plan_cache_hits_total` — node lookups served by a
    /// [`NodeCache`](crate::plan::NodeCache).
    pub cache_hits: Counter,
    /// `so_plan_unanswerable_total` — queries with no tabular answer.
    pub unanswerable: Counter,
    /// `so_plan_execute_micros` — wall-clock per plan execution
    /// (export-only).
    pub execute_micros: Histogram,
    /// `so_plan_shard_micros` — wall-clock per shard worker pass
    /// (export-only).
    pub shard_micros: Histogram,
}

/// The plan layer's global metric handles, registered on first use.
pub fn plan_metrics() -> &'static PlanMetrics {
    static METRICS: OnceLock<PlanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        PlanMetrics {
            executions: r.counter("so_plan_executions_total"),
            queries: r.counter("so_plan_queries_total"),
            distinct_targets: r.counter("so_plan_distinct_targets_total"),
            nodes_evaluated: r.counter("so_plan_nodes_evaluated_total"),
            atom_scans: r.counter("so_plan_atom_scans_total"),
            cache_hits: r.counter("so_plan_cache_hits_total"),
            unanswerable: r.counter("so_plan_unanswerable_total"),
            execute_micros: r.histogram("so_plan_execute_micros", &MICRO_BOUNDS),
            shard_micros: r.histogram("so_plan_shard_micros", &MICRO_BOUNDS),
        }
    })
}

/// Adds one execution's (or one engine fast path's) counters to the global
/// registry without touching the execution counter or timings. Used by
/// `so-query` for single-scan paths that bypass plan execution.
pub fn publish_stats(stats: &PlanStats) {
    let m = plan_metrics();
    m.queries.add(stats.queries as u64);
    m.distinct_targets.add(stats.distinct_targets as u64);
    m.nodes_evaluated.add(stats.nodes_evaluated as u64);
    m.atom_scans.add(stats.atom_scans as u64);
    m.cache_hits.add(stats.cache_hits as u64);
    m.unanswerable.add(stats.unanswerable as u64);
}

/// Publishes one completed plan execution: all [`PlanStats`] counters, the
/// execution counter, and the (export-only) wall-clock histogram.
pub fn record_execution(stats: &PlanStats, micros: u64) {
    publish_stats(stats);
    let m = plan_metrics();
    m.executions.inc();
    m.execute_micros.observe(micros as f64);
}

/// The cumulative [`PlanStats`] view over the global registry: what every
/// execution (and engine fast path) in this process published so far.
/// Counters that were never touched read as zero.
pub fn registry_plan_stats() -> PlanStats {
    let r = global();
    let get = |name: &str| r.counter_value(name).unwrap_or(0) as usize;
    PlanStats {
        queries: get("so_plan_queries_total"),
        distinct_targets: get("so_plan_distinct_targets_total"),
        nodes_evaluated: get("so_plan_nodes_evaluated_total"),
        atom_scans: get("so_plan_atom_scans_total"),
        cache_hits: get("so_plan_cache_hits_total"),
        unanswerable: get("so_plan_unanswerable_total"),
    }
}
