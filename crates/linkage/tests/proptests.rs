//! Property-based tests for the linkage substrate.

use proptest::prelude::*;
use so_data::{AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value};
use so_linkage::quasi::{
    class_size_histogram, crowd_sizes, fraction_in_small_classes, uniqueness_fraction,
};
use so_linkage::sweeney::link_releases;

fn dataset(vals: &[i64]) -> Dataset {
    let schema = Schema::new(vec![AttributeDef::new(
        "qi",
        DataType::Int,
        AttributeRole::QuasiIdentifier,
    )]);
    let mut b = DatasetBuilder::new(schema);
    for &v in vals {
        b.push_row(vec![Value::Int(v)]);
    }
    b.finish()
}

fn identified(vals: &[i64]) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Int, AttributeRole::DirectIdentifier),
        AttributeDef::new("qi", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for (i, &v) in vals.iter().enumerate() {
        b.push_row(vec![Value::Int(i as i64), Value::Int(v)]);
    }
    b.finish()
}

proptest! {
    /// Uniqueness never increases when a row is duplicated.
    #[test]
    fn duplication_never_raises_uniqueness(vals in proptest::collection::vec(0i64..30, 1..60)) {
        let ds = dataset(&vals);
        let u1 = uniqueness_fraction(&ds, &[0]);
        let mut dup = vals.clone();
        dup.push(vals[0]);
        let u2 = uniqueness_fraction(&dataset(&dup), &[0]);
        prop_assert!(u2 <= u1 + 1e-12, "u1 {u1} u2 {u2}");
    }

    /// The class-size histogram accounts for every row; crowd sizes agree
    /// with it.
    #[test]
    fn histogram_and_crowds_consistent(vals in proptest::collection::vec(0i64..20, 0..60)) {
        let ds = dataset(&vals);
        let h = class_size_histogram(&ds, &[0]);
        prop_assert_eq!(h.iter().sum::<usize>(), vals.len());
        let crowds = crowd_sizes(&ds, &[0]);
        for (i, &c) in crowds.iter().enumerate() {
            // Row i's crowd equals the multiplicity of its value.
            let mult = vals.iter().filter(|&&v| v == vals[i]).count();
            prop_assert_eq!(c, mult);
        }
        // Small-class fractions are monotone in s.
        let f1 = fraction_in_small_classes(&ds, &[0], 1);
        let f2 = fraction_in_small_classes(&ds, &[0], 2);
        prop_assert!(f1 <= f2 + 1e-12);
    }

    /// Linkage on a one-to-one QI mapping links everything with perfect
    /// precision; links + unmatched + ambiguous partition the release.
    #[test]
    fn linkage_accounting(vals in proptest::collection::vec(0i64..40, 1..60)) {
        let released = dataset(&vals);
        let ident = identified(&vals);
        let out = link_releases(&released, &[0], &ident, &[1], 0);
        prop_assert_eq!(
            out.links.len() + out.unmatched + out.ambiguous,
            released.n_rows()
        );
        // Rows whose value is unique must be linked, and correctly.
        for (r, &v) in vals.iter().enumerate() {
            let mult = vals.iter().filter(|&&x| x == v).count();
            let linked = out.links.iter().find(|l| l.released_row == r);
            if mult == 1 {
                let l = linked.expect("unique value must link");
                prop_assert_eq!(l.claimed_id, r as i64);
            } else {
                prop_assert!(linked.is_none(), "ambiguous values must not link");
            }
        }
    }
}
