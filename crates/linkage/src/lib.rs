#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # so-linkage — re-identification and membership-inference attacks
//!
//! The attacks that "broke the promises" of redaction-based anonymization
//! (§1 of the paper):
//!
//! * [`quasi`] — quasi-identifier uniqueness analysis: Sweeney's crucial
//!   observation that ZIP × birth date × sex is unique for the vast majority
//!   of the population;
//! * [`sweeney`] — the GIC re-identification: link a de-identified medical
//!   release with an identified voter registry on the quasi-identifier
//!   triple;
//! * [`narayanan`] — the Netflix-Prize de-anonymization: score pseudonymous
//!   rating histories against a little noisy auxiliary knowledge and accept
//!   when the best match is eccentric enough;
//! * [`membership`] — Homer-style membership inference from exact aggregate
//!   marginals, with the DP defence for comparison.

pub mod membership;
pub mod narayanan;
pub mod quasi;
pub mod sweeney;

pub use membership::{
    auc, homer_statistic, membership_advantage, membership_score_samples, MembershipExperiment,
};
pub use narayanan::{deanonymize, NarayananConfig, ScoreboardOutcome};
pub use quasi::{class_size_histogram, uniqueness_fraction};
pub use sweeney::{link_releases, link_releases_bitmap, link_releases_planned, LinkageOutcome};
