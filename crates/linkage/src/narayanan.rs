//! Narayanan–Shmatikov sparse-data de-anonymization (the Netflix attack).
//!
//! The adversary knows a handful of a target's ratings — approximately,
//! with fuzzy dates (IMDb-style auxiliary information) — and scores every
//! pseudonymous history in the release:
//!
//! * each auxiliary rating that a candidate matches (same title, close
//!   rating, close date) contributes a weight inversely related to the
//!   title's popularity — matching an obscure title is far more identifying
//!   than matching a blockbuster;
//! * the best-scoring candidate is accepted only if it stands out from the
//!   field: the gap to the runner-up must exceed `eccentricity_threshold`
//!   standard deviations of the score distribution (NS08's eccentricity
//!   test), which keeps false positives low.

use so_data::ratings::{RatingEntry, RatingsData};

/// Attack parameters.
#[derive(Debug, Clone)]
pub struct NarayananConfig {
    /// Maximum allowed |rating difference| for a match.
    pub rating_tolerance: u8,
    /// Maximum allowed |date difference| in days for a match.
    pub date_tolerance_days: u32,
    /// Minimum `(best − runner_up) / σ(scores)` to claim a match.
    pub eccentricity_threshold: f64,
    /// Minimum number of auxiliary entries the winner must match. A single
    /// coincidental hit on a sparse scoreboard can look very "eccentric"
    /// (σ of a mostly-zero score vector is tiny); requiring two or more
    /// matched entries suppresses those false positives.
    pub min_matches: usize,
}

impl Default for NarayananConfig {
    fn default() -> Self {
        NarayananConfig {
            rating_tolerance: 1,
            date_tolerance_days: 14,
            eccentricity_threshold: 1.5,
            min_matches: 2,
        }
    }
}

/// The scoreboard verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreboardOutcome {
    /// A single candidate stood out.
    Match {
        /// Index of the matched user in the release.
        user: usize,
        /// Its score.
        score: f64,
        /// Eccentricity `(best − second) / σ`.
        eccentricity: f64,
    },
    /// No candidate was eccentric enough — the attacker abstains.
    NoMatch,
}

/// Runs the scoreboard against every user in `release` for one bundle of
/// auxiliary knowledge.
pub fn deanonymize(
    release: &RatingsData,
    aux: &[RatingEntry],
    config: &NarayananConfig,
) -> ScoreboardOutcome {
    if aux.is_empty() || release.n_users() == 0 {
        return ScoreboardOutcome::NoMatch;
    }
    // Title weights: 1 / log2(2 + support) — rare titles weigh more.
    let weights: Vec<f64> = aux
        .iter()
        .map(|e| 1.0 / (2.0 + release.title_support(e.title) as f64).log2())
        .collect();

    let mut scores = Vec::with_capacity(release.n_users());
    let mut match_counts = Vec::with_capacity(release.n_users());
    for u in 0..release.n_users() {
        let mut s = 0.0;
        let mut matched = 0usize;
        for (e, &w) in aux.iter().zip(&weights) {
            if let Some(cand) = release.rating_of(u, e.title) {
                let dr = i16::from(cand.rating).abs_diff(i16::from(e.rating));
                let dd = i64::from(cand.day).abs_diff(i64::from(e.day));
                if dr <= u16::from(config.rating_tolerance)
                    && dd <= u64::from(config.date_tolerance_days)
                {
                    s += w;
                    matched += 1;
                }
            }
        }
        scores.push(s);
        match_counts.push(matched);
    }

    // Best and runner-up.
    let (mut best_u, mut best, mut second) = (0usize, f64::NEG_INFINITY, f64::NEG_INFINITY);
    for (u, &s) in scores.iter().enumerate() {
        if s > best {
            second = best;
            best = s;
            best_u = u;
        } else if s > second {
            second = s;
        }
    }
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    let var = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    let sigma = var.sqrt();
    if sigma <= f64::EPSILON {
        return ScoreboardOutcome::NoMatch;
    }
    let eccentricity = (best - second) / sigma;
    if match_counts[best_u] >= config.min_matches && eccentricity >= config.eccentricity_threshold {
        ScoreboardOutcome::Match {
            user: best_u,
            score: best,
            eccentricity,
        }
    } else {
        ScoreboardOutcome::NoMatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::ratings::RatingsConfig;
    use so_data::rng::seeded_rng;

    fn release() -> RatingsData {
        RatingsData::generate(
            &RatingsConfig {
                n_users: 400,
                n_titles: 800,
                mean_ratings_per_user: 25,
                ..RatingsConfig::default()
            },
            &mut seeded_rng(60),
        )
    }

    #[test]
    fn eight_exact_ratings_identify_the_user() {
        let rel = release();
        let mut rng = seeded_rng(61);
        let mut hits = 0;
        let trials = 40;
        for target in 0..trials {
            let aux = rel.auxiliary_sample(target, 8, 0, &mut rng);
            if let ScoreboardOutcome::Match { user, .. } =
                deanonymize(&rel, &aux, &NarayananConfig::default())
            {
                if user == target {
                    hits += 1;
                }
            }
        }
        assert!(hits >= 35, "only {hits}/{trials} re-identified");
    }

    #[test]
    fn fuzzy_dates_still_work_within_tolerance() {
        let rel = release();
        let mut rng = seeded_rng(62);
        let mut hits = 0;
        let trials = 30;
        for target in 0..trials {
            let aux = rel.auxiliary_sample(target, 8, 10, &mut rng); // ±10 days
            if let ScoreboardOutcome::Match { user, .. } =
                deanonymize(&rel, &aux, &NarayananConfig::default())
            {
                if user == target {
                    hits += 1;
                }
            }
        }
        assert!(hits >= 22, "only {hits}/{trials} re-identified with fuzz");
    }

    #[test]
    fn garbage_aux_abstains_or_misses() {
        // Auxiliary info about a user NOT in the release: the attacker
        // should (almost always) abstain rather than confidently misattribute.
        let rel = release();
        let other = RatingsData::generate(
            &RatingsConfig {
                n_users: 30,
                n_titles: 800,
                mean_ratings_per_user: 25,
                ..RatingsConfig::default()
            },
            &mut seeded_rng(63),
        );
        let mut rng = seeded_rng(64);
        let mut confident_wrong = 0;
        for target in 0..30 {
            let aux = other.auxiliary_sample(target, 6, 3, &mut rng);
            if let ScoreboardOutcome::Match { eccentricity, .. } =
                deanonymize(&rel, &aux, &NarayananConfig::default())
            {
                // Matching is possible by chance; require it to be rare.
                let _ = eccentricity;
                confident_wrong += 1;
            }
        }
        assert!(confident_wrong <= 6, "{confident_wrong}/30 false matches");
    }

    #[test]
    fn empty_aux_is_no_match() {
        let rel = release();
        assert_eq!(
            deanonymize(&rel, &[], &NarayananConfig::default()),
            ScoreboardOutcome::NoMatch
        );
    }

    #[test]
    fn two_ratings_rarely_sufficient() {
        // With only k = 2 *noisy* ratings the matcher mostly abstains —
        // showing the "little partial knowledge" threshold. Exact dates make
        // even 2 ratings near-unique in a sparse release, so the weak
        // adversary here knows dates only to ±45 days, well past the 14-day
        // matching tolerance: with 2 entries, both surviving the tolerance
        // (required by `min_matches = 2`) is unlikely, while 8 noisy entries
        // still leave enough in-tolerance matches to re-identify.
        let rel = release();
        let fuzz = 45;
        let mut rng = seeded_rng(65);
        let mut matches = 0;
        for target in 0..30 {
            let aux = rel.auxiliary_sample(target, 2, fuzz, &mut rng);
            if matches!(
                deanonymize(&rel, &aux, &NarayananConfig::default()),
                ScoreboardOutcome::Match { .. }
            ) {
                matches += 1;
            }
        }
        let eight = {
            let mut m = 0;
            for target in 0..30 {
                let aux = rel.auxiliary_sample(target, 8, fuzz, &mut rng);
                if matches!(
                    deanonymize(&rel, &aux, &NarayananConfig::default()),
                    ScoreboardOutcome::Match { .. }
                ) {
                    m += 1;
                }
            }
            m
        };
        assert!(matches <= 15, "k=2 noisy aux matched {matches}/30");
        assert!(
            eight > matches,
            "more aux must help: k=8 {eight} vs k=2 {matches}"
        );
    }
}
