//! Membership inference from aggregate statistics (Homer et al. 2008,
//! Shokri et al. 2017 — references \[26\] and \[40\] of the paper).
//!
//! Setting: a study publishes the per-attribute means of its `n` members
//! over `d` binary attributes (SNP-style). The attacker holds a target's
//! attribute vector and the population ("reference") frequencies, and
//! computes Homer's statistic
//!
//! ```text
//!   D(t) = Σ_j ( |t_j − f_j| − |t_j − μ̂_j| )
//! ```
//!
//! Members drag each published mean `μ̂_j` slightly toward their own value,
//! so `D > τ` indicates membership. The decision threshold `τ` is
//! *calibrated to the null*: for a non-member, `D` is a sum of `d`
//! independent zero-mean terms `±(μ̂_j − f_j)`, so it is approximately
//! `N(0, σ²)` with `σ² = Σ_j Var(μ̂_j)`; we flag at `τ = z·σ` with
//! `z = 2.326` (a ≈1% false-positive rate). A fixed threshold of 0 would
//! pin the false-positive rate at ½ no matter how much signal there is —
//! the null is symmetric around 0 — capping the advantage at ½ forever.
//! More released attributes ⇒ more signal; DP noise on the means inflates
//! `σ` until the member shift drowns. This is the paper's "membership
//! attacks on aggregate genomic data" in executable form.

use rand::Rng;

use so_data::dist::{ProductBernoulli, RecordDistribution};
use so_data::{column_counts, BitVec};
use so_dp::sample_laplace;

/// Null quantile used to calibrate the decision threshold: `Φ(2.326) ≈
/// 0.99`, i.e. a non-member is flagged with probability ≈ 1%.
const NULL_Z: f64 = 2.326;

/// Homer's test statistic for a target `t` given reference frequencies `f`
/// and published study means `mu`.
///
/// # Panics
/// Panics on arity mismatch.
pub fn homer_statistic(target: &BitVec, reference: &[f64], study_means: &[f64]) -> f64 {
    assert_eq!(target.len(), reference.len(), "arity mismatch");
    assert_eq!(target.len(), study_means.len(), "arity mismatch");
    (0..target.len())
        .map(|j| {
            let t = f64::from(u8::from(target.get(j)));
            (t - reference[j]).abs() - (t - study_means[j]).abs()
        })
        .sum()
}

/// One full membership-inference experiment.
#[derive(Debug, Clone)]
pub struct MembershipExperiment {
    /// Number of study members.
    pub n_members: usize,
    /// Number of released attribute means.
    pub d_attributes: usize,
    /// Attribute frequency band (frequencies drawn uniformly in this range).
    pub freq_lo: f64,
    /// Upper end of the frequency band.
    pub freq_hi: f64,
    /// Number of member/non-member trials used to estimate the advantage.
    pub trials: usize,
    /// If `Some(ε)`, the study means are released via an ε-DP noisy
    /// histogram instead of exactly.
    pub dp_epsilon: Option<f64>,
}

impl Default for MembershipExperiment {
    fn default() -> Self {
        MembershipExperiment {
            n_members: 100,
            d_attributes: 1_000,
            freq_lo: 0.1,
            freq_hi: 0.9,
            trials: 100,
            dp_epsilon: None,
        }
    }
}

impl MembershipExperiment {
    /// The calibrated decision threshold `τ = z·σ_null` for one trial's
    /// reference frequencies.
    ///
    /// For a non-member target, each term of Homer's statistic is
    /// `±(μ̂_j − f_j)` with zero mean, so `Var(D) = Σ_j Var(μ̂_j)` where
    /// `Var(μ̂_j) = f_j(1−f_j)/n` for an exact release, plus the Laplace
    /// noise variance `2·(scale/n)²` per mean when the release is DP. The
    /// threshold is the ≈99th percentile of that null distribution, so the
    /// false-positive rate is ≈1% by construction and all remaining
    /// advantage comes from the member shift `Σ_j 2f_j(1−f_j)/n`.
    pub fn decision_threshold(&self, freqs: &[f64]) -> f64 {
        let n = self.n_members as f64;
        let mean_var: f64 = freqs.iter().map(|&f| f * (1.0 - f) / n).sum();
        let dp_var = match self.dp_epsilon {
            None => 0.0,
            Some(eps) => {
                let scale = 2.0 * self.d_attributes as f64 / eps;
                self.d_attributes as f64 * 2.0 * (scale / n).powi(2)
            }
        };
        NULL_Z * (mean_var + dp_var).sqrt()
    }
}

/// Result of [`membership_advantage`].
#[derive(Debug, Clone, Copy)]
pub struct MembershipResult {
    /// True-positive rate at the calibrated threshold (members flagged).
    pub true_positive_rate: f64,
    /// False-positive rate at the calibrated threshold (non-members
    /// flagged; ≈1% by construction).
    pub false_positive_rate: f64,
}

impl MembershipResult {
    /// The membership advantage `TPR − FPR` (0 = no information, 1 =
    /// perfect inference).
    pub fn advantage(&self) -> f64 {
        self.true_positive_rate - self.false_positive_rate
    }
}

/// Estimates the attacker's advantage by Monte Carlo: repeatedly draw a
/// study population, publish its means (exactly or with DP noise), and test
/// Homer's statistic on one member and one non-member against the
/// calibrated threshold [`MembershipExperiment::decision_threshold`].
pub fn membership_advantage<R: Rng + ?Sized>(
    exp: &MembershipExperiment,
    rng: &mut R,
) -> MembershipResult {
    assert!(exp.n_members > 0 && exp.d_attributes > 0 && exp.trials > 0);
    let mut tp = 0usize;
    let mut fp = 0usize;
    for _ in 0..exp.trials {
        // Fresh reference frequencies each trial.
        let freqs: Vec<f64> = (0..exp.d_attributes)
            .map(|_| rng.gen_range(exp.freq_lo..=exp.freq_hi))
            .collect();
        let dist = ProductBernoulli::new(freqs.clone());
        let members: Vec<BitVec> = dist.sample_n(exp.n_members, rng);
        // Published means, exact or DP. The per-attribute counts are the
        // word-parallel column popcounts of the member matrix.
        let counts = column_counts(&members, exp.d_attributes);
        let means: Vec<f64> = match exp.dp_epsilon {
            None => counts
                .iter()
                .map(|&c| c as f64 / exp.n_members as f64)
                .collect(),
            Some(eps) => {
                // The d attribute counts are NOT a disjoint histogram: one
                // member contributes to every attribute, so substituting one
                // record can change each of the d counts by 1 — L1
                // sensitivity 2d, hence per-count scale 2d/ε. (Releasing
                // them at histogram scale 2/ε would silently spend ε·d.)
                let scale = 2.0 * exp.d_attributes as f64 / eps;
                counts
                    .iter()
                    .map(|&c| (c as f64 + sample_laplace(scale, rng)) / exp.n_members as f64)
                    .collect()
            }
        };
        // One member probe, one non-member probe, against the calibrated
        // null threshold.
        let tau = exp.decision_threshold(&freqs);
        let member = &members[0];
        let outsider = dist.sample(rng);
        if homer_statistic(member, &freqs, &means) > tau {
            tp += 1;
        }
        if homer_statistic(&outsider, &freqs, &means) > tau {
            fp += 1;
        }
    }
    MembershipResult {
        true_positive_rate: tp as f64 / exp.trials as f64,
        false_positive_rate: fp as f64 / exp.trials as f64,
    }
}

/// Raw Homer-statistic samples for members and non-members, for
/// threshold-free evaluation (ROC / AUC) instead of the calibrated
/// single-threshold advantage.
pub fn membership_score_samples<R: Rng + ?Sized>(
    exp: &MembershipExperiment,
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    let mut member_scores = Vec::with_capacity(exp.trials);
    let mut outsider_scores = Vec::with_capacity(exp.trials);
    for _ in 0..exp.trials {
        let freqs: Vec<f64> = (0..exp.d_attributes)
            .map(|_| rng.gen_range(exp.freq_lo..=exp.freq_hi))
            .collect();
        let dist = ProductBernoulli::new(freqs.clone());
        let members: Vec<BitVec> = dist.sample_n(exp.n_members, rng);
        let means: Vec<f64> = column_counts(&members, exp.d_attributes)
            .into_iter()
            .map(|c| {
                let c = c as f64;
                match exp.dp_epsilon {
                    None => c / exp.n_members as f64,
                    Some(eps) => {
                        let scale = 2.0 * exp.d_attributes as f64 / eps;
                        (c + sample_laplace(scale, rng)) / exp.n_members as f64
                    }
                }
            })
            .collect();
        member_scores.push(homer_statistic(&members[0], &freqs, &means));
        outsider_scores.push(homer_statistic(&dist.sample(rng), &freqs, &means));
    }
    (member_scores, outsider_scores)
}

/// Area under the ROC curve for separating `positives` from `negatives`
/// (probability a random positive scores above a random negative, ties
/// counted half). 0.5 = no signal, 1.0 = perfect separation.
pub fn auc(positives: &[f64], negatives: &[f64]) -> f64 {
    assert!(
        !positives.is_empty() && !negatives.is_empty(),
        "need samples on both sides"
    );
    let mut wins = 0.0f64;
    for &p in positives {
        for &n in negatives {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (positives.len() * negatives.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::rng::seeded_rng;

    #[test]
    fn auc_extremes() {
        assert_eq!(auc(&[2.0, 3.0], &[0.0, 1.0]), 1.0);
        assert_eq!(auc(&[0.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(auc(&[1.0], &[1.0]), 0.5);
    }

    #[test]
    fn membership_auc_near_one_exact_near_half_under_dp() {
        let mut rng = seeded_rng(75);
        let exp = MembershipExperiment {
            d_attributes: 1_500,
            trials: 80,
            ..MembershipExperiment::default()
        };
        let (m, o) = membership_score_samples(&exp, &mut rng);
        let exact_auc = auc(&m, &o);
        assert!(exact_auc > 0.95, "exact AUC {exact_auc}");
        let dp_exp = MembershipExperiment {
            dp_epsilon: Some(1.0),
            ..exp
        };
        let (m, o) = membership_score_samples(&dp_exp, &mut rng);
        let dp_auc = auc(&m, &o);
        assert!(
            (dp_auc - 0.5).abs() < 0.15,
            "DP AUC should be near chance, got {dp_auc}"
        );
    }

    #[test]
    fn statistic_positive_for_members_in_expectation() {
        let exp = MembershipExperiment {
            n_members: 50,
            d_attributes: 2_000,
            trials: 60,
            ..MembershipExperiment::default()
        };
        let res = membership_advantage(&exp, &mut seeded_rng(70));
        assert!(
            res.true_positive_rate > 0.9,
            "TPR {}",
            res.true_positive_rate
        );
        assert!(
            res.false_positive_rate < 0.6,
            "FPR {}",
            res.false_positive_rate
        );
        assert!(res.advantage() > 0.4, "advantage {}", res.advantage());
    }

    #[test]
    fn advantage_grows_with_released_attributes() {
        let mut rng = seeded_rng(71);
        let small = membership_advantage(
            &MembershipExperiment {
                d_attributes: 20,
                trials: 150,
                ..MembershipExperiment::default()
            },
            &mut rng,
        );
        let large = membership_advantage(
            &MembershipExperiment {
                d_attributes: 3_000,
                trials: 150,
                ..MembershipExperiment::default()
            },
            &mut rng,
        );
        assert!(
            large.advantage() > small.advantage() + 0.1,
            "large {} vs small {}",
            large.advantage(),
            small.advantage()
        );
    }

    #[test]
    fn dp_noise_crushes_the_advantage() {
        let mut rng = seeded_rng(72);
        let exact = membership_advantage(
            &MembershipExperiment {
                d_attributes: 800,
                trials: 120,
                ..MembershipExperiment::default()
            },
            &mut rng,
        );
        let dp = membership_advantage(
            &MembershipExperiment {
                d_attributes: 800,
                trials: 120,
                dp_epsilon: Some(1.0),
                ..MembershipExperiment::default()
            },
            &mut rng,
        );
        assert!(
            dp.advantage() < exact.advantage() / 2.0,
            "dp {} vs exact {}",
            dp.advantage(),
            exact.advantage()
        );
    }

    #[test]
    fn statistic_is_zero_when_means_equal_reference() {
        let t = BitVec::from_bools(&[true, false, true]);
        let f = vec![0.5, 0.5, 0.5];
        assert_eq!(homer_statistic(&t, &f, &f), 0.0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let t = BitVec::zeros(2);
        homer_statistic(&t, &[0.5], &[0.5, 0.5]);
    }
}
