//! Sweeney-style record linkage.
//!
//! The GIC attack: the published medical data had names redacted but kept
//! ZIP, birth date, and sex; the Cambridge voter registration listed those
//! same attributes *with* names. Joining the two on the quasi-identifier
//! tuple re-identified the medical records. [`link_releases`] reproduces the
//! join; [`LinkageOutcome`] scores it against ground truth.

use std::collections::HashMap;

use so_data::{Dataset, SelectionVector, Value};

/// A claimed link: released row `released_row` belongs to the person
/// identified by `claimed_id` in the identified dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Row index in the de-identified release.
    pub released_row: usize,
    /// The identity claimed for it (value of the identified dataset's id
    /// column).
    pub claimed_id: i64,
}

/// Result of a linkage attack.
#[derive(Debug, Clone)]
pub struct LinkageOutcome {
    /// All claimed links (one per released row that matched exactly one
    /// identified record).
    pub links: Vec<Link>,
    /// Released rows matching no identified record.
    pub unmatched: usize,
    /// Released rows matching more than one identified record (ambiguous —
    /// the attacker abstains).
    pub ambiguous: usize,
}

impl LinkageOutcome {
    /// Fraction of released rows confidently linked.
    pub fn link_rate(&self, n_released: usize) -> f64 {
        if n_released == 0 {
            0.0
        } else {
            self.links.len() as f64 / n_released as f64
        }
    }

    /// Precision against ground truth: `truth[released_row]` is the true id
    /// of each released row (`None` if the person is genuinely absent from
    /// the identified dataset).
    pub fn precision(&self, truth: &[Option<i64>]) -> f64 {
        if self.links.is_empty() {
            return 1.0;
        }
        let correct = self
            .links
            .iter()
            .filter(|l| truth[l.released_row] == Some(l.claimed_id))
            .count();
        correct as f64 / self.links.len() as f64
    }

    /// Recall against ground truth: fraction of linkable released rows
    /// (those whose true identity is present) that were correctly linked.
    pub fn recall(&self, truth: &[Option<i64>]) -> f64 {
        let linkable = truth.iter().filter(|t| t.is_some()).count();
        if linkable == 0 {
            return 1.0;
        }
        let correct = self
            .links
            .iter()
            .filter(|l| truth[l.released_row] == Some(l.claimed_id))
            .count();
        correct as f64 / linkable as f64
    }
}

/// Joins a de-identified `released` dataset with an `identified` dataset on
/// equality of the given quasi-identifier columns. `released_qi[i]` pairs
/// with `identified_qi[i]`; `id_col` is the identity column of `identified`.
///
/// A released row is linked only when exactly one identified record carries
/// its QI tuple — the unique-match criterion of Sweeney's attack.
///
/// # Panics
/// Panics if the QI column lists have different lengths.
pub fn link_releases(
    released: &Dataset,
    released_qi: &[usize],
    identified: &Dataset,
    identified_qi: &[usize],
    id_col: usize,
) -> LinkageOutcome {
    assert_eq!(released_qi.len(), identified_qi.len(), "QI arity mismatch");
    // Index the identified dataset by QI tuple.
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for r in 0..identified.n_rows() {
        let key: Vec<Value> = identified_qi
            .iter()
            .map(|&c| identified.get(r, c))
            .collect();
        index.entry(key).or_default().push(r);
    }
    let mut links = Vec::new();
    let mut unmatched = 0usize;
    let mut ambiguous = 0usize;
    for r in 0..released.n_rows() {
        let key: Vec<Value> = released_qi.iter().map(|&c| released.get(r, c)).collect();
        match index.get(&key).map(Vec::as_slice) {
            None | Some([]) => unmatched += 1,
            Some([single]) => {
                let id = identified
                    .get(*single, id_col)
                    .as_int()
                    .expect("identity column must be Int");
                links.push(Link {
                    released_row: r,
                    claimed_id: id,
                });
            }
            Some(_) => ambiguous += 1,
        }
    }
    LinkageOutcome {
        links,
        unmatched,
        ambiguous,
    }
}

/// Word-parallel variant of [`link_releases`]: builds one bitmap index per
/// QI column (value → [`SelectionVector`] over identified rows), then
/// resolves each released row by intersecting its per-column bitmaps with
/// word-level ANDs. The index is built once and the per-row work is
/// `O(arity · n_identified / 64)` word operations with early exit on an
/// empty intersection.
///
/// Produces exactly the same [`LinkageOutcome`] as the hash join, which
/// remains the reference implementation (see the equivalence test).
///
/// # Panics
/// Panics if the QI column lists have different lengths.
pub fn link_releases_bitmap(
    released: &Dataset,
    released_qi: &[usize],
    identified: &Dataset,
    identified_qi: &[usize],
    id_col: usize,
) -> LinkageOutcome {
    assert_eq!(released_qi.len(), identified_qi.len(), "QI arity mismatch");
    let n_id = identified.n_rows();
    // Per-column bitmap index of the identified dataset.
    let index: Vec<HashMap<Value, SelectionVector>> = identified_qi
        .iter()
        .map(|&c| {
            let mut by_value: HashMap<Value, SelectionVector> = HashMap::new();
            for r in 0..n_id {
                by_value
                    .entry(identified.get(r, c))
                    .or_insert_with(|| SelectionVector::none(n_id))
                    .set(r, true);
            }
            by_value
        })
        .collect();
    let mut links = Vec::new();
    let mut unmatched = 0usize;
    let mut ambiguous = 0usize;
    for r in 0..released.n_rows() {
        let mut acc: Option<SelectionVector> = None;
        let mut dead = false;
        for (by_value, &c) in index.iter().zip(released_qi) {
            let Some(bitmap) = by_value.get(&released.get(r, c)) else {
                dead = true;
                break;
            };
            match &mut acc {
                None => acc = Some(bitmap.clone()),
                Some(a) => {
                    a.and_assign(bitmap);
                    if a.is_none() {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            unmatched += 1;
            continue;
        }
        // Zero QI columns ⇒ every identified row matches, as in the hash
        // join (whose empty key indexes the full dataset).
        let acc = acc.unwrap_or_else(|| SelectionVector::all(n_id));
        match acc.count() {
            0 => unmatched += 1,
            1 => {
                let row = acc.next_set_bit(0).expect("count is 1");
                let id = identified
                    .get(row, id_col)
                    .as_int()
                    .expect("identity column must be Int");
                links.push(Link {
                    released_row: r,
                    claimed_id: id,
                });
            }
            _ => ambiguous += 1,
        }
    }
    LinkageOutcome {
        links,
        unmatched,
        ambiguous,
    }
}

/// Workload-planned variant of [`link_releases`]: every released row's QI
/// tuple becomes one conjunction of [`so_plan::Atom::ValueEquals`] atoms in
/// a shared hash-consed [`so_plan::PredPool`], and the whole batch is
/// compiled into a single [`so_plan::QueryPlan`] over the identified
/// dataset.
///
/// The planner does the de-duplication the hash join does by hand: released
/// rows with equal QI tuples collapse to one target expression, each
/// distinct `(column, value)` atom is scanned exactly once, and every
/// intersection is a word-level AND of cached child bitmaps. A row's verdict
/// (unmatched / linked / ambiguous) is the popcount of its target bitmap.
///
/// Produces exactly the same [`LinkageOutcome`] as the hash join, which
/// remains the reference implementation (see the equivalence test).
///
/// # Panics
/// Panics if the QI column lists have different lengths.
pub fn link_releases_planned(
    released: &Dataset,
    released_qi: &[usize],
    identified: &Dataset,
    identified_qi: &[usize],
    id_col: usize,
) -> LinkageOutcome {
    use so_plan::{Atom, NodeCache, ParallelExecutor, PredPool, QueryPlan};

    assert_eq!(released_qi.len(), identified_qi.len(), "QI arity mismatch");
    let mut pool = PredPool::new();
    let targets: Vec<_> = (0..released.n_rows())
        .map(|r| {
            let atoms: Vec<_> = released_qi
                .iter()
                .zip(identified_qi)
                .map(|(&rc, &ic)| {
                    pool.atom(Atom::ValueEquals {
                        col: ic,
                        value: released.get(r, rc),
                    })
                })
                .collect();
            Some(pool.and(atoms))
        })
        .collect();
    let plan = QueryPlan::compile(&pool, targets);
    let mut cache = NodeCache::new();
    let no_evaluators = std::collections::HashMap::new();
    // Sharded execution (SO_THREADS override); bit-identical to serial.
    let _ =
        ParallelExecutor::from_env().execute(&plan, &pool, identified, &no_evaluators, &mut cache);

    let mut links = Vec::new();
    let mut unmatched = 0usize;
    let mut ambiguous = 0usize;
    for (r, target) in plan.targets().iter().enumerate() {
        let bitmap = &cache[&target.expect("every released row has a target")];
        match bitmap.count() {
            0 => unmatched += 1,
            1 => {
                let row = bitmap.next_set_bit(0).expect("count is 1");
                let id = identified
                    .get(row, id_col)
                    .as_int()
                    .expect("identity column must be Int");
                links.push(Link {
                    released_row: r,
                    claimed_id: id,
                });
            }
            _ => ambiguous += 1,
        }
    }
    LinkageOutcome {
        links,
        unmatched,
        ambiguous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::population::{Population, PopulationConfig};
    use so_data::rng::seeded_rng;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema};

    #[test]
    fn toy_join_links_unique_tuples() {
        let released_schema = Schema::new(vec![AttributeDef::new(
            "zip",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut rb = DatasetBuilder::new(released_schema);
        for z in [111, 222, 333, 444] {
            rb.push_row(vec![Value::Int(z)]);
        }
        let released = rb.finish();

        let id_schema = Schema::new(vec![
            AttributeDef::new("id", DataType::Int, AttributeRole::DirectIdentifier),
            AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
        ]);
        let mut ib = DatasetBuilder::new(id_schema);
        // 111 unique, 222 duplicated (ambiguous), 333 absent, 444 unique.
        for (id, z) in [(1, 111), (2, 222), (3, 222), (4, 444)] {
            ib.push_row(vec![Value::Int(id), Value::Int(z)]);
        }
        let identified = ib.finish();

        let out = link_releases(&released, &[0], &identified, &[1], 0);
        assert_eq!(out.links.len(), 2);
        assert_eq!(out.ambiguous, 1);
        assert_eq!(out.unmatched, 1);
        assert!(out.links.contains(&Link {
            released_row: 0,
            claimed_id: 1
        }));
        assert!(out.links.contains(&Link {
            released_row: 3,
            claimed_id: 4
        }));

        let truth = vec![Some(1), Some(2), None, Some(4)];
        assert_eq!(out.precision(&truth), 1.0);
        assert!((out.recall(&truth) - 2.0 / 3.0).abs() < 1e-12);

        // The bitmap-index join resolves the same links.
        let bm = link_releases_bitmap(&released, &[0], &identified, &[1], 0);
        assert_eq!(bm.links, out.links);
        assert_eq!(bm.unmatched, out.unmatched);
        assert_eq!(bm.ambiguous, out.ambiguous);

        // So does the workload-planned join.
        let pl = link_releases_planned(&released, &[0], &identified, &[1], 0);
        assert_eq!(pl.links, out.links);
        assert_eq!(pl.unmatched, out.unmatched);
        assert_eq!(pl.ambiguous, out.ambiguous);
    }

    #[test]
    fn gic_style_linkage_end_to_end() {
        // Population-scale: the medical release joins the voter registry on
        // (zip, birth_date, sex). With day-level dates the QI space dwarfs
        // n, so most voters are unique and precision is perfect (the join
        // only errs when a *different* person shares the full QI tuple).
        let cfg = PopulationConfig {
            n: 3_000,
            ..PopulationConfig::default()
        };
        let pop = Population::generate(&cfg, &mut seeded_rng(50));
        let med = pop.medical_release();
        let voters = pop.voter_registry();
        let (mz, md, ms) = (
            med.column_index("zip").unwrap(),
            med.column_index("birth_date").unwrap(),
            med.column_index("sex").unwrap(),
        );
        let (vz, vd, vs, vid) = (
            voters.column_index("zip").unwrap(),
            voters.column_index("birth_date").unwrap(),
            voters.column_index("sex").unwrap(),
            voters.column_index("person_id").unwrap(),
        );
        let out = link_releases(&med, &[mz, md, ms], &voters, &[vz, vd, vs], vid);
        // Ground truth: medical row i is master row i; their id is i; the
        // person is linkable iff they are in the voter registry.
        let in_voters: std::collections::HashSet<usize> =
            pop.voter_rows().iter().copied().collect();
        let truth: Vec<Option<i64>> = (0..med.n_rows())
            .map(|i| in_voters.contains(&i).then_some(i as i64))
            .collect();
        let precision = out.precision(&truth);
        let recall = out.recall(&truth);
        let rate = out.link_rate(med.n_rows());
        // The attack should link the majority of records near-perfectly.
        assert!(rate > 0.5, "link rate {rate}");
        assert!(precision > 0.97, "precision {precision}");
        assert!(recall > 0.9, "recall {recall}");

        // Hash join, bitmap-index join, and the workload-planned join agree
        // on every row at scale.
        let bm = link_releases_bitmap(&med, &[mz, md, ms], &voters, &[vz, vd, vs], vid);
        assert_eq!(bm.links, out.links);
        assert_eq!(bm.unmatched, out.unmatched);
        assert_eq!(bm.ambiguous, out.ambiguous);
        let pl = link_releases_planned(&med, &[mz, md, ms], &voters, &[vz, vd, vs], vid);
        assert_eq!(pl.links, out.links);
        assert_eq!(pl.unmatched, out.unmatched);
        assert_eq!(pl.ambiguous, out.ambiguous);
    }
}
