//! Quasi-identifier uniqueness analysis.
//!
//! "At the heart of Sweeney's re-identification attack was the crucial
//! observation that the seemingly innocuous combination of ZIP code, birth
//! date, and sex ... is unique for a vast majority of the US population."
//! These functions quantify that phenomenon on any dataset: how many rows
//! are unique (or in small crowds) under a given attribute combination.

use so_data::Dataset;

/// Fraction of rows whose value tuple over `cols` is unique in `ds`.
pub fn uniqueness_fraction(ds: &Dataset, cols: &[usize]) -> f64 {
    if ds.n_rows() == 0 {
        return 0.0;
    }
    let groups = ds.group_by(cols);
    let unique: usize = groups.values().filter(|rows| rows.len() == 1).count();
    unique as f64 / ds.n_rows() as f64
}

/// Histogram of equivalence-class sizes under `cols`: `result[s]` = number
/// of *rows* living in classes of size `s` (index 0 unused).
pub fn class_size_histogram(ds: &Dataset, cols: &[usize]) -> Vec<usize> {
    let groups = ds.group_by(cols);
    let max = groups.values().map(|r| r.len()).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for rows in groups.values() {
        hist[rows.len()] += rows.len();
    }
    hist
}

/// Fraction of rows in classes of size at most `s` (the "k-anonymity
/// deficit" at level s+1).
pub fn fraction_in_small_classes(ds: &Dataset, cols: &[usize], s: usize) -> f64 {
    if ds.n_rows() == 0 {
        return 0.0;
    }
    let groups = ds.group_by(cols);
    let small: usize = groups
        .values()
        .filter(|rows| rows.len() <= s)
        .map(|rows| rows.len())
        .sum();
    small as f64 / ds.n_rows() as f64
}

/// Per-row crowd size: `result[i]` = size of row `i`'s equivalence class
/// under `cols`.
pub fn crowd_sizes(ds: &Dataset, cols: &[usize]) -> Vec<usize> {
    let groups = ds.group_by(cols);
    let mut out = vec![0usize; ds.n_rows()];
    for rows in groups.values() {
        for &r in rows {
            out[r] = rows.len();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::{AttributeDef, AttributeRole, DataType, DatasetBuilder, Schema, Value};

    fn ds(vals: &[(i64, i64)]) -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new("a", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("b", DataType::Int, AttributeRole::QuasiIdentifier),
        ]);
        let mut b = DatasetBuilder::new(schema);
        for &(x, y) in vals {
            b.push_row(vec![Value::Int(x), Value::Int(y)]);
        }
        b.finish()
    }

    #[test]
    fn uniqueness_counts_single_rows() {
        let d = ds(&[(1, 1), (1, 1), (2, 2), (3, 3)]);
        assert!((uniqueness_fraction(&d, &[0, 1]) - 0.5).abs() < 1e-12);
        // Under only the first column, (1,*) pairs still collide.
        assert!((uniqueness_fraction(&d, &[0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn more_attributes_never_decrease_uniqueness() {
        let d = ds(&[(1, 1), (1, 2), (2, 1), (2, 1)]);
        let u1 = uniqueness_fraction(&d, &[0]);
        let u2 = uniqueness_fraction(&d, &[0, 1]);
        assert!(u2 >= u1, "u1 {u1} u2 {u2}");
    }

    #[test]
    fn histogram_accounts_for_every_row() {
        let d = ds(&[(1, 1), (1, 1), (2, 2), (3, 3), (3, 3), (3, 3)]);
        let h = class_size_histogram(&d, &[0, 1]);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[1], 1); // one singleton row: (2,2)
        assert_eq!(h[2], 2); // two rows in the (1,1) pair
        assert_eq!(h[3], 3); // three rows in the (3,3) triple
    }

    #[test]
    fn small_class_fraction() {
        let d = ds(&[(1, 1), (1, 1), (2, 2), (3, 3), (3, 3), (3, 3)]);
        assert!((fraction_in_small_classes(&d, &[0, 1], 1) - 1.0 / 6.0).abs() < 1e-12);
        assert!((fraction_in_small_classes(&d, &[0, 1], 2) - 0.5).abs() < 1e-12);
        assert!((fraction_in_small_classes(&d, &[0, 1], 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crowd_sizes_per_row() {
        let d = ds(&[(1, 1), (1, 1), (2, 2)]);
        assert_eq!(crowd_sizes(&d, &[0, 1]), vec![2, 2, 1]);
    }

    #[test]
    fn empty_dataset_edge_cases() {
        let d = ds(&[]);
        assert_eq!(uniqueness_fraction(&d, &[0]), 0.0);
        assert_eq!(fraction_in_small_classes(&d, &[0], 5), 0.0);
        assert!(class_size_histogram(&d, &[0]).iter().sum::<usize>() == 0);
    }
}
