//! Gatekeeper mode for the incremental engine: a persistent gate over a
//! mutable, versioned dataset.
//!
//! [`GatedEngine`](crate::gate::GatedEngine) lints one workload and owns one
//! immutable snapshot; an [`IncrementalGate`] instead *persists* across an
//! interleaving of mutations and workloads against one
//! [`IncrementalEngine`], and adds two continual-release defences:
//!
//! * **Lint memoization.** Linting is a pure function of the lint-relevant
//!   workload signature — the queries' structural hashes, their noise
//!   annotations, and the row count. When the same workload shape arrives
//!   again over an unchanged signature (the common case in continual
//!   release: the analyst's dashboard re-asks the same shapes after every
//!   batch of mutations, and mutations that keep `n_rows` fixed don't move
//!   the lints' atom partition), the memoized verdict is reused and
//!   [`lint_workload`] is skipped entirely (`so_gate_relint_skipped_total`).
//!   Inserts and deletes change the live row count, which changes the
//!   signature, which forces a fresh lint — the "re-lint only when the
//!   lint-relevant partition changed" rule falls out of keying the memo on
//!   exactly the inputs the lint passes read.
//! * **Continual-release budget.** With a [`ContinualAccountant`] attached,
//!   ε composes *across dataset versions*: the accountant advances to the
//!   engine's current version before each workload, every query must carry
//!   a [`Noise::PureDp`] cost (a non-DP release has unbounded privacy loss
//!   under composition, so it is refused outright), and the whole workload
//!   is refused — `[gate: SO-CBUDGET]` per query in the audit trail —
//!   whenever its basic-composition sum no longer fits the remaining
//!   (optionally windowed) budget.

use so_dp::ContinualAccountant;
use so_plan::PlanStats;
use so_query::engine::{WorkloadAnswer, WorkloadAnswers};
use so_query::incremental::IncrementalEngine;

use crate::lint::{lint_workload, LintConfig, LintReport, Severity};
use crate::workload::{Noise, QueryKind, WorkloadSpec};

use std::collections::BTreeMap;
use std::collections::HashMap;

use so_data::{MutationEffect, Value};

/// The lint-refusal code for continual-budget violations (not a static
/// lint: the verdict depends on accountant state, so it is enforced at
/// execution time, after the structural lints admit the workload).
pub const CBUDGET_CODE: &str = "SO-CBUDGET";

/// A persistent workload gate over an [`IncrementalEngine`], with lint
/// memoization and optional continual-release budget accounting.
pub struct IncrementalGate {
    engine: IncrementalEngine,
    cfg: LintConfig,
    accountant: Option<ContinualAccountant>,
    memo: HashMap<Vec<u8>, LintReport>,
    relints: usize,
    relints_skipped: usize,
}

impl IncrementalGate {
    /// Places `engine` behind the lint verdict of `cfg`, with no budget
    /// accounting (exact workloads admitted).
    pub fn new(engine: IncrementalEngine, cfg: LintConfig) -> Self {
        IncrementalGate {
            engine,
            cfg,
            accountant: None,
            memo: HashMap::new(),
            relints: 0,
            relints_skipped: 0,
        }
    }

    /// Additionally enforces a continual-release ε budget: the accountant
    /// composes across every dataset version this gate serves.
    pub fn with_accountant(
        engine: IncrementalEngine,
        cfg: LintConfig,
        accountant: ContinualAccountant,
    ) -> Self {
        let mut gate = Self::new(engine, cfg);
        gate.accountant = Some(accountant);
        gate
    }

    /// The underlying incremental engine.
    pub fn engine(&self) -> &IncrementalEngine {
        &self.engine
    }

    /// The continual accountant, if budget accounting is on.
    pub fn accountant(&self) -> Option<&ContinualAccountant> {
        self.accountant.as_ref()
    }

    /// Fresh [`lint_workload`] runs this gate has performed.
    pub fn relints(&self) -> usize {
        self.relints
    }

    /// Workloads whose verdict was served from the memo.
    pub fn relints_skipped(&self) -> usize {
        self.relints_skipped
    }

    /// Inserts rows through the gated engine (audited version bump).
    pub fn insert_rows(&mut self, rows: &[Vec<Value>]) -> MutationEffect {
        self.engine.insert_rows(rows)
    }

    /// Tombstones live rows through the gated engine (audited version
    /// bump).
    pub fn delete_live(&mut self, live: &[usize]) -> MutationEffect {
        self.engine.delete_live(live)
    }

    /// Lints (or recalls the memoized verdict for) `workload`, then either
    /// refuses it — per-query `[gate: CODE]` audit-trail entries, every
    /// answer [`WorkloadAnswer::Refused`] — or executes it through the
    /// incremental engine. With an accountant attached, admission further
    /// requires every query to be a `PureDp` release whose cumulative
    /// cross-version cost fits the remaining budget.
    pub fn execute(&mut self, mut workload: WorkloadSpec) -> WorkloadAnswers {
        let span = so_obs::span("gate.incremental_execute");
        let key = self.signature(&workload);
        let report = match self.memo.get(&key) {
            Some(r) => {
                self.relints_skipped += 1;
                crate::obs::gate_metrics().relint_skipped.inc();
                r.clone()
            }
            None => {
                self.relints += 1;
                let r = lint_workload(&mut workload, &self.cfg);
                self.memo.insert(key, r.clone());
                r
            }
        };
        let result = if report.denies() {
            self.refuse_by_lint(&workload, &report)
        } else {
            self.execute_admitted(&workload)
        };
        drop(span);
        result
    }

    /// The lint-relevant signature: row count, then per query the kind
    /// (subset mask words or target structural hash) and the noise
    /// annotation. Two workloads with equal signatures produce equal lint
    /// reports, because the lint passes read nothing else.
    fn signature(&self, workload: &WorkloadSpec) -> Vec<u8> {
        let mut key = Vec::with_capacity(16 + workload.len() * 17);
        key.extend_from_slice(&(workload.n_rows() as u64).to_le_bytes());
        for q in workload.queries() {
            match &q.kind {
                QueryKind::Pred(id) => {
                    key.push(1);
                    key.extend_from_slice(&workload.pool().structural_hash(*id).to_le_bytes());
                }
                QueryKind::Subset(mask) => {
                    key.push(2);
                    key.extend_from_slice(&(mask.len() as u64).to_le_bytes());
                    for w in mask.words() {
                        key.extend_from_slice(&w.to_le_bytes());
                    }
                }
            }
            match q.noise {
                Noise::Exact => key.push(10),
                Noise::Bounded { alpha } => {
                    key.push(11);
                    key.extend_from_slice(&alpha.to_bits().to_le_bytes());
                }
                Noise::PureDp { epsilon } => {
                    key.push(12);
                    key.extend_from_slice(&epsilon.to_bits().to_le_bytes());
                }
            }
        }
        key
    }

    /// The static-lint refusal path, mirroring
    /// [`GatedEngine::execute`](crate::gate::GatedEngine::execute): one
    /// trail entry per offending query index, tagged with the lint code
    /// and carrying the finding's evidence.
    fn refuse_by_lint(&mut self, workload: &WorkloadSpec, report: &LintReport) -> WorkloadAnswers {
        crate::obs::gate_metrics().workloads_refused.inc();
        let mut offending: BTreeMap<usize, &crate::lint::Finding> = BTreeMap::new();
        for f in report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
        {
            for &q in &f.queries {
                offending.entry(q).or_insert(f);
            }
        }
        let pool = workload.pool();
        for (&q, &finding) in &offending {
            let code = finding.lint.code();
            crate::obs::query_refusals(code).inc();
            let rendered = render_query(workload, q);
            let evidence = finding
                .evidence
                .as_ref()
                .filter(|ev| !ev.is_empty())
                .map(|ev| format!(" [{ev}]"))
                .unwrap_or_default();
            let _ = pool; // rendered above; keep borrow scoped
            self.engine
                .auditor_mut()
                .refuse_with(|| format!("[gate: {code}] query #{q}: {rendered}{evidence}"));
        }
        refused_answers(workload.len())
    }

    /// The admitted path: charge the continual budget (if any), then run
    /// the workload through the incremental engine.
    fn execute_admitted(&mut self, workload: &WorkloadSpec) -> WorkloadAnswers {
        if let Some(acct) = self.accountant.as_mut() {
            let version = self.engine.dataset().version();
            acct.advance_to(version);
            // Every query must be a DP release: a single exact (or merely
            // bounded-noise) answer has unbounded ε under composition.
            let non_dp: Vec<usize> = workload
                .queries()
                .iter()
                .enumerate()
                .filter(|(_, q)| !matches!(q.noise, Noise::PureDp { .. }))
                .map(|(i, _)| i)
                .collect();
            if !non_dp.is_empty() {
                crate::obs::gate_metrics().workloads_refused.inc();
                for q in non_dp {
                    crate::obs::query_refusals(CBUDGET_CODE).inc();
                    let rendered = render_query(workload, q);
                    self.engine.auditor_mut().refuse_with(|| {
                        format!(
                            "[gate: {CBUDGET_CODE}] query #{q}: {rendered} \
                             [non-DP release under continual accounting]"
                        )
                    });
                }
                return refused_answers(workload.len());
            }
            let costs: Vec<f64> = workload
                .queries()
                .iter()
                .map(|q| match q.noise {
                    Noise::PureDp { epsilon } => epsilon,
                    _ => unreachable!("non-DP queries refused above"),
                })
                .collect();
            let check = acct.precheck(&costs);
            if !check.admissible {
                crate::obs::gate_metrics().workloads_refused.inc();
                for q in 0..workload.len() {
                    crate::obs::query_refusals(CBUDGET_CODE).inc();
                    let rendered = render_query(workload, q);
                    let total = check.total;
                    let remaining = check.remaining;
                    self.engine.auditor_mut().refuse_with(|| {
                        format!(
                            "[gate: {CBUDGET_CODE}] query #{q}: {rendered} \
                             [workload ε {total:.4} > remaining {remaining:.4} at v{version}]"
                        )
                    });
                }
                return refused_answers(workload.len());
            }
            for &eps in &costs {
                let ok = acct.try_spend(eps);
                debug_assert!(ok, "precheck admitted the workload");
            }
        }
        self.engine.execute_workload(workload)
    }
}

fn render_query(workload: &WorkloadSpec, q: usize) -> String {
    match &workload.queries()[q].kind {
        QueryKind::Pred(id) => workload.pool().render(*id),
        QueryKind::Subset(m) => format!("subset(|q| = {})", m.count_ones()),
    }
}

fn refused_answers(n: usize) -> WorkloadAnswers {
    WorkloadAnswers {
        answers: vec![WorkloadAnswer::Refused; n],
        targets: vec![None; n],
        stats: PlanStats {
            queries: n,
            ..PlanStats::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_data::{
        AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, StorageEngine,
        VersionedDataset,
    };
    use so_plan::shape::PredShape;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("score", DataType::Int, AttributeRole::Sensitive),
        ])
    }

    fn base(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(schema());
        for i in 0..n {
            b.push_row(vec![
                Value::Int((i % 90) as i64),
                Value::Int((i % 25) as i64),
            ]);
        }
        b.finish_with_engine(StorageEngine::Packed)
    }

    fn engine(n: usize) -> IncrementalEngine {
        IncrementalEngine::new(
            VersionedDataset::with_compact_threshold(base(n), 1_000_000),
            None,
        )
    }

    fn benign_workload(n_rows: usize, noise: Noise) -> WorkloadSpec {
        let mut spec = WorkloadSpec::new(n_rows);
        spec.push_shape(
            &PredShape::IntRange {
                col: 0,
                lo: 10,
                hi: 40,
            },
            noise,
        );
        spec.push_shape(
            &PredShape::ValueEquals {
                col: 1,
                value: Value::Int(3),
            },
            noise,
        );
        spec
    }

    /// The hash-tracker differencing pair `A`, `A ∧ ¬H` with a 1/256
    /// residue — the shape the differencing lint denies.
    fn tracker_workload(n_rows: usize) -> WorkloadSpec {
        let mut spec = WorkloadSpec::new(n_rows);
        let wide = PredShape::IntRange {
            col: 0,
            lo: 0,
            hi: 1000,
        };
        let narrow = PredShape::And(vec![
            wide.clone(),
            PredShape::Not(Box::new(PredShape::RowHash {
                key: 0xBEEF,
                modulus: 256,
                target: 0,
                cols: vec![0],
            })),
        ]);
        spec.push_shape(&wide, Noise::Exact);
        spec.push_shape(&narrow, Noise::Exact);
        spec
    }

    #[test]
    fn memo_skips_relint_until_the_signature_changes() {
        let mut gate = IncrementalGate::new(engine(200), LintConfig::default());
        let w = gate.execute(benign_workload(200, Noise::Exact));
        assert!(w
            .answers
            .iter()
            .all(|a| matches!(a, WorkloadAnswer::Count(_))));
        assert_eq!((gate.relints(), gate.relints_skipped()), (1, 0));

        // Same shapes, same n_rows: memo hit.
        let w2 = gate.execute(benign_workload(200, Noise::Exact));
        assert_eq!(w.answers, w2.answers);
        assert_eq!((gate.relints(), gate.relints_skipped()), (1, 1));

        // A mutation changes the live count -> signature changes -> fresh
        // lint.
        gate.insert_rows(&[vec![Value::Int(20), Value::Int(3)]]);
        let n = gate.engine().dataset().n_live();
        gate.execute(benign_workload(n, Noise::Exact));
        assert_eq!((gate.relints(), gate.relints_skipped()), (2, 1));

        // Different noise on the same shapes is lint-relevant too.
        gate.execute(benign_workload(n, Noise::Bounded { alpha: 8.0 }));
        assert_eq!((gate.relints(), gate.relints_skipped()), (3, 1));

        // And the original signature still hits.
        gate.execute(benign_workload(n, Noise::Exact));
        assert_eq!((gate.relints(), gate.relints_skipped()), (3, 2));
    }

    #[test]
    fn memoized_verdicts_still_refuse() {
        let mut gate = IncrementalGate::new(engine(100), LintConfig::default());
        let w1 = gate.execute(tracker_workload(100));
        let w2 = gate.execute(tracker_workload(100));
        assert!(w1.answers.iter().all(|a| *a == WorkloadAnswer::Refused));
        assert_eq!(w1.answers, w2.answers);
        assert_eq!(gate.relints_skipped(), 1);
        let refusals = gate
            .engine()
            .auditor()
            .trail()
            .filter(|r| r.description.starts_with("[gate: "))
            .count();
        assert!(refusals >= 2, "both executions left refusal entries");
    }

    #[test]
    fn continual_budget_composes_across_versions_and_refuses() {
        let acct = ContinualAccountant::new(1.0);
        let mut gate = IncrementalGate::with_accountant(engine(150), LintConfig::default(), acct);
        let noise = Noise::PureDp { epsilon: 0.2 };

        // Workload of 2 x eps=0.2: fits (0.4 spent).
        let n = gate.engine().dataset().n_live();
        let w1 = gate.execute(benign_workload(n, noise));
        assert!(w1
            .answers
            .iter()
            .all(|a| matches!(a, WorkloadAnswer::Count(_))));

        // Mutate: new version, budget carries over.
        gate.insert_rows(&[vec![Value::Int(20), Value::Int(3)]]);
        let n = gate.engine().dataset().n_live();
        let w2 = gate.execute(benign_workload(n, noise));
        assert!(w2
            .answers
            .iter()
            .all(|a| matches!(a, WorkloadAnswer::Count(_))));
        let spent = gate.accountant().unwrap().spent();
        assert!((spent - 0.8).abs() < 1e-12, "0.8 across two versions");

        // Third workload would reach 1.2 > 1.0: refused whole.
        gate.insert_rows(&[vec![Value::Int(21), Value::Int(4)]]);
        let n = gate.engine().dataset().n_live();
        let w3 = gate.execute(benign_workload(n, noise));
        assert!(w3.answers.iter().all(|a| *a == WorkloadAnswer::Refused));
        let spent = gate.accountant().unwrap().spent();
        assert!((spent - 0.8).abs() < 1e-12, "refusal spends nothing");
        let cbudget_entries = gate
            .engine()
            .auditor()
            .trail()
            .filter(|r| r.description.contains("[gate: SO-CBUDGET]"))
            .count();
        assert_eq!(cbudget_entries, 2, "one refusal entry per query");
        assert_eq!(gate.accountant().unwrap().version(), 2);
    }

    #[test]
    fn non_dp_queries_are_refused_under_an_accountant() {
        let acct = ContinualAccountant::new(10.0);
        let mut gate = IncrementalGate::with_accountant(engine(100), LintConfig::default(), acct);
        let w = gate.execute(benign_workload(100, Noise::Exact));
        assert!(w.answers.iter().all(|a| *a == WorkloadAnswer::Refused));
        let entry = gate
            .engine()
            .auditor()
            .trail()
            .find(|r| r.description.contains("non-DP release"))
            .expect("refusal entry names the cause");
        assert!(entry.description.starts_with("[gate: SO-CBUDGET]"));
        assert!(
            gate.accountant().unwrap().spent() < 1e-12,
            "nothing spent on a refused workload"
        );
    }

    #[test]
    fn windowed_accountant_readmits_after_aging_out() {
        // Window of 1 version: each version gets the whole budget.
        let acct = ContinualAccountant::with_window(0.5, 1);
        let mut gate = IncrementalGate::with_accountant(engine(100), LintConfig::default(), acct);
        let noise = Noise::PureDp { epsilon: 0.2 };
        let n = gate.engine().dataset().n_live();
        let ok1 = gate.execute(benign_workload(n, noise));
        assert!(ok1
            .answers
            .iter()
            .all(|a| matches!(a, WorkloadAnswer::Count(_))));
        // Same version: a second 0.4 workload would exceed 0.5.
        let refused = gate.execute(benign_workload(n, noise));
        assert!(refused
            .answers
            .iter()
            .all(|a| *a == WorkloadAnswer::Refused));
        // New version: the old spend leaves the window.
        gate.insert_rows(&[vec![Value::Int(1), Value::Int(1)]]);
        let n = gate.engine().dataset().n_live();
        let ok2 = gate.execute(benign_workload(n, noise));
        assert!(ok2
            .answers
            .iter()
            .all(|a| matches!(a, WorkloadAnswer::Count(_))));
    }
}
