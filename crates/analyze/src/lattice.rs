//! Tracker-chain search over the subset lattice of cell sets.
//!
//! A *tracker* (Denning–Denning–Schwartz's individual tracker, generalized
//! here to the query-matrix setting) is a sequence of individually
//! innocuous admitted queries whose answers, combined by repeated
//! differencing, pin down a region small enough to single out a record:
//! whenever the cell set of one released quantity strictly contains
//! another's, their difference is a new derivable quantity — `count(D) −
//! count(Q) = count(D ∖ Q)` exactly when `Q ⊆ D` — and the derivation can
//! chain. This module runs a budgeted breadth-first search over those
//! derivable cell sets and reports every chain that reaches a nonempty
//! region whose design width is at most the isolation threshold. The
//! `SO-DIFF` lint is the two-query special case restricted to syntactic
//! mask/conjunct containment; the lattice search subsumes shapes it cannot
//! see, e.g. differences that only exist at the cell level because a query
//! was built with disjunctions.
//!
//! Error tracking: each step adds the contributing query's worst-case
//! answer error (`effective_alpha`), and chains whose accumulated bound
//! reaches 0.5 are pruned — a derived count that may be off by half a row
//! either way no longer certifies a unique individual, so noisy (DP)
//! releases break the chain exactly as the paper prescribes.

use std::collections::HashSet;

use crate::matrix::{bit_indices, get_bit, popcount, subset_of, QueryMatrix};

/// One derivation found by the search.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Matrix-row indices (positions in [`QueryMatrix::queries`]) of the
    /// contributing queries, in derivation order.
    pub rows: Vec<usize>,
    /// The derived region's cells.
    pub cells: Vec<usize>,
    /// Upper bound on the derived region's expected row count.
    pub width_hi: f64,
    /// Accumulated worst-case error of the derived count.
    pub err_bound: f64,
}

/// Search outcome: the chains found plus cost accounting.
#[derive(Debug, Default)]
pub struct TrackerSearch {
    /// Chains reaching a nonempty region of width ≤ threshold, in
    /// discovery (BFS) order.
    pub chains: Vec<Chain>,
    /// Set differences examined.
    pub combos_examined: usize,
    /// True iff the budget ran out before the frontier was exhausted.
    pub truncated: bool,
}

/// Accumulated error at which a chain stops certifying a unique record.
const ERR_CEILING: f64 = 0.5;

/// Breadth-first tracker-chain search over `matrix`.
///
/// * `threshold` — maximum design width of a reported region (the lint's
///   isolation threshold `t`).
/// * `budget` — maximum set differences to examine before giving up.
/// * `max_chain` — maximum queries per chain (bounds frontier depth).
/// * `max_found` — stop after this many chains (reporting cap).
pub fn search(
    matrix: &QueryMatrix,
    threshold: f64,
    budget: usize,
    max_chain: usize,
    max_found: usize,
) -> TrackerSearch {
    let mut out = TrackerSearch::default();
    let n_rows = matrix.rows.len();
    if n_rows < 2 || max_chain < 2 || max_found == 0 {
        return out;
    }
    // Rows eligible to contribute: finite error (DP rows never certify).
    let eligible: Vec<usize> = (0..n_rows)
        .filter(|&r| matrix.alphas[r].is_finite() && matrix.alphas[r] < ERR_CEILING)
        .collect();

    // The set membership test only — iteration never touches this, so the
    // search order (and therefore the report) is deterministic.
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    struct Node {
        cells: Vec<u64>,
        rows: Vec<usize>,
        err: f64,
    }
    let mut frontier: Vec<Node> = Vec::new();
    for &r in &eligible {
        visited.insert(matrix.rows[r].clone());
    }
    for &r in &eligible {
        frontier.push(Node {
            cells: matrix.rows[r].clone(),
            rows: vec![r],
            err: matrix.alphas[r],
        });
    }

    let mut head = 0usize;
    while head < frontier.len() {
        let node_cells = frontier[head].cells.clone();
        let node_rows = frontier[head].rows.clone();
        let node_err = frontier[head].err;
        head += 1;
        if node_rows.len() >= max_chain {
            continue;
        }
        for &r in &eligible {
            if node_rows.contains(&r) {
                continue;
            }
            if out.combos_examined >= budget {
                out.truncated = true;
                return out;
            }
            out.combos_examined += 1;
            let q = &matrix.rows[r];
            // Strict containment one way or the other yields a difference.
            let derived: Vec<u64> = if subset_of(q, &node_cells) {
                node_cells.iter().zip(q).map(|(a, b)| a & !b).collect()
            } else if subset_of(&node_cells, q) {
                q.iter().zip(&node_cells).map(|(a, b)| a & !b).collect()
            } else {
                continue;
            };
            if popcount(&derived) == 0 || visited.contains(&derived) {
                continue;
            }
            let err = node_err + matrix.alphas[r];
            if err >= ERR_CEILING {
                continue;
            }
            visited.insert(derived.clone());
            let mut rows = node_rows.clone();
            rows.push(r);
            let width_hi: f64 = (0..matrix.cells.len())
                .filter(|&c| get_bit(&derived, c))
                .map(|c| matrix.cells[c].width_hi)
                .sum();
            if width_hi <= threshold {
                out.chains.push(Chain {
                    rows: rows.clone(),
                    cells: bit_indices(&derived),
                    width_hi,
                    err_bound: err,
                });
                if out.chains.len() >= max_found {
                    return out;
                }
            }
            frontier.push(Node {
                cells: derived,
                rows,
                err,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{lower_subsets, Lowered, MatrixCaps};
    use crate::workload::{Noise, WorkloadSpec};
    use so_query::query::SubsetQuery;

    fn caps() -> MatrixCaps {
        MatrixCaps {
            max_cells: 1024,
            bit_budget: 1 << 23,
        }
    }

    fn matrix_of(w: &WorkloadSpec) -> QueryMatrix {
        match lower_subsets(w, 1.0, caps()) {
            Lowered::Built(m) => m,
            other => panic!("expected a matrix, got {other:?}"),
        }
    }

    #[test]
    fn classic_tracker_pair_is_found() {
        // Whole population minus a complement isolates one row.
        let mut w = WorkloadSpec::new(8);
        w.push_subset(
            &SubsetQuery::from_indices(8, &(0..8).collect::<Vec<_>>()),
            Noise::Exact,
        );
        w.push_subset(
            &SubsetQuery::from_indices(8, &(1..8).collect::<Vec<_>>()),
            Noise::Exact,
        );
        let m = matrix_of(&w);
        let found = search(&m, 1.0, 10_000, 8, 8);
        assert!(!found.truncated);
        assert_eq!(found.chains.len(), 1);
        assert_eq!(found.chains[0].rows, vec![0, 1]);
        assert!((found.chains[0].width_hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_step_chain_through_an_intermediate_difference() {
        // A = {0..5}, B = {4..7}, C = {4,5,6}: no pair is nested, but
        // (B ∖ (B∖A)) … via cells: B∖C = {7}? C ⊂ B so B∖C = {7}, that's a
        // pair. Use A={0,1,2,3}, B={2,3,4,5}, C={2,3,4}: C ⊂ B gives
        // B∖C={5}; chain len 2. For a genuine 3-chain: A={0,1,2,3},
        // B={0,1}, C={2}: A∖B={2,3}, then ∖C={3}.
        let mut w = WorkloadSpec::new(12);
        w.push_subset(&SubsetQuery::from_indices(12, &[0, 1, 2, 3]), Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(12, &[0, 1]), Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(12, &[2]), Noise::Exact);
        let m = matrix_of(&w);
        let found = search(&m, 1.0, 10_000, 8, 8);
        assert!(found
            .chains
            .iter()
            .any(|c| c.rows == vec![0, 1, 2] && (c.width_hi - 1.0).abs() < 1e-12));
    }

    #[test]
    fn noisy_rows_break_the_chain() {
        let mut w = WorkloadSpec::new(8);
        let all: Vec<usize> = (0..8).collect();
        w.push_subset(
            &SubsetQuery::from_indices(8, &all),
            Noise::Bounded { alpha: 0.3 },
        );
        w.push_subset(
            &SubsetQuery::from_indices(8, &(1..8).collect::<Vec<_>>()),
            Noise::Bounded { alpha: 0.3 },
        );
        let m = matrix_of(&w);
        // 0.3 + 0.3 ≥ 0.5: the derived count no longer certifies a record.
        assert!(search(&m, 1.0, 10_000, 8, 8).chains.is_empty());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut w = WorkloadSpec::new(16);
        for i in 0..8 {
            w.push_subset(
                &SubsetQuery::from_indices(16, &(0..=i).collect::<Vec<_>>()),
                Noise::Exact,
            );
        }
        let m = matrix_of(&w);
        let found = search(&m, 0.0, 3, 8, 8);
        assert!(found.truncated);
        assert_eq!(found.combos_examined, 3);
    }
}
