//! so-analyze observability: gate admission and linter-cost metrics
//! published to the `so-obs` global registry.
//!
//! Workload-level verdicts land in two plain counters; per-query refusals
//! are labeled by the lint code that flagged the query
//! (`so_gate_query_refusals_total{code=...}` — the code strings come from
//! [`crate::lint::LintId::code`]), so a metrics dump shows *which* attack
//! shapes the gate is actually stopping. Linter cost is visible too: pair
//! and set-difference counts as counters, wall clock in the export-only
//! `so_analyze_lint_micros` histogram (never a transcript).

use std::sync::OnceLock;

use so_obs::{global, Counter, Histogram};

use crate::lint::LintReport;

/// Cached handles to the gate-layer metrics in the [`so_obs::global`]
/// registry. Fetch once via [`gate_metrics`]; updates are lock-free.
#[derive(Debug)]
pub struct GateMetrics {
    /// `so_gate_workloads_admitted_total` — workloads the gate let through
    /// to execution.
    pub workloads_admitted: Counter,
    /// `so_gate_workloads_refused_total` — workloads refused before any
    /// query executed.
    pub workloads_refused: Counter,
    /// `so_gate_relint_skipped_total` — workloads whose lint verdict was
    /// served from the incremental gate's memo because the lint-relevant
    /// signature (structural hashes, noises, row count) was unchanged.
    pub relint_skipped: Counter,
}

/// The gate layer's global metric handles, registered on first use.
pub fn gate_metrics() -> &'static GateMetrics {
    static METRICS: OnceLock<GateMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        GateMetrics {
            workloads_admitted: r.counter("so_gate_workloads_admitted_total"),
            workloads_refused: r.counter("so_gate_workloads_refused_total"),
            relint_skipped: r.counter("so_gate_relint_skipped_total"),
        }
    })
}

/// The per-lint-code refusal counter
/// `so_gate_query_refusals_total{code=...}`. Looked up per call (refusal
/// paths are cold); one labeled counter exists per distinct code.
pub fn query_refusals(code: &str) -> Counter {
    global().counter_with("so_gate_query_refusals_total", &[("code", code)])
}

/// Upper bounds (µs) for the lint timing histogram.
const MICRO_BOUNDS: [f64; 8] = [
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
    100_000_000.0,
];

/// Cached handles to the linter-cost metrics. The quadratic-blowup guard
/// in the differencing pass and the budgeted lattice search both publish
/// here, so a `SO_METRICS` dump shows what the static analysis itself
/// costs.
#[derive(Debug)]
pub struct LintMetrics {
    /// `so_analyze_lint_runs_total` — complete [`crate::lint::lint_workload`]
    /// invocations.
    pub runs: Counter,
    /// `so_analyze_lint_pairs_examined_total` — candidate pairs the
    /// differencing pass examined after structural bucketing.
    pub pairs_examined: Counter,
    /// `so_analyze_lint_tracker_combos_total` — set differences the
    /// tracker-chain lattice search examined.
    pub tracker_combos: Counter,
    /// `so_analyze_lint_truncated_total` — runs that hit a pair budget,
    /// finding cap, or matrix cell cap.
    pub truncated: Counter,
    /// `so_analyze_lint_micros` — wall-clock per lint run (export-only:
    /// reaches `SO_METRICS` dumps, never findings or transcripts).
    pub lint_micros: Histogram,
}

/// The linter's global metric handles, registered on first use.
pub fn lint_metrics() -> &'static LintMetrics {
    static METRICS: OnceLock<LintMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        LintMetrics {
            runs: r.counter("so_analyze_lint_runs_total"),
            pairs_examined: r.counter("so_analyze_lint_pairs_examined_total"),
            tracker_combos: r.counter("so_analyze_lint_tracker_combos_total"),
            truncated: r.counter("so_analyze_lint_truncated_total"),
            lint_micros: r.histogram("so_analyze_lint_micros", &MICRO_BOUNDS),
        }
    })
}

/// Publishes one completed lint run: cost counters from the report plus the
/// (export-only) wall-clock histogram.
pub fn record_lint_run(report: &LintReport, micros: u64) {
    let m = lint_metrics();
    m.runs.inc();
    m.pairs_examined.add(report.pairs_examined as u64);
    m.tracker_combos.add(report.tracker_combos_examined as u64);
    if report.truncated {
        m.truncated.inc();
    }
    m.lint_micros.observe(micros as f64);
}
