//! so-analyze observability: gate admission metrics published to the
//! `so-obs` global registry.
//!
//! Workload-level verdicts land in two plain counters; per-query refusals
//! are labeled by the lint code that flagged the query
//! (`so_gate_query_refusals_total{code="SO-DIFF"}` etc.), so a metrics dump
//! shows *which* attack shapes the gate is actually stopping.

use std::sync::OnceLock;

use so_obs::{global, Counter};

/// Cached handles to the gate-layer metrics in the [`so_obs::global`]
/// registry. Fetch once via [`gate_metrics`]; updates are lock-free.
#[derive(Debug)]
pub struct GateMetrics {
    /// `so_gate_workloads_admitted_total` — workloads the gate let through
    /// to execution.
    pub workloads_admitted: Counter,
    /// `so_gate_workloads_refused_total` — workloads refused before any
    /// query executed.
    pub workloads_refused: Counter,
}

/// The gate layer's global metric handles, registered on first use.
pub fn gate_metrics() -> &'static GateMetrics {
    static METRICS: OnceLock<GateMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        GateMetrics {
            workloads_admitted: r.counter("so_gate_workloads_admitted_total"),
            workloads_refused: r.counter("so_gate_workloads_refused_total"),
        }
    })
}

/// The per-lint-code refusal counter
/// `so_gate_query_refusals_total{code=...}`. Looked up per call (refusal
/// paths are cold); one labeled counter exists per distinct code.
pub fn query_refusals(code: &str) -> Counter {
    global().counter_with("so_gate_query_refusals_total", &[("code", code)])
}
