#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # so-analyze — static predicate-algebra IR and workload linter
//!
//! The paper's central observation is that singling-out risk is a property
//! of the *query workload*, not of any single answer: Dinur–Nissim
//! reconstruction (Theorem 1.1) and the differencing / composition attacks
//! (Theorems 2.7–2.10) are all recognizable in the structure of the queries
//! alone, before a single count is released. This crate makes that
//! recognition a first-class, pre-execution subsystem:
//!
//! * [`ir`] — a canonical predicate-algebra IR: `RowPredicate` trees are
//!   lifted into an interned [`ir::PredPool`] with constant folding, NNF
//!   normalization, and a stable structural hash that replaces fragile
//!   `describe()` strings;
//! * [`workload`] — [`workload::WorkloadSpec`], the declared plan of a
//!   workload (queries plus noise annotations), the object the lints run
//!   over;
//! * [`lint`] — the static passes: differencing / tracker detection,
//!   Dinur–Nissim reconstruction density, ε-budget precheck against the
//!   `so-dp` accountant, and tautology/contradiction/duplicate hygiene;
//! * [`gate`] — [`gate::GatedEngine`], a gatekeeper-mode
//!   [`so_query::CountingEngine`] that refuses a statically flagged
//!   workload before answering any query, with the lint verdict recorded in
//!   the audit trail as a citable reason.

pub mod gate;
pub mod ir;
pub mod lint;
pub mod workload;

pub use gate::GatedEngine;
pub use ir::{Atom, ExprId, PredNode, PredPool};
pub use lint::{
    lint_workload, lint_workload_default, Finding, LintConfig, LintId, LintReport, Severity,
};
pub use workload::{Noise, QueryKind, QuerySpec, WorkloadSpec};
