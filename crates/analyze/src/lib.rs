#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # so-analyze — pre-execution workload linter
//!
//! The paper's central observation is that singling-out risk is a property
//! of the *query workload*, not of any single answer: Dinur–Nissim
//! reconstruction (Theorem 1.1) and the differencing / composition attacks
//! (Theorems 2.7–2.10) are all recognizable in the structure of the queries
//! alone, before a single count is released. This crate makes that
//! recognition a first-class, pre-execution subsystem:
//!
//! * the predicate-algebra IR and workload declarations come from
//!   [`so_plan`] (re-exported here as [`ir`] and [`workload`]) — the *same*
//!   hash-consed [`ir::PredPool`] the `so-query` execution engine compiles
//!   bitmaps from, so the expressions the lints reason about are literally
//!   the expressions that run;
//! * [`matrix`] — the query-matrix abstraction: the workload lowered to an
//!   abstract 0/1 matrix over atom-partition cells (NNF/sign analysis on
//!   `ExprId`s, no data access), with GF(2)/rational structural-rank
//!   estimation and a row-span solver;
//! * [`lattice`] — budgeted tracker-chain search over the subset lattice of
//!   derivable cell sets;
//! * [`lint`] — the static passes: differencing / tracker detection, the
//!   matrix-rank (`SO-LINREC`), tracker-chain (`SO-TRACKER`) and
//!   cell-isolation (`SO-COVER`) passes, Dinur–Nissim reconstruction
//!   density, ε-budget precheck against the `so-dp` accountant, and
//!   tautology/contradiction/duplicate hygiene;
//! * [`gate`] — [`gate::GatedEngine`], a gatekeeper-mode
//!   [`so_query::CountingEngine`] that lints the declared workload at
//!   construction and then either refuses it (one citable refusal per
//!   offending query in the audit trail, with the finding's evidence
//!   payload) or executes the identical plan via the whole-workload
//!   planner.

pub mod gate;
pub mod incremental;
pub mod lattice;
pub mod lint;
pub mod matrix;
pub mod obs;

// The IR and workload-spec modules moved down into `so-plan` so the linter
// and the execution engine share one definition; the historical
// `so_analyze::ir` / `so_analyze::workload` paths keep working.
pub use so_plan::ir;
pub use so_plan::workload;

pub use gate::GatedEngine;
pub use incremental::{IncrementalGate, CBUDGET_CODE};
pub use ir::{Atom, ExprId, PredNode, PredPool};
pub use lint::{
    lint_workload, lint_workload_default, Evidence, Finding, LintConfig, LintId, LintReport,
    Severity,
};
pub use matrix::{Lowered, MatrixCaps, QueryMatrix};
pub use obs::{gate_metrics, lint_metrics, query_refusals, GateMetrics, LintMetrics};
pub use workload::{Noise, QueryKind, QuerySpec, WorkloadSpec};
