//! Workload declarations for the static linter.
//!
//! A [`WorkloadSpec`] is the *plan* of a query workload — what will be
//! asked, and with how much noise — declared before anything executes.
//! Subset-sum queries are kept as their membership masks (the lints can do
//! exact set arithmetic on those); predicate queries are lifted into the
//! canonical IR of [`crate::ir`], so structurally equal predicates share an
//! id and refinement relationships are visible symbolically.

use so_data::BitVec;
use so_query::predicate::RowPredicate;
use so_query::query::SubsetQuery;
use so_query::shape::PredShape;

use crate::ir::{ExprId, PredPool};

/// How a query's answers will be released — the noise annotation the lints
/// reason about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Noise {
    /// Exact answers (no noise). Differencing on exact pairs is arithmetic.
    Exact,
    /// Answers with worst-case additive error at most `alpha` (the `α` of
    /// Theorem 1.1's bounded-error mechanisms).
    Bounded {
        /// Worst-case additive error bound.
        alpha: f64,
    },
    /// Answers through a pure ε-DP mechanism (e.g. Laplace counts).
    PureDp {
        /// Per-query privacy-loss parameter.
        epsilon: f64,
    },
}

impl Noise {
    /// Effective worst-case-style error magnitude used by the
    /// reconstruction-density lint: 0 for exact answers, `α` for bounded
    /// noise, and for pure DP the 99.9% quantile of the Laplace noise
    /// (`ln(1000)/ε`) — the scale at which Theorem 1.1's "within α of the
    /// true answer" premise effectively holds for the whole workload.
    pub fn effective_alpha(&self) -> f64 {
        match *self {
            Noise::Exact => 0.0,
            Noise::Bounded { alpha } => alpha,
            Noise::PureDp { epsilon } => (1000.0f64).ln() / epsilon,
        }
    }
}

/// What a query asks.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// A Dinur–Nissim subset-sum query, kept as its membership mask.
    Subset(BitVec),
    /// A predicate counting query, lifted into the pool.
    Pred(ExprId),
}

/// One planned query: what is asked and how it will be answered.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The question.
    pub kind: QueryKind,
    /// The release mechanism's noise annotation.
    pub noise: Noise,
}

/// A declared workload over a dataset of `n_rows` records, ready for
/// [`crate::lint::lint_workload`].
pub struct WorkloadSpec {
    n_rows: usize,
    queries: Vec<QuerySpec>,
    pool: PredPool,
}

impl WorkloadSpec {
    /// An empty workload against a dataset of `n_rows` records.
    pub fn new(n_rows: usize) -> Self {
        WorkloadSpec {
            n_rows,
            queries: Vec::new(),
            pool: PredPool::new(),
        }
    }

    /// Number of records in the target dataset.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of planned queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True iff no queries are planned.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The planned queries, in declaration order.
    pub fn queries(&self) -> &[QuerySpec] {
        &self.queries
    }

    /// The predicate pool backing `Pred` queries.
    pub fn pool(&self) -> &PredPool {
        &self.pool
    }

    /// Mutable access to the pool (for building expressions directly).
    pub fn pool_mut(&mut self) -> &mut PredPool {
        &mut self.pool
    }

    /// Plans a subset-sum query. Returns its index.
    ///
    /// # Panics
    /// Panics if the query's universe size disagrees with `n_rows`.
    pub fn push_subset(&mut self, q: &SubsetQuery, noise: Noise) -> usize {
        assert_eq!(
            q.n(),
            self.n_rows,
            "subset query over universe of {} rows pushed into a workload over {}",
            q.n(),
            self.n_rows
        );
        self.push_kind(QueryKind::Subset(q.members().clone()), noise)
    }

    /// Plans every query of a subset workload in order.
    pub fn push_subsets(&mut self, qs: &[SubsetQuery], noise: Noise) {
        for q in qs {
            self.push_subset(q, noise);
        }
    }

    /// Plans a predicate counting query via its structural shape. Returns
    /// its index.
    pub fn push_predicate(&mut self, p: &dyn RowPredicate, noise: Noise) -> usize {
        let id = self.pool.lift_row_predicate(p);
        self.push_kind(QueryKind::Pred(id), noise)
    }

    /// Plans a predicate counting query from an explicit shape.
    pub fn push_shape(&mut self, shape: &PredShape, noise: Noise) -> usize {
        let id = self.pool.lift(shape);
        self.push_kind(QueryKind::Pred(id), noise)
    }

    /// Plans a predicate counting query from an already-interned expression.
    pub fn push_expr(&mut self, id: ExprId, noise: Noise) -> usize {
        self.push_kind(QueryKind::Pred(id), noise)
    }

    fn push_kind(&mut self, kind: QueryKind, noise: Noise) -> usize {
        self.queries.push(QuerySpec { kind, noise });
        self.queries.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_query::predicate::IntRangePredicate;

    #[test]
    fn structurally_equal_predicates_share_an_id() {
        let mut w = WorkloadSpec::new(10);
        let p = IntRangePredicate {
            col: 0,
            lo: 1,
            hi: 5,
        };
        let q = IntRangePredicate {
            col: 0,
            lo: 1,
            hi: 5,
        };
        w.push_predicate(&p, Noise::Exact);
        w.push_predicate(&q, Noise::Exact);
        let ids: Vec<_> = w
            .queries()
            .iter()
            .map(|s| match &s.kind {
                QueryKind::Pred(id) => *id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids[0], ids[1]);
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn subset_universe_mismatch_panics() {
        let mut w = WorkloadSpec::new(10);
        let q = SubsetQuery::from_indices(5, &[0, 1]);
        w.push_subset(&q, Noise::Exact);
    }

    #[test]
    fn effective_alpha_orders_mechanisms() {
        assert_eq!(Noise::Exact.effective_alpha(), 0.0);
        assert_eq!(Noise::Bounded { alpha: 3.0 }.effective_alpha(), 3.0);
        let dp = Noise::PureDp { epsilon: 0.5 }.effective_alpha();
        assert!(dp > 13.0 && dp < 14.0, "ln(1000)/0.5 ≈ 13.8, got {dp}");
    }
}
