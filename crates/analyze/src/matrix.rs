//! The query-matrix abstraction: a declared workload lowered to an abstract
//! 0/1 matrix over *atom-partition cells*, with no data access.
//!
//! *The Power of Linear Reconstruction Attacks* (Kasiviswanathan–Rudelson–
//! Smith, arXiv:1210.2381) shows that reconstruction feasibility is a
//! linear-algebraic property of the released query set: attacks succeed
//! whenever the query matrix is well-conditioned on the secret column. This
//! module makes that matrix a static object the lints can reason about:
//!
//! * **rows** are the workload's sufficiently-accurate queries;
//! * **columns** are the disjoint *cells* the queries induce on the record
//!   space — for subset-sum queries the equivalence classes of rows under
//!   query membership (exact, from the masks), for predicate queries the
//!   satisfiable sign assignments to the predicates' atoms, built by
//!   NNF/sign analysis on [`ExprId`]s via [`PredPool::eval_signed`];
//! * **entries** record cell ⊆ query, exactly, by construction.
//!
//! Each cell carries an upper bound on its expected row count (exact counts
//! for mask cells; `n · Π` design weights for sign cells, vacuous when a
//! data-dependent atom is involved), so "this combination isolates ≤ t
//! rows" is a provable statement about the *design* of the workload, never
//! about the data. The structural passes over the matrix — GF(2)/rational
//! rank estimation ([`gf2_rank`], [`RowBasis`]), per-cell coverage, and the
//! chain search of [`crate::lattice`] — power the `SO-LINREC`, `SO-COVER`,
//! and `SO-TRACKER` lints.

use std::collections::HashMap;

use crate::ir::{Atom, ExprId, PredPool};
use crate::workload::{QueryKind, WorkloadSpec};

/// Which lowering produced a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixKind {
    /// Columns are row-equivalence classes of subset-sum masks; cell widths
    /// are exact row counts.
    SubsetMasks,
    /// Columns are satisfiable sign assignments over the predicate atoms;
    /// cell widths are `n · Π` design-weight bounds.
    PredicateSigns,
}

/// One column of the matrix: a disjoint region of the record space.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Upper bound on the region's expected row count (exact for mask
    /// cells, `n · Π` design weights for sign cells; `n` when vacuous).
    pub width_hi: f64,
    /// Human-readable region description for evidence payloads.
    pub label: String,
}

/// The abstract query matrix of one workload (one query family).
#[derive(Debug, Clone)]
pub struct QueryMatrix {
    /// Workload indices of the rows, in declaration order.
    pub queries: Vec<usize>,
    /// Per-row effective worst-case error bound
    /// ([`crate::workload::Noise::effective_alpha`]).
    pub alphas: Vec<f64>,
    /// Row bitsets over cells: `rows[r]` has bit `c` set iff cell `c` lies
    /// inside query `r`. `ceil(cells / 64)` words each.
    pub rows: Vec<Vec<u64>>,
    /// The columns.
    pub cells: Vec<Cell>,
    /// Which lowering built this matrix.
    pub kind: MatrixKind,
}

/// Outcome of lowering one query family.
#[derive(Debug)]
pub enum Lowered {
    /// The matrix was built completely.
    Built(QueryMatrix),
    /// The family has no sufficiently-accurate queries to lower.
    Empty,
    /// A cap (cell count, bit budget) was hit: the matrix is absent and the
    /// absence of findings is *not* evidence of safety.
    Truncated,
}

/// Caps on matrix construction, carried by
/// [`crate::lint::LintConfig`].
#[derive(Debug, Clone, Copy)]
pub struct MatrixCaps {
    /// Maximum number of cells before construction aborts.
    pub max_cells: usize,
    /// Maximum `n_rows × queries` bit volume for the subset lowering.
    pub bit_budget: usize,
}

// ---------------------------------------------------------------------------
// Bitset helpers (cells are dense u64-word bitsets).

/// Words needed for `bits` bits.
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Sets bit `i`.
pub(crate) fn set_bit(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

/// Reads bit `i`.
pub(crate) fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

/// Number of set bits.
pub(crate) fn popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// `a ⊆ b`.
pub(crate) fn subset_of(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(wa, wb)| wa & !wb == 0)
}

/// The set indices of a bitset, ascending.
pub(crate) fn bit_indices(words: &[u64]) -> Vec<usize> {
    let mut out = Vec::new();
    for (w, &word) in words.iter().enumerate() {
        let mut d = word;
        while d != 0 {
            out.push(w * 64 + d.trailing_zeros() as usize);
            d &= d - 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Subset-mask lowering.

/// Lowers the workload's subset-sum queries with `effective_alpha ≤
/// alpha_cut` into a matrix whose cells are the equivalence classes of rows
/// under query membership. Exact: entries and widths come straight from the
/// masks.
pub fn lower_subsets(workload: &WorkloadSpec, alpha_cut: f64, caps: MatrixCaps) -> Lowered {
    let n = workload.n_rows();
    let mut queries: Vec<usize> = Vec::new();
    let mut alphas: Vec<f64> = Vec::new();
    let mut masks: Vec<&so_data::BitVec> = Vec::new();
    for (i, q) in workload.queries().iter().enumerate() {
        if let QueryKind::Subset(mask) = &q.kind {
            let alpha = q.noise.effective_alpha();
            if alpha <= alpha_cut {
                queries.push(i);
                alphas.push(alpha);
                masks.push(mask);
            }
        }
    }
    if queries.is_empty() || n == 0 {
        return Lowered::Empty;
    }
    if n.saturating_mul(queries.len()) > caps.bit_budget {
        return Lowered::Truncated;
    }

    // Per-row membership signature over the selected queries.
    let sig_words = words_for(queries.len());
    let mut sigs: Vec<Vec<u64>> = vec![vec![0u64; sig_words]; n];
    for (qi, mask) in masks.iter().enumerate() {
        for (w, &word) in mask.words().iter().enumerate() {
            let mut d = word;
            while d != 0 {
                let row = w * 64 + d.trailing_zeros() as usize;
                d &= d - 1;
                if row < n {
                    set_bit(&mut sigs[row], qi);
                }
            }
        }
    }

    // Group rows by signature; cells are numbered by first-row order, so the
    // construction is deterministic. (The map is only probed per row — cell
    // order never depends on map iteration.)
    let mut index: HashMap<&[u64], usize> = HashMap::new();
    let mut cell_sig: Vec<&[u64]> = Vec::new();
    let mut cell_first: Vec<usize> = Vec::new();
    let mut cell_count: Vec<usize> = Vec::new();
    for (row, sig) in sigs.iter().enumerate() {
        if let Some(&c) = index.get(sig.as_slice()) {
            cell_count[c] += 1;
        } else {
            let c = cell_sig.len();
            if c >= caps.max_cells {
                return Lowered::Truncated;
            }
            index.insert(sig.as_slice(), c);
            cell_sig.push(sig.as_slice());
            cell_first.push(row);
            cell_count.push(1);
        }
    }

    let n_cells = cell_sig.len();
    let row_words = words_for(n_cells);
    let mut rows = vec![vec![0u64; row_words]; queries.len()];
    for (c, sig) in cell_sig.iter().enumerate() {
        for qi in bit_indices(sig) {
            set_bit(&mut rows[qi], c);
        }
    }
    let cells = cell_first
        .iter()
        .zip(&cell_count)
        .map(|(&first, &count)| Cell {
            width_hi: count as f64,
            label: format!("rows≡{first} ({count} row(s))"),
        })
        .collect();
    Lowered::Built(QueryMatrix {
        queries,
        alphas,
        rows,
        cells,
        kind: MatrixKind::SubsetMasks,
    })
}

// ---------------------------------------------------------------------------
// Predicate sign lowering.

/// A partial sign assignment over the atom universe: `0` = open, `+1` /
/// `-1` = the atom is forced true / false in this region.
struct SignCell {
    signs: Vec<i8>,
    /// Membership bits over the queries processed so far.
    members: Vec<u64>,
}

/// Lowers the workload's predicate queries with `effective_alpha ≤
/// alpha_cut` (and no opaque atoms) into a matrix whose cells are the
/// satisfiable sign assignments over the queries' atoms. Cells are built by
/// successive refinement: each query splits a cell only on the atom that
/// blocks its membership from being decided ([`PredPool::eval_signed`]), so
/// correlated workloads (prefix chains, drill-downs) stay at a handful of
/// cells instead of `2^atoms`. Assignments that are *provably* empty — two
/// positive value tests on one column, disjoint positive ranges,
/// complementary designed atoms — are dropped; anything else is kept, which
/// only ever over-counts cells (under-fires the rank lint: conservative).
pub fn lower_predicates(
    workload: &WorkloadSpec,
    nnf: &[Option<ExprId>],
    alpha_cut: f64,
    caps: MatrixCaps,
) -> Lowered {
    let pool = workload.pool();
    let n = workload.n_rows();
    let mut queries: Vec<usize> = Vec::new();
    let mut alphas: Vec<f64> = Vec::new();
    let mut exprs: Vec<ExprId> = Vec::new();
    for (i, q) in workload.queries().iter().enumerate() {
        if let QueryKind::Pred(_) = &q.kind {
            let id = nnf[i].expect("pred query has an nnf id");
            let alpha = q.noise.effective_alpha();
            if alpha <= alpha_cut && !pool.contains_opaque(id) {
                queries.push(i);
                alphas.push(alpha);
                exprs.push(id);
            }
        }
    }
    if queries.is_empty() || n == 0 {
        return Lowered::Empty;
    }

    // The atom universe, in pool-interning order.
    let mut atoms: Vec<ExprId> = Vec::new();
    for &e in &exprs {
        atoms.extend(pool.collect_atoms(e));
    }
    atoms.sort_unstable();
    atoms.dedup();
    let atom_index: HashMap<ExprId, usize> =
        atoms.iter().enumerate().map(|(i, &a)| (a, i)).collect();

    let member_words = words_for(queries.len());
    let mut cells = vec![SignCell {
        signs: vec![0i8; atoms.len()],
        members: vec![0u64; member_words],
    }];

    for (qi, &expr) in exprs.iter().enumerate() {
        let mut next: Vec<SignCell> = Vec::with_capacity(cells.len());
        // Worklist: cells still undecided on this query split until decided.
        let mut work: Vec<SignCell> = cells.drain(..).rev().collect();
        while let Some(cell) = work.pop() {
            if next.len() + work.len() >= caps.max_cells {
                return Lowered::Truncated;
            }
            let verdict = pool.eval_signed(expr, &|atom| match cell.signs[atom_index[&atom]] {
                0 => None,
                s => Some(s > 0),
            });
            match verdict {
                Ok(is_member) => {
                    let mut cell = cell;
                    if is_member {
                        set_bit(&mut cell.members, qi);
                    }
                    next.push(cell);
                }
                Err(blocking) => {
                    let ai = atom_index[&blocking];
                    for sign in [1i8, -1] {
                        let mut signs = cell.signs.clone();
                        signs[ai] = sign;
                        if sign < 0 || signs_satisfiable(pool, &atoms, &signs, ai) {
                            work.push(SignCell {
                                signs,
                                members: cell.members.clone(),
                            });
                        }
                    }
                }
            }
        }
        cells = next;
    }

    let n_cells = cells.len();
    let row_words = words_for(n_cells);
    let mut rows = vec![vec![0u64; row_words]; queries.len()];
    for (c, cell) in cells.iter().enumerate() {
        for qi in bit_indices(&cell.members) {
            set_bit(&mut rows[qi], c);
        }
    }
    let cells = cells
        .iter()
        .map(|cell| Cell {
            width_hi: n as f64 * sign_weight_hi(pool, &atoms, &cell.signs),
            label: sign_label(pool, &atoms, &cell.signs),
        })
        .collect();
    Lowered::Built(QueryMatrix {
        queries,
        alphas,
        rows,
        cells,
        kind: MatrixKind::PredicateSigns,
    })
}

/// Cheap per-column consistency check after forcing atom `changed` true:
/// positive constraints that provably cannot hold together make the
/// assignment unsatisfiable. Anything this cannot decide is kept
/// (conservative over-counting of cells).
fn signs_satisfiable(pool: &PredPool, atoms: &[ExprId], signs: &[i8], changed: usize) -> bool {
    let changed_atom = pool.atom_payload(atoms[changed]).expect("atom id");
    for (i, &sign) in signs.iter().enumerate() {
        if sign <= 0 || i == changed {
            continue;
        }
        let other = pool.atom_payload(atoms[i]).expect("atom id");
        if positive_pair_conflicts(changed_atom, other) {
            return false;
        }
    }
    true
}

/// True iff two atoms, both required to hold, provably conflict.
fn positive_pair_conflicts(a: &Atom, b: &Atom) -> bool {
    use Atom::*;
    match (a, b) {
        (ValueEquals { col: c1, value: v1 }, ValueEquals { col: c2, value: v2 }) => {
            c1 == c2 && v1 != v2
        }
        (ValueEquals { col: c1, value }, IntRange { col: c2, lo, hi })
        | (IntRange { col: c2, lo, hi }, ValueEquals { col: c1, value }) => {
            c1 == c2 && matches!(value, so_data::Value::Int(v) if v < lo || v > hi)
        }
        (
            IntRange {
                col: c1,
                lo: lo1,
                hi: hi1,
            },
            IntRange {
                col: c2,
                lo: lo2,
                hi: hi2,
            },
        ) => c1 == c2 && (lo1.max(lo2) > hi1.min(hi2)),
        (BitExtract { bit: b1, value: v1 }, BitExtract { bit: b2, value: v2 }) => {
            b1 == b2 && v1 != v2
        }
        (
            KeyedHash {
                key: k1,
                modulus: m1,
                target: t1,
            },
            KeyedHash {
                key: k2,
                modulus: m2,
                target: t2,
            },
        ) => k1 == k2 && m1 == m2 && t1 != t2,
        _ => false,
    }
}

/// Upper bound on the fraction of the record space in a sign cell, under
/// the product model: designed atoms contribute their weight (`w` positive,
/// `1 − w` negative), data-dependent atoms contribute 1 (vacuous).
fn sign_weight_hi(pool: &PredPool, atoms: &[ExprId], signs: &[i8]) -> f64 {
    let mut w = 1.0f64;
    for (i, &sign) in signs.iter().enumerate() {
        if sign == 0 {
            continue;
        }
        if let Some(dw) = pool.atom_design_weight(atoms[i]) {
            w *= if sign > 0 { dw } else { 1.0 - dw };
        }
    }
    w
}

/// Renders a sign assignment for evidence payloads.
fn sign_label(pool: &PredPool, atoms: &[ExprId], signs: &[i8]) -> String {
    let parts: Vec<String> = signs
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s != 0)
        .map(|(i, &s)| {
            let rendered = pool.render(atoms[i]);
            if s > 0 {
                rendered
            } else {
                format!("NOT {rendered}")
            }
        })
        .collect();
    if parts.is_empty() {
        "everything".to_owned()
    } else {
        parts.join(" ∧ ")
    }
}

// ---------------------------------------------------------------------------
// Rank estimation.

/// GF(2) rank of the row bitsets, with early exit once `limit` is reached.
/// For 0/1 matrices GF(2) rank never exceeds the rational rank, so full
/// GF(2) column rank is *proof* of full rational rank.
pub fn gf2_rank(rows: &[Vec<u64>], limit: usize) -> usize {
    // pivots[k] = (leading bit index, reduced row).
    let mut pivots: Vec<(usize, Vec<u64>)> = Vec::new();
    for row in rows {
        if pivots.len() >= limit {
            break;
        }
        let mut v = row.clone();
        for (lead, p) in &pivots {
            if get_bit(&v, *lead) {
                for (vw, pw) in v.iter_mut().zip(p) {
                    *vw ^= pw;
                }
            }
        }
        if let Some(lead) = bit_indices(&v).first().copied() {
            pivots.push((lead, v));
        }
    }
    pivots.len()
}

/// Tolerance for treating an `f64` Gaussian-elimination residual as zero;
/// entries are 0/1 and the matrices are small, so this is generous.
const RANK_TOL: f64 = 1e-7;

/// A Gauss–Jordan row basis over the rationals (computed in `f64`), with
/// each basis vector's expression as a combination of the original rows —
/// the structure behind both the rational rank *estimate* and the
/// `SO-COVER` span test with citable contributing query indices.
pub struct RowBasis {
    n_cells: usize,
    n_rows: usize,
    /// `(pivot column, basis vector over cells, combination over rows)`.
    basis: Vec<(usize, Vec<f64>, Vec<f64>)>,
}

impl RowBasis {
    /// Builds the basis from the rows whose index passes `keep`.
    pub fn build(rows: &[Vec<u64>], n_cells: usize, keep: impl Fn(usize) -> bool) -> RowBasis {
        let mut b = RowBasis {
            n_cells,
            n_rows: rows.len(),
            basis: Vec::new(),
        };
        for (ri, row) in rows.iter().enumerate() {
            if !keep(ri) || b.basis.len() >= n_cells {
                continue;
            }
            let mut v: Vec<f64> = (0..n_cells)
                .map(|c| if get_bit(row, c) { 1.0 } else { 0.0 })
                .collect();
            let mut combo = vec![0.0f64; rows.len()];
            combo[ri] = 1.0;
            b.reduce(&mut v, &mut combo);
            // Partial pivoting: the largest surviving entry becomes the pivot.
            let Some((pivot, mag)) = v
                .iter()
                .enumerate()
                .map(|(c, x)| (c, x.abs()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
            else {
                continue;
            };
            if mag < RANK_TOL {
                continue;
            }
            let scale = v[pivot];
            for x in v.iter_mut() {
                *x /= scale;
            }
            for x in combo.iter_mut() {
                *x /= scale;
            }
            // Jordan step: clear the new pivot column from the older basis.
            for (_, bv, bc) in b.basis.iter_mut() {
                let coef = bv[pivot];
                if coef != 0.0 {
                    for (x, y) in bv.iter_mut().zip(&v) {
                        *x -= coef * y;
                    }
                    for (x, y) in bc.iter_mut().zip(&combo) {
                        *x -= coef * y;
                    }
                }
            }
            b.basis.push((pivot, v, combo));
        }
        b
    }

    fn reduce(&self, v: &mut [f64], combo: &mut [f64]) {
        for (pivot, bv, bc) in &self.basis {
            let coef = v[*pivot];
            if coef != 0.0 {
                for (x, y) in v.iter_mut().zip(bv) {
                    *x -= coef * y;
                }
                for (x, y) in combo.iter_mut().zip(bc) {
                    *x -= coef * y;
                }
            }
        }
    }

    /// The rational rank estimate: the basis size.
    pub fn rank(&self) -> usize {
        self.basis.len()
    }

    /// Tests whether the unit vector of `cell` lies in the row span. On
    /// success returns the indices of the rows with a nonzero coefficient
    /// in one witnessing combination — the queries whose answers isolate
    /// the cell.
    pub fn span_witness(&self, cell: usize) -> Option<Vec<usize>> {
        assert!(cell < self.n_cells);
        let mut v = vec![0.0f64; self.n_cells];
        v[cell] = 1.0;
        let mut combo = vec![0.0f64; self.n_rows];
        self.reduce(&mut v, &mut combo);
        if v.iter().any(|x| x.abs() > RANK_TOL) {
            return None;
        }
        // v was consumed into the basis: the accumulated combination (with
        // flipped sign) reproduces e_cell from the original rows.
        Some(
            combo
                .iter()
                .enumerate()
                .filter(|&(_, c)| c.abs() > 1e-6)
                .map(|(i, _)| i)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Noise;
    use so_plan::shape::PredShape;
    use so_query::query::SubsetQuery;

    fn caps() -> MatrixCaps {
        MatrixCaps {
            max_cells: 1024,
            bit_budget: 1 << 23,
        }
    }

    #[test]
    fn subset_lowering_groups_rows_into_cells() {
        // {0,1}, {1,2}, {0,2} over 10 rows: rows 0/1/2 have distinct
        // signatures, rows 3..9 share the all-zero signature.
        let mut w = WorkloadSpec::new(10);
        for idx in [[0usize, 1], [1, 2], [0, 2]] {
            w.push_subset(&SubsetQuery::from_indices(10, &idx), Noise::Exact);
        }
        let Lowered::Built(m) = lower_subsets(&w, 0.0, caps()) else {
            panic!("expected a matrix");
        };
        assert_eq!(m.kind, MatrixKind::SubsetMasks);
        assert_eq!(m.cells.len(), 4);
        assert_eq!(m.queries, vec![0, 1, 2]);
        let widths: Vec<f64> = m.cells.iter().map(|c| c.width_hi).collect();
        assert_eq!(widths, vec![1.0, 1.0, 1.0, 7.0]);
        // Each query covers exactly its two singleton cells.
        for row in &m.rows {
            assert_eq!(popcount(row), 2);
        }
        // GF(2) rank is 2 (the three rows sum to zero mod 2); the rational
        // rank is 3 — exactly the case where GF(2) alone under-estimates.
        assert_eq!(gf2_rank(&m.rows, m.cells.len()), 2);
        let basis = RowBasis::build(&m.rows, m.cells.len(), |_| true);
        assert_eq!(basis.rank(), 3);
        // Cell 0 (= row 0) is isolated by the half-sum combination.
        let witness = basis.span_witness(0).expect("in span");
        assert_eq!(witness, vec![0, 1, 2]);
        // The wide zero cell is NOT isolated.
        assert!(basis.span_witness(3).is_none());
    }

    #[test]
    fn subset_lowering_respects_alpha_cut_and_budget() {
        let mut w = WorkloadSpec::new(10);
        w.push_subset(
            &SubsetQuery::from_indices(10, &[0, 1]),
            Noise::PureDp { epsilon: 0.1 },
        );
        assert!(matches!(lower_subsets(&w, 1.0, caps()), Lowered::Empty));
        let mut w = WorkloadSpec::new(10);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1]), Noise::Exact);
        let tight = MatrixCaps {
            max_cells: 1,
            bit_budget: 1 << 23,
        };
        assert!(matches!(lower_subsets(&w, 0.0, tight), Lowered::Truncated));
    }

    #[test]
    fn predicate_lowering_builds_departure_cells_for_prefix_chains() {
        // Prefix descent of depth 4: refinement by queries yields the 5
        // departure-depth cells, not 2^4 assignments.
        let bits = vec![true, false, true, true];
        let mut w = WorkloadSpec::new(100);
        for d in 0..=bits.len() {
            w.push_shape(
                &PredShape::Prefix {
                    bits: bits[..d].to_vec(),
                },
                Noise::Exact,
            );
        }
        let nnf: Vec<Option<ExprId>> = w
            .queries()
            .iter()
            .map(|q| match &q.kind {
                QueryKind::Pred(id) => Some(*id),
                _ => None,
            })
            .collect();
        let Lowered::Built(m) = lower_predicates(&w, &nnf, 0.0, caps()) else {
            panic!("expected a matrix");
        };
        assert_eq!(m.kind, MatrixKind::PredicateSigns);
        assert_eq!(m.cells.len(), 5, "departure depths 1..4 plus the core");
        assert_eq!(gf2_rank(&m.rows, 5), 5, "triangular, full rank");
        // The deepest cell is the full prefix: width 100 · 2^-4.
        let narrowest = m
            .cells
            .iter()
            .map(|c| c.width_hi)
            .fold(f64::INFINITY, f64::min);
        assert!((narrowest - 100.0 * 2.0f64.powi(-4)).abs() < 1e-9);
    }

    #[test]
    fn predicate_lowering_prunes_conflicting_value_cells() {
        // dept=0..2 on one column: positive/positive conflicts are pruned,
        // so cells are {d0, d1, d2, none}, not 2^3 assignments.
        let mut w = WorkloadSpec::new(50);
        for d in 0..3i64 {
            w.push_shape(
                &PredShape::ValueEquals {
                    col: 0,
                    value: so_data::Value::Int(d),
                },
                Noise::Exact,
            );
        }
        let nnf: Vec<Option<ExprId>> = w
            .queries()
            .iter()
            .map(|q| match &q.kind {
                QueryKind::Pred(id) => Some(*id),
                _ => None,
            })
            .collect();
        let Lowered::Built(m) = lower_predicates(&w, &nnf, 0.0, caps()) else {
            panic!("expected a matrix");
        };
        assert_eq!(m.cells.len(), 4);
        // Data-dependent atoms: every width bound is vacuous (= n).
        assert!(m.cells.iter().all(|c| c.width_hi >= 50.0 - 1e-9));
    }

    #[test]
    fn gf2_rank_early_exit_and_duplicates() {
        let rows = vec![vec![0b01u64], vec![0b10], vec![0b11], vec![0b01]];
        assert_eq!(gf2_rank(&rows, 2), 2);
        assert_eq!(gf2_rank(&rows, 64), 2, "third/fourth rows dependent");
    }
}
