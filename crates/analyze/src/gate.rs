//! Gatekeeper mode: the lint verdict wired into the counting engine.
//!
//! A [`GatedEngine`] wraps a [`CountingEngine`] behind the static verdict of
//! [`lint_workload`]: the declared workload is linted once at construction,
//! and if any pass denies, *every* query is refused before execution — the
//! engine never touches the data, and each refusal lands in the audit trail
//! tagged with the lint code that vetoed the workload. Refusing is a static
//! decision with a citable reason, which is exactly the defence the paper
//! says a query-serving system needs against "overly accurate answers to too
//! many questions".

use so_query::engine::CountingEngine;
use so_query::predicate::RowPredicate;

use crate::lint::{lint_workload, LintConfig, LintReport, Severity};
use crate::workload::WorkloadSpec;

/// A counting engine behind a static workload gate.
///
/// Construction lints the declared workload; queries are only ever executed
/// when the verdict admits it. The underlying auditor sees every attempt:
/// admitted queries through the normal path, gated refusals via
/// [`so_query::QueryAuditor::refuse_with`] with the deny finding's lint code
/// in the description.
pub struct GatedEngine<'a> {
    engine: CountingEngine<'a>,
    report: LintReport,
}

impl<'a> GatedEngine<'a> {
    /// Lints `workload` with `cfg` and places `engine` behind the verdict.
    pub fn new(engine: CountingEngine<'a>, workload: &mut WorkloadSpec, cfg: &LintConfig) -> Self {
        let report = lint_workload(workload, cfg);
        GatedEngine { engine, report }
    }

    /// True iff the gate admits the workload (no deny-severity finding).
    pub fn is_open(&self) -> bool {
        !self.report.denies()
    }

    /// The lint report the verdict is based on.
    pub fn report(&self) -> &LintReport {
        &self.report
    }

    /// Answers a counting query if the gate is open, else records a refusal
    /// (with the vetoing lint code) and returns `None` — the engine never
    /// evaluates a predicate of a denied workload.
    pub fn count(&mut self, p: &dyn RowPredicate) -> Option<usize> {
        if let Some(code) = self.deny_code() {
            self.engine
                .auditor_mut()
                .refuse_with(|| format!("[gate: {code}] {}", p.describe()));
            return None;
        }
        self.engine.count(p)
    }

    /// The lint code of the first deny finding, if any.
    fn deny_code(&self) -> Option<&'static str> {
        self.report
            .findings
            .iter()
            .find(|f| f.severity == Severity::Deny)
            .map(|f| f.lint.code())
    }

    /// Read access to the wrapped engine (auditor, cache statistics).
    pub fn engine(&self) -> &CountingEngine<'a> {
        &self.engine
    }

    /// Unwraps the engine, discarding the gate.
    pub fn into_inner(self) -> CountingEngine<'a> {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Noise;
    use so_data::{AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value};
    use so_query::predicate::{
        AllRowPredicate, IntRangePredicate, KeyedHashPredicate, NotRowPredicate, RowHashPredicate,
    };

    fn ds(n: usize) -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..n {
            b.push_row(vec![Value::Int((i % 90) as i64)]);
        }
        b.finish()
    }

    /// The hash-tracker differencing pair: `A`, `A ∧ ¬H`.
    fn tracker_pair() -> (AllRowPredicate, AllRowPredicate) {
        let range = IntRangePredicate {
            col: 0,
            lo: 0,
            hi: 1000,
        };
        let hash = RowHashPredicate {
            hash: KeyedHashPredicate::new(0xBEEF, 256, 0),
            cols: vec![0],
        };
        let a = AllRowPredicate {
            parts: vec![Box::new(range.clone())],
        };
        let b = AllRowPredicate {
            parts: vec![
                Box::new(range),
                Box::new(NotRowPredicate {
                    inner: Box::new(hash),
                }),
            ],
        };
        (a, b)
    }

    #[test]
    fn flagged_workload_is_refused_before_any_answer() {
        let data = ds(100);
        let (a, b) = tracker_pair();
        let mut w = WorkloadSpec::new(data.n_rows());
        w.push_predicate(&a, Noise::Exact);
        w.push_predicate(&b, Noise::Exact);
        let mut gated = GatedEngine::new(
            CountingEngine::new(&data, None),
            &mut w,
            &LintConfig::default(),
        );
        assert!(!gated.is_open());
        assert_eq!(gated.count(&a), None);
        assert_eq!(gated.count(&b), None);
        let auditor = gated.engine().auditor();
        assert_eq!(auditor.queries_answered(), 0, "no query was ever answered");
        assert_eq!(auditor.queries_refused(), 2);
        // The refusal reason is the differencing lint's code.
        let trail: Vec<_> = auditor.trail().collect();
        assert!(trail.iter().all(|r| !r.admitted));
        assert!(
            trail[0].description.starts_with("[gate: SO-DIFF]"),
            "citable reason in the trail: {}",
            trail[0].description
        );
    }

    #[test]
    fn clean_workload_flows_through() {
        let data = ds(100);
        let young = IntRangePredicate {
            col: 0,
            lo: 0,
            hi: 39,
        };
        let old = IntRangePredicate {
            col: 0,
            lo: 40,
            hi: 200,
        };
        let mut w = WorkloadSpec::new(data.n_rows());
        w.push_predicate(&young, Noise::Exact);
        w.push_predicate(&old, Noise::Exact);
        let mut gated = GatedEngine::new(
            CountingEngine::new(&data, None),
            &mut w,
            &LintConfig::default(),
        );
        assert!(gated.is_open());
        assert_eq!(gated.report().verdict(), "PASS");
        let total = gated.count(&young).unwrap() + gated.count(&old).unwrap();
        assert_eq!(total, data.n_rows());
        assert_eq!(gated.engine().auditor().queries_answered(), 2);
        assert_eq!(gated.engine().auditor().queries_refused(), 0);
    }

    #[test]
    fn same_pair_under_dp_noise_is_admitted() {
        let data = ds(100);
        let (a, b) = tracker_pair();
        let mut w = WorkloadSpec::new(data.n_rows());
        let dp = Noise::PureDp { epsilon: 0.1 };
        w.push_predicate(&a, dp);
        w.push_predicate(&b, dp);
        let gated = GatedEngine::new(
            CountingEngine::new(&data, None),
            &mut w,
            &LintConfig::default(),
        );
        assert!(gated.is_open(), "{:?}", gated.report().findings);
    }
}
