//! Gatekeeper mode: the lint verdict wired into the counting engine.
//!
//! A [`GatedEngine`] wraps a [`CountingEngine`] behind the static verdict of
//! [`lint_workload`]: it takes ownership of the declared workload, lints it
//! once at construction, and then [`GatedEngine::execute`] either
//!
//! * refuses the workload — every answer is
//!   [`WorkloadAnswer::Refused`] and the audit trail records **one refusal
//!   per offending query index** (each tagged with the lint code that
//!   flagged it, bounded by the auditor's trail cap), or
//! * executes **the identical plan it linted**: the same [`WorkloadSpec`],
//!   same pool, same expressions flow into
//!   [`CountingEngine::execute_workload`] — there is no window for the
//!   executed queries to drift from the linted ones.
//!
//! Refusing is a static decision with a citable reason, which is exactly the
//! defence the paper says a query-serving system needs against "overly
//! accurate answers to too many questions".

use std::collections::BTreeMap;

use so_plan::PlanStats;
use so_query::engine::{CountingEngine, WorkloadAnswer, WorkloadAnswers};
use so_query::predicate::RowPredicate;

use crate::lint::{lint_workload, LintConfig, LintReport, Severity};
use crate::workload::WorkloadSpec;

/// A counting engine behind a static workload gate.
///
/// Construction lints the declared workload; queries are only ever executed
/// when the verdict admits it. The underlying auditor sees every attempt:
/// admitted queries through the normal path, gated refusals via
/// [`so_query::QueryAuditor::refuse_with`] with the deny finding's lint code
/// in the description.
pub struct GatedEngine<'a> {
    engine: CountingEngine<'a>,
    workload: WorkloadSpec,
    report: LintReport,
}

impl<'a> GatedEngine<'a> {
    /// Lints `workload` with `cfg` and places `engine` behind the verdict,
    /// taking ownership of the workload so the plan that was linted is the
    /// plan that executes.
    pub fn new(engine: CountingEngine<'a>, mut workload: WorkloadSpec, cfg: &LintConfig) -> Self {
        let report = lint_workload(&mut workload, cfg);
        GatedEngine {
            engine,
            workload,
            report,
        }
    }

    /// True iff the gate admits the workload (no deny-severity finding).
    pub fn is_open(&self) -> bool {
        !self.report.denies()
    }

    /// The lint report the verdict is based on.
    pub fn report(&self) -> &LintReport {
        &self.report
    }

    /// The linted workload (as canonicalized by the lints).
    pub fn workload(&self) -> &WorkloadSpec {
        &self.workload
    }

    /// Executes the gated workload.
    ///
    /// If the gate is open this is exactly
    /// [`CountingEngine::execute_workload`] on the workload that was linted
    /// at construction. If the verdict denies, no query executes: every
    /// answer is [`WorkloadAnswer::Refused`], and one refusal per offending
    /// query index is recorded in the audit trail — tagged with the lint
    /// code of the finding that flagged that index — so the trail names
    /// which queries triggered the veto rather than a single blanket entry.
    /// (The trail honors the auditor's cap; the refusal *counter* still
    /// counts every offending index.)
    pub fn execute(&mut self) -> WorkloadAnswers {
        let span = so_obs::span("gate.execute");
        if self.report.denies() {
            crate::obs::gate_metrics().workloads_refused.inc();
            // First deny finding to flag each index wins; the finding is
            // kept whole so its evidence payload reaches the trail entry.
            let mut offending: BTreeMap<usize, &crate::lint::Finding> = BTreeMap::new();
            for f in self
                .report
                .findings
                .iter()
                .filter(|f| f.severity == Severity::Deny)
            {
                for &q in &f.queries {
                    offending.entry(q).or_insert(f);
                }
            }
            let pool = self.workload.pool();
            for (&q, &finding) in &offending {
                let code = finding.lint.code();
                crate::obs::query_refusals(code).inc();
                let rendered = match &self.workload.queries()[q].kind {
                    crate::workload::QueryKind::Pred(id) => pool.render(*id),
                    crate::workload::QueryKind::Subset(m) => {
                        format!("subset(|q| = {})", m.count_ones())
                    }
                };
                // Structured diagnostics after the `[gate: CODE] query #i`
                // prefix: the evidence (rank, cell count, chain indices)
                // lets an auditor re-check the refusal without re-linting.
                let evidence = finding
                    .evidence
                    .as_ref()
                    .filter(|ev| !ev.is_empty())
                    .map(|ev| format!(" [{ev}]"))
                    .unwrap_or_default();
                self.engine
                    .auditor_mut()
                    .refuse_with(|| format!("[gate: {code}] query #{q}: {rendered}{evidence}"));
            }
            if so_obs::enabled() {
                span.finish_with(&[
                    ("verdict", "refused".to_owned()),
                    ("offending", offending.len().to_string()),
                ]);
            }
            return WorkloadAnswers {
                answers: vec![WorkloadAnswer::Refused; self.workload.len()],
                targets: vec![None; self.workload.len()],
                stats: PlanStats {
                    queries: self.workload.len(),
                    ..PlanStats::default()
                },
            };
        }
        crate::obs::gate_metrics().workloads_admitted.inc();
        let out = self.engine.execute_workload(&self.workload);
        if so_obs::enabled() {
            span.finish_with(&[
                ("verdict", "admitted".to_owned()),
                ("queries", out.answers.len().to_string()),
            ]);
        }
        out
    }

    /// Answers a single counting query if the gate is open, else records a
    /// refusal (with the vetoing lint code) and returns `None` — the engine
    /// never evaluates a predicate of a denied workload. Retained for
    /// query-at-a-time callers; batch callers should prefer
    /// [`GatedEngine::execute`], which runs the linted plan itself.
    pub fn count(&mut self, p: &dyn RowPredicate) -> Option<usize> {
        if let Some(code) = self.deny_code() {
            self.engine
                .auditor_mut()
                .refuse_with(|| format!("[gate: {code}] {}", p.describe()));
            return None;
        }
        self.engine.count(p)
    }

    /// The lint code of the first deny finding, if any.
    fn deny_code(&self) -> Option<&'static str> {
        self.report
            .findings
            .iter()
            .find(|f| f.severity == Severity::Deny)
            .map(|f| f.lint.code())
    }

    /// Read access to the wrapped engine (auditor, cache statistics).
    pub fn engine(&self) -> &CountingEngine<'a> {
        &self.engine
    }

    /// Sets the wrapped engine's worker thread count for plan execution
    /// (see [`CountingEngine::set_threads`]). Sharded execution is
    /// bit-identical to serial, so the gate's verdict and the executed
    /// answers are unaffected — this only changes how fast an admitted
    /// workload runs.
    pub fn set_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    /// Unwraps the engine, discarding the gate.
    pub fn into_inner(self) -> CountingEngine<'a> {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Noise, QueryKind};
    use so_data::{AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value};
    use so_query::audit::QueryAuditor;
    use so_query::predicate::{
        AllRowPredicate, IntRangePredicate, KeyedHashPredicate, NotRowPredicate, RowHashPredicate,
    };

    fn ds(n: usize) -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "age",
            DataType::Int,
            AttributeRole::QuasiIdentifier,
        )]);
        let mut b = DatasetBuilder::new(schema);
        for i in 0..n {
            b.push_row(vec![Value::Int((i % 90) as i64)]);
        }
        b.finish()
    }

    /// The hash-tracker differencing pair: `A`, `A ∧ ¬H`.
    fn tracker_pair() -> (AllRowPredicate, AllRowPredicate) {
        let range = IntRangePredicate {
            col: 0,
            lo: 0,
            hi: 1000,
        };
        let hash = RowHashPredicate {
            hash: KeyedHashPredicate::new(0xBEEF, 256, 0),
            cols: vec![0],
        };
        let a = AllRowPredicate {
            parts: vec![Box::new(range)],
        };
        let b = AllRowPredicate {
            parts: vec![
                Box::new(range),
                Box::new(NotRowPredicate {
                    inner: Box::new(hash),
                }),
            ],
        };
        (a, b)
    }

    fn tracker_workload(n_rows: usize, noise: Noise) -> WorkloadSpec {
        let (a, b) = tracker_pair();
        let mut w = WorkloadSpec::new(n_rows);
        w.push_predicate(&a, noise);
        w.push_predicate(&b, noise);
        w
    }

    #[test]
    fn flagged_workload_is_refused_before_any_answer() {
        let data = ds(100);
        let w = tracker_workload(data.n_rows(), Noise::Exact);
        let mut gated =
            GatedEngine::new(CountingEngine::new(&data, None), w, &LintConfig::default());
        assert!(!gated.is_open());
        let out = gated.execute();
        assert_eq!(
            out.answers,
            vec![WorkloadAnswer::Refused, WorkloadAnswer::Refused]
        );
        let auditor = gated.engine().auditor();
        assert_eq!(auditor.queries_answered(), 0, "no query was ever answered");
        // One refusal per offending query index, not one blanket entry.
        assert_eq!(auditor.queries_refused(), 2);
        let trail: Vec<_> = auditor.trail().collect();
        assert_eq!(trail.len(), 2);
        assert!(trail.iter().all(|r| !r.admitted));
        let diff = crate::lint::LintId::Differencing.code();
        assert!(
            trail[0]
                .description
                .starts_with(&format!("[gate: {diff}] query #0:")),
            "citable reason names the query: {}",
            trail[0].description
        );
        assert!(
            trail[1]
                .description
                .starts_with(&format!("[gate: {diff}] query #1:")),
            "second offending index recorded: {}",
            trail[1].description
        );
        // Structured diagnostics ride after the prefix: the differencing
        // finding's evidence (chain + residue bound) is in the entry.
        assert!(
            trail[0].description.contains("chain=[0, 1]"),
            "evidence payload in the trail: {}",
            trail[0].description
        );
        assert!(
            trail[0].description.contains("width≤"),
            "residue bound in the trail: {}",
            trail[0].description
        );
    }

    /// The per-index refusal trail honors the auditor's trail cap while the
    /// refusal counter still counts every offending index.
    #[test]
    fn per_index_refusals_are_bounded_by_the_trail_cap() {
        let data = ds(100);
        let w = tracker_workload(data.n_rows(), Noise::Exact);
        let auditor = QueryAuditor::with_trail_cap(None, 1);
        let mut gated = GatedEngine::new(
            CountingEngine::with_auditor(&data, auditor),
            w,
            &LintConfig::default(),
        );
        let out = gated.execute();
        assert_eq!(out.answers.len(), 2);
        let auditor = gated.engine().auditor();
        assert_eq!(auditor.queries_refused(), 2, "counter sees both indices");
        assert_eq!(auditor.trail_len(), 1, "trail keeps only the newest");
        let trail: Vec<_> = auditor.trail().collect();
        assert!(
            trail[0].description.contains("query #1"),
            "cap evicts oldest first: {}",
            trail[0].description
        );
        // The longer evidence-bearing entries still honor the cap bound:
        // trail_len + dropped == seen, regardless of entry size.
        assert!(
            trail[0].description.contains("chain="),
            "evidence survives the cap: {}",
            trail[0].description
        );
    }

    #[test]
    fn clean_workload_flows_through() {
        let data = ds(100);
        let young = IntRangePredicate {
            col: 0,
            lo: 0,
            hi: 39,
        };
        let old = IntRangePredicate {
            col: 0,
            lo: 40,
            hi: 200,
        };
        let mut w = WorkloadSpec::new(data.n_rows());
        w.push_predicate(&young, Noise::Exact);
        w.push_predicate(&old, Noise::Exact);
        let mut gated =
            GatedEngine::new(CountingEngine::new(&data, None), w, &LintConfig::default());
        assert!(gated.is_open());
        assert_eq!(gated.report().verdict(), "PASS");
        let out = gated.execute();
        let total: usize = out
            .answers
            .iter()
            .map(|a| match a {
                WorkloadAnswer::Count(c) => *c,
                other => panic!("expected a count, got {other:?}"),
            })
            .sum();
        assert_eq!(total, data.n_rows());
        assert_eq!(gated.engine().auditor().queries_answered(), 2);
        assert_eq!(gated.engine().auditor().queries_refused(), 0);
    }

    /// The acceptance criterion of the one-pipeline refactor: the gate
    /// executes the *identical* plan it linted. Every executed target in the
    /// engine's pool carries the same stable structural hash as the declared
    /// expression in the linted workload's pool.
    #[test]
    fn gate_executes_the_same_plan_it_linted() {
        let data = ds(100);
        let w = tracker_workload(data.n_rows(), Noise::PureDp { epsilon: 0.1 });
        let mut gated =
            GatedEngine::new(CountingEngine::new(&data, None), w, &LintConfig::default());
        assert!(gated.is_open(), "{:?}", gated.report().findings);
        let out = gated.execute();
        assert_eq!(out.answers.len(), 2);
        let spec_hashes: Vec<u64> = gated
            .workload()
            .queries()
            .iter()
            .map(|q| match &q.kind {
                QueryKind::Pred(id) => gated.workload().pool().structural_hash(*id),
                _ => unreachable!(),
            })
            .collect();
        let executed_hashes: Vec<u64> = out
            .targets
            .iter()
            .map(|t| gated.engine().pool().structural_hash(t.unwrap()))
            .collect();
        assert_eq!(
            spec_hashes, executed_hashes,
            "the executed expressions are the linted expressions"
        );
    }

    #[test]
    fn same_pair_under_dp_noise_is_admitted() {
        let data = ds(100);
        let w = tracker_workload(data.n_rows(), Noise::PureDp { epsilon: 0.1 });
        let gated = GatedEngine::new(CountingEngine::new(&data, None), w, &LintConfig::default());
        assert!(gated.is_open(), "{:?}", gated.report().findings);
    }
}
