//! Static lint passes over declared workloads.
//!
//! Each pass recognizes one of the paper's attack *shapes* in a
//! [`WorkloadSpec`] before any query executes:
//!
//! * **differencing** — pairs `A`, `A ∧ ¬B` (equivalently nested subset
//!   queries) whose symbolic residue provably covers at most `t` rows: the
//!   shape of every tracker attack, and the `m = 2` special case of the
//!   Theorem 1.1 reconstruction premise ("overly accurate answers to too
//!   many questions");
//! * **reconstruction density** — workloads whose query/row ratio crosses
//!   the Dinur–Nissim regimes: the exhaustive `2^n`-query attack of
//!   Theorem 1.1(i) (error tolerance `α = o(n)`) and the polynomial
//!   LP-decoding attack of Theorem 1.1(ii) (`m ≳ 4n` queries at
//!   `α = O(√n)`);
//! * **ε-budget precheck** — statically sums worst-case privacy cost
//!   against a [`PrivacyAccountant`] (basic composition) so an over-budget
//!   workload is refused before its first answer, and exact-release queries
//!   are rejected outright under an ε-gated policy;
//! * **tautology / contradiction / duplicate** — dead queries and repeated
//!   queries that waste budget and alias cache keys.
//!
//! Findings carry a lint id, severity, the offending query indices, and a
//! human-readable explanation — a refusal with a citable reason.

use std::collections::{HashMap, HashSet};

use so_data::BitVec;
use so_dp::PrivacyAccountant;

use crate::ir::ExprId;
use crate::workload::{Noise, QueryKind, WorkloadSpec};

/// Identity of a lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintId {
    /// Pair differencing / tracker shape (Theorem 1.1 with `m = 2`).
    Differencing,
    /// Dinur–Nissim reconstruction density (Theorem 1.1(i)/(ii)).
    ReconstructionDensity,
    /// Worst-case privacy cost exceeds the configured ε budget.
    BudgetExceeded,
    /// A query that matches every record.
    Tautology,
    /// A query that matches no record.
    Contradiction,
    /// A query repeated verbatim (structurally) under exact release.
    Duplicate,
}

impl LintId {
    /// Stable machine-facing lint code.
    pub fn code(self) -> &'static str {
        match self {
            LintId::Differencing => "SO-DIFF",
            LintId::ReconstructionDensity => "SO-RECON",
            LintId::BudgetExceeded => "SO-BUDGET",
            LintId::Tautology => "SO-TAUT",
            LintId::Contradiction => "SO-CONTRA",
            LintId::Duplicate => "SO-DUP",
        }
    }
}

impl std::fmt::Display for LintId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably unsafe; the workload may still run.
    Warn,
    /// Provable attack shape; a gatekeeper must refuse the workload.
    Deny,
}

/// One diagnostic produced by a lint pass.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which pass fired.
    pub lint: LintId,
    /// How bad it is.
    pub severity: Severity,
    /// Offending query indices (declaration order); empty when the finding
    /// concerns the workload as a whole.
    pub queries: Vec<usize>,
    /// Human-readable explanation with the paper grounding.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        };
        write!(f, "[{sev}] {}", self.lint)?;
        if !self.queries.is_empty() {
            let ids: Vec<String> = self.queries.iter().map(|q| format!("#{q}")).collect();
            write!(f, " (queries {})", ids.join(", "))?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of linting a workload.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in pass order.
    pub findings: Vec<Finding>,
    /// Number of query pairs the differencing pass examined.
    pub pairs_examined: usize,
    /// True iff a pass stopped early on its pair budget or finding cap —
    /// the absence of further findings is then *not* evidence of safety.
    pub truncated: bool,
}

impl LintReport {
    /// True iff any finding is [`Severity::Deny`] — the gatekeeper verdict.
    pub fn denies(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Deny)
    }

    /// Number of findings from one pass.
    pub fn count(&self, lint: LintId) -> usize {
        self.findings.iter().filter(|f| f.lint == lint).count()
    }

    /// The findings of one pass, in order.
    pub fn findings_for(&self, lint: LintId) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.lint == lint).collect()
    }

    /// One-word verdict for tables and logs.
    pub fn verdict(&self) -> &'static str {
        if self.denies() {
            "REFUSE"
        } else if self.findings.is_empty() {
            "PASS"
        } else {
            "WARN"
        }
    }
}

/// Tunables for the lint passes.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Differencing fires when a residue provably covers at most this many
    /// rows (the `t` of "can isolate ≤ t rows"). Default 1 — strict
    /// singling out.
    pub isolation_threshold: usize,
    /// LP-regime density threshold: deny when the workload holds at least
    /// `lp_ratio · n` sufficiently-accurate queries. Theorem 1.1(ii) needs
    /// `m = Θ(n)`; 4 is the customary constant ("Linear Program
    /// Reconstruction in Practice" succeeds well below it).
    pub lp_ratio: f64,
    /// A query counts toward the LP regime when its effective error is at
    /// most `lp_alpha_factor · √n` (Theorem 1.1(ii)'s `α = O(√n)`).
    pub lp_alpha_factor: f64,
    /// When set, the ε-budget pass prechecks the workload's worst-case cost
    /// against a fresh accountant with this budget, and flags exact-release
    /// queries as unbounded cost.
    pub epsilon_budget: Option<f64>,
    /// Upper bound on query pairs the differencing pass examines before
    /// truncating (quadratic-blowup guard; the density pass still covers
    /// huge workloads).
    pub pair_budget: usize,
    /// Per-lint cap on reported findings (diagnostic noise guard).
    pub max_findings_per_lint: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            isolation_threshold: 1,
            lp_ratio: 4.0,
            lp_alpha_factor: 1.0,
            epsilon_budget: None,
            pair_budget: 2_000_000,
            max_findings_per_lint: 8,
        }
    }
}

/// A query as the lints see it: index, release noise, and either an exact
/// membership mask or a canonical (NNF) predicate id.
enum LintItem {
    Subset { mask: BitVec },
    Pred { nnf: ExprId },
}

/// Two releases whose combined worst-case error cannot blur a count by a
/// whole row: their difference is pinned to a unique integer, so residue
/// arithmetic is exact. Pure DP never qualifies (unbounded worst case).
fn effectively_exact(a: Noise, b: Noise) -> bool {
    let bound = |n: Noise| match n {
        Noise::Exact => Some(0.0),
        Noise::Bounded { alpha } => Some(alpha),
        Noise::PureDp { .. } => None,
    };
    match (bound(a), bound(b)) {
        (Some(x), Some(y)) => x + y < 0.5,
        _ => false,
    }
}

/// Runs every lint pass over `workload` and collects the findings.
///
/// The workload is taken `&mut` because the differencing pass interns
/// symbolic residues (`A ∧ ¬B`) into the workload's own pool; no queries
/// are added, removed, or reordered.
pub fn lint_workload(workload: &mut WorkloadSpec, cfg: &LintConfig) -> LintReport {
    let n = workload.n_rows();
    let noises: Vec<Noise> = workload.queries().iter().map(|q| q.noise).collect();

    // Canonicalize every predicate query to NNF up front (pool mutation),
    // then snapshot the per-query lint view.
    let raw: Vec<Option<ExprId>> = workload
        .queries()
        .iter()
        .map(|q| match &q.kind {
            QueryKind::Pred(id) => Some(*id),
            QueryKind::Subset(_) => None,
        })
        .collect();
    let nnf: Vec<Option<ExprId>> = raw
        .iter()
        .map(|id| id.map(|id| workload.pool_mut().nnf(id)))
        .collect();
    let items: Vec<LintItem> = workload
        .queries()
        .iter()
        .zip(&nnf)
        .map(|(q, nnf)| match &q.kind {
            QueryKind::Subset(mask) => LintItem::Subset { mask: mask.clone() },
            QueryKind::Pred(_) => LintItem::Pred {
                nnf: nnf.expect("pred query has an nnf id"),
            },
        })
        .collect();

    let mut report = LintReport::default();
    dead_and_duplicate_pass(workload, &items, &noises, cfg, &mut report);
    differencing_pass(workload, &items, &noises, n, cfg, &mut report);
    density_pass(&noises, n, cfg, &mut report);
    budget_pass(&noises, cfg, &mut report);
    report
}

/// Convenience: [`lint_workload`] with [`LintConfig::default`].
pub fn lint_workload_default(workload: &mut WorkloadSpec) -> LintReport {
    lint_workload(workload, &LintConfig::default())
}

fn dead_and_duplicate_pass(
    workload: &WorkloadSpec,
    items: &[LintItem],
    noises: &[Noise],
    cfg: &LintConfig,
    report: &mut LintReport,
) {
    let mut dead = 0usize;
    let mut dups = 0usize;
    // Structural identity: pool id for predicates, mask words for subsets.
    let mut seen: HashMap<(u8, Vec<u64>), usize> = HashMap::new();
    for (i, item) in items.iter().enumerate() {
        // Only exact releases: a repeated *noisy* query is legitimate
        // (independent noise draws), and a noisy tautology is just a noisy
        // total count.
        if noises[i] != Noise::Exact {
            continue;
        }
        let key = match item {
            LintItem::Pred { nnf } => {
                let pool = workload.pool();
                if *nnf == pool.tru() && dead < cfg.max_findings_per_lint {
                    dead += 1;
                    report.findings.push(Finding {
                        lint: LintId::Tautology,
                        severity: Severity::Warn,
                        queries: vec![i],
                        message: "predicate normalizes to TRUE — it matches every record, \
                                  cannot isolate, and wastes a query"
                            .to_owned(),
                    });
                }
                if *nnf == pool.fals() && dead < cfg.max_findings_per_lint {
                    dead += 1;
                    report.findings.push(Finding {
                        lint: LintId::Contradiction,
                        severity: Severity::Warn,
                        queries: vec![i],
                        message: "predicate normalizes to FALSE — the answer is always 0"
                            .to_owned(),
                    });
                }
                (0u8, vec![u64::from(nnf.index() as u32)])
            }
            LintItem::Subset { mask } => {
                if mask.count_ones() == 0 && dead < cfg.max_findings_per_lint {
                    dead += 1;
                    report.findings.push(Finding {
                        lint: LintId::Contradiction,
                        severity: Severity::Warn,
                        queries: vec![i],
                        message: "empty subset query — the answer is always 0".to_owned(),
                    });
                }
                (1u8, mask.words().to_vec())
            }
        };
        if let Some(&first) = seen.get(&key) {
            if dups < cfg.max_findings_per_lint {
                dups += 1;
                report.findings.push(Finding {
                    lint: LintId::Duplicate,
                    severity: Severity::Warn,
                    queries: vec![first, i],
                    message: format!(
                        "query #{i} is structurally identical to #{first} under exact release — \
                         a repeated answer adds no information and aliases the bitmap cache"
                    ),
                });
            }
        } else {
            seen.insert(key, i);
        }
    }
}

fn differencing_pass(
    workload: &mut WorkloadSpec,
    items: &[LintItem],
    noises: &[Noise],
    n: usize,
    cfg: &LintConfig,
    report: &mut LintReport,
) {
    let t = cfg.isolation_threshold;
    // Pre-compute conjunct sets for predicate queries.
    let conjunct_sets: Vec<Option<HashSet<ExprId>>> = items
        .iter()
        .map(|item| match item {
            LintItem::Pred { nnf } => Some(workload.pool().conjuncts(*nnf).into_iter().collect()),
            LintItem::Subset { .. } => None,
        })
        .collect();

    let mut found = 0usize;
    'outer: for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            if report.pairs_examined >= cfg.pair_budget || found >= cfg.max_findings_per_lint {
                report.truncated = true;
                break 'outer;
            }
            report.pairs_examined += 1;
            if !effectively_exact(noises[i], noises[j]) {
                continue;
            }
            let finding = match (&items[i], &items[j]) {
                (LintItem::Subset { mask: a }, LintItem::Subset { mask: b }) => {
                    subset_differencing(i, a, j, b, t)
                }
                (LintItem::Pred { nnf: a }, LintItem::Pred { nnf: b }) => pred_differencing(
                    workload,
                    (i, *a, conjunct_sets[i].as_ref().expect("pred")),
                    (j, *b, conjunct_sets[j].as_ref().expect("pred")),
                    n,
                    t,
                ),
                _ => None,
            };
            if let Some(f) = finding {
                report.findings.push(f);
                found += 1;
            }
        }
    }
}

/// Exact set arithmetic on subset masks: if one query's membership strictly
/// contains the other's and the set difference holds at most `t` rows, the
/// pair of answers reveals the exact sub-count of those rows.
fn subset_differencing(i: usize, a: &BitVec, j: usize, b: &BitVec, t: usize) -> Option<Finding> {
    let (sup_idx, sup, sub_idx, sub) = if contains(a, b) && !contains(b, a) {
        (i, a, j, b)
    } else if contains(b, a) && !contains(a, b) {
        (j, b, i, a)
    } else {
        return None;
    };
    let diff: Vec<usize> = difference_indices(sup, sub);
    if diff.is_empty() || diff.len() > t {
        return None;
    }
    Some(Finding {
        lint: LintId::Differencing,
        severity: Severity::Deny,
        queries: vec![sup_idx, sub_idx],
        message: format!(
            "subset query #{sub_idx} ⊂ #{sup_idx} and they differ on exactly {} row(s) {:?}: \
             subtracting the two exact answers reveals those rows' secret bits \
             (Theorem 1.1's reconstruction premise with m = 2)",
            diff.len(),
            diff
        ),
    })
}

/// `a ⊇ b` as masks (every member of `b` is in `a`).
fn contains(a: &BitVec, b: &BitVec) -> bool {
    a.words()
        .iter()
        .zip(b.words())
        .all(|(wa, wb)| wb & !wa == 0)
}

/// Indices in `sup` but not `sub`.
fn difference_indices(sup: &BitVec, sub: &BitVec) -> Vec<usize> {
    let mut out = Vec::new();
    for (w, (wsup, wsub)) in sup.words().iter().zip(sub.words()).enumerate() {
        let mut d = wsup & !wsub;
        while d != 0 {
            let bit = d.trailing_zeros() as usize;
            out.push(w * 64 + bit);
            d &= d - 1;
        }
    }
    out
}

/// Symbolic differencing on predicate queries: when one query's conjunct
/// set strictly extends the other's (`B = A ∧ R`), the answers differ by
/// the count of the residue `A ∧ ¬R`. The pair is flagged only when the
/// residue's *design weight* bounds that count by `t` — bit and keyed-hash
/// atoms have designed weights (`1/2`, `1/modulus`); data-dependent atoms
/// contribute the vacuous `[0, 1]`, so honest drill-downs over tabular
/// attributes never fire this lint.
fn pred_differencing(
    workload: &mut WorkloadSpec,
    (i, a, ca): (usize, ExprId, &HashSet<ExprId>),
    (j, b, cb): (usize, ExprId, &HashSet<ExprId>),
    n: usize,
    t: usize,
) -> Option<Finding> {
    let (base_idx, base, fine_idx, _fine, extras) = if ca.len() < cb.len() && ca.is_subset(cb) {
        let extras: Vec<ExprId> = cb.difference(ca).copied().collect();
        (i, a, j, b, extras)
    } else if cb.len() < ca.len() && cb.is_subset(ca) {
        let extras: Vec<ExprId> = ca.difference(cb).copied().collect();
        (j, b, i, a, extras)
    } else {
        return None;
    };
    let pool = workload.pool_mut();
    let refinement = pool.and(extras);
    let neg = pool.not(refinement);
    let residue = pool.nnf(neg);
    let residue = pool.and([base, residue]);
    let (_, hi) = pool.weight_interval(residue);
    let expected = n as f64 * hi;
    if residue == pool.fals() || expected > t as f64 + 1e-9 {
        return None;
    }
    let rendered = pool.render(residue);
    Some(Finding {
        lint: LintId::Differencing,
        severity: Severity::Deny,
        queries: vec![base_idx, fine_idx],
        message: format!(
            "query #{fine_idx} refines #{base_idx}: subtracting the exact answers counts the \
             residue {rendered}, whose design weight bounds it to ≤ {expected:.2} of {n} rows \
             (t = {t}) — the differencing/tracker shape of Theorems 1.1 and 2.8"
        ),
    })
}

fn density_pass(noises: &[Noise], n: usize, cfg: &LintConfig, report: &mut LintReport) {
    if n == 0 {
        return;
    }
    let m = noises.len();
    // Theorem 1.1(i): all 2^n subset queries within α = o(n) reconstruct to
    // 4α errors. Half the subsets already determine the rest, so 2^(n-1)
    // accurate-to-n/4 queries is treated as the exhaustive regime.
    if n < 63 {
        let m_exh = noises
            .iter()
            .filter(|nz| nz.effective_alpha() <= n as f64 / 4.0)
            .count() as u128;
        if m_exh >= 1u128 << (n - 1) {
            report.findings.push(Finding {
                lint: LintId::ReconstructionDensity,
                severity: Severity::Deny,
                queries: vec![],
                message: format!(
                    "{m_exh} queries with error ≤ n/4 over only {n} rows reaches the exhaustive \
                     Dinur–Nissim regime (2^(n−1) = {}): any consistent candidate dataset agrees \
                     with the secret on all but 4α entries (Theorem 1.1(i))",
                    1u128 << (n - 1)
                ),
            });
        }
    }
    // Theorem 1.1(ii): m ≳ lp_ratio·n random queries within α = O(√n)
    // admit LP decoding.
    let alpha_cut = cfg.lp_alpha_factor * (n as f64).sqrt();
    let m_lp = noises
        .iter()
        .filter(|nz| nz.effective_alpha() <= alpha_cut)
        .count();
    if (m_lp as f64) >= cfg.lp_ratio * n as f64 {
        report.findings.push(Finding {
            lint: LintId::ReconstructionDensity,
            severity: Severity::Deny,
            queries: vec![],
            message: format!(
                "{m_lp} of {m} queries have error ≤ {alpha_cut:.1} ≈ √n over {n} rows — past the \
                 {}·n LP-decoding density of Theorem 1.1(ii); linear programming reconstructs \
                 all but o(n) of the secret bits",
                cfg.lp_ratio
            ),
        });
    }
}

fn budget_pass(noises: &[Noise], cfg: &LintConfig, report: &mut LintReport) {
    let Some(budget) = cfg.epsilon_budget else {
        return;
    };
    // Exact or merely-bounded releases have unbounded worst-case ε.
    let unbounded: Vec<usize> = noises
        .iter()
        .enumerate()
        .filter(|(_, nz)| !matches!(nz, Noise::PureDp { .. }))
        .map(|(i, _)| i)
        .collect();
    if !unbounded.is_empty() {
        let shown: Vec<usize> = unbounded
            .iter()
            .copied()
            .take(cfg.max_findings_per_lint)
            .collect();
        report.findings.push(Finding {
            lint: LintId::BudgetExceeded,
            severity: Severity::Deny,
            queries: shown,
            message: format!(
                "{} queries are not released through a DP mechanism — under an ε-gated policy \
                 their worst-case privacy loss is unbounded",
                unbounded.len()
            ),
        });
    }
    let dp: Vec<(usize, f64)> = noises
        .iter()
        .enumerate()
        .filter_map(|(i, nz)| match nz {
            Noise::PureDp { epsilon } => Some((i, *epsilon)),
            _ => None,
        })
        .collect();
    if dp.is_empty() {
        return;
    }
    let costs: Vec<f64> = dp.iter().map(|&(_, e)| e).collect();
    let pre = PrivacyAccountant::new(budget).precheck(&costs);
    if !pre.admissible {
        let first = pre.first_refused.map(|k| dp[k].0);
        report.findings.push(Finding {
            lint: LintId::BudgetExceeded,
            severity: Severity::Deny,
            queries: first.into_iter().collect(),
            message: format!(
                "worst-case composed cost ε = {:.3} exceeds the budget {:.3}; the first query \
                 past the budget is #{} — refusing up front spends nothing (the accountant's \
                 precheck, basic composition)",
                pre.total,
                budget,
                first.unwrap_or(0)
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_query::predicate::{
        AllRowPredicate, IntRangePredicate, KeyedHashPredicate, NotRowPredicate, RowHashPredicate,
        ValueEqualsPredicate,
    };
    use so_query::query::SubsetQuery;
    use so_query::shape::PredShape;

    fn cfg() -> LintConfig {
        LintConfig::default()
    }

    #[test]
    fn subset_differencing_fires_on_nested_exact_pair() {
        let mut w = WorkloadSpec::new(10);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1, 2, 3]), Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1, 2]), Noise::Exact);
        let r = lint_workload(&mut w, &cfg());
        assert!(r.denies());
        let d = r.findings_for(LintId::Differencing);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].queries, vec![0, 1], "superset first, subset second");
        assert!(
            d[0].message.contains("[3]"),
            "isolated row named: {}",
            d[0].message
        );
    }

    #[test]
    fn subset_differencing_respects_threshold_and_noise() {
        // Difference of 3 rows > t = 1: clean.
        let mut w = WorkloadSpec::new(10);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1, 2, 3]), Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(10, &[0]), Noise::Exact);
        assert_eq!(lint_workload(&mut w, &cfg()).count(LintId::Differencing), 0);
        // Same nested pair under DP noise: differencing cannot be proven.
        let mut w = WorkloadSpec::new(10);
        let dp = Noise::PureDp { epsilon: 0.1 };
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1, 2, 3]), dp);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1, 2]), dp);
        assert_eq!(lint_workload(&mut w, &cfg()).count(LintId::Differencing), 0);
        // Incomparable subsets: clean.
        let mut w = WorkloadSpec::new(10);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1]), Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(10, &[1, 2]), Noise::Exact);
        assert_eq!(lint_workload(&mut w, &cfg()).count(LintId::Differencing), 0);
    }

    #[test]
    fn hash_tracker_pair_is_flagged_with_indices() {
        // A = everyone, B = A ∧ ¬(hash residue with modulus ≥ n): the
        // residue A ∧ hash has design weight 1/modulus ⇒ ≤ 1 expected row.
        let n = 100;
        let hash = RowHashPredicate {
            hash: KeyedHashPredicate::new(0xBEEF, 128, 0),
            cols: vec![0],
        };
        let b = AllRowPredicate {
            parts: vec![
                Box::new(IntRangePredicate {
                    col: 0,
                    lo: 0,
                    hi: 1000,
                }),
                Box::new(NotRowPredicate {
                    inner: Box::new(hash.clone()),
                }),
            ],
        };
        let mut w = WorkloadSpec::new(n);
        // A carries the same range conjunct, so B strictly refines A.
        let a = AllRowPredicate {
            parts: vec![Box::new(IntRangePredicate {
                col: 0,
                lo: 0,
                hi: 1000,
            })],
        };
        w.push_predicate(&a, Noise::Exact);
        w.push_predicate(&b, Noise::Exact);
        let r = lint_workload(&mut w, &cfg());
        let d = r.findings_for(LintId::Differencing);
        assert_eq!(d.len(), 1, "findings: {:?}", r.findings);
        assert_eq!(d[0].queries, vec![0, 1]);
        assert_eq!(d[0].severity, Severity::Deny);
    }

    #[test]
    fn honest_drilldown_is_clean() {
        // (dept), (dept ∧ sex=M): a textbook cross-tab. The residue's
        // weight interval is vacuous, so nothing is provable — no finding.
        let dept = ValueEqualsPredicate {
            col: 0,
            value: so_data::Value::Int(3),
        };
        let drill = AllRowPredicate {
            parts: vec![
                Box::new(ValueEqualsPredicate {
                    col: 0,
                    value: so_data::Value::Int(3),
                }),
                Box::new(ValueEqualsPredicate {
                    col: 1,
                    value: so_data::Value::Int(1),
                }),
            ],
        };
        let mut w = WorkloadSpec::new(50);
        w.push_predicate(&dept, Noise::Exact);
        w.push_predicate(&drill, Noise::Exact);
        let r = lint_workload(&mut w, &cfg());
        assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    }

    #[test]
    fn prefix_descent_flags_only_past_the_weight_gate() {
        // The Theorem 2.8 chain: prefixes of one record's bits, exact
        // counts. Adjacent pairs (depth k, k+1) leave residue weight
        // 2^-(k+1); with n = 100 that proves ≤ 1 row only once k+1 ≥ 7.
        let n = 100usize;
        let bits: Vec<bool> = (0..14).map(|i| i % 3 == 0).collect();
        let mut w = WorkloadSpec::new(n);
        for depth in 0..=bits.len() {
            w.push_shape(
                &PredShape::Prefix {
                    bits: bits[..depth].to_vec(),
                },
                Noise::Exact,
            );
        }
        let mut c = cfg();
        c.max_findings_per_lint = 100;
        let r = lint_workload(&mut w, &c);
        let d = r.findings_for(LintId::Differencing);
        assert!(!d.is_empty(), "deep descent must be flagged");
        for f in &d {
            // Every flagged pair's base prefix is past the weight gate:
            // residue weight 2^-(base) · bound ≤ 1/n needs base ≥ 6.
            let base = f.queries[0].min(f.queries[1]);
            assert!(base >= 6, "shallow pair flagged: {f}");
        }
        // The adjacent pair (6, 7) specifically is caught.
        assert!(
            d.iter().any(|f| f.queries == vec![6, 7]),
            "expected the (6,7) adjacent pair, got {:?}",
            d.iter().map(|f| f.queries.clone()).collect::<Vec<_>>()
        );
        // The same chain under DP is clean.
        let mut w = WorkloadSpec::new(n);
        for depth in 0..=bits.len() {
            w.push_shape(
                &PredShape::Prefix {
                    bits: bits[..depth].to_vec(),
                },
                Noise::PureDp { epsilon: 0.1 },
            );
        }
        let r = lint_workload(&mut w, &cfg());
        assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    }

    #[test]
    fn density_flags_exhaustive_and_lp_regimes() {
        // Exhaustive: all 2^8 subsets of an 8-row dataset, α = n/8 < n/4.
        let mut w = WorkloadSpec::new(8);
        for m in 0..(1u16 << 8) {
            let idx: Vec<usize> = (0..8).filter(|&i| m & (1 << i) != 0).collect();
            w.push_subset(
                &SubsetQuery::from_indices(8, &idx),
                Noise::Bounded { alpha: 1.0 },
            );
        }
        let r = lint_workload(&mut w, &cfg());
        assert!(r.denies());
        assert!(r.count(LintId::ReconstructionDensity) >= 1);
        // LP: 4n bounded-noise queries at α ≤ √n. (Use distinct masks.)
        let n = 64usize;
        let mut w = WorkloadSpec::new(n);
        for k in 0..(4 * n) {
            let idx: Vec<usize> = (0..n).filter(|&i| (i * 31 + k * 17) % 5 < 2).collect();
            let mut q = SubsetQuery::from_indices(n, &idx);
            // Perturb one bit per query to keep them distinct.
            let mut mask = q.members().clone();
            mask.set(k % n, !mask.get(k % n));
            q = SubsetQuery::new(mask);
            w.push_subset(&q, Noise::Bounded { alpha: 4.0 });
        }
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::ReconstructionDensity), 1);
        assert!(r.denies());
        // Same m but DP with big noise: clean density.
        let mut w = WorkloadSpec::new(n);
        for k in 0..(4 * n) {
            let idx: Vec<usize> = (0..n).filter(|&i| (i + k) % 3 == 0).collect();
            w.push_subset(
                &SubsetQuery::from_indices(n, &idx),
                Noise::PureDp { epsilon: 0.05 },
            );
        }
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::ReconstructionDensity), 0);
    }

    #[test]
    fn budget_pass_prechecks_statically() {
        let mut c = cfg();
        c.epsilon_budget = Some(1.0);
        // Within budget: clean.
        let mut w = WorkloadSpec::new(100);
        for _ in 0..9 {
            w.push_shape(
                &PredShape::BitExtract {
                    bit: 0,
                    value: true,
                },
                Noise::PureDp { epsilon: 0.1 },
            );
        }
        let r = lint_workload(&mut w, &c);
        assert_eq!(r.count(LintId::BudgetExceeded), 0, "{:?}", r.findings);
        // Over budget: the first offending query is named.
        let mut w = WorkloadSpec::new(100);
        for i in 0..15 {
            w.push_shape(
                &PredShape::BitExtract {
                    bit: i,
                    value: true,
                },
                Noise::PureDp { epsilon: 0.1 },
            );
        }
        let r = lint_workload(&mut w, &c);
        let b = r.findings_for(LintId::BudgetExceeded);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].queries, vec![10], "1.1 > 1.0 at the 11th query");
        // Exact queries under an ε-gated policy are unbounded cost.
        let mut w = WorkloadSpec::new(100);
        w.push_shape(
            &PredShape::BitExtract {
                bit: 0,
                value: true,
            },
            Noise::Exact,
        );
        let r = lint_workload(&mut w, &c);
        assert_eq!(r.count(LintId::BudgetExceeded), 1);
        assert!(r.denies());
    }

    #[test]
    fn dead_and_duplicate_queries_warn() {
        let mut w = WorkloadSpec::new(10);
        let tru = w.pool_mut().tru();
        let fals = w.pool_mut().fals();
        w.push_expr(tru, Noise::Exact);
        w.push_expr(fals, Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(10, &[1, 2]), Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(10, &[1, 2]), Noise::Exact);
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::Tautology), 1);
        assert_eq!(r.count(LintId::Contradiction), 1);
        let dups = r.findings_for(LintId::Duplicate);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].queries, vec![2, 3]);
        // Warnings alone do not deny... but the duplicated exact subsets
        // also difference against nothing (equal, not strict) — verify.
        assert_eq!(r.count(LintId::Differencing), 0);
        assert!(!r.denies());
        // Noisy repeats are fine.
        let mut w = WorkloadSpec::new(10);
        let dp = Noise::PureDp { epsilon: 0.5 };
        w.push_subset(&SubsetQuery::from_indices(10, &[1, 2]), dp);
        w.push_subset(&SubsetQuery::from_indices(10, &[1, 2]), dp);
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::Duplicate), 0);
    }

    #[test]
    fn pair_budget_truncates_and_reports_it() {
        let mut w = WorkloadSpec::new(10);
        for i in 0..10 {
            w.push_subset(&SubsetQuery::from_indices(10, &[i]), Noise::Exact);
        }
        let mut c = cfg();
        c.pair_budget = 5;
        let r = lint_workload(&mut w, &c);
        assert!(r.truncated);
        assert_eq!(r.pairs_examined, 5);
    }
}
