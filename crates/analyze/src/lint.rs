//! Static lint passes over declared workloads.
//!
//! Each pass recognizes one of the paper's attack *shapes* in a
//! [`WorkloadSpec`] before any query executes:
//!
//! * **differencing** — pairs `A`, `A ∧ ¬B` (equivalently nested subset
//!   queries) whose symbolic residue provably covers at most `t` rows: the
//!   shape of every tracker attack, and the `m = 2` special case of the
//!   Theorem 1.1 reconstruction premise ("overly accurate answers to too
//!   many questions");
//! * **reconstruction density** — workloads whose query/row ratio crosses
//!   the Dinur–Nissim regimes: the exhaustive `2^n`-query attack of
//!   Theorem 1.1(i) (error tolerance `α = o(n)`) and the polynomial
//!   LP-decoding attack of Theorem 1.1(ii) (`m ≳ 4n` queries at
//!   `α = O(√n)`);
//! * **query-matrix passes** — the workload lowered to an abstract 0/1
//!   matrix over atom-partition cells ([`crate::matrix`]): full structural
//!   column rank over a partition with a narrow cell means the released
//!   answers pin every cell count (`SO-LINREC`, the
//!   Kasiviswanathan–Rudelson–Smith linear-reconstruction criterion,
//!   arXiv:1210.2381); a chain of admitted differences reaching a narrow
//!   region is a classic tracker (`SO-TRACKER`, [`crate::lattice`]); a
//!   narrow cell in the rational row span of the exact releases is isolated
//!   by an admitted combination (`SO-COVER`);
//! * **ε-budget precheck** — statically sums worst-case privacy cost
//!   against a [`PrivacyAccountant`] (basic composition) so an over-budget
//!   workload is refused before its first answer, and exact-release queries
//!   are rejected outright under an ε-gated policy;
//! * **tautology / contradiction / duplicate** — dead queries and repeated
//!   queries that waste budget and alias cache keys.
//!
//! Findings carry a lint id, severity, the offending query indices, and a
//! human-readable explanation — a refusal with a citable reason.

use std::collections::{HashMap, HashSet};

use so_data::BitVec;
use so_dp::PrivacyAccountant;

use crate::ir::ExprId;
use crate::matrix::{
    gf2_rank, lower_predicates, lower_subsets, Lowered, MatrixCaps, QueryMatrix, RowBasis,
};
use crate::workload::{Noise, QueryKind, WorkloadSpec};

/// Identity of a lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintId {
    /// Pair differencing / tracker shape (Theorem 1.1 with `m = 2`).
    Differencing,
    /// Dinur–Nissim reconstruction density (Theorem 1.1(i)/(ii)).
    ReconstructionDensity,
    /// Worst-case privacy cost exceeds the configured ε budget.
    BudgetExceeded,
    /// A query that matches every record.
    Tautology,
    /// A query that matches no record.
    Contradiction,
    /// A query repeated verbatim (structurally) under exact release.
    Duplicate,
    /// The accurate-query matrix has full structural column rank over a
    /// cell partition with a narrow cell — the KRS linear-reconstruction
    /// feasibility criterion (arXiv:1210.2381).
    LinearReconstruction,
    /// A tracker chain: repeated differencing of admitted releases derives
    /// a region narrow enough to single out (Theorem 2.8 beyond pairs).
    TrackerChain,
    /// A narrow cell lies in the rational row span of the exact releases —
    /// an admitted combination isolates it.
    CellCover,
}

impl LintId {
    /// Every lint, in pass order. The single source of truth for
    /// enumeration (reports, metrics, experiments).
    pub const ALL: [LintId; 9] = [
        LintId::Tautology,
        LintId::Contradiction,
        LintId::Duplicate,
        LintId::Differencing,
        LintId::LinearReconstruction,
        LintId::TrackerChain,
        LintId::CellCover,
        LintId::ReconstructionDensity,
        LintId::BudgetExceeded,
    ];

    /// Stable machine-facing lint code. Each code string appears exactly
    /// once in the workspace: here.
    pub fn code(self) -> &'static str {
        match self {
            LintId::Differencing => "SO-DIFF",
            LintId::ReconstructionDensity => "SO-RECON",
            LintId::BudgetExceeded => "SO-BUDGET",
            LintId::Tautology => "SO-TAUT",
            LintId::Contradiction => "SO-CONTRA",
            LintId::Duplicate => "SO-DUP",
            LintId::LinearReconstruction => "SO-LINREC",
            LintId::TrackerChain => "SO-TRACKER",
            LintId::CellCover => "SO-COVER",
        }
    }

    /// Inverse of [`LintId::code`].
    pub fn from_code(code: &str) -> Option<LintId> {
        LintId::ALL.into_iter().find(|id| id.code() == code)
    }
}

impl std::fmt::Display for LintId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably unsafe; the workload may still run.
    Warn,
    /// Provable attack shape; a gatekeeper must refuse the workload.
    Deny,
}

/// Structured evidence behind a finding: the numbers a reviewer (or the
/// refusal audit trail) can check without re-running the pass. Only the
/// fields the firing pass actually computed are set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Evidence {
    /// Structural rank estimate of the accurate-query matrix.
    pub rank: Option<usize>,
    /// Number of atom-partition cells (matrix columns).
    pub cells: Option<usize>,
    /// Contributing query indices, in derivation/combination order.
    pub chain: Vec<usize>,
    /// Design-width bound on the isolated region (expected rows).
    pub width_hi: Option<f64>,
    /// The isolated region, rendered.
    pub region: Option<String>,
}

impl Evidence {
    /// True iff no field is set.
    pub fn is_empty(&self) -> bool {
        *self == Evidence::default()
    }
}

impl std::fmt::Display for Evidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        let mut part = |f: &mut std::fmt::Formatter<'_>, s: String| {
            let r = write!(f, "{sep}{s}");
            sep = " ";
            r
        };
        if let (Some(rank), Some(cells)) = (self.rank, self.cells) {
            part(f, format!("rank={rank}/{cells}"))?;
        } else if let Some(cells) = self.cells {
            part(f, format!("cells={cells}"))?;
        }
        if !self.chain.is_empty() {
            part(f, format!("chain={:?}", self.chain))?;
        }
        if let Some(w) = self.width_hi {
            part(f, format!("width≤{w:.2}"))?;
        }
        if let Some(region) = &self.region {
            part(f, format!("region={region}"))?;
        }
        Ok(())
    }
}

/// One diagnostic produced by a lint pass.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which pass fired.
    pub lint: LintId,
    /// How bad it is.
    pub severity: Severity,
    /// Offending query indices (declaration order); empty when the finding
    /// concerns the workload as a whole.
    pub queries: Vec<usize>,
    /// Human-readable explanation with the paper grounding.
    pub message: String,
    /// Structured evidence, when the pass computed any.
    pub evidence: Option<Evidence>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        };
        write!(f, "[{sev}] {}", self.lint)?;
        if !self.queries.is_empty() {
            let ids: Vec<String> = self.queries.iter().map(|q| format!("#{q}")).collect();
            write!(f, " (queries {})", ids.join(", "))?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(ev) = &self.evidence {
            if !ev.is_empty() {
                write!(f, " [{ev}]")?;
            }
        }
        Ok(())
    }
}

/// The outcome of linting a workload.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in pass order.
    pub findings: Vec<Finding>,
    /// Number of query pairs the differencing pass examined (candidate
    /// pairs after structural bucketing, not all `m·(m−1)/2`).
    pub pairs_examined: usize,
    /// Number of set differences the tracker-chain search examined.
    pub tracker_combos_examined: usize,
    /// True iff a pass stopped early on its pair budget or finding cap —
    /// the absence of further findings is then *not* evidence of safety.
    pub truncated: bool,
}

impl LintReport {
    /// True iff any finding is [`Severity::Deny`] — the gatekeeper verdict.
    pub fn denies(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Deny)
    }

    /// Number of findings from one pass.
    pub fn count(&self, lint: LintId) -> usize {
        self.findings.iter().filter(|f| f.lint == lint).count()
    }

    /// The findings of one pass, in order.
    pub fn findings_for(&self, lint: LintId) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.lint == lint).collect()
    }

    /// One-word verdict for tables and logs.
    pub fn verdict(&self) -> &'static str {
        if self.denies() {
            "REFUSE"
        } else if self.findings.is_empty() {
            "PASS"
        } else {
            "WARN"
        }
    }
}

/// Tunables for the lint passes.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Differencing fires when a residue provably covers at most this many
    /// rows (the `t` of "can isolate ≤ t rows"). Default 1 — strict
    /// singling out.
    pub isolation_threshold: usize,
    /// LP-regime density threshold: deny when the workload holds at least
    /// `lp_ratio · n` sufficiently-accurate queries. Theorem 1.1(ii) needs
    /// `m = Θ(n)`; 4 is the customary constant ("Linear Program
    /// Reconstruction in Practice" succeeds well below it).
    pub lp_ratio: f64,
    /// A query counts toward the LP regime when its effective error is at
    /// most `lp_alpha_factor · √n` (Theorem 1.1(ii)'s `α = O(√n)`).
    pub lp_alpha_factor: f64,
    /// When set, the ε-budget pass prechecks the workload's worst-case cost
    /// against a fresh accountant with this budget, and flags exact-release
    /// queries as unbounded cost.
    pub epsilon_budget: Option<f64>,
    /// Upper bound on query pairs the differencing pass examines before
    /// truncating (quadratic-blowup guard; the density pass still covers
    /// huge workloads).
    pub pair_budget: usize,
    /// Per-lint cap on reported findings (diagnostic noise guard).
    pub max_findings_per_lint: usize,
    /// Cap on atom-partition cells per query matrix; past it the matrix
    /// passes are skipped and the report is marked truncated. Cell
    /// refinement grows monotonically, so hitting the cap is invariant
    /// under query permutation.
    pub matrix_max_cells: usize,
    /// Cap on the `n_rows × queries` bit volume of the subset-mask
    /// lowering (the only matrix cost proportional to the dataset).
    pub matrix_bit_budget: usize,
    /// `SO-LINREC` needs at least this many cells: tiny partitions are the
    /// differencing passes' territory and would only duplicate findings.
    pub linrec_min_cells: usize,
    /// Set-difference budget for the `SO-TRACKER` lattice search.
    pub tracker_budget: usize,
    /// Maximum queries per tracker chain.
    pub max_chain_len: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            isolation_threshold: 1,
            lp_ratio: 4.0,
            lp_alpha_factor: 1.0,
            epsilon_budget: None,
            pair_budget: 2_000_000,
            max_findings_per_lint: 8,
            matrix_max_cells: 1024,
            matrix_bit_budget: 1 << 23,
            linrec_min_cells: 3,
            tracker_budget: 20_000,
            max_chain_len: 8,
        }
    }
}

/// A query as the lints see it: index, release noise, and either an exact
/// membership mask or a canonical (NNF) predicate id.
enum LintItem {
    Subset { mask: BitVec },
    Pred { nnf: ExprId },
}

/// Two releases whose combined worst-case error cannot blur a count by a
/// whole row: their difference is pinned to a unique integer, so residue
/// arithmetic is exact. Pure DP never qualifies (unbounded worst case).
fn effectively_exact(a: Noise, b: Noise) -> bool {
    let bound = |n: Noise| match n {
        Noise::Exact => Some(0.0),
        Noise::Bounded { alpha } => Some(alpha),
        Noise::PureDp { .. } => None,
    };
    match (bound(a), bound(b)) {
        (Some(x), Some(y)) => x + y < 0.5,
        _ => false,
    }
}

/// Runs every lint pass over `workload` and collects the findings.
///
/// The workload is taken `&mut` because the differencing pass interns
/// symbolic residues (`A ∧ ¬B`) into the workload's own pool; no queries
/// are added, removed, or reordered.
pub fn lint_workload(workload: &mut WorkloadSpec, cfg: &LintConfig) -> LintReport {
    // Wall clock here is export-only: it feeds the `so_analyze_lint_micros`
    // histogram for `SO_METRICS` dumps and never reaches a finding, report
    // field, or transcript.
    let start = std::time::Instant::now();
    let span = so_obs::span("gate.lint");
    let report = lint_workload_passes(workload, cfg);
    if so_obs::enabled() {
        span.finish_with(&[
            ("queries", workload.len().to_string()),
            ("findings", report.findings.len().to_string()),
            (
                "verdict",
                if report.denies() { "deny" } else { "allow" }.to_owned(),
            ),
        ]);
    }
    crate::obs::record_lint_run(&report, start.elapsed().as_micros() as u64);
    report
}

fn lint_workload_passes(workload: &mut WorkloadSpec, cfg: &LintConfig) -> LintReport {
    let n = workload.n_rows();
    let noises: Vec<Noise> = workload.queries().iter().map(|q| q.noise).collect();

    // Canonicalize every predicate query to NNF up front (pool mutation),
    // then snapshot the per-query lint view.
    let raw: Vec<Option<ExprId>> = workload
        .queries()
        .iter()
        .map(|q| match &q.kind {
            QueryKind::Pred(id) => Some(*id),
            QueryKind::Subset(_) => None,
        })
        .collect();
    let nnf: Vec<Option<ExprId>> = raw
        .iter()
        .map(|id| id.map(|id| workload.pool_mut().nnf(id)))
        .collect();
    let items: Vec<LintItem> = workload
        .queries()
        .iter()
        .zip(&nnf)
        .map(|(q, nnf)| match &q.kind {
            QueryKind::Subset(mask) => LintItem::Subset { mask: mask.clone() },
            QueryKind::Pred(_) => LintItem::Pred {
                nnf: nnf.expect("pred query has an nnf id"),
            },
        })
        .collect();

    let mut report = LintReport::default();
    dead_and_duplicate_pass(workload, &items, &noises, cfg, &mut report);
    differencing_pass(workload, &items, &noises, n, cfg, &mut report);
    matrix_passes(workload, &nnf, n, cfg, &mut report);
    density_pass(&noises, n, cfg, &mut report);
    budget_pass(&noises, cfg, &mut report);
    report
}

/// Convenience: [`lint_workload`] with [`LintConfig::default`].
pub fn lint_workload_default(workload: &mut WorkloadSpec) -> LintReport {
    lint_workload(workload, &LintConfig::default())
}

fn dead_and_duplicate_pass(
    workload: &WorkloadSpec,
    items: &[LintItem],
    noises: &[Noise],
    cfg: &LintConfig,
    report: &mut LintReport,
) {
    let mut dead = 0usize;
    let mut dups = 0usize;
    // Structural identity: pool id for predicates, mask words for subsets.
    let mut seen: HashMap<(u8, Vec<u64>), usize> = HashMap::new();
    for (i, item) in items.iter().enumerate() {
        // Only exact releases: a repeated *noisy* query is legitimate
        // (independent noise draws), and a noisy tautology is just a noisy
        // total count.
        if noises[i] != Noise::Exact {
            continue;
        }
        let key = match item {
            LintItem::Pred { nnf } => {
                let pool = workload.pool();
                if *nnf == pool.tru() && dead < cfg.max_findings_per_lint {
                    dead += 1;
                    report.findings.push(Finding {
                        lint: LintId::Tautology,
                        severity: Severity::Warn,
                        queries: vec![i],
                        message: "predicate normalizes to TRUE — it matches every record, \
                                  cannot isolate, and wastes a query"
                            .to_owned(),
                        evidence: None,
                    });
                }
                if *nnf == pool.fals() && dead < cfg.max_findings_per_lint {
                    dead += 1;
                    report.findings.push(Finding {
                        lint: LintId::Contradiction,
                        severity: Severity::Warn,
                        queries: vec![i],
                        message: "predicate normalizes to FALSE — the answer is always 0"
                            .to_owned(),
                        evidence: None,
                    });
                }
                (0u8, vec![u64::from(nnf.index() as u32)])
            }
            LintItem::Subset { mask } => {
                if mask.count_ones() == 0 && dead < cfg.max_findings_per_lint {
                    dead += 1;
                    report.findings.push(Finding {
                        lint: LintId::Contradiction,
                        severity: Severity::Warn,
                        queries: vec![i],
                        message: "empty subset query — the answer is always 0".to_owned(),
                        evidence: None,
                    });
                }
                (1u8, mask.words().to_vec())
            }
        };
        if let Some(&first) = seen.get(&key) {
            if dups < cfg.max_findings_per_lint {
                dups += 1;
                report.findings.push(Finding {
                    lint: LintId::Duplicate,
                    severity: Severity::Warn,
                    queries: vec![first, i],
                    message: format!(
                        "query #{i} is structurally identical to #{first} under exact release — \
                         a repeated answer adds no information and aliases the bitmap cache"
                    ),
                    evidence: None,
                });
            }
        } else {
            seen.insert(key, i);
        }
    }
}

fn differencing_pass(
    workload: &mut WorkloadSpec,
    items: &[LintItem],
    noises: &[Noise],
    n: usize,
    cfg: &LintConfig,
    report: &mut LintReport,
) {
    let t = cfg.isolation_threshold;
    // Pre-compute conjunct sets for predicate queries.
    let conjunct_sets: Vec<Option<HashSet<ExprId>>> = items
        .iter()
        .map(|item| match item {
            LintItem::Pred { nnf } => Some(workload.pool().conjuncts(*nnf).into_iter().collect()),
            LintItem::Subset { .. } => None,
        })
        .collect();

    // Quadratic-blowup guard: instead of testing all m·(m−1)/2 pairs,
    // bucket on structure first and examine only candidates that could
    // possibly fire.
    //
    // * Subsets: strict containment differing on 1..=t rows forces a
    //   popcount gap in 1..=t — bucketing masks by popcount is *exact*, no
    //   qualifying pair is ever skipped.
    // * Predicates: a refinement pair shares every conjunct of its smaller
    //   side, so the union of the per-conjunct posting lists is a sound
    //   candidate superset.
    //
    // Candidates are examined in ascending (i, j) order — the same order
    // the unbucketed pass used — so finding order is unchanged.
    let mut pop_buckets: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut postings: HashMap<ExprId, Vec<usize>> = HashMap::new();
    for (i, item) in items.iter().enumerate() {
        match item {
            LintItem::Subset { mask } => {
                pop_buckets.entry(mask.count_ones()).or_default().push(i);
            }
            LintItem::Pred { .. } => {
                for &c in conjunct_sets[i].as_ref().expect("pred") {
                    // Each posting list stays ascending in i because the
                    // outer loop is; conjunct-set iteration order only
                    // decides which lists get pushed first.
                    postings.entry(c).or_default().push(i);
                }
            }
        }
    }

    let mut found = 0usize;
    'outer: for i in 0..items.len() {
        let mut cands: Vec<usize> = Vec::new();
        match &items[i] {
            LintItem::Subset { mask } => {
                let pop = mask.count_ones();
                for gap in 1..=t {
                    for p in [pop.checked_sub(gap), Some(pop + gap)]
                        .into_iter()
                        .flatten()
                    {
                        if let Some(bucket) = pop_buckets.get(&p) {
                            cands.extend(bucket.iter().copied().filter(|&j| j > i));
                        }
                    }
                }
            }
            LintItem::Pred { .. } => {
                for &c in conjunct_sets[i].as_ref().expect("pred") {
                    if let Some(list) = postings.get(&c) {
                        cands.extend(list.iter().copied().filter(|&j| j > i));
                    }
                }
            }
        }
        cands.sort_unstable();
        cands.dedup();
        for j in cands {
            if report.pairs_examined >= cfg.pair_budget || found >= cfg.max_findings_per_lint {
                report.truncated = true;
                break 'outer;
            }
            report.pairs_examined += 1;
            if !effectively_exact(noises[i], noises[j]) {
                continue;
            }
            let finding = match (&items[i], &items[j]) {
                (LintItem::Subset { mask: a }, LintItem::Subset { mask: b }) => {
                    subset_differencing(i, a, j, b, t)
                }
                (LintItem::Pred { nnf: a }, LintItem::Pred { nnf: b }) => pred_differencing(
                    workload,
                    (i, *a, conjunct_sets[i].as_ref().expect("pred")),
                    (j, *b, conjunct_sets[j].as_ref().expect("pred")),
                    n,
                    t,
                ),
                _ => None,
            };
            if let Some(f) = finding {
                report.findings.push(f);
                found += 1;
            }
        }
    }
}

/// Exact set arithmetic on subset masks: if one query's membership strictly
/// contains the other's and the set difference holds at most `t` rows, the
/// pair of answers reveals the exact sub-count of those rows.
fn subset_differencing(i: usize, a: &BitVec, j: usize, b: &BitVec, t: usize) -> Option<Finding> {
    let (sup_idx, sup, sub_idx, sub) = if contains(a, b) && !contains(b, a) {
        (i, a, j, b)
    } else if contains(b, a) && !contains(a, b) {
        (j, b, i, a)
    } else {
        return None;
    };
    let diff: Vec<usize> = difference_indices(sup, sub);
    if diff.is_empty() || diff.len() > t {
        return None;
    }
    Some(Finding {
        lint: LintId::Differencing,
        severity: Severity::Deny,
        queries: vec![sup_idx, sub_idx],
        message: format!(
            "subset query #{sub_idx} ⊂ #{sup_idx} and they differ on exactly {} row(s) {:?}: \
             subtracting the two exact answers reveals those rows' secret bits \
             (Theorem 1.1's reconstruction premise with m = 2)",
            diff.len(),
            diff
        ),
        evidence: Some(Evidence {
            chain: vec![sup_idx, sub_idx],
            width_hi: Some(diff.len() as f64),
            region: Some(format!("rows {diff:?}")),
            ..Evidence::default()
        }),
    })
}

/// `a ⊇ b` as masks (every member of `b` is in `a`).
fn contains(a: &BitVec, b: &BitVec) -> bool {
    a.words()
        .iter()
        .zip(b.words())
        .all(|(wa, wb)| wb & !wa == 0)
}

/// Indices in `sup` but not `sub`.
fn difference_indices(sup: &BitVec, sub: &BitVec) -> Vec<usize> {
    let mut out = Vec::new();
    for (w, (wsup, wsub)) in sup.words().iter().zip(sub.words()).enumerate() {
        let mut d = wsup & !wsub;
        while d != 0 {
            let bit = d.trailing_zeros() as usize;
            out.push(w * 64 + bit);
            d &= d - 1;
        }
    }
    out
}

/// Symbolic differencing on predicate queries: when one query's conjunct
/// set strictly extends the other's (`B = A ∧ R`), the answers differ by
/// the count of the residue `A ∧ ¬R`. The pair is flagged only when the
/// residue's *design weight* bounds that count by `t` — bit and keyed-hash
/// atoms have designed weights (`1/2`, `1/modulus`); data-dependent atoms
/// contribute the vacuous `[0, 1]`, so honest drill-downs over tabular
/// attributes never fire this lint.
fn pred_differencing(
    workload: &mut WorkloadSpec,
    (i, a, ca): (usize, ExprId, &HashSet<ExprId>),
    (j, b, cb): (usize, ExprId, &HashSet<ExprId>),
    n: usize,
    t: usize,
) -> Option<Finding> {
    let (base_idx, base, fine_idx, _fine, extras) = if ca.len() < cb.len() && ca.is_subset(cb) {
        let extras: Vec<ExprId> = cb.difference(ca).copied().collect();
        (i, a, j, b, extras)
    } else if cb.len() < ca.len() && cb.is_subset(ca) {
        let extras: Vec<ExprId> = ca.difference(cb).copied().collect();
        (j, b, i, a, extras)
    } else {
        return None;
    };
    let pool = workload.pool_mut();
    let refinement = pool.and(extras);
    let neg = pool.not(refinement);
    let residue = pool.nnf(neg);
    let residue = pool.and([base, residue]);
    let (_, hi) = pool.weight_interval(residue);
    let expected = n as f64 * hi;
    if residue == pool.fals() || expected > t as f64 + 1e-9 {
        return None;
    }
    let rendered = pool.render(residue);
    Some(Finding {
        lint: LintId::Differencing,
        severity: Severity::Deny,
        queries: vec![base_idx, fine_idx],
        message: format!(
            "query #{fine_idx} refines #{base_idx}: subtracting the exact answers counts the \
             residue {rendered}, whose design weight bounds it to ≤ {expected:.2} of {n} rows \
             (t = {t}) — the differencing/tracker shape of Theorems 1.1 and 2.8"
        ),
        evidence: Some(Evidence {
            chain: vec![base_idx, fine_idx],
            width_hi: Some(expected),
            region: Some(rendered),
            ..Evidence::default()
        }),
    })
}

/// Lowers each query family to its abstract matrix over atom-partition
/// cells ([`crate::matrix`]) and runs the three structural passes.
fn matrix_passes(
    workload: &WorkloadSpec,
    nnf: &[Option<ExprId>],
    n: usize,
    cfg: &LintConfig,
    report: &mut LintReport,
) {
    // The accuracy cut is the LP-regime one: only rows answered to within
    // α ≤ lp_alpha_factor·√n (Theorem 1.1(ii)'s accuracy) participate.
    let alpha_cut = cfg.lp_alpha_factor * (n as f64).sqrt();
    let caps = MatrixCaps {
        max_cells: cfg.matrix_max_cells,
        bit_budget: cfg.matrix_bit_budget,
    };
    for lowered in [
        lower_subsets(workload, alpha_cut, caps),
        lower_predicates(workload, nnf, alpha_cut, caps),
    ] {
        match lowered {
            Lowered::Empty => {}
            // Cell refinement grows monotonically, so hitting a cap does
            // not depend on query order — but the skipped passes mean the
            // report must not read as a clean bill.
            Lowered::Truncated => report.truncated = true,
            Lowered::Built(m) => {
                linrec_pass(&m, cfg, report);
                tracker_pass(&m, cfg, report);
                cover_pass(&m, cfg, report);
            }
        }
    }
}

/// `SO-LINREC`: full structural column rank over a partition that contains
/// a narrow cell. GF(2) rank is tried first (cheap, word-parallel, and a
/// sound *lower* bound on the rational rank for 0/1 matrices — full GF(2)
/// column rank is proof); only if it falls short is the `f64` Gauss–Jordan
/// estimate consulted.
fn linrec_pass(m: &QueryMatrix, cfg: &LintConfig, report: &mut LintReport) {
    let cells = m.cells.len();
    if cells < cfg.linrec_min_cells {
        return;
    }
    let t = cfg.isolation_threshold as f64;
    // Without a narrow cell, full rank pins only counts of wide regions:
    // reconstruction of aggregates, but nothing singled out.
    let Some(narrow) = m
        .cells
        .iter()
        .filter(|c| c.width_hi > 0.0 && c.width_hi <= t)
        .min_by(|a, b| a.width_hi.total_cmp(&b.width_hi))
    else {
        return;
    };
    let mut rank = gf2_rank(&m.rows, cells);
    if rank < cells {
        rank = RowBasis::build(&m.rows, cells, |_| true).rank();
    }
    if rank < cells {
        return;
    }
    report.findings.push(Finding {
        lint: LintId::LinearReconstruction,
        severity: Severity::Deny,
        queries: m.queries.clone(),
        message: format!(
            "the {} sufficiently-accurate queries have full structural rank {rank} over the \
             {cells} disjoint cells their atoms induce: the released answers determine every \
             cell count, including the region [{}] of ≤ {:.2} expected rows — the KRS \
             linear-reconstruction feasibility criterion (arXiv:1210.2381)",
            m.queries.len(),
            narrow.label,
            narrow.width_hi,
        ),
        evidence: Some(Evidence {
            rank: Some(rank),
            cells: Some(cells),
            width_hi: Some(narrow.width_hi),
            region: Some(narrow.label.clone()),
            ..Evidence::default()
        }),
    });
}

/// `SO-TRACKER`: budgeted chain search over the lattice of derivable cell
/// sets ([`crate::lattice`]).
fn tracker_pass(m: &QueryMatrix, cfg: &LintConfig, report: &mut LintReport) {
    let t = cfg.isolation_threshold as f64;
    let res = crate::lattice::search(
        m,
        t,
        cfg.tracker_budget,
        cfg.max_chain_len,
        cfg.max_findings_per_lint,
    );
    report.tracker_combos_examined += res.combos_examined;
    if res.truncated {
        report.truncated = true;
    }
    for chain in res.chains {
        let queries: Vec<usize> = chain.rows.iter().map(|&r| m.queries[r]).collect();
        let region = chain
            .cells
            .iter()
            .map(|&c| m.cells[c].label.as_str())
            .collect::<Vec<_>>()
            .join(" ∪ ");
        let message = format!(
            "tracker chain of {} admitted queries: repeated differencing of their answers \
             derives the count of [{region}], bounded by design to ≤ {:.2} expected rows with \
             total answer error < 0.5 — the tracker composition of Theorem 2.8, generalized \
             over the cell lattice",
            queries.len(),
            chain.width_hi,
        );
        report.findings.push(Finding {
            lint: LintId::TrackerChain,
            severity: Severity::Deny,
            queries: queries.clone(),
            message,
            evidence: Some(Evidence {
                chain: queries,
                width_hi: Some(chain.width_hi),
                region: Some(region),
                ..Evidence::default()
            }),
        });
    }
}

/// `SO-COVER`: a narrow cell whose indicator lies in the rational row span
/// of the bitwise-exact releases — some admitted linear combination of the
/// answers *is* that cell's count. Reports the witnessing combination's
/// query indices.
fn cover_pass(m: &QueryMatrix, cfg: &LintConfig, report: &mut LintReport) {
    let t = cfg.isolation_threshold as f64;
    let cells = m.cells.len();
    // Only exact releases combine safely for the attacker here: rational
    // coefficients can scale bounded noise past any certification margin,
    // so noisy rows are excluded from the span.
    let basis = RowBasis::build(&m.rows, cells, |r| m.alphas[r] == 0.0);
    if basis.rank() == 0 {
        return;
    }
    let mut found = 0usize;
    for (c, cell) in m.cells.iter().enumerate() {
        if cell.width_hi <= 0.0 || cell.width_hi > t {
            continue;
        }
        if found >= cfg.max_findings_per_lint {
            report.truncated = true;
            break;
        }
        let Some(rows) = basis.span_witness(c) else {
            continue;
        };
        found += 1;
        let queries: Vec<usize> = rows.iter().map(|&r| m.queries[r]).collect();
        let message = format!(
            "cell [{}] (≤ {:.2} expected rows) is isolated by an admitted combination: a \
             rational combination of the exact answers to {} quer{} equals its count — the \
             static precursor of an online cover attack",
            cell.label,
            cell.width_hi,
            queries.len(),
            if queries.len() == 1 { "y" } else { "ies" },
        );
        report.findings.push(Finding {
            lint: LintId::CellCover,
            severity: Severity::Deny,
            queries: queries.clone(),
            message,
            evidence: Some(Evidence {
                chain: queries,
                width_hi: Some(cell.width_hi),
                region: Some(cell.label.clone()),
                ..Evidence::default()
            }),
        });
    }
}

fn density_pass(noises: &[Noise], n: usize, cfg: &LintConfig, report: &mut LintReport) {
    if n == 0 {
        return;
    }
    let m = noises.len();
    // Theorem 1.1(i): all 2^n subset queries within α = o(n) reconstruct to
    // 4α errors. Half the subsets already determine the rest, so 2^(n-1)
    // accurate-to-n/4 queries is treated as the exhaustive regime.
    if n < 63 {
        let m_exh = noises
            .iter()
            .filter(|nz| nz.effective_alpha() <= n as f64 / 4.0)
            .count() as u128;
        if m_exh >= 1u128 << (n - 1) {
            report.findings.push(Finding {
                lint: LintId::ReconstructionDensity,
                severity: Severity::Deny,
                queries: vec![],
                message: format!(
                    "{m_exh} queries with error ≤ n/4 over only {n} rows reaches the exhaustive \
                     Dinur–Nissim regime (2^(n−1) = {}): any consistent candidate dataset agrees \
                     with the secret on all but 4α entries (Theorem 1.1(i))",
                    1u128 << (n - 1)
                ),
                evidence: None,
            });
        }
    }
    // Theorem 1.1(ii): m ≳ lp_ratio·n random queries within α = O(√n)
    // admit LP decoding.
    let alpha_cut = cfg.lp_alpha_factor * (n as f64).sqrt();
    let m_lp = noises
        .iter()
        .filter(|nz| nz.effective_alpha() <= alpha_cut)
        .count();
    if (m_lp as f64) >= cfg.lp_ratio * n as f64 {
        report.findings.push(Finding {
            lint: LintId::ReconstructionDensity,
            severity: Severity::Deny,
            queries: vec![],
            message: format!(
                "{m_lp} of {m} queries have error ≤ {alpha_cut:.1} ≈ √n over {n} rows — past the \
                 {}·n LP-decoding density of Theorem 1.1(ii); linear programming reconstructs \
                 all but o(n) of the secret bits",
                cfg.lp_ratio
            ),
            evidence: None,
        });
    }
}

fn budget_pass(noises: &[Noise], cfg: &LintConfig, report: &mut LintReport) {
    let Some(budget) = cfg.epsilon_budget else {
        return;
    };
    // Exact or merely-bounded releases have unbounded worst-case ε.
    let unbounded: Vec<usize> = noises
        .iter()
        .enumerate()
        .filter(|(_, nz)| !matches!(nz, Noise::PureDp { .. }))
        .map(|(i, _)| i)
        .collect();
    if !unbounded.is_empty() {
        let shown: Vec<usize> = unbounded
            .iter()
            .copied()
            .take(cfg.max_findings_per_lint)
            .collect();
        report.findings.push(Finding {
            lint: LintId::BudgetExceeded,
            severity: Severity::Deny,
            queries: shown,
            message: format!(
                "{} queries are not released through a DP mechanism — under an ε-gated policy \
                 their worst-case privacy loss is unbounded",
                unbounded.len()
            ),
            evidence: None,
        });
    }
    let dp: Vec<(usize, f64)> = noises
        .iter()
        .enumerate()
        .filter_map(|(i, nz)| match nz {
            Noise::PureDp { epsilon } => Some((i, *epsilon)),
            _ => None,
        })
        .collect();
    if dp.is_empty() {
        return;
    }
    let costs: Vec<f64> = dp.iter().map(|&(_, e)| e).collect();
    let pre = PrivacyAccountant::new(budget).precheck(&costs);
    if !pre.admissible {
        let first = pre.first_refused.map(|k| dp[k].0);
        report.findings.push(Finding {
            lint: LintId::BudgetExceeded,
            severity: Severity::Deny,
            queries: first.into_iter().collect(),
            message: format!(
                "worst-case composed cost ε = {:.3} exceeds the budget {:.3}; the first query \
                 past the budget is #{} — refusing up front spends nothing (the accountant's \
                 precheck, basic composition)",
                pre.total,
                budget,
                first.unwrap_or(0)
            ),
            evidence: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_query::predicate::{
        AllRowPredicate, IntRangePredicate, KeyedHashPredicate, NotRowPredicate, RowHashPredicate,
        ValueEqualsPredicate,
    };
    use so_query::query::SubsetQuery;
    use so_query::shape::PredShape;

    fn cfg() -> LintConfig {
        LintConfig::default()
    }

    #[test]
    fn subset_differencing_fires_on_nested_exact_pair() {
        let mut w = WorkloadSpec::new(10);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1, 2, 3]), Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1, 2]), Noise::Exact);
        let r = lint_workload(&mut w, &cfg());
        assert!(r.denies());
        let d = r.findings_for(LintId::Differencing);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].queries, vec![0, 1], "superset first, subset second");
        assert!(
            d[0].message.contains("[3]"),
            "isolated row named: {}",
            d[0].message
        );
    }

    #[test]
    fn subset_differencing_respects_threshold_and_noise() {
        // Difference of 3 rows > t = 1: clean.
        let mut w = WorkloadSpec::new(10);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1, 2, 3]), Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(10, &[0]), Noise::Exact);
        assert_eq!(lint_workload(&mut w, &cfg()).count(LintId::Differencing), 0);
        // Same nested pair under DP noise: differencing cannot be proven.
        let mut w = WorkloadSpec::new(10);
        let dp = Noise::PureDp { epsilon: 0.1 };
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1, 2, 3]), dp);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1, 2]), dp);
        assert_eq!(lint_workload(&mut w, &cfg()).count(LintId::Differencing), 0);
        // Incomparable subsets: clean.
        let mut w = WorkloadSpec::new(10);
        w.push_subset(&SubsetQuery::from_indices(10, &[0, 1]), Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(10, &[1, 2]), Noise::Exact);
        assert_eq!(lint_workload(&mut w, &cfg()).count(LintId::Differencing), 0);
    }

    #[test]
    fn hash_tracker_pair_is_flagged_with_indices() {
        // A = everyone, B = A ∧ ¬(hash residue with modulus ≥ n): the
        // residue A ∧ hash has design weight 1/modulus ⇒ ≤ 1 expected row.
        let n = 100;
        let hash = RowHashPredicate {
            hash: KeyedHashPredicate::new(0xBEEF, 128, 0),
            cols: vec![0],
        };
        let b = AllRowPredicate {
            parts: vec![
                Box::new(IntRangePredicate {
                    col: 0,
                    lo: 0,
                    hi: 1000,
                }),
                Box::new(NotRowPredicate {
                    inner: Box::new(hash.clone()),
                }),
            ],
        };
        let mut w = WorkloadSpec::new(n);
        // A carries the same range conjunct, so B strictly refines A.
        let a = AllRowPredicate {
            parts: vec![Box::new(IntRangePredicate {
                col: 0,
                lo: 0,
                hi: 1000,
            })],
        };
        w.push_predicate(&a, Noise::Exact);
        w.push_predicate(&b, Noise::Exact);
        let r = lint_workload(&mut w, &cfg());
        let d = r.findings_for(LintId::Differencing);
        assert_eq!(d.len(), 1, "findings: {:?}", r.findings);
        assert_eq!(d[0].queries, vec![0, 1]);
        assert_eq!(d[0].severity, Severity::Deny);
    }

    #[test]
    fn honest_drilldown_is_clean() {
        // (dept), (dept ∧ sex=M): a textbook cross-tab. The residue's
        // weight interval is vacuous, so nothing is provable — no finding.
        let dept = ValueEqualsPredicate {
            col: 0,
            value: so_data::Value::Int(3),
        };
        let drill = AllRowPredicate {
            parts: vec![
                Box::new(ValueEqualsPredicate {
                    col: 0,
                    value: so_data::Value::Int(3),
                }),
                Box::new(ValueEqualsPredicate {
                    col: 1,
                    value: so_data::Value::Int(1),
                }),
            ],
        };
        let mut w = WorkloadSpec::new(50);
        w.push_predicate(&dept, Noise::Exact);
        w.push_predicate(&drill, Noise::Exact);
        let r = lint_workload(&mut w, &cfg());
        assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    }

    #[test]
    fn prefix_descent_flags_only_past_the_weight_gate() {
        // The Theorem 2.8 chain: prefixes of one record's bits, exact
        // counts. Adjacent pairs (depth k, k+1) leave residue weight
        // 2^-(k+1); with n = 100 that proves ≤ 1 row only once k+1 ≥ 7.
        let n = 100usize;
        let bits: Vec<bool> = (0..14).map(|i| i % 3 == 0).collect();
        let mut w = WorkloadSpec::new(n);
        for depth in 0..=bits.len() {
            w.push_shape(
                &PredShape::Prefix {
                    bits: bits[..depth].to_vec(),
                },
                Noise::Exact,
            );
        }
        let mut c = cfg();
        c.max_findings_per_lint = 100;
        let r = lint_workload(&mut w, &c);
        let d = r.findings_for(LintId::Differencing);
        assert!(!d.is_empty(), "deep descent must be flagged");
        for f in &d {
            // Every flagged pair's base prefix is past the weight gate:
            // residue weight 2^-(base) · bound ≤ 1/n needs base ≥ 6.
            let base = f.queries[0].min(f.queries[1]);
            assert!(base >= 6, "shallow pair flagged: {f}");
        }
        // The adjacent pair (6, 7) specifically is caught.
        assert!(
            d.iter().any(|f| f.queries == vec![6, 7]),
            "expected the (6,7) adjacent pair, got {:?}",
            d.iter().map(|f| f.queries.clone()).collect::<Vec<_>>()
        );
        // The same chain under DP is clean.
        let mut w = WorkloadSpec::new(n);
        for depth in 0..=bits.len() {
            w.push_shape(
                &PredShape::Prefix {
                    bits: bits[..depth].to_vec(),
                },
                Noise::PureDp { epsilon: 0.1 },
            );
        }
        let r = lint_workload(&mut w, &cfg());
        assert!(r.findings.is_empty(), "findings: {:?}", r.findings);
    }

    #[test]
    fn density_flags_exhaustive_and_lp_regimes() {
        // Exhaustive: all 2^8 subsets of an 8-row dataset, α = n/8 < n/4.
        let mut w = WorkloadSpec::new(8);
        for m in 0..(1u16 << 8) {
            let idx: Vec<usize> = (0..8).filter(|&i| m & (1 << i) != 0).collect();
            w.push_subset(
                &SubsetQuery::from_indices(8, &idx),
                Noise::Bounded { alpha: 1.0 },
            );
        }
        let r = lint_workload(&mut w, &cfg());
        assert!(r.denies());
        assert!(r.count(LintId::ReconstructionDensity) >= 1);
        // LP: 4n bounded-noise queries at α ≤ √n. (Use distinct masks.)
        let n = 64usize;
        let mut w = WorkloadSpec::new(n);
        for k in 0..(4 * n) {
            let idx: Vec<usize> = (0..n).filter(|&i| (i * 31 + k * 17) % 5 < 2).collect();
            let mut q = SubsetQuery::from_indices(n, &idx);
            // Perturb one bit per query to keep them distinct.
            let mut mask = q.members().clone();
            mask.set(k % n, !mask.get(k % n));
            q = SubsetQuery::new(mask);
            w.push_subset(&q, Noise::Bounded { alpha: 4.0 });
        }
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::ReconstructionDensity), 1);
        assert!(r.denies());
        // Same m but DP with big noise: clean density.
        let mut w = WorkloadSpec::new(n);
        for k in 0..(4 * n) {
            let idx: Vec<usize> = (0..n).filter(|&i| (i + k) % 3 == 0).collect();
            w.push_subset(
                &SubsetQuery::from_indices(n, &idx),
                Noise::PureDp { epsilon: 0.05 },
            );
        }
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::ReconstructionDensity), 0);
    }

    #[test]
    fn budget_pass_prechecks_statically() {
        let mut c = cfg();
        c.epsilon_budget = Some(1.0);
        // Within budget: clean.
        let mut w = WorkloadSpec::new(100);
        for _ in 0..9 {
            w.push_shape(
                &PredShape::BitExtract {
                    bit: 0,
                    value: true,
                },
                Noise::PureDp { epsilon: 0.1 },
            );
        }
        let r = lint_workload(&mut w, &c);
        assert_eq!(r.count(LintId::BudgetExceeded), 0, "{:?}", r.findings);
        // Over budget: the first offending query is named.
        let mut w = WorkloadSpec::new(100);
        for i in 0..15 {
            w.push_shape(
                &PredShape::BitExtract {
                    bit: i,
                    value: true,
                },
                Noise::PureDp { epsilon: 0.1 },
            );
        }
        let r = lint_workload(&mut w, &c);
        let b = r.findings_for(LintId::BudgetExceeded);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].queries, vec![10], "1.1 > 1.0 at the 11th query");
        // Exact queries under an ε-gated policy are unbounded cost.
        let mut w = WorkloadSpec::new(100);
        w.push_shape(
            &PredShape::BitExtract {
                bit: 0,
                value: true,
            },
            Noise::Exact,
        );
        let r = lint_workload(&mut w, &c);
        assert_eq!(r.count(LintId::BudgetExceeded), 1);
        assert!(r.denies());
    }

    #[test]
    fn dead_and_duplicate_queries_warn() {
        let mut w = WorkloadSpec::new(10);
        let tru = w.pool_mut().tru();
        let fals = w.pool_mut().fals();
        w.push_expr(tru, Noise::Exact);
        w.push_expr(fals, Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(10, &[1, 2]), Noise::Exact);
        w.push_subset(&SubsetQuery::from_indices(10, &[1, 2]), Noise::Exact);
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::Tautology), 1);
        assert_eq!(r.count(LintId::Contradiction), 1);
        let dups = r.findings_for(LintId::Duplicate);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].queries, vec![2, 3]);
        // Warnings alone do not deny... but the duplicated exact subsets
        // also difference against nothing (equal, not strict) — verify.
        assert_eq!(r.count(LintId::Differencing), 0);
        assert!(!r.denies());
        // Noisy repeats are fine.
        let mut w = WorkloadSpec::new(10);
        let dp = Noise::PureDp { epsilon: 0.5 };
        w.push_subset(&SubsetQuery::from_indices(10, &[1, 2]), dp);
        w.push_subset(&SubsetQuery::from_indices(10, &[1, 2]), dp);
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::Duplicate), 0);
    }

    #[test]
    fn pair_budget_truncates_and_reports_it() {
        // A nested chain: every adjacent pair survives popcount bucketing
        // (gap exactly 1), so the pair budget still bites.
        let mut w = WorkloadSpec::new(12);
        for i in 0..10 {
            w.push_subset(
                &SubsetQuery::from_indices(12, &(0..=i).collect::<Vec<_>>()),
                Noise::Exact,
            );
        }
        let mut c = cfg();
        c.pair_budget = 5;
        let r = lint_workload(&mut w, &c);
        assert!(r.truncated);
        assert_eq!(r.pairs_examined, 5);
    }

    #[test]
    fn popcount_bucketing_skips_hopeless_subset_pairs() {
        // Ten disjoint singletons: every pair has popcount gap 0, so the
        // bucketed pass examines no pair at all (the unbucketed pass
        // examined 45).
        let mut w = WorkloadSpec::new(16);
        for i in 0..10 {
            w.push_subset(&SubsetQuery::from_indices(16, &[i]), Noise::Exact);
        }
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.pairs_examined, 0);
        assert_eq!(r.count(LintId::Differencing), 0);
        // Far-apart popcounts are skipped too: {0..7} vs {0}.
        let mut w = WorkloadSpec::new(16);
        w.push_subset(
            &SubsetQuery::from_indices(16, &(0..8).collect::<Vec<_>>()),
            Noise::Exact,
        );
        w.push_subset(&SubsetQuery::from_indices(16, &[0]), Noise::Exact);
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.pairs_examined, 0);
    }

    #[test]
    fn lint_codes_round_trip_and_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for id in LintId::ALL {
            assert!(seen.insert(id.code()), "duplicate code {}", id.code());
            assert_eq!(LintId::from_code(id.code()), Some(id));
        }
        assert_eq!(LintId::from_code("SO-NOPE"), None);
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn linrec_fires_on_full_rank_with_a_narrow_cell() {
        // The classic linear release: population total plus all
        // complements-of-one over 6 rows. Rank 7 ≥ cells 6, singleton
        // cells everywhere.
        let n = 6usize;
        let mut w = WorkloadSpec::new(n);
        w.push_subset(
            &SubsetQuery::from_indices(n, &(0..n).collect::<Vec<_>>()),
            Noise::Exact,
        );
        for i in 0..n {
            let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            w.push_subset(&SubsetQuery::from_indices(n, &others), Noise::Exact);
        }
        let r = lint_workload(&mut w, &cfg());
        let lr = r.findings_for(LintId::LinearReconstruction);
        assert_eq!(lr.len(), 1, "findings: {:?}", r.findings);
        assert_eq!(lr[0].severity, Severity::Deny);
        assert_eq!(lr[0].queries, (0..=n).collect::<Vec<_>>());
        let ev = lr[0].evidence.as_ref().expect("evidence");
        assert_eq!(ev.rank, Some(n));
        assert_eq!(ev.cells, Some(n));
        assert_eq!(ev.width_hi, Some(1.0));
        // The same release at LP-grade noise keeps LINREC (rank is noise-
        // robust per KRS)…
        let mut w = WorkloadSpec::new(n);
        let noisy = Noise::Bounded { alpha: 1.0 };
        w.push_subset(
            &SubsetQuery::from_indices(n, &(0..n).collect::<Vec<_>>()),
            noisy,
        );
        for i in 0..n {
            let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            w.push_subset(&SubsetQuery::from_indices(n, &others), noisy);
        }
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::LinearReconstruction), 1);
        // …but DP noise past the α-cut silences every matrix pass.
        let mut w = WorkloadSpec::new(n);
        let dp = Noise::PureDp { epsilon: 0.5 };
        w.push_subset(
            &SubsetQuery::from_indices(n, &(0..n).collect::<Vec<_>>()),
            dp,
        );
        for i in 0..n {
            let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            w.push_subset(&SubsetQuery::from_indices(n, &others), dp);
        }
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::LinearReconstruction), 0);
        assert_eq!(r.count(LintId::TrackerChain), 0);
        assert_eq!(r.count(LintId::CellCover), 0);
    }

    #[test]
    fn tracker_chain_fires_where_pairwise_differencing_is_blind() {
        // Predicate tracker that no conjunct-refinement pair can see:
        // Q0 = 2-bit prefix (weight ¼), Q1 = hash residue (weight 1/32),
        // Q2 = Q0 ∨ Q1. Every pairwise difference is wide (≥ 2.3 expected
        // rows), but (Q2 − Q0) counts hash ∧ ¬prefix and Q1 minus that
        // counts hash ∧ prefix: 100/128 < 1 expected rows — a genuine
        // three-query tracker.
        let n = 100usize;
        let mut w = WorkloadSpec::new(n);
        let prefix = {
            let pool = w.pool_mut();
            let b0 = pool.atom(crate::ir::Atom::BitExtract {
                bit: 0,
                value: true,
            });
            let b1 = pool.atom(crate::ir::Atom::BitExtract {
                bit: 1,
                value: false,
            });
            pool.and([b0, b1])
        };
        let hash = w.pool_mut().atom(crate::ir::Atom::KeyedHash {
            key: 0xFEED,
            modulus: 32,
            target: 7,
        });
        let union = w.pool_mut().or([prefix, hash]);
        w.push_expr(prefix, Noise::Exact);
        w.push_expr(hash, Noise::Exact);
        w.push_expr(union, Noise::Exact);
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(
            r.count(LintId::Differencing),
            0,
            "no conjunct refinement pair exists: {:?}",
            r.findings
        );
        let tr = r.findings_for(LintId::TrackerChain);
        assert!(!tr.is_empty(), "findings: {:?}", r.findings);
        assert!(r.denies());
        let ev = tr[0].evidence.as_ref().expect("evidence");
        assert!(ev.chain.len() >= 3, "true chain, not a pair: {ev}");
        assert!(ev.width_hi.expect("width") <= 1.0);
        assert!(r.tracker_combos_examined > 0);
    }

    #[test]
    fn cover_fires_on_rational_combinations_beyond_differencing() {
        // Overlapping pairs {0,1}, {1,2}, {0,2}: no containment anywhere,
        // but e_row0 = ½(Q0 − Q1 + Q2). COVER must cite all three queries.
        let mut w = WorkloadSpec::new(10);
        for idx in [[0usize, 1], [1, 2], [0, 2]] {
            w.push_subset(&SubsetQuery::from_indices(10, &idx), Noise::Exact);
        }
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::Differencing), 0);
        assert_eq!(r.count(LintId::TrackerChain), 0, "{:?}", r.findings);
        let cv = r.findings_for(LintId::CellCover);
        assert_eq!(
            cv.len(),
            3,
            "each singleton cell is covered: {:?}",
            r.findings
        );
        assert_eq!(cv[0].queries, vec![0, 1, 2]);
        assert!(r.denies());
        // Same masks under bounded noise: rational combinations amplify
        // noise, so COVER stays silent.
        let mut w = WorkloadSpec::new(10);
        for idx in [[0usize, 1], [1, 2], [0, 2]] {
            w.push_subset(
                &SubsetQuery::from_indices(10, &idx),
                Noise::Bounded { alpha: 0.2 },
            );
        }
        let r = lint_workload(&mut w, &cfg());
        assert_eq!(r.count(LintId::CellCover), 0);
    }

    #[test]
    fn matrix_cell_cap_marks_the_report_truncated() {
        let mut w = WorkloadSpec::new(40);
        for i in 0..20 {
            w.push_subset(
                &SubsetQuery::from_indices(40, &[2 * i, 2 * i + 1]),
                Noise::Exact,
            );
        }
        let mut c = cfg();
        c.matrix_max_cells = 4;
        let r = lint_workload(&mut w, &c);
        assert!(r.truncated);
        assert_eq!(r.count(LintId::LinearReconstruction), 0);
    }

    #[test]
    fn matrix_findings_are_permutation_invariant() {
        // The three-query cover workload in both orders: identical code
        // multisets, query indices mapped through the permutation.
        let build = |order: [usize; 3]| {
            let masks = [[0usize, 1], [1, 2], [0, 2]];
            let mut w = WorkloadSpec::new(10);
            for &k in &order {
                w.push_subset(&SubsetQuery::from_indices(10, &masks[k]), Noise::Exact);
            }
            lint_workload(&mut w, &cfg())
        };
        let a = build([0, 1, 2]);
        let b = build([2, 0, 1]);
        for id in LintId::ALL {
            assert_eq!(a.count(id), b.count(id), "{id} differs across orders");
        }
    }
}
