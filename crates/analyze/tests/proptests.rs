//! Property-based tests: the lifted / NNF-normalized predicate-algebra IR is
//! row-for-row equivalent to the original predicates, and the structural
//! hash is injective on the generated expression space.

use proptest::prelude::*;
use rand::Rng;
use so_analyze::ir::PredPool;
use so_data::rng::seeded_rng;
use so_data::{
    AttributeDef, AttributeRole, BitVec, DataType, Dataset, DatasetBuilder, Schema, Value,
};
use so_query::predicate::{
    AllRowPredicate, AndPredicate, AnyRowPredicate, BitExtractPredicate, IntRangePredicate,
    KeyedHashPredicate, NotPredicate, NotRowPredicate, OrPredicate, Predicate, PrefixPredicate,
    RowPredicate, ValueEqualsPredicate,
};
use so_query::scan_dataset;

/// Arbitrary two-int-column dataset. Row counts range over 1..200, so
/// `n % 64 != 0` tail words are the common case and exact multiples of 64
/// are exercised too.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(
        (
            (any::<bool>(), -20i64..20).prop_map(|(p, v)| p.then_some(v)),
            0i64..4,
        ),
        1..200,
    )
    .prop_map(|rows| {
        let schema = Schema::new(vec![
            AttributeDef::new("a", DataType::Int, AttributeRole::QuasiIdentifier),
            AttributeDef::new("b", DataType::Int, AttributeRole::Sensitive),
        ]);
        let mut b = DatasetBuilder::new(schema);
        for (a, v) in rows {
            b.push_row(vec![a.map_or(Value::Missing, Value::Int), Value::Int(v)]);
        }
        b.finish()
    })
}

/// A random `RowPredicate` tree with nested And/Or/Not over range and
/// value-equality atoms (the honest-workload shapes).
fn random_row_tree(rng: &mut impl Rng, depth: usize) -> Box<dyn RowPredicate> {
    let leaf_only = depth == 0;
    match rng.gen_range(0..if leaf_only { 2u32 } else { 5 }) {
        0 => {
            let lo = rng.gen_range(-25i64..20);
            Box::new(IntRangePredicate {
                col: 0,
                lo,
                hi: lo + rng.gen_range(0i64..20),
            })
        }
        1 => Box::new(ValueEqualsPredicate {
            col: 1,
            value: Value::Int(rng.gen_range(0i64..4)),
        }),
        2 => Box::new(AllRowPredicate {
            parts: (0..rng.gen_range(1usize..4))
                .map(|_| random_row_tree(rng, depth - 1))
                .collect(),
        }),
        3 => Box::new(AnyRowPredicate {
            parts: (0..rng.gen_range(1usize..4))
                .map(|_| random_row_tree(rng, depth - 1))
                .collect(),
        }),
        _ => Box::new(NotRowPredicate {
            inner: random_row_tree(rng, depth - 1),
        }),
    }
}

/// A random bit-string predicate tree over the paper's attack atoms
/// (single bits, prefixes, keyed-hash residues).
fn random_bit_tree(rng: &mut impl Rng, depth: usize) -> Box<dyn Predicate<BitVec>> {
    let leaf_only = depth == 0;
    match rng.gen_range(0..if leaf_only { 3u32 } else { 6 }) {
        0 => Box::new(BitExtractPredicate {
            bit: rng.gen_range(0usize..70),
            value: rng.gen_bool(0.5),
        }),
        1 => Box::new(PrefixPredicate {
            prefix: (0..rng.gen_range(0usize..8))
                .map(|_| rng.gen_bool(0.5))
                .collect(),
        }),
        2 => {
            let modulus = rng.gen_range(2u64..64);
            Box::new(KeyedHashPredicate::new(
                rng.gen::<u64>(),
                modulus,
                rng.gen_range(0..modulus),
            ))
        }
        3 => Box::new(AndPredicate {
            left: random_bit_tree(rng, depth - 1),
            right: random_bit_tree(rng, depth - 1),
        }),
        4 => Box::new(OrPredicate {
            left: random_bit_tree(rng, depth - 1),
            right: random_bit_tree(rng, depth - 1),
        }),
        _ => Box::new(NotPredicate {
            inner: random_bit_tree(rng, depth - 1),
        }),
    }
}

proptest! {
    /// Lifting a row-predicate tree into the pool, with and without NNF
    /// normalization, preserves its row-for-row semantics — and the
    /// word-parallel scan agrees, covering `n % 64 != 0` tails.
    #[test]
    fn lifted_and_nnf_eval_match_row_predicate(ds in arb_dataset(), seed in any::<u64>()) {
        let mut rng = seeded_rng(seed);
        let p = random_row_tree(&mut rng, 3);
        let mut pool = PredPool::new();
        let id = pool.lift(&p.shape());
        let nnf = pool.nnf(id);
        let mut lifted_count = 0usize;
        for row in 0..ds.n_rows() {
            let direct = p.eval_row(&ds, row);
            prop_assert_eq!(pool.eval_row(id, &ds, row), Some(direct), "row {}", row);
            prop_assert_eq!(pool.eval_row(nnf, &ds, row), Some(direct), "nnf row {}", row);
            lifted_count += usize::from(direct);
        }
        prop_assert_eq!(scan_dataset(&ds, p.as_ref()).count(), lifted_count);
    }

    /// The same equivalence for bit-string predicates (attack atoms),
    /// including records whose length is not a multiple of 64.
    #[test]
    fn lifted_and_nnf_eval_match_bit_predicate(
        seed in any::<u64>(),
        records in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 70), 1..20),
    ) {
        let mut rng = seeded_rng(seed);
        let p = random_bit_tree(&mut rng, 3);
        let mut pool = PredPool::new();
        let id = pool.lift(&p.shape());
        let nnf = pool.nnf(id);
        for bools in &records {
            let r = BitVec::from_bools(bools);
            let direct = p.eval(&r);
            prop_assert_eq!(pool.eval_bits(id, &r), Some(direct));
            prop_assert_eq!(pool.eval_bits(nnf, &r), Some(direct));
        }
    }

    /// Structural hashing is injective on the generated expression space:
    /// within one pool, two expressions share a hash iff they are the same
    /// interned expression.
    #[test]
    fn structural_hash_injective(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let mut pool = PredPool::new();
        let a = pool.lift(&random_row_tree(&mut seeded_rng(seed_a), 3).shape());
        let b = pool.lift(&random_row_tree(&mut seeded_rng(seed_b), 3).shape());
        prop_assert_eq!(pool.structural_hash(a) == pool.structural_hash(b), a == b);
        let c = pool.lift(&random_bit_tree(&mut seeded_rng(seed_a ^ 0xb17), 3).shape());
        let d = pool.lift(&random_bit_tree(&mut seeded_rng(seed_b ^ 0xb17), 3).shape());
        prop_assert_eq!(pool.structural_hash(c) == pool.structural_hash(d), c == d);
        // Row and bit expressions never collide with each other either.
        prop_assert_eq!(pool.structural_hash(a) == pool.structural_hash(c), a == c);
    }

    /// NNF is semantics-preserving under double negation of whole trees:
    /// ¬¬p normalizes back to p's normal form.
    #[test]
    fn double_negation_normalizes_away(seed in any::<u64>()) {
        let mut rng = seeded_rng(seed);
        let p = random_row_tree(&mut rng, 3);
        let mut pool = PredPool::new();
        let id = pool.lift(&p.shape());
        let n1 = pool.not(id);
        let n2 = pool.not(n1);
        prop_assert_eq!(n2, id);
        let nnf = pool.nnf(id);
        prop_assert_eq!(pool.nnf(nnf), nnf, "NNF is a fixpoint");
    }
}
