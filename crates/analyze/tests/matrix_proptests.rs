//! Property-based tests for the query-matrix lint passes (`SO-LINREC`,
//! `SO-TRACKER`, `SO-COVER`): honest tabular workloads are never flagged,
//! the attack batteries always are, DP noise past the accuracy cut silences
//! every matrix pass, and lint reports are invariant under query
//! permutation and under the execution-tuning environment knobs
//! (`SO_THREADS` / `SO_STORAGE` / `SO_SCHEDULE`) — the linter is static and
//! data-free, so nothing about *how* queries would execute may leak into
//! its verdicts.

use proptest::prelude::*;
use rand::Rng;
use so_analyze::{lint_workload, LintConfig, LintId, LintReport, Noise, WorkloadSpec};
use so_data::rng::seeded_rng;
use so_data::Value;
use so_query::predicate::{
    AllRowPredicate, AnyRowPredicate, IntRangePredicate, NotRowPredicate, RowPredicate,
    ValueEqualsPredicate,
};
use so_query::query::SubsetQuery;

/// The three structural matrix codes under test.
const MATRIX_CODES: [LintId; 3] = [
    LintId::LinearReconstruction,
    LintId::TrackerChain,
    LintId::CellCover,
];

fn matrix_findings(r: &LintReport) -> usize {
    MATRIX_CODES.iter().map(|&id| r.count(id)).sum()
}

/// A random honest predicate tree: nested And/Or/Not over tabular range and
/// value-equality atoms only — every atom's design weight is vacuous, so no
/// region is ever *provably* narrow.
fn honest_tree(rng: &mut impl Rng, depth: usize) -> Box<dyn RowPredicate> {
    let leaf_only = depth == 0;
    match rng.gen_range(0..if leaf_only { 2u32 } else { 5 }) {
        0 => {
            let lo = rng.gen_range(-25i64..20);
            Box::new(IntRangePredicate {
                col: 0,
                lo,
                hi: lo + rng.gen_range(0i64..20),
            })
        }
        1 => Box::new(ValueEqualsPredicate {
            col: 1,
            value: Value::Int(rng.gen_range(0i64..4)),
        }),
        2 => Box::new(AllRowPredicate {
            parts: (0..rng.gen_range(1usize..4))
                .map(|_| honest_tree(rng, depth - 1))
                .collect(),
        }),
        3 => Box::new(AnyRowPredicate {
            parts: (0..rng.gen_range(1usize..4))
                .map(|_| honest_tree(rng, depth - 1))
                .collect(),
        }),
        _ => Box::new(NotRowPredicate {
            inner: honest_tree(rng, depth - 1),
        }),
    }
}

fn arb_noise(rng: &mut impl Rng) -> Noise {
    match rng.gen_range(0..3u32) {
        0 => Noise::Exact,
        1 => Noise::Bounded {
            alpha: rng.gen_range(1..20) as f64 / 10.0,
        },
        _ => Noise::PureDp {
            epsilon: rng.gen_range(1..20) as f64 / 20.0,
        },
    }
}

/// The cycle release of E18: adjacent pairs `{i, (i+1) mod n}`, odd `n`.
fn cycle_release(n: usize, noise: Noise) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n);
    for i in 0..n {
        w.push_subset(&SubsetQuery::from_indices(n, &[i, (i + 1) % n]), noise);
    }
    w
}

/// The complement tracker: the total plus every complement-of-one.
fn complement_tracker(n: usize, noise: Noise) -> WorkloadSpec {
    let mut w = WorkloadSpec::new(n);
    w.push_subset(
        &SubsetQuery::from_indices(n, &(0..n).collect::<Vec<_>>()),
        noise,
    );
    for i in 0..n {
        let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        w.push_subset(&SubsetQuery::from_indices(n, &others), noise);
    }
    w
}

proptest! {
    /// Honest tabular workloads — arbitrary drill-downs, unions, negations
    /// over data-dependent atoms, at any mix of release noises — are never
    /// flagged by a matrix pass: their cells all have the vacuous width
    /// bound `n`, which can't certify isolation.
    #[test]
    fn honest_workloads_never_fire_matrix_codes(
        seed in any::<u64>(),
        n in 8usize..150,
        m in 1usize..12,
    ) {
        let mut rng = seeded_rng(seed);
        let mut w = WorkloadSpec::new(n);
        for _ in 0..m {
            let p = honest_tree(&mut rng, 2);
            let noise = arb_noise(&mut rng);
            w.push_predicate(p.as_ref(), noise);
        }
        let r = lint_workload(&mut w, &LintConfig::default());
        for id in MATRIX_CODES {
            prop_assert_eq!(r.count(id), 0, "{} fired on an honest workload: {:?}", id, r.findings);
        }
    }

    /// The attack batteries always fire, and DP noise always silences them:
    /// the cycle release is pairwise-blind but `SO-LINREC` catches its full
    /// rational rank; the complement tracker fires all three codes.
    #[test]
    fn batteries_always_fire_and_dp_always_silences(
        k in 0usize..5,
        eps_tenths in 1u32..10,
    ) {
        let cfg = LintConfig::default();
        let n = 2 * k + 3; // odd, ≥ 3
        let r = lint_workload(&mut cycle_release(n, Noise::Exact), &cfg);
        prop_assert_eq!(r.count(LintId::Differencing), 0);
        prop_assert_eq!(r.count(LintId::LinearReconstruction), 1, "{:?}", r.findings);
        prop_assert!(r.denies());

        let r = lint_workload(&mut complement_tracker(n, Noise::Exact), &cfg);
        prop_assert!(r.count(LintId::LinearReconstruction) >= 1, "{:?}", r.findings);
        prop_assert!(r.count(LintId::TrackerChain) >= 1, "{:?}", r.findings);
        prop_assert!(r.count(LintId::CellCover) >= 1, "{:?}", r.findings);

        // DP at any ε ≤ 1 has effective α ≥ ln(1000) > √n for these n:
        // every row misses the accuracy cut, the matrix is empty.
        let dp = Noise::PureDp { epsilon: f64::from(eps_tenths) / 10.0 };
        let r = lint_workload(&mut cycle_release(n, dp), &cfg);
        prop_assert_eq!(matrix_findings(&r), 0, "{:?}", r.findings);
        let r = lint_workload(&mut complement_tracker(n, dp), &cfg);
        prop_assert_eq!(matrix_findings(&r), 0, "{:?}", r.findings);
    }

    /// Per-code finding counts are invariant under query permutation: the
    /// cell partition is canonical and the searches run over sets, so
    /// declaration order can't change the verdict.
    #[test]
    fn lint_counts_are_permutation_invariant(
        seed in any::<u64>(),
        n in 4usize..32,
        m in 2usize..7,
    ) {
        let mut rng = seeded_rng(seed);
        let masks: Vec<Vec<usize>> = (0..m)
            .map(|_| {
                let len = rng.gen_range(1..=n);
                (0..n).filter(|_| rng.gen_range(0..n) < len).collect()
            })
            .collect();
        let mut order: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let lint_in = |idx: &[usize]| {
            let mut w = WorkloadSpec::new(n);
            for &k in idx {
                w.push_subset(&SubsetQuery::from_indices(n, &masks[k]), Noise::Exact);
            }
            lint_workload(&mut w, &LintConfig::default())
        };
        let a = lint_in(&(0..m).collect::<Vec<_>>());
        let b = lint_in(&order);
        for id in LintId::ALL {
            prop_assert_eq!(a.count(id), b.count(id), "{} differs across orders", id);
        }
        prop_assert_eq!(a.denies(), b.denies());
    }
}

/// The execution-tuning environment knobs must not perturb lint verdicts:
/// the linter never executes anything, so thread count, storage engine, and
/// scheduler selection are invisible to it. (Single `#[test]`, sequential
/// env mutation — env vars are process-global.)
#[test]
fn lint_reports_are_invariant_under_execution_env_knobs() {
    let render = |w: &mut WorkloadSpec| {
        let r = lint_workload(w, &LintConfig::default());
        format!("{:?}", r)
    };
    let run_all = || {
        let mut out = Vec::new();
        out.push(render(&mut cycle_release(7, Noise::Exact)));
        out.push(render(&mut complement_tracker(6, Noise::Exact)));
        let mut rng = seeded_rng(0xE18);
        let mut w = WorkloadSpec::new(60);
        for _ in 0..6 {
            let p = honest_tree(&mut rng, 2);
            w.push_predicate(p.as_ref(), Noise::Exact);
        }
        out.push(render(&mut w));
        out
    };
    let baseline = run_all();
    for (threads, storage, schedule) in [
        ("1", "packed", "static"),
        ("8", "packed", "static"),
        ("8", "unpacked", "static"),
        ("8", "packed", "morsel"),
    ] {
        std::env::set_var("SO_THREADS", threads);
        std::env::set_var("SO_STORAGE", storage);
        std::env::set_var("SO_SCHEDULE", schedule);
        assert_eq!(
            run_all(),
            baseline,
            "lint drifted under SO_THREADS={threads} SO_STORAGE={storage} SO_SCHEDULE={schedule}"
        );
    }
    for var in ["SO_THREADS", "SO_STORAGE", "SO_SCHEDULE"] {
        std::env::remove_var(var);
    }
}
