//! Property-based tests for the k-anonymity substrate.

use proptest::prelude::*;
use so_data::{AttributeDef, AttributeRole, DataType, Dataset, DatasetBuilder, Schema, Value};
use so_kanon::{
    datafly_anonymize, is_k_anonymous, mondrian_anonymize, AttributeHierarchy, DataflyConfig,
    GenValue, MondrianConfig,
};

fn build(rows: &[(i64, i64)]) -> Dataset {
    let schema = Schema::new(vec![
        AttributeDef::new("zip", DataType::Int, AttributeRole::QuasiIdentifier),
        AttributeDef::new("age", DataType::Int, AttributeRole::QuasiIdentifier),
    ]);
    let mut b = DatasetBuilder::new(schema);
    for &(zip, age) in rows {
        b.push_row(vec![Value::Int(zip), Value::Int(age)]);
    }
    b.finish()
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((10_000i64..10_030, 0i64..100), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mondrian output is k-anonymous (when n ≥ k), sound, and a partition.
    #[test]
    fn mondrian_invariants(rows in arb_rows(), k in 1usize..8) {
        let ds = build(&rows);
        let anon = mondrian_anonymize(&ds, &[0, 1], &MondrianConfig { k });
        prop_assert!(anon.is_sound(&ds));
        prop_assert!(anon.is_partition());
        if rows.len() >= k {
            prop_assert!(is_k_anonymous(&anon, k));
        }
        prop_assert_eq!(anon.n_released_rows(), rows.len());
    }

    /// Datafly output is k-anonymous over the released rows, sound, and a
    /// partition; suppression stays within budget (or everything suppressed
    /// when n < k).
    #[test]
    fn datafly_invariants(rows in arb_rows(), k in 1usize..8) {
        let ds = build(&rows);
        let hier = vec![
            AttributeHierarchy::ZipPrefix { digits: 5 },
            AttributeHierarchy::Numeric { anchor: 0, widths: vec![5, 10, 25, 50] },
        ];
        let cfg = DataflyConfig { k, max_suppression_fraction: 0.1 };
        let anon = datafly_anonymize(&ds, &[0, 1], &hier, &cfg);
        prop_assert!(anon.is_sound(&ds));
        prop_assert!(anon.is_partition());
        prop_assert!(is_k_anonymous(&anon, k));
        let budget = (0.1 * rows.len() as f64).floor() as usize;
        // The final suppression set may exceed the mid-loop budget only when
        // the ladder was exhausted (n < k forces everything out).
        prop_assert!(
            anon.suppressed_rows().len() <= budget || rows.len() < k,
            "suppressed {} of {} (budget {})",
            anon.suppressed_rows().len(), rows.len(), budget
        );
    }

    /// Hierarchy monotonicity: if level ℓ covers a value, level ℓ+1 covers
    /// it too (coarser is weaker).
    #[test]
    fn hierarchy_levels_are_monotone(v in 0i64..100_000, anchor in -10i64..10) {
        let hiers = vec![
            AttributeHierarchy::ZipPrefix { digits: 5 },
            AttributeHierarchy::Numeric { anchor, widths: vec![3, 9, 27, 81] },
        ];
        for h in &hiers {
            for lvl in 0..h.max_level() {
                let g_lo = h.generalize(&Value::Int(v), lvl);
                let g_hi = h.generalize(&Value::Int(v), lvl + 1);
                prop_assert!(g_lo.covers(&Value::Int(v), None), "level {lvl}");
                prop_assert!(g_hi.covers(&Value::Int(v), None), "level {}", lvl + 1);
                // Coarser level's set contains the finer level's set: spot
                // check via interval endpoints.
                if let (GenValue::IntRange { lo: a, hi: b }, GenValue::IntRange { lo: c, hi: d }) =
                    (&g_lo, &g_hi)
                {
                    prop_assert!(c <= a && d >= b, "nesting violated at level {lvl}");
                }
            }
        }
    }

    /// Mondrian boxes are tight: every class's numeric range endpoints are
    /// attained by some member.
    #[test]
    fn mondrian_boxes_are_tight(rows in arb_rows()) {
        let ds = build(&rows);
        let anon = mondrian_anonymize(&ds, &[0, 1], &MondrianConfig { k: 3 });
        for class in anon.classes() {
            for (qi, g) in class.qi_box.iter().enumerate() {
                if let GenValue::IntRange { lo, hi } = g {
                    let vals: Vec<i64> = class
                        .rows
                        .iter()
                        .map(|&r| ds.get(r, qi).as_int().unwrap())
                        .collect();
                    prop_assert_eq!(vals.iter().min().copied().unwrap(), *lo);
                    prop_assert_eq!(vals.iter().max().copied().unwrap(), *hi);
                }
            }
        }
    }
}
