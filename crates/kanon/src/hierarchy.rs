//! Generalization hierarchies.
//!
//! Footnote 4 of the paper: "Generalization is typically done in a
//! hierarchical manner, e.g., by suppressing the last digit(s) of a ZIP code
//! or replacing a geographic unit with a coarser geographic unit." This
//! module provides those ladders:
//!
//! * [`AttributeHierarchy::Numeric`] — fixed-width banding per level
//!   (age → 5-year band → 10-year band → `*`);
//! * [`AttributeHierarchy::ZipPrefix`] — digit suppression
//!   (`12345 → 1234* → 123** → ... → *`);
//! * [`AttributeHierarchy::Categorical`] — a [`Taxonomy`] tree
//!   (`COVID → PULM → ANY`), as in the paper's toy 2-anonymization.

use std::collections::HashMap;

use so_data::{Interner, Symbol, Value};

use crate::generalized::GenValue;

/// A rooted category tree whose leaves are raw string values.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    labels: Vec<String>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// Leaf lookup by label.
    leaf_by_label: HashMap<String, usize>,
    /// Leaf lookup by interned symbol (populated by [`Taxonomy::bind_symbols`]).
    leaf_by_symbol: HashMap<Symbol, usize>,
}

impl Taxonomy {
    /// Creates a taxonomy with a root labeled `root_label`.
    pub fn new(root_label: &str) -> Self {
        Taxonomy {
            labels: vec![root_label.to_owned()],
            parent: vec![None],
            children: vec![Vec::new()],
            leaf_by_label: HashMap::new(),
            leaf_by_symbol: HashMap::new(),
        }
    }

    /// The root node id.
    pub fn root(&self) -> usize {
        0
    }

    /// Adds a child under `parent`, returning the new node id. The child is
    /// registered as a leaf candidate under its label (interior nodes simply
    /// get overwritten as children are added beneath them).
    ///
    /// # Panics
    /// Panics if `parent` is out of range.
    pub fn add_child(&mut self, parent: usize, label: &str) -> usize {
        assert!(parent < self.labels.len(), "bad parent node {parent}");
        let id = self.labels.len();
        self.labels.push(label.to_owned());
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent].push(id);
        self.leaf_by_label.insert(label.to_owned(), id);
        // The parent is no longer a leaf.
        let children = &self.children;
        self.leaf_by_label
            .retain(|_, &mut v| children[v].is_empty());
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff only the root exists.
    pub fn is_empty(&self) -> bool {
        self.labels.len() <= 1
    }

    /// Node label.
    pub fn label(&self, node: usize) -> &str {
        &self.labels[node]
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: usize) -> Option<usize> {
        self.parent[node]
    }

    /// After interning all leaf labels in `interner`, binds leaves to their
    /// symbols for O(1) lookup during anonymization. Labels missing from the
    /// interner are skipped (they simply never occur in the data).
    pub fn bind_symbols(&mut self, interner: &Interner) {
        self.leaf_by_symbol.clear();
        for (label, &node) in &self.leaf_by_label {
            if let Some(sym) = interner.get(label) {
                self.leaf_by_symbol.insert(sym, node);
            }
        }
    }

    /// The leaf node for an interned symbol (requires [`Self::bind_symbols`]).
    pub fn leaf_of_symbol(&self, sym: Symbol) -> Option<usize> {
        self.leaf_by_symbol.get(&sym).copied()
    }

    /// The leaf node for a raw label.
    pub fn leaf_of_label(&self, label: &str) -> Option<usize> {
        self.leaf_by_label.get(label).copied()
    }

    /// True iff `node` is `leaf` or an ancestor of `leaf`.
    pub fn node_contains(&self, node: usize, leaf: usize) -> bool {
        let mut cur = Some(leaf);
        while let Some(c) = cur {
            if c == node {
                return true;
            }
            cur = self.parent[c];
        }
        false
    }

    /// Ancestor of `leaf` exactly `height` steps up (clamped at the root).
    pub fn ancestor_at_height(&self, leaf: usize, height: usize) -> usize {
        let mut cur = leaf;
        for _ in 0..height {
            match self.parent[cur] {
                Some(p) => cur = p,
                None => return cur,
            }
        }
        cur
    }

    /// All leaves under `node`.
    pub fn leaves_under(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(c) = stack.pop() {
            if self.children[c].is_empty() {
                out.push(c);
            } else {
                stack.extend(&self.children[c]);
            }
        }
        out
    }

    /// Height of the tree (edges on the longest root-to-leaf path).
    pub fn height(&self) -> usize {
        fn depth(t: &Taxonomy, n: usize) -> usize {
            t.children[n]
                .iter()
                .map(|&c| 1 + depth(t, c))
                .max()
                .unwrap_or(0)
        }
        depth(self, 0)
    }
}

/// Per-attribute generalization ladder. Level 0 is always the exact value;
/// the maximum level is full suppression.
#[derive(Debug, Clone)]
pub enum AttributeHierarchy {
    /// Fixed-width numeric banding: level `i ≥ 1` uses `widths[i-1]`-wide
    /// intervals anchored at `anchor`; above the last width, suppression.
    Numeric {
        /// Band alignment origin.
        anchor: i64,
        /// Band width per level, strictly increasing.
        widths: Vec<i64>,
    },
    /// ZIP-style digit suppression on a `digits`-digit code: level `i`
    /// suppresses the last `i` digits; level `digits` is full suppression.
    ZipPrefix {
        /// Total number of digits in the code.
        digits: u32,
    },
    /// Category-tree generalization: level `i` lifts a leaf `i` steps toward
    /// the root; at or beyond the root, suppression.
    Categorical(Taxonomy),
}

impl AttributeHierarchy {
    /// Number of levels above exact (level `max_level()` = suppressed).
    pub fn max_level(&self) -> usize {
        match self {
            AttributeHierarchy::Numeric { widths, .. } => widths.len() + 1,
            AttributeHierarchy::ZipPrefix { digits } => *digits as usize,
            AttributeHierarchy::Categorical(tax) => tax.height(),
        }
    }

    /// Generalizes `v` to `level`.
    ///
    /// Unknown/mistyped values generalize to [`GenValue::Suppressed`]
    /// (conservative: suppression covers everything, so soundness is kept).
    pub fn generalize(&self, v: &Value, level: usize) -> GenValue {
        if level == 0 {
            return GenValue::Exact(*v);
        }
        match self {
            AttributeHierarchy::Numeric { anchor, widths } => {
                let x = match v {
                    Value::Int(x) => *x,
                    Value::Date(d) => i64::from(d.day_number()),
                    _ => return GenValue::Suppressed,
                };
                if level > widths.len() {
                    return GenValue::Suppressed;
                }
                let w = widths[level - 1];
                debug_assert!(w > 0);
                let lo = anchor + (x - anchor).div_euclid(w) * w;
                GenValue::IntRange { lo, hi: lo + w - 1 }
            }
            AttributeHierarchy::ZipPrefix { digits } => {
                let x = match v {
                    Value::Int(x) if *x >= 0 => *x,
                    _ => return GenValue::Suppressed,
                };
                if level >= *digits as usize {
                    return GenValue::Suppressed;
                }
                let m = 10i64.pow(level as u32);
                let lo = (x / m) * m;
                GenValue::IntRange { lo, hi: lo + m - 1 }
            }
            AttributeHierarchy::Categorical(tax) => {
                let leaf = match v {
                    Value::Str(s) => match tax.leaf_of_symbol(*s) {
                        Some(l) => l,
                        None => return GenValue::Suppressed,
                    },
                    _ => return GenValue::Suppressed,
                };
                let node = tax.ancestor_at_height(leaf, level);
                if node == tax.root() {
                    GenValue::Suppressed
                } else {
                    GenValue::CategoryNode(node)
                }
            }
        }
    }

    /// Borrow the taxonomy, if categorical.
    pub fn taxonomy(&self) -> Option<&Taxonomy> {
        match self {
            AttributeHierarchy::Categorical(t) => Some(t),
            _ => None,
        }
    }
}

/// Builds the disease taxonomy from the paper's toy example (§1.1):
/// pulmonary diseases (COVID, Asthma, CF) group under `PULM`; everything
/// else sits under its own system group.
pub fn paper_disease_taxonomy() -> Taxonomy {
    let mut tax = Taxonomy::new("ANY");
    let pulm = tax.add_child(tax.root(), "PULM");
    for d in ["COVID", "Asthma", "CF"] {
        tax.add_child(pulm, d);
    }
    let meta = tax.add_child(tax.root(), "METABOLIC");
    tax.add_child(meta, "Diabetes");
    let circ = tax.add_child(tax.root(), "CIRCULATORY");
    tax.add_child(circ, "Hypertension");
    let none = tax.add_child(tax.root(), "NONE");
    tax.add_child(none, "Healthy");
    tax
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_structure() {
        let tax = paper_disease_taxonomy();
        let covid = tax.leaf_of_label("COVID").unwrap();
        let pulm = tax.parent(covid).unwrap();
        assert_eq!(tax.label(pulm), "PULM");
        assert!(tax.node_contains(pulm, covid));
        assert!(tax.node_contains(tax.root(), covid));
        let diabetes = tax.leaf_of_label("Diabetes").unwrap();
        assert!(!tax.node_contains(pulm, diabetes));
        assert_eq!(tax.height(), 2);
    }

    #[test]
    fn ancestor_at_height_clamps_at_root() {
        let tax = paper_disease_taxonomy();
        let covid = tax.leaf_of_label("COVID").unwrap();
        assert_eq!(tax.label(tax.ancestor_at_height(covid, 1)), "PULM");
        assert_eq!(tax.ancestor_at_height(covid, 2), tax.root());
        assert_eq!(tax.ancestor_at_height(covid, 99), tax.root());
    }

    #[test]
    fn leaves_under_groups() {
        let tax = paper_disease_taxonomy();
        let pulm = tax
            .leaf_of_label("COVID")
            .map(|c| tax.parent(c).unwrap())
            .unwrap();
        let mut labels: Vec<&str> = tax
            .leaves_under(pulm)
            .into_iter()
            .map(|n| tax.label(n))
            .collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["Asthma", "CF", "COVID"]);
        assert_eq!(tax.leaves_under(tax.root()).len(), 6);
    }

    #[test]
    fn numeric_hierarchy_bands() {
        let h = AttributeHierarchy::Numeric {
            anchor: 0,
            widths: vec![10, 20],
        };
        assert_eq!(h.max_level(), 3);
        assert_eq!(
            h.generalize(&Value::Int(33), 0),
            GenValue::Exact(Value::Int(33))
        );
        assert_eq!(
            h.generalize(&Value::Int(33), 1),
            GenValue::IntRange { lo: 30, hi: 39 }
        );
        assert_eq!(
            h.generalize(&Value::Int(33), 2),
            GenValue::IntRange { lo: 20, hi: 39 }
        );
        assert_eq!(h.generalize(&Value::Int(33), 3), GenValue::Suppressed);
        // Negative values band correctly with euclidean division.
        assert_eq!(
            h.generalize(&Value::Int(-5), 1),
            GenValue::IntRange { lo: -10, hi: -1 }
        );
    }

    #[test]
    fn zip_hierarchy_digit_suppression() {
        let h = AttributeHierarchy::ZipPrefix { digits: 5 };
        assert_eq!(h.max_level(), 5);
        assert_eq!(
            h.generalize(&Value::Int(12345), 1),
            GenValue::IntRange {
                lo: 12340,
                hi: 12349
            }
        );
        assert_eq!(
            h.generalize(&Value::Int(12345), 3),
            GenValue::IntRange {
                lo: 12000,
                hi: 12999
            }
        );
        assert_eq!(h.generalize(&Value::Int(12345), 5), GenValue::Suppressed);
    }

    #[test]
    fn categorical_hierarchy_generalizes_via_taxonomy() {
        let mut tax = paper_disease_taxonomy();
        let mut interner = Interner::new();
        let covid = interner.intern("COVID");
        tax.bind_symbols(&interner);
        let h = AttributeHierarchy::Categorical(tax);
        let g1 = h.generalize(&Value::Str(covid), 1);
        match g1 {
            GenValue::CategoryNode(n) => {
                assert_eq!(h.taxonomy().unwrap().label(n), "PULM");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(h.generalize(&Value::Str(covid), 2), GenValue::Suppressed);
    }

    #[test]
    fn unknown_values_suppress_conservatively() {
        let h = AttributeHierarchy::ZipPrefix { digits: 5 };
        assert_eq!(h.generalize(&Value::Bool(true), 1), GenValue::Suppressed);
        let mut tax = Taxonomy::new("ANY");
        tax.add_child(0, "X");
        let hc = AttributeHierarchy::Categorical(tax);
        // Symbol never bound → suppressed.
        let mut i = Interner::new();
        let unbound = i.intern("unseen");
        assert_eq!(hc.generalize(&Value::Str(unbound), 1), GenValue::Suppressed);
    }

    #[test]
    fn date_values_band_by_day_number() {
        let h = AttributeHierarchy::Numeric {
            anchor: 0,
            widths: vec![365],
        };
        let d = so_data::Date::new(1970, 6, 1).unwrap();
        match h.generalize(&Value::Date(d), 1) {
            GenValue::IntRange { lo, hi } => {
                assert_eq!(lo, 0);
                assert_eq!(hi, 364);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
